#!/usr/bin/env sh
# Local CI gate, mirrored by .github/workflows/ci.yml.
#
# The workspace is fully offline-safe: every check below runs with
# --offline and must succeed with no network and no registry cache.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --offline --release
cargo test --offline -q

echo "==> psmlint: checked-in netlist + freshly trained model"
./target/release/psmlint --deny-warnings multsum_netlist.v
./target/release/psmlint --json --demo target/psmlint-demo-model.json

echo "CI gate passed"
