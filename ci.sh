#!/usr/bin/env sh
# Local CI gate, mirrored by .github/workflows/ci.yml.
#
# The workspace is fully offline-safe: every check below runs with
# --offline and must succeed with no network and no registry cache.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --offline --release
cargo test --offline -q

echo "==> rustdoc: no warnings, doc-tests pass"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace
cargo test --offline --doc --workspace -q

echo "==> psmlint: generated netlist + freshly trained model"
# multsum_netlist.v is gitignored; the example regenerates it
# deterministically so a fresh checkout lints the same bytes.
cargo run --offline --release --example netlist_tools > /dev/null
./target/release/psmlint --deny-warnings multsum_netlist.v
./target/release/psmlint --json --demo target/psmlint-demo-model.json

echo "==> psmlint --list-codes: catalogue matches DIAGNOSTICS.md"
# Every code psmlint can emit must be documented, and no documented code
# may vanish from the binary: diff the machine-readable catalogue against
# the codes named in the DIAGNOSTICS.md tables, both directions.
./target/release/psmlint --list-codes | awk '{print $1}' | sort \
    > target/psmlint-codes.txt
grep -oE '^\| (NL|TR|PS|HM|XA|MC|PD)[0-9]{3} ' DIAGNOSTICS.md \
    | tr -d '| ' | sort > target/psmlint-doc-codes.txt
diff -u target/psmlint-doc-codes.txt target/psmlint-codes.txt \
    || { echo "DIAGNOSTICS.md and psmlint --list-codes disagree"; exit 1; }

echo "==> psmlint: SARIF over the demo defect set, gated on new findings"
# defective.v and powerintent_defect.v carry known, baselined findings;
# the run fails only when a finding appears that
# examples/artifacts/psmlint-baseline.json does not record. The SARIF
# document itself lands in target/ for inspection.
./target/release/psmlint --format sarif \
    --baseline examples/artifacts/psmlint-baseline.json \
    examples/artifacts/defective.v examples/artifacts/powerintent_defect.v \
    multsum_netlist.v > target/psmlint.sarif

echo "==> psmlint --verify: bounded model checking of the mined assertions"
# The checked-in defect pair must keep its MC001/MC002 findings — all of
# them are baselined, so a gated run passes only if the verdicts are
# byte-for-byte reproducible. The fresh multsum model must verify with
# no errors in abstract mode.
./target/release/psmlint --quiet --verify \
    --baseline examples/artifacts/psmlint-baseline.json \
    examples/artifacts/defective.v \
    examples/artifacts/verify_defect.v examples/artifacts/verify_defect.json
./target/release/psmlint --quiet --verify \
    multsum_netlist.v target/psmlint-demo-model.json
# Witness round trip: --verify saves counterexample stimuli as CSV, and
# --replay must re-simulate the first one to a confirmed violation
# (exit 1 is the expected "real finding" outcome of both runs).
rm -rf target/psm-witness && mkdir -p target/psm-witness
if ./target/release/psmlint --quiet --verify --witness-dir target/psm-witness \
    examples/artifacts/verify_defect.v examples/artifacts/verify_defect.json \
    > /dev/null
then echo "expected the defect pair to fail --verify"; exit 1; fi
if ./target/release/psmlint --quiet --replay target/psm-witness/witness_001.csv \
    examples/artifacts/verify_defect.v examples/artifacts/verify_defect.json \
    | grep -q "replay confirms the violation"
then echo "    witness replays to a violation"
else echo "expected the witness to replay"; exit 1; fi

echo "==> psmd: loopback smoke test (serve, estimate, stream, stats, clean exit)"
rm -rf target/psmd-smoke && mkdir -p target/psmd-smoke
./target/release/psmlint --quiet --json --demo target/psmd-smoke/demo@1.json > /dev/null
./target/release/psmd --registry target/psmd-smoke \
    --addr 127.0.0.1:0 --port-file target/psmd-smoke/port &
PSMD_PID=$!
for _ in $(seq 1 50); do
    [ -s target/psmd-smoke/port ] && break
    sleep 0.1
done
PSMD_ADDR="$(cat target/psmd-smoke/port)"
./target/release/psmctl --addr "$PSMD_ADDR" ping
./target/release/psmctl --addr "$PSMD_ADDR" estimate demo \
    --gen MultSum:7:500 --format json > target/psmd-smoke/estimate.json
# The same workload streamed in two+ chunks must reproduce the one-shot
# estimate bit for bit.
./target/release/psmctl --addr "$PSMD_ADDR" estimate demo \
    --gen MultSum:7:500 --stream --chunks 250 --format json \
    > target/psmd-smoke/streamed.json
cmp target/psmd-smoke/estimate.json target/psmd-smoke/streamed.json
# A deliberately slow partial-write client must not stall other clients:
# the normal estimate below completes while the slow frame trickles in.
./target/release/psmctl --addr "$PSMD_ADDR" estimate demo \
    --gen MultSum:7:500 --slow-write-ms 400 --format json \
    > target/psmd-smoke/slow.json &
SLOW_PID=$!
./target/release/psmctl --addr "$PSMD_ADDR" estimate demo \
    --gen MultSum:7:500 > /dev/null
wait "$SLOW_PID"
cmp target/psmd-smoke/estimate.json target/psmd-smoke/slow.json
./target/release/psmctl --addr "$PSMD_ADDR" bench demo \
    --gen MultSum:7:200 --clients 2 --streams 2 --rounds 3 \
    --format json > /dev/null
./target/release/psmctl --addr "$PSMD_ADDR" stats > /dev/null
./target/release/psmctl --addr "$PSMD_ADDR" shutdown
wait "$PSMD_PID"   # psmd must drain and exit 0

echo "==> psmd: v3 artifact (psmctl compile) serves the v2 answer bit for bit"
# Rewrite the smoke artifact as a psmgen-artifact/v3 with the flat-table
# serving form precomputed, serve it from a second registry, and require
# the same workload to estimate to the same bytes as the v2 run above.
rm -rf target/psmd-smoke-v3 && mkdir -p target/psmd-smoke-v3
./target/release/psmctl compile \
    target/psmd-smoke/demo@1.json target/psmd-smoke-v3/demo@1.json
./target/release/psmd --registry target/psmd-smoke-v3 \
    --addr 127.0.0.1:0 --port-file target/psmd-smoke/v3-port &
PSMD_PID=$!
for _ in $(seq 1 50); do
    [ -s target/psmd-smoke/v3-port ] && break
    sleep 0.1
done
PSMD_ADDR="$(cat target/psmd-smoke/v3-port)"
./target/release/psmctl --addr "$PSMD_ADDR" estimate demo \
    --gen MultSum:7:500 --format json > target/psmd-smoke/v3-estimate.json
cmp target/psmd-smoke/estimate.json target/psmd-smoke/v3-estimate.json
./target/release/psmctl --addr "$PSMD_ADDR" shutdown
wait "$PSMD_PID"
# The interpreted fallback engine must answer identically from the same
# v3 registry (engines differ in speed, never in bits).
./target/release/psmd --registry target/psmd-smoke-v3 --engine interpreted \
    --addr 127.0.0.1:0 --port-file target/psmd-smoke/v3-port-interp &
PSMD_PID=$!
for _ in $(seq 1 50); do
    [ -s target/psmd-smoke/v3-port-interp ] && break
    sleep 0.1
done
PSMD_ADDR="$(cat target/psmd-smoke/v3-port-interp)"
./target/release/psmctl --addr "$PSMD_ADDR" estimate demo \
    --gen MultSum:7:500 --format json > target/psmd-smoke/v3-interp.json
cmp target/psmd-smoke/estimate.json target/psmd-smoke/v3-interp.json
./target/release/psmctl --addr "$PSMD_ADDR" shutdown
wait "$PSMD_PID"

echo "==> psmbench: quick regression gate vs checked-in baseline"
cargo build --offline --release -p psm-bench --bin psmbench
# Thread scaling is only a meaningful assertion when the host actually
# has more than one core; a 1-core runner caps every t2 speedup at ~1.0
# no matter how good the engine is, so the gate would only measure the
# scheduler. Skip it loudly there instead of asserting noise.
NPROC="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
if [ "$NPROC" -ge 2 ]; then
    echo "    host has $NPROC cores: enforcing flow_train t2 speedup >= 1.2x"
    SPEEDUP_FLAGS="--min-flow-speedup 1.2"
else
    echo "    SKIPPING thread-scaling gate: 1-core host cannot scale (nproc=$NPROC)"
    SPEEDUP_FLAGS=""
fi
# shellcheck disable=SC2086  # SPEEDUP_FLAGS is intentionally word-split
./target/release/psmbench --quick --out target/BENCH_ci.json \
    --baseline BENCH_psmgen.json --max-regress 25 $SPEEDUP_FLAGS

echo "CI gate passed"
