#!/usr/bin/env sh
# Local CI gate, mirrored by .github/workflows/ci.yml.
#
# The workspace is fully offline-safe: every check below runs with
# --offline and must succeed with no network and no registry cache.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --offline --release
cargo test --offline -q

echo "==> rustdoc: no warnings, doc-tests pass"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace
cargo test --offline --doc --workspace -q

echo "==> psmlint: checked-in netlist + freshly trained model"
./target/release/psmlint --deny-warnings multsum_netlist.v
./target/release/psmlint --json --demo target/psmlint-demo-model.json

echo "==> psmlint: SARIF over the demo defect set, gated on new findings"
# defective.v carries known, baselined findings; the run fails only when
# a finding appears that examples/artifacts/psmlint-baseline.json does
# not record. The SARIF document itself lands in target/ for inspection.
./target/release/psmlint --format sarif \
    --baseline examples/artifacts/psmlint-baseline.json \
    examples/artifacts/defective.v multsum_netlist.v > target/psmlint.sarif

echo "==> psmbench: quick regression gate vs checked-in baseline"
cargo build --offline --release -p psm-bench --bin psmbench
./target/release/psmbench --quick --out target/BENCH_ci.json \
    --baseline BENCH_psmgen.json --max-regress 25

echo "CI gate passed"
