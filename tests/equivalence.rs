//! Behavioural ↔ structural equivalence of every benchmark IP.
//!
//! The methodology's training traces come from the *gate-level* twin while
//! estimation-time traces come from the *behavioural* model, so the two
//! must agree bit-for-bit, cycle-for-cycle on every output. These tests
//! drive both models with the same randomised stimuli and compare every
//! port at every instant.

use psm_prng::Prng;
use psmgen::ips::{behavioural_trace, ip_by_name, testbench};
use psmgen::rtl::{Simulator, Stimulus};
use psmgen::trace::Bits;

/// Runs the structural twin and checks all sampled ports against the
/// behavioural trace.
fn assert_equivalent(name: &str, stimulus: &Stimulus) {
    let mut ip = ip_by_name(name).expect("benchmark exists");
    let behavioural = behavioural_trace(ip.as_mut(), stimulus).expect("stimulus fits");

    let netlist = ip.netlist().expect("netlist builds");
    let mut sim = Simulator::new(&netlist).expect("netlist is acyclic");
    let handles = sim.input_handles();
    for (t, inputs) in stimulus.iter().enumerate() {
        for ((_, h), value) in handles.iter().zip(inputs) {
            sim.set_input_by_handle(*h, value).expect("widths match");
        }
        sim.step();
        let sampled = sim.sample_ports();
        for (i, (_, decl)) in netlist.signal_set().iter().enumerate() {
            assert_eq!(
                &sampled[i],
                behavioural.value(
                    behavioural
                        .signals()
                        .by_name(decl.name())
                        .expect("same interface"),
                    t
                ),
                "{name}: port `{}` diverges at cycle {t}",
                decl.name()
            );
        }
    }
}

#[test]
fn ram_models_are_equivalent_on_random_traffic() {
    assert_equivalent("RAM", &testbench::ram_short_ts(42));
    assert_equivalent("RAM", &testbench::ram_long_ts(43, 2_000));
}

#[test]
fn multsum_models_are_equivalent_on_random_traffic() {
    assert_equivalent("MultSum", &testbench::multsum_short_ts(42));
    assert_equivalent("MultSum", &testbench::multsum_long_ts(43, 2_000));
}

#[test]
fn aes_models_are_equivalent_on_random_traffic() {
    assert_equivalent("AES", &testbench::aes_long_ts(42, 2_500));
}

#[test]
fn camellia_models_are_equivalent_on_random_traffic() {
    assert_equivalent("Camellia", &testbench::camellia_long_ts(42, 2_500));
}

/// Adversarial stimulus: random values on *every* input line each cycle,
/// including command pulses at arbitrary (possibly illegal) times.
fn chaos_stimulus(name: &str, seed: u64, cycles: usize) -> Stimulus {
    let ip = ip_by_name(name).expect("benchmark exists");
    let signals = ip.signals();
    let mut rng = Prng::seed_from_u64(seed);
    let mut stim = Stimulus::new();
    for _ in 0..cycles {
        let mut cycle = Vec::new();
        for id in signals.inputs() {
            let w = signals.decl(id).width();
            let mut b = Bits::zero(w);
            for bit in 0..w {
                if rng.chance(0.5) {
                    b.set_bit(bit, true);
                }
            }
            cycle.push(b);
        }
        stim.push_cycle(cycle);
    }
    stim
}

#[test]
fn all_ips_survive_chaos_stimuli_equivalently() {
    for name in ["RAM", "MultSum", "AES", "Camellia"] {
        assert_equivalent(name, &chaos_stimulus(name, 7, 600));
    }
}

#[test]
fn whitebox_camellia_probe_matches_structurally() {
    use psmgen::ips::{Camellia128Whitebox, Ip};
    use psmgen::rtl::Simulator;
    let stimulus = testbench::camellia_long_ts(11, 1_500);
    let mut ip = Camellia128Whitebox::new();
    let behavioural = behavioural_trace(&mut ip, &stimulus).expect("stimulus fits");
    let netlist = ip.netlist().expect("netlist builds");
    let mut sim = Simulator::new(&netlist).expect("acyclic");
    let handles = sim.input_handles();
    let fl = behavioural
        .signals()
        .by_name("fl_active")
        .expect("probe exists");
    for (t, inputs) in stimulus.iter().enumerate() {
        for ((_, h), value) in handles.iter().zip(inputs) {
            sim.set_input_by_handle(*h, value).expect("widths match");
        }
        sim.step();
        assert_eq!(
            &sim.output("fl_active").expect("probe port"),
            behavioural.value(fl, t),
            "probe diverges at cycle {t}"
        );
    }
}

/// The scratch-based mining fast path (`intern_cycle_with` /
/// `classify_with`, one row buffer per trace) must be indistinguishable
/// from the allocating reference path: same ids in the same order, and a
/// byte-identical serialised table.
#[test]
fn scratch_mining_path_matches_allocating_reference() {
    use psm_persist::Persist;
    use psmgen::mining::RowScratch;

    let flow = psmgen::flow::PsmFlow::builder()
        .preset(psmgen::flow::IpPreset::MultSum)
        .build();
    let mut ip = ip_by_name("MultSum").expect("benchmark exists");
    let model = flow
        .train(ip.as_mut(), &[testbench::multsum_short_ts(1)])
        .expect("trains");

    // A fresh workload the table has never seen.
    let workload = testbench::multsum_long_ts(91, 1_500);
    let trace = behavioural_trace(ip.as_mut(), &workload).expect("workload fits");

    // Interning: reference (allocate + intern a boxed row per cycle)
    // against the scratch path, starting from identical table clones.
    let mut reference_table = model.table.clone();
    let mut fast_table = model.table.clone();
    let mut scratch = RowScratch::new();
    for t in 0..trace.len() {
        let cycle = trace.cycle(t);
        let row = reference_table.vocabulary().evaluate_row(cycle);
        let ref_id = reference_table.intern(row);
        let fast_id = fast_table.intern_cycle_with(cycle, &mut scratch);
        assert_eq!(ref_id, fast_id, "intern diverges at cycle {t}");
    }
    assert_eq!(
        reference_table.to_json().render(),
        fast_table.to_json().render(),
        "interned tables must serialise byte-identically"
    );

    // Classification: the scratch lookup against a linear row scan.
    let mut scratch = RowScratch::new();
    for t in 0..trace.len() {
        let cycle = trace.cycle(t);
        let row = model.table.vocabulary().evaluate_row(cycle);
        let scan = model
            .table
            .ids()
            .find(|&id| model.table.get(id).row() == row.as_slice());
        let fast = model.table.classify_with(cycle, &mut scratch);
        assert_eq!(scan, fast, "classify diverges at cycle {t}");
        assert_eq!(scratch.row(), row.as_slice(), "scratch row differs");
    }
}

/// The transposed forward cache must reproduce the reference filter step
/// bit-for-bit: same likelihood bits, same belief bits, at every instant
/// of a real workload — the determinism contract says optimizations may
/// not perturb even the last ulp.
#[test]
fn cached_hmm_forward_pass_is_bitwise_identical() {
    let flow = psmgen::flow::PsmFlow::builder()
        .preset(psmgen::flow::IpPreset::MultSum)
        .build();
    let mut ip = ip_by_name("MultSum").expect("benchmark exists");
    let model = flow
        .train(ip.as_mut(), &[testbench::multsum_short_ts(1)])
        .expect("trains");

    let workload = testbench::multsum_long_ts(57, 1_500);
    let trace = behavioural_trace(ip.as_mut(), &workload).expect("workload fits");
    let observations = psmgen::psm::classify_trace(&model.table, &trace);

    let hmm = &model.hmm;
    let cache = hmm.forward_cache();
    let m = hmm.num_states();
    let mut ref_belief = vec![1.0 / m as f64; m];
    let mut fast_belief = ref_belief.clone();
    let mut ref_scratch = vec![0.0; m];
    let mut fast_scratch = vec![0.0; m];
    let mut steps = 0usize;
    for obs in observations.iter().flatten() {
        let sym = obs.index();
        if sym >= hmm.num_symbols() {
            continue;
        }
        let ref_like = hmm
            .filter_step_scratch(&mut ref_belief, sym, &mut ref_scratch)
            .expect("symbol in range");
        let fast_like = hmm
            .filter_step_cached(&cache, &mut fast_belief, sym, &mut fast_scratch)
            .expect("symbol in range");
        assert_eq!(
            ref_like.to_bits(),
            fast_like.to_bits(),
            "likelihood diverges at step {steps}"
        );
        for (i, (r, f)) in ref_belief.iter().zip(&fast_belief).enumerate() {
            assert_eq!(
                r.to_bits(),
                f.to_bits(),
                "belief[{i}] diverges at step {steps}"
            );
        }
        steps += 1;
    }
    assert!(steps > 100, "workload must exercise the filter");
}

/// The log-caching Viterbi rewrite must decode exactly the path of the
/// textbook recurrence (same log values, same strict-improvement ties).
#[test]
fn cached_viterbi_matches_textbook_recurrence() {
    let flow = psmgen::flow::PsmFlow::builder()
        .preset(psmgen::flow::IpPreset::MultSum)
        .build();
    let mut ip = ip_by_name("MultSum").expect("benchmark exists");
    let model = flow
        .train(ip.as_mut(), &[testbench::multsum_short_ts(1)])
        .expect("trains");
    let hmm = &model.hmm;
    let m = hmm.num_states();
    let k = hmm.num_symbols();

    // The pre-optimization recurrence, verbatim: per-instant log() calls
    // and a fresh delta row per step.
    let reference = |observations: &[usize]| -> Option<Vec<usize>> {
        if observations.is_empty() {
            return Some(Vec::new());
        }
        let log = |x: f64| if x > 0.0 { x.ln() } else { f64::NEG_INFINITY };
        let mut delta: Vec<f64> = (0..m)
            .map(|i| log(hmm.pi()[i]) + log(hmm.b()[i][observations[0]]))
            .collect();
        let mut back: Vec<Vec<usize>> = Vec::new();
        for &o in &observations[1..] {
            let mut next = vec![f64::NEG_INFINITY; m];
            let mut arg = vec![0usize; m];
            for j in 0..m {
                for (i, &d) in delta.iter().enumerate() {
                    let cand = d + log(hmm.a()[i][j]);
                    if cand > next[j] {
                        next[j] = cand;
                        arg[j] = i;
                    }
                }
                next[j] += log(hmm.b()[j][o]);
            }
            back.push(arg);
            delta = next;
        }
        let (mut best, score) = delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i, v))
            .expect("m > 0");
        if score == f64::NEG_INFINITY {
            return None;
        }
        let mut path = vec![best; observations.len()];
        for (t, arg) in back.iter().enumerate().rev() {
            best = arg[best];
            path[t] = best;
        }
        Some(path)
    };

    let mut rng = Prng::seed_from_u64(31);
    for len in [0usize, 1, 2, 17, 400] {
        let seq: Vec<usize> = (0..len).map(|_| rng.range_usize(0..k)).collect();
        assert_eq!(
            hmm.viterbi(&seq).expect("symbols in range"),
            reference(&seq),
            "viterbi diverges on a length-{len} sequence"
        );
    }
}

/// End-to-end byte-identity: training and estimating through the
/// optimized pipeline must serialise models and produce estimates
/// identical across repeated runs and worker counts (the optimizations
/// must not introduce any run-to-run or scheduling sensitivity).
#[test]
fn optimized_pipeline_stays_deterministic_end_to_end() {
    use psmgen::flow::Parallelism;
    let training = [
        testbench::multsum_long_ts(3, 900),
        testbench::multsum_long_ts(4, 900),
    ];
    let workload = testbench::multsum_long_ts(5, 900);

    let mut renderings = Vec::new();
    let mut estimates = Vec::new();
    for parallelism in [Parallelism::Sequential, Parallelism::Workers(4)] {
        let flow = psmgen::flow::PsmFlow::builder()
            .preset(psmgen::flow::IpPreset::MultSum)
            .parallelism(parallelism)
            .build();
        let mut ip = ip_by_name("MultSum").expect("benchmark exists");
        let model = flow.train(ip.as_mut(), &training).expect("trains");
        renderings.push(model.to_json_string());
        let trace = behavioural_trace(ip.as_mut(), &workload).expect("workload fits");
        let outcome = flow.estimate_from_trace(&model, &trace);
        estimates.push(
            outcome
                .estimate
                .iter()
                .map(f64::to_bits)
                .collect::<Vec<u64>>(),
        );
    }
    assert_eq!(renderings[0], renderings[1], "model JSON diverged");
    assert_eq!(estimates[0], estimates[1], "estimates diverged");
}

/// The optimiser must preserve cycle-accurate behaviour on the real
/// benchmark netlists, not just on synthetic examples.
#[test]
fn optimised_netlists_match_behavioural_models() {
    use psmgen::rtl::optimize;
    for name in ["MultSum", "AES", "Camellia"] {
        let mut ip = ip_by_name(name).expect("benchmark exists");
        let stimulus = chaos_stimulus(name, 23, 400);
        let behavioural = behavioural_trace(ip.as_mut(), &stimulus).expect("stimulus fits");

        let netlist = ip.netlist().expect("netlist builds");
        let (optimised, stats) = optimize(&netlist).expect("optimisation succeeds");
        assert!(stats.removed() > 0, "{name}: nothing folded?");

        let mut sim = Simulator::new(&optimised).expect("netlist is acyclic");
        let handles = sim.input_handles();
        for (t, inputs) in stimulus.iter().enumerate() {
            for ((_, h), value) in handles.iter().zip(inputs) {
                sim.set_input_by_handle(*h, value).expect("widths match");
            }
            sim.step();
            for (i, (_, decl)) in optimised.signal_set().iter().enumerate() {
                assert_eq!(
                    &sim.sample_ports()[i],
                    behavioural.value(
                        behavioural
                            .signals()
                            .by_name(decl.name())
                            .expect("same interface"),
                        t
                    ),
                    "{name} (optimised): port `{}` diverges at cycle {t}",
                    decl.name()
                );
            }
        }
    }
}
