//! Behavioural ↔ structural equivalence of every benchmark IP.
//!
//! The methodology's training traces come from the *gate-level* twin while
//! estimation-time traces come from the *behavioural* model, so the two
//! must agree bit-for-bit, cycle-for-cycle on every output. These tests
//! drive both models with the same randomised stimuli and compare every
//! port at every instant.

use psm_prng::Prng;
use psmgen::ips::{behavioural_trace, ip_by_name, testbench};
use psmgen::rtl::{Simulator, Stimulus};
use psmgen::trace::Bits;

/// Runs the structural twin and checks all sampled ports against the
/// behavioural trace.
fn assert_equivalent(name: &str, stimulus: &Stimulus) {
    let mut ip = ip_by_name(name).expect("benchmark exists");
    let behavioural = behavioural_trace(ip.as_mut(), stimulus).expect("stimulus fits");

    let netlist = ip.netlist().expect("netlist builds");
    let mut sim = Simulator::new(&netlist).expect("netlist is acyclic");
    let handles = sim.input_handles();
    for (t, inputs) in stimulus.iter().enumerate() {
        for ((_, h), value) in handles.iter().zip(inputs) {
            sim.set_input_by_handle(*h, value).expect("widths match");
        }
        sim.step();
        let sampled = sim.sample_ports();
        for (i, (_, decl)) in netlist.signal_set().iter().enumerate() {
            assert_eq!(
                &sampled[i],
                behavioural.value(
                    behavioural
                        .signals()
                        .by_name(decl.name())
                        .expect("same interface"),
                    t
                ),
                "{name}: port `{}` diverges at cycle {t}",
                decl.name()
            );
        }
    }
}

#[test]
fn ram_models_are_equivalent_on_random_traffic() {
    assert_equivalent("RAM", &testbench::ram_short_ts(42));
    assert_equivalent("RAM", &testbench::ram_long_ts(43, 2_000));
}

#[test]
fn multsum_models_are_equivalent_on_random_traffic() {
    assert_equivalent("MultSum", &testbench::multsum_short_ts(42));
    assert_equivalent("MultSum", &testbench::multsum_long_ts(43, 2_000));
}

#[test]
fn aes_models_are_equivalent_on_random_traffic() {
    assert_equivalent("AES", &testbench::aes_long_ts(42, 2_500));
}

#[test]
fn camellia_models_are_equivalent_on_random_traffic() {
    assert_equivalent("Camellia", &testbench::camellia_long_ts(42, 2_500));
}

/// Adversarial stimulus: random values on *every* input line each cycle,
/// including command pulses at arbitrary (possibly illegal) times.
fn chaos_stimulus(name: &str, seed: u64, cycles: usize) -> Stimulus {
    let ip = ip_by_name(name).expect("benchmark exists");
    let signals = ip.signals();
    let mut rng = Prng::seed_from_u64(seed);
    let mut stim = Stimulus::new();
    for _ in 0..cycles {
        let mut cycle = Vec::new();
        for id in signals.inputs() {
            let w = signals.decl(id).width();
            let mut b = Bits::zero(w);
            for bit in 0..w {
                if rng.chance(0.5) {
                    b.set_bit(bit, true);
                }
            }
            cycle.push(b);
        }
        stim.push_cycle(cycle);
    }
    stim
}

#[test]
fn all_ips_survive_chaos_stimuli_equivalently() {
    for name in ["RAM", "MultSum", "AES", "Camellia"] {
        assert_equivalent(name, &chaos_stimulus(name, 7, 600));
    }
}

#[test]
fn whitebox_camellia_probe_matches_structurally() {
    use psmgen::ips::{Camellia128Whitebox, Ip};
    use psmgen::rtl::Simulator;
    let stimulus = testbench::camellia_long_ts(11, 1_500);
    let mut ip = Camellia128Whitebox::new();
    let behavioural = behavioural_trace(&mut ip, &stimulus).expect("stimulus fits");
    let netlist = ip.netlist().expect("netlist builds");
    let mut sim = Simulator::new(&netlist).expect("acyclic");
    let handles = sim.input_handles();
    let fl = behavioural
        .signals()
        .by_name("fl_active")
        .expect("probe exists");
    for (t, inputs) in stimulus.iter().enumerate() {
        for ((_, h), value) in handles.iter().zip(inputs) {
            sim.set_input_by_handle(*h, value).expect("widths match");
        }
        sim.step();
        assert_eq!(
            &sim.output("fl_active").expect("probe port"),
            behavioural.value(fl, t),
            "probe diverges at cycle {t}"
        );
    }
}

/// The optimiser must preserve cycle-accurate behaviour on the real
/// benchmark netlists, not just on synthetic examples.
#[test]
fn optimised_netlists_match_behavioural_models() {
    use psmgen::rtl::optimize;
    for name in ["MultSum", "AES", "Camellia"] {
        let mut ip = ip_by_name(name).expect("benchmark exists");
        let stimulus = chaos_stimulus(name, 23, 400);
        let behavioural = behavioural_trace(ip.as_mut(), &stimulus).expect("stimulus fits");

        let netlist = ip.netlist().expect("netlist builds");
        let (optimised, stats) = optimize(&netlist).expect("optimisation succeeds");
        assert!(stats.removed() > 0, "{name}: nothing folded?");

        let mut sim = Simulator::new(&optimised).expect("netlist is acyclic");
        let handles = sim.input_handles();
        for (t, inputs) in stimulus.iter().enumerate() {
            for ((_, h), value) in handles.iter().zip(inputs) {
                sim.set_input_by_handle(*h, value).expect("widths match");
            }
            sim.step();
            for (i, (_, decl)) in optimised.signal_set().iter().enumerate() {
                assert_eq!(
                    &sim.sample_ports()[i],
                    behavioural.value(
                        behavioural
                            .signals()
                            .by_name(decl.name())
                            .expect("same interface"),
                        t
                    ),
                    "{name} (optimised): port `{}` diverges at cycle {t}",
                    decl.name()
                );
            }
        }
    }
}
