//! End-to-end pipeline tests over the four paper benchmarks.
//!
//! These assert the *shape* of the paper's results on reduced trace
//! budgets: who tracks well, who does not, zero (or near-zero) wrong-state
//! predictions for the well-behaved IPs, and reproducibility of the whole
//! flow.

use psmgen::flow::{IpPreset, PsmFlow};
use psmgen::ips::{ip_by_name, testbench};

/// The preset flow for a benchmark, via the typed builder.
fn flow_for(name: &str) -> PsmFlow {
    let preset = IpPreset::from_name(name).expect("benchmark preset exists");
    PsmFlow::builder().preset(preset).build()
}

fn mre_for(name: &str, workload_cycles: usize) -> (f64, f64, usize) {
    let flow = flow_for(name);
    let mut ip = ip_by_name(name).expect("benchmark exists");
    let training = testbench::short_ts(name, 1).expect("benchmark exists");
    let model = flow
        .train(ip.as_mut(), &[training])
        .expect("training succeeds");
    let workload = testbench::long_ts(name, 7, workload_cycles).expect("benchmark exists");
    let est = flow
        .estimate(&model, ip.as_mut(), &workload)
        .expect("estimation succeeds");
    (
        est.mre_vs_reference().expect("non-empty"),
        est.outcome.wsp_rate(),
        model.stats.states,
    )
}

#[test]
fn ram_tracks_tightly_with_regression_calibration() {
    let (mre, wsp, states) = mre_for("RAM", 4_000);
    assert!(mre < 0.08, "RAM MRE {mre}");
    assert!(wsp < 0.01, "RAM WSP {wsp}");
    assert!((2..=15).contains(&states), "RAM states {states}");
}

#[test]
fn multsum_tracks_with_moderate_error() {
    let (mre, wsp, states) = mre_for("MultSum", 4_000);
    assert!(mre < 0.12, "MultSum MRE {mre}");
    assert!(wsp < 0.01, "MultSum WSP {wsp}");
    assert!((2..=10).contains(&states), "MultSum states {states}");
}

#[test]
fn aes_tracks_tightly() {
    let (mre, wsp, _) = mre_for("AES", 4_000);
    assert!(mre < 0.08, "AES MRE {mre}");
    assert!(wsp < 0.01, "AES WSP {wsp}");
}

#[test]
fn camellia_is_the_hard_benchmark() {
    // The paper's key contrast: Camellia's MRE is several times the other
    // IPs' because its subcomponents alternate invisibly.
    let (mre_camellia, _, _) = mre_for("Camellia", 4_000);
    let (mre_aes, _, _) = mre_for("AES", 4_000);
    assert!(mre_camellia > 0.10, "Camellia MRE {mre_camellia}");
    assert!(
        mre_camellia > 3.0 * mre_aes,
        "contrast lost: Camellia {mre_camellia} vs AES {mre_aes}"
    );
}

#[test]
fn training_is_deterministic() {
    let flow = flow_for("MultSum");
    let train = || {
        let mut ip = ip_by_name("MultSum").expect("benchmark exists");
        let training = testbench::short_ts("MultSum", 1).expect("benchmark exists");
        flow.train(ip.as_mut(), &[training])
            .expect("training succeeds")
    };
    let a = train();
    let b = train();
    assert_eq!(a.psm, b.psm);
    assert_eq!(a.hmm, b.hmm);
    assert_eq!(a.stats.states, b.stats.states);
}

#[test]
fn estimation_is_deterministic() {
    let flow = flow_for("RAM");
    let mut ip = ip_by_name("RAM").expect("benchmark exists");
    let training = testbench::short_ts("RAM", 1).expect("benchmark exists");
    let model = flow
        .train(ip.as_mut(), &[training])
        .expect("training succeeds");
    let workload = testbench::ram_long_ts(5, 1_500);
    let e1 = flow
        .estimate(&model, ip.as_mut(), &workload)
        .expect("estimates");
    let e2 = flow
        .estimate(&model, ip.as_mut(), &workload)
        .expect("estimates");
    assert_eq!(e1.outcome, e2.outcome);
    assert_eq!(e1.reference, e2.reference);
}

#[test]
fn more_training_data_does_not_blow_up_the_model() {
    // Paper §VI: PSMs from verification testbenches are already high
    // quality; long traces must not change the picture dramatically.
    let flow = flow_for("MultSum");
    let mut ip = ip_by_name("MultSum").expect("benchmark exists");
    let short = testbench::short_ts("MultSum", 1).expect("benchmark exists");
    let long = testbench::multsum_long_ts(2, 8_000);
    let small = flow
        .train(ip.as_mut(), std::slice::from_ref(&short))
        .expect("trains");
    let big = flow.train(ip.as_mut(), &[short, long]).expect("trains");
    assert!(
        big.stats.states <= small.stats.states * 4 + 4,
        "model exploded: {} -> {}",
        small.stats.states,
        big.stats.states
    );
}

#[test]
fn unknown_behaviour_is_flagged_not_fabricated() {
    // Train the RAM without ever exercising `clr`; a workload that pulses
    // it produces unknown-behaviour instants rather than silent nonsense.
    use psmgen::rtl::Stimulus;
    use psmgen::trace::Bits;
    let ram_cycle = |addr: u64, we: bool, re: bool, ce: bool, clr: bool| {
        vec![
            Bits::from_u64(addr, 8),
            Bits::from_u64(addr * 3, 32),
            Bits::from_bool(we),
            Bits::from_bool(re),
            Bits::from_bool(ce),
            Bits::from_bool(clr),
        ]
    };
    let mut training = Stimulus::new();
    for k in 0..400u64 {
        let phase = k % 20;
        if phase < 8 {
            training.push_cycle(ram_cycle(k % 256, true, false, true, false));
        } else if phase < 16 {
            training.push_cycle(ram_cycle(k % 256, false, true, true, false));
        } else {
            training.push_cycle(ram_cycle(0, false, false, false, false));
        }
    }
    let flow = flow_for("RAM");
    let mut ip = ip_by_name("RAM").expect("benchmark exists");
    let model = flow
        .train(ip.as_mut(), &[training.clone()])
        .expect("trains");

    let mut workload = training;
    workload.push_cycle(ram_cycle(1, false, false, true, true)); // clr never trained
    workload.push_cycle(ram_cycle(1, false, false, true, true));
    let est = flow
        .estimate(&model, ip.as_mut(), &workload)
        .expect("estimates");
    assert!(
        est.outcome.unknown_instants >= 2,
        "clr cycles must classify as unknown behaviour"
    );
}

#[test]
fn whitebox_probe_collapses_camellia_error() {
    // The paper's future-work hypothesis, as a regression test: exposing
    // which subcomponent is active lets the miner split the busy behaviour
    // and the MRE collapses.
    use psmgen::ips::{behavioural_trace, Camellia128Whitebox};
    let flow = flow_for("Camellia");
    let training = testbench::camellia_short_ts(1);
    let workload = testbench::camellia_long_ts(7, 4_000);

    let (mre_black, _, _) = mre_for("Camellia", 4_000);

    let mut wb = Camellia128Whitebox::new();
    let model = flow.train(&mut wb, &[training]).expect("training succeeds");
    let trace = behavioural_trace(&mut wb, &workload).expect("workload fits");
    let outcome = flow.estimate_from_trace(&model, &trace);
    let golden = flow
        .reference_power(&wb, &workload)
        .expect("capture succeeds");
    let mre_white =
        psmgen::stats::mean_relative_error(outcome.estimate.as_slice(), golden.as_slice())
            .expect("non-empty");
    assert!(
        mre_white < mre_black / 2.0,
        "white-box {mre_white} vs black-box {mre_black}"
    );
}

#[test]
fn hierarchical_model_estimates_and_attributes() {
    use psmgen::ips::{behavioural_trace, Camellia128Whitebox};
    let flow = flow_for("Camellia");
    let training = testbench::camellia_short_ts(1);
    let mut wb = Camellia128Whitebox::new();
    let model = flow
        .train_hierarchical(&mut wb, &[training])
        .expect("training succeeds");
    assert_eq!(model.domains.len(), 4); // core, key_sched, fl_unit, f_unit
    assert_eq!(model.models.len(), model.domains.len());

    let workload = testbench::camellia_long_ts(9, 3_000);
    let trace = behavioural_trace(&mut wb, &workload).expect("workload fits");
    let outcome = flow.estimate_hierarchical(&model, &trace);
    let golden = flow
        .reference_power(&wb, &workload)
        .expect("capture succeeds");
    let mre = psmgen::stats::mean_relative_error(outcome.estimate.as_slice(), golden.as_slice())
        .expect("non-empty");
    assert!(mre < 0.25, "hierarchical MRE {mre}");
}

#[test]
fn smoothed_estimation_runs_and_walker_stays_sharper() {
    use psmgen::hmm::HmmSimulator;
    use psmgen::ips::behavioural_trace;
    use psmgen::psm::classify_trace;
    let flow = flow_for("AES");
    let mut ip = ip_by_name("AES").expect("benchmark exists");
    let training = testbench::short_ts("AES", 1).expect("benchmark exists");
    let model = flow
        .train(ip.as_mut(), &[training])
        .expect("training succeeds");
    let workload = testbench::aes_long_ts(3, 3_000);
    let trace = behavioural_trace(ip.as_mut(), &workload).expect("workload fits");
    let obs = classify_trace(&model.table, &trace);
    let hamming = trace.input_hamming_series();
    let sim = HmmSimulator::new(&model.psm, model.hmm.clone());
    let causal = sim.run(&obs, &hamming);
    let smoothed = sim.run_smoothed(&obs, &hamming);
    let golden = flow
        .reference_power(ip.as_ref(), &workload)
        .expect("capture succeeds");
    let mre = |est: &psmgen::trace::PowerTrace| {
        psmgen::stats::mean_relative_error(est.as_slice(), golden.as_slice()).expect("non-empty")
    };
    // The posterior average blurs states that share observables; the
    // assertion-driven walker stays sharper (a measured finding, see the
    // `run_smoothed` docs). Both must remain sane estimators.
    assert!(mre(&smoothed) < 0.5, "smoothed {}", mre(&smoothed));
    assert!(
        mre(&causal.estimate) <= mre(&smoothed),
        "walker {} should not lose to the posterior average {} here",
        mre(&causal.estimate),
        mre(&smoothed)
    );
}
