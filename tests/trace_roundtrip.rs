//! Trace I/O round-trips on real benchmark traffic.

use psmgen::ips::{behavioural_trace, ip_by_name, testbench};
use psmgen::trace::{
    read_functional_csv, read_power_csv, write_functional_csv, write_power_csv, write_vcd,
};

#[test]
fn functional_csv_round_trips_ram_traffic() {
    let mut ip = ip_by_name("RAM").expect("benchmark exists");
    let stim = testbench::ram_long_ts(3, 800);
    let trace = behavioural_trace(ip.as_mut(), &stim).expect("stimulus fits");

    let mut csv = Vec::new();
    write_functional_csv(&trace, &mut csv).expect("in-memory write");
    let back = read_functional_csv(trace.signals().clone(), csv.as_slice()).expect("parses back");
    assert_eq!(back, trace);
}

#[test]
fn functional_csv_rejects_wrong_interface() {
    let mut ip = ip_by_name("RAM").expect("benchmark exists");
    let stim = testbench::ram_short_ts(3);
    let trace = behavioural_trace(ip.as_mut(), &stim).expect("stimulus fits");
    let mut csv = Vec::new();
    write_functional_csv(&trace, &mut csv).expect("in-memory write");

    let mut other = ip_by_name("MultSum").expect("benchmark exists");
    let r = read_functional_csv(other.as_mut().signals(), csv.as_slice());
    assert!(r.is_err(), "MultSum's interface must not parse a RAM trace");
}

#[test]
fn power_csv_round_trips_golden_trace() {
    use psmgen::flow::{IpPreset, PsmFlow};
    let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    let ip = ip_by_name("MultSum").expect("benchmark exists");
    let stim = testbench::multsum_long_ts(9, 500);
    let golden = flow
        .reference_power(ip.as_ref(), &stim)
        .expect("capture succeeds");
    let mut csv = Vec::new();
    write_power_csv(&golden, &mut csv).expect("in-memory write");
    let back = read_power_csv(csv.as_slice()).expect("parses back");
    assert_eq!(back, golden);
}

#[test]
fn vcd_export_produces_loadable_structure() {
    let mut ip = ip_by_name("AES").expect("benchmark exists");
    let stim = testbench::aes_long_ts(5, 300);
    let trace = behavioural_trace(ip.as_mut(), &stim).expect("stimulus fits");
    let mut vcd = Vec::new();
    write_vcd("aes128", &trace, &mut vcd).expect("in-memory write");
    let text = String::from_utf8(vcd).expect("vcd is utf-8");
    assert!(text.contains("$scope module aes128 $end"));
    // Every interface signal is declared.
    for (_, decl) in trace.signals().iter() {
        assert!(
            text.contains(&format!(" {} $end", decl.name())),
            "{} missing from VCD",
            decl.name()
        );
    }
    // Timestamps cover the trace.
    assert!(text.contains(&format!("#{}", trace.len() - 1)));
}
