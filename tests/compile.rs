//! Bit-identity of the compiled serving runtime (`psm-compile`) against
//! the interpreted walker (`psm-hmm`).
//!
//! The compiled engine is only admissible because it changes *nothing*
//! observable: every estimate bit, wrong-state-prediction count and
//! unknown-instant count must equal the interpreted result — one-shot,
//! under any chunking of the same inputs, and for models the compiler
//! was never tuned on. These tests pin that contract on all four paper
//! benchmarks, on randomised PRNG-built models (including unknown and
//! out-of-range observations), and through the `psmgen-artifact/v3`
//! round trip into the serving registry.

use psm_prng::Prng;
use psmgen::compile::CompiledModel;
use psmgen::flow::{IpPreset, PsmFlow, TrainedModel};
use psmgen::hmm::{build_hmm, HmmOutcome, HmmSimulator};
use psmgen::ips::{behavioural_trace, ip_by_name, testbench};
use psmgen::mining::{PropositionId, PropositionTrace};
use psmgen::psm::{classify_trace, generate_psm, join, MergePolicy};
use psmgen::serve::{Engine, Registry};
use psmgen::trace::{FunctionalTrace, PowerTrace};

const BENCHES: [&str; 4] = ["RAM", "MultSum", "AES", "Camellia"];

/// Trains one paper benchmark and generates a fresh estimation workload.
fn trained(name: &str, cycles: usize) -> (TrainedModel, FunctionalTrace) {
    let preset = IpPreset::from_name(name).expect("paper benchmark");
    let flow = PsmFlow::builder().preset(preset).build();
    let mut ip = ip_by_name(name).expect("paper benchmark");
    let model = flow
        .train(
            ip.as_mut(),
            &[testbench::short_ts(name, 1).expect("paper benchmark")],
        )
        .expect("training succeeds");
    let stim = testbench::long_ts(name, 5, cycles).expect("paper benchmark");
    let workload = behavioural_trace(ip.as_mut(), &stim).expect("workload fits");
    (model, workload)
}

fn assert_bit_identical(fast: &HmmOutcome, interp: &HmmOutcome, label: &str) {
    assert_eq!(
        fast.wrong_state_predictions, interp.wrong_state_predictions,
        "{label}: wrong-state counters diverge"
    );
    assert_eq!(
        fast.unknown_instants, interp.unknown_instants,
        "{label}: unknown counters diverge"
    );
    assert_eq!(fast.estimate.len(), interp.estimate.len(), "{label}");
    for (t, (a, b)) in fast.estimate.iter().zip(interp.estimate.iter()).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: instant {t} diverges");
    }
}

#[test]
fn compiled_forward_is_bit_identical_on_all_paper_benches() {
    for name in BENCHES {
        let (model, workload) = trained(name, 2_000);
        let compiled = model.compile().expect("model compiles");
        let obs = classify_trace(&model.table, &workload);
        let hamming = workload.input_hamming_series();
        let interp = HmmSimulator::new(&model.psm, model.hmm.clone()).run(&obs, &hamming);
        let fast = compiled.run(&obs, &hamming);
        assert!(!interp.estimate.is_empty(), "{name}: empty workload");
        assert_bit_identical(&fast, &interp, name);
    }
}

#[test]
fn streamed_chunk_resume_is_bit_identical_for_every_window() {
    for name in BENCHES {
        let (model, workload) = trained(name, 1_000);
        let compiled = model.compile().expect("model compiles");
        let obs = classify_trace(&model.table, &workload);
        let hamming = workload.input_hamming_series();
        let oneshot = compiled.run(&obs, &hamming);
        for window in [1usize, 3, 7, 64, obs.len()] {
            let mut state = compiled.begin();
            let mut estimate = PowerTrace::with_capacity(obs.len());
            let mut start = 0;
            while start < obs.len() {
                let end = (start + window).min(obs.len());
                compiled.resume(
                    &mut state,
                    &obs[start..end],
                    &hamming[start..end],
                    &mut estimate,
                );
                start = end;
            }
            assert_eq!(
                state.wrong_state_predictions(),
                oneshot.wrong_state_predictions,
                "{name} window {window}"
            );
            assert_eq!(
                state.unknown_instants(),
                oneshot.unknown_instants,
                "{name} window {window}"
            );
            assert_eq!(state.instants(), obs.len(), "{name} window {window}");
            assert_eq!(estimate.len(), oneshot.estimate.len());
            for (a, b) in estimate.iter().zip(oneshot.estimate.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{name} window {window}");
            }
        }
    }
}

#[test]
fn randomised_models_agree_between_engines() {
    let mut rng = Prng::seed_from_u64(2026);
    for case in 0..24 {
        // A random proposition sequence with enough repetition for the
        // miner-shaped XU structure to emerge, and a power profile that
        // ties distinct levels to distinct propositions.
        let symbols = rng.range_u32(2..6);
        let len = rng.range_usize(40..160);
        let mut props: Vec<u32> = Vec::with_capacity(len);
        let mut current = rng.range_u32(0..symbols);
        for _ in 0..len {
            if rng.chance(0.35) {
                current = rng.range_u32(0..symbols);
            }
            props.push(current);
        }
        let power: PowerTrace = props
            .iter()
            .map(|&p| 1.5 + 2.0 * p as f64 + rng.f64_in(0.0, 0.25))
            .collect();
        let psm = generate_psm(&PropositionTrace::from_indices(&props), &power, case)
            .expect("generation succeeds");
        let joined = join(&[psm], &MergePolicy::default());
        let hmm = build_hmm(&joined, symbols as usize);
        let compiled = CompiledModel::compile(&joined, &hmm).expect("model compiles");

        // Observation stream with unknown instants (None) and symbols
        // beyond the HMM's alphabet mixed in.
        let steps = rng.range_usize(50..300);
        let obs: Vec<Option<PropositionId>> = (0..steps)
            .map(|_| {
                if rng.chance(0.1) {
                    None
                } else if rng.chance(0.05) {
                    Some(PropositionId::from_index(symbols + rng.range_u32(0..3)))
                } else {
                    Some(PropositionId::from_index(rng.range_u32(0..symbols)))
                }
            })
            .collect();
        let hamming: Vec<u32> = (0..steps).map(|_| rng.range_u32(0..12)).collect();

        let interp = HmmSimulator::new(&joined, hmm.clone()).run(&obs, &hamming);
        let fast = compiled.run(&obs, &hamming);
        assert_bit_identical(&fast, &interp, &format!("random case {case}"));
    }
}

#[test]
fn v3_artifact_round_trip_serves_bit_identically() {
    let (model, workload) = trained("RAM", 1_500);
    let dir = std::env::temp_dir().join(format!("psmgen-compile-v3-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    model.save(dir.join("ram@1.json")).expect("v2 saves");
    model
        .save_compiled(dir.join("ram@2.json"))
        .expect("v3 saves");

    let obs = classify_trace(&model.table, &workload);
    let hamming = workload.input_hamming_series();
    let want = HmmSimulator::new(&model.psm, model.hmm.clone()).run(&obs, &hamming);

    for engine in [Engine::Compiled, Engine::Interpreted] {
        let registry = Registry::open_with_engine(&dir, engine).expect("registry opens");
        for version in [1, 2] {
            let served = registry
                .snapshot()
                .lookup("ram", Some(version))
                .expect("model served");
            assert_eq!(served.format_version, version as u32 + 1);
            let got = served.estimate(&workload);
            assert_bit_identical(&got, &want, &format!("{engine} v{version}"));
        }
    }

    // The v3 file also still loads as a training-side model: the
    // compiled section is additive, not a fork of the schema.
    let back = TrainedModel::load(dir.join("ram@2.json")).expect("v3 loads as TrainedModel");
    assert_eq!(back.to_json_string(), model.to_json_string());
    std::fs::remove_dir_all(&dir).ok();
}
