//! Bit-identity of the 64-lane batch engine against the scalar simulator.
//!
//! The batch capture path replaces the scalar one in training, so the
//! contract is absolute: for every benchmark IP and for arbitrary
//! generated netlists, `BatchSimulator` must reproduce the scalar
//! `Simulator`'s per-cycle activity, domain accounting, port samples and
//! captured traces *byte for byte* — not approximately, byte for byte,
//! because trained models and benchmark baselines are compared as
//! serialised bytes.

use psm_prng::Prng;
use psmgen::ips::{ip_by_name, testbench};
use psmgen::rtl::{
    capture_traces_by_domain, capture_traces_by_domain_batch, BatchSimulator, Netlist,
    NetlistBuilder, PowerModel, Simulator, Stimulus,
};
use psmgen::trace::Bits;

/// Steps a batch simulator and one scalar simulator per lane in lockstep,
/// comparing activity, domain accounting and port samples each cycle.
fn assert_lockstep_identical(name: &str, netlist: &Netlist, stimuli: &[Stimulus]) {
    let lanes = stimuli.len();
    let mut batch = BatchSimulator::new(netlist, lanes).expect("netlist is acyclic");
    let mut scalars: Vec<Simulator> = (0..lanes)
        .map(|_| Simulator::new(netlist).expect("netlist is acyclic"))
        .collect();
    let handles = scalars[0].input_handles();
    let rows: Vec<Vec<&[Bits]>> = stimuli.iter().map(|s| s.iter().collect()).collect();
    let cycles = stimuli.iter().map(Stimulus::len).min().unwrap_or(0);
    assert!(cycles > 0, "{name}: empty stimulus");
    for t in 0..cycles {
        for (l, lane_rows) in rows.iter().enumerate() {
            for (p, (_, h)) in handles.iter().enumerate() {
                scalars[l]
                    .set_input_by_handle(*h, &lane_rows[t][p])
                    .expect("widths match");
                batch
                    .set_input(
                        l,
                        batch.port_handle(&handles[p].0).expect("port"),
                        &lane_rows[t][p],
                    )
                    .expect("widths match");
            }
        }
        batch.step();
        for (l, scalar) in scalars.iter_mut().enumerate() {
            let want = scalar.step();
            let got = batch.activities()[l];
            assert_eq!(
                got.switched_capacitance_ff.to_bits(),
                want.switched_capacitance_ff.to_bits(),
                "{name}: lane {l} switched capacitance diverges at cycle {t}"
            );
            assert_eq!(
                got.toggled_nets, want.toggled_nets,
                "{name}: lane {l} toggle count diverges at cycle {t}"
            );
            let got_dom = batch.domain_activity(l);
            let want_dom = scalar.domain_activity();
            assert_eq!(got_dom.len(), want_dom.len());
            for (d, (g, w)) in got_dom.iter().zip(want_dom).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "{name}: lane {l} domain {d} diverges at cycle {t}"
                );
            }
            assert_eq!(
                batch.sample_ports(l),
                scalar.sample_ports(),
                "{name}: lane {l} port samples diverge at cycle {t}"
            );
        }
    }
}

/// Captures the same stimuli through both engines and compares the full
/// hierarchical results (functional trace, total power, per-domain power).
fn assert_captures_identical(name: &str, netlist: &Netlist, stimuli: &[Stimulus], seed: u64) {
    let model = PowerModel::default();
    let seeds: Vec<u64> = (0..stimuli.len() as u64).map(|i| seed + i).collect();
    let batch =
        capture_traces_by_domain_batch(netlist, &model, stimuli, &seeds).expect("batch captures");
    assert_eq!(batch.len(), stimuli.len());
    for (k, got) in batch.iter().enumerate() {
        let want =
            capture_traces_by_domain(netlist, &model, &stimuli[k], seeds[k]).expect("captures");
        assert_eq!(
            got.functional, want.functional,
            "{name}: functional trace {k} diverges"
        );
        assert_eq!(got.total, want.total, "{name}: power trace {k} diverges");
        assert_eq!(got.domains, want.domains, "{name}: domain names diverge");
        assert_eq!(
            got.by_domain, want.by_domain,
            "{name}: domain power traces {k} diverge"
        );
    }
}

fn bench_stimuli(name: &str) -> Vec<Stimulus> {
    match name {
        "RAM" => vec![
            testbench::ram_short_ts(11),
            testbench::ram_long_ts(12, 400),
            testbench::ram_long_ts(13, 250),
        ],
        "MultSum" => vec![
            testbench::multsum_short_ts(11),
            testbench::multsum_long_ts(12, 400),
            testbench::multsum_long_ts(13, 250),
        ],
        "AES" => vec![
            testbench::aes_long_ts(11, 300),
            testbench::aes_long_ts(12, 200),
        ],
        "Camellia" => vec![
            testbench::camellia_long_ts(11, 300),
            testbench::camellia_long_ts(12, 200),
        ],
        other => panic!("unknown bench {other}"),
    }
}

#[test]
fn batch_engine_matches_scalar_on_all_paper_benches() {
    for name in ["RAM", "MultSum", "AES", "Camellia"] {
        let ip = ip_by_name(name).expect("benchmark exists");
        let netlist = ip.netlist().expect("netlist builds");
        let stimuli = bench_stimuli(name);
        assert_lockstep_identical(name, &netlist, &stimuli);
        assert_captures_identical(
            name,
            &netlist,
            &stimuli,
            0x9E37 + netlist.net_count() as u64,
        );
    }
}

/// A randomized-but-valid netlist: two clock domains, registers, a feedback
/// accumulator, a random DAG of word ops, an S-box LUT and an SRAM macro —
/// every cell kind and accounting path the engines implement.
fn random_netlist(seed: u64) -> Netlist {
    let mut rng = Prng::seed_from_u64(seed);
    let mut b = NetlistBuilder::new("fuzz");
    let in_a = b.input("a", 8);
    let in_b = b.input("b", 8);
    let ctl = b.input("ctl", 4);
    let cmd = b.input("cmd", 3);

    let r0 = b.register("r0", 8);
    let r1 = b.register("r1", 8);
    let mut words = vec![in_a.clone(), in_b.clone(), r0.q(), r1.q()];

    for k in 0..10 {
        if rng.chance(0.3) {
            // Hop between domains so gate/dff/mem attribution is exercised.
            b.domain(if rng.chance(0.5) { "unit_b" } else { "core" });
        }
        let x = words[rng.range_usize(0..words.len())].clone();
        let y = words[rng.range_usize(0..words.len())].clone();
        let w = match rng.range_usize(0..6) {
            0 => b.and_word(&x, &y),
            1 => b.or_word(&x, &y),
            2 => b.xor_word(&x, &y),
            3 => b.not_word(&x),
            4 => b.mux_word(ctl.bit(k % 4), &x, &y),
            _ => b.add(&x, &y).sum,
        };
        words.push(w);
    }

    // LUT macro path: a deterministic pseudo S-box.
    let mut table = [0u8; 256];
    for (i, cell) in table.iter_mut().enumerate() {
        *cell = ((i * 31 + 7) ^ (i >> 3)) as u8;
    }
    let sb_in = words[rng.range_usize(0..words.len())].clone();
    let sb = b.sbox8(&sb_in, &table);
    words.push(sb);

    // SRAM macro path: 16 words × 8 bits, command bits from `cmd`.
    b.domain("unit_b");
    let wdata = words[rng.range_usize(0..words.len())].clone();
    let rdata = b.memory(&ctl, &wdata, cmd.bit(0), cmd.bit(1), cmd.bit(2));
    b.domain("core");
    words.push(rdata);

    // Close the register loops through the random DAG.
    let n0 = words[rng.range_usize(0..words.len())].clone();
    b.connect_register(&r0, &n0);
    let fb = b.add(&r1.q(), &words[rng.range_usize(0..words.len())].clone());
    b.connect_register_en(&r1, ctl.bit(3), &fb.sum);

    let out = words[words.len() - 1].clone();
    b.output("y", &out);
    let sum = b.xor_word(&r0.q(), &r1.q());
    b.output("z", &sum);
    b.finish().expect("random netlist is structurally valid")
}

fn random_stimulus(rng: &mut Prng, cycles: usize) -> Stimulus {
    let mut stim = Stimulus::new();
    for _ in 0..cycles {
        stim.push_cycle(vec![
            Bits::from_u64(rng.range_u64(0..256), 8),
            Bits::from_u64(rng.range_u64(0..256), 8),
            Bits::from_u64(rng.range_u64(0..16), 4),
            Bits::from_u64(rng.range_u64(0..8), 3),
        ]);
    }
    stim
}

#[test]
fn batch_engine_matches_scalar_on_randomized_netlists() {
    for netlist_seed in [1u64, 2, 3, 4, 5] {
        let netlist = random_netlist(netlist_seed);
        let mut rng = Prng::seed_from_u64(0xFACE ^ netlist_seed);
        let stimuli: Vec<Stimulus> = (0..6).map(|_| random_stimulus(&mut rng, 120)).collect();
        let name = format!("fuzz#{netlist_seed}");
        assert_lockstep_identical(&name, &netlist, &stimuli);
        assert_captures_identical(&name, &netlist, &stimuli, netlist_seed * 1000);
    }
}

#[test]
fn batch_capture_is_group_invariant_beyond_64_lanes() {
    // 70 stimuli force two lane groups; every result must still equal its
    // scalar twin, and slicing the stimulus list differently (one call per
    // half) must produce the same bytes as one chunked call.
    let netlist = random_netlist(9);
    let mut rng = Prng::seed_from_u64(77);
    let stimuli: Vec<Stimulus> = (0..70).map(|_| random_stimulus(&mut rng, 30)).collect();
    let seeds: Vec<u64> = (0..70).collect();
    let model = PowerModel::default();
    let whole =
        capture_traces_by_domain_batch(&netlist, &model, &stimuli, &seeds).expect("captures");
    assert_eq!(whole.len(), 70);
    let (left, right) = stimuli.split_at(35);
    let mut split =
        capture_traces_by_domain_batch(&netlist, &model, left, &seeds[..35]).expect("captures");
    split.extend(
        capture_traces_by_domain_batch(&netlist, &model, right, &seeds[35..]).expect("captures"),
    );
    for (k, (a, b)) in whole.iter().zip(&split).enumerate() {
        assert_eq!(a.functional, b.functional, "stimulus {k}");
        assert_eq!(a.total, b.total, "stimulus {k}");
        assert_eq!(a.by_domain, b.by_domain, "stimulus {k}");
    }
    let scalar = capture_traces_by_domain(&netlist, &model, &stimuli[64], seeds[64])
        .expect("scalar captures");
    assert_eq!(whole[64].total, scalar.total, "second-group lane diverges");
}
