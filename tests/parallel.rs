//! The parallel engine's contracts: worker count never changes the trained
//! model (byte-identical serialisation), and telemetry reports cover every
//! pipeline stage with sane, monotone spans.

use psmgen::flow::{IpPreset, Parallelism, PsmFlow};
use psmgen::ips::{testbench, MultSum, Ram1k};
use psmgen::rtl::Stimulus;
use psmgen::telemetry::Stage;

fn multsum_flow(parallelism: Parallelism) -> PsmFlow {
    PsmFlow::builder()
        .preset(IpPreset::MultSum)
        .parallelism(parallelism)
        .build()
}

fn training_stimuli() -> Vec<Stimulus> {
    vec![
        testbench::multsum_short_ts(1),
        testbench::multsum_long_ts(2, 1_200),
        testbench::multsum_long_ts(3, 900),
        testbench::multsum_long_ts(4, 600),
    ]
}

#[test]
fn parallel_training_serialises_byte_identically() {
    let stimuli = training_stimuli();
    assert!(
        stimuli.len() >= 3,
        "the contract is about multi-stimulus runs"
    );
    let baseline = multsum_flow(Parallelism::Sequential)
        .train(&mut MultSum::new(), &stimuli)
        .expect("sequential training succeeds")
        .to_json_string();
    for parallelism in [
        Parallelism::Workers(2),
        Parallelism::Workers(3),
        Parallelism::Workers(4),
        Parallelism::Workers(8),
        Parallelism::Auto,
    ] {
        let json = multsum_flow(parallelism)
            .train(&mut MultSum::new(), &stimuli)
            .expect("parallel training succeeds")
            .to_json_string();
        assert_eq!(json, baseline, "{parallelism:?} diverged from sequential");
    }
}

#[test]
fn hierarchical_training_is_worker_invariant() {
    // The hierarchical path shares the lane-grouped batch capture, so its
    // per-domain models must also be byte-identical at any worker count.
    let stimuli = training_stimuli();
    let baseline = multsum_flow(Parallelism::Sequential)
        .train_hierarchical(&mut MultSum::new(), &stimuli)
        .expect("sequential hierarchical training succeeds");
    for parallelism in [Parallelism::Workers(2), Parallelism::Workers(4)] {
        let model = multsum_flow(parallelism)
            .train_hierarchical(&mut MultSum::new(), &stimuli)
            .expect("parallel hierarchical training succeeds");
        assert_eq!(model.domains, baseline.domains);
        assert_eq!(model.models.len(), baseline.models.len());
        for (got, want) in model.models.iter().zip(&baseline.models) {
            assert_eq!(
                got.to_json_string(),
                want.to_json_string(),
                "{parallelism:?} diverged from sequential"
            );
        }
    }
}

#[test]
fn batch_apis_are_deterministic_across_worker_counts() {
    let jobs = vec![
        vec![testbench::multsum_short_ts(1)],
        vec![testbench::multsum_long_ts(2, 800)],
        vec![testbench::multsum_short_ts(3)],
    ];
    let lone: Vec<String> = jobs
        .iter()
        .map(|job| {
            multsum_flow(Parallelism::Sequential)
                .train(&mut MultSum::new(), job)
                .expect("trains")
                .to_json_string()
        })
        .collect();
    let batch = multsum_flow(Parallelism::Workers(3))
        .train_batch(|| Box::new(MultSum::new()), &jobs)
        .expect("batch trains");
    assert_eq!(batch.len(), jobs.len());
    for (model, expected) in batch.iter().zip(&lone) {
        assert_eq!(&model.to_json_string(), expected);
    }
}

#[test]
fn training_telemetry_covers_every_stage_with_monotone_spans() {
    let flow = PsmFlow::builder()
        .preset(IpPreset::Ram1k)
        .parallelism(Parallelism::Workers(2))
        .build();
    let stimuli = vec![
        testbench::ram_short_ts(1),
        testbench::ram_long_ts(2, 1_000),
        testbench::ram_long_ts(3, 800),
    ];
    let (model, report) = flow
        .train_with_telemetry(&mut Ram1k::new(), &stimuli)
        .expect("training succeeds");

    // Every training stage ran and accumulated non-zero time.
    assert!(
        report.covers(&Stage::TRAINING),
        "missing stages:\n{}",
        report.text()
    );
    for stage in Stage::TRAINING {
        assert!(
            report.stage_total(stage) > std::time::Duration::ZERO,
            "{stage} has a zero total"
        );
    }
    // Capture fans out one span per lane group; the group count depends on
    // the host's core count (see `lane_partition`), but is always within
    // [1, stimuli] for a ≤64-stimulus run.
    let capture_spans = report.stage_spans(Stage::Capture).count();
    assert!(
        (1..=stimuli.len()).contains(&capture_spans),
        "capture spans {capture_spans} outside 1..={}",
        stimuli.len()
    );
    assert_eq!(report.stage_spans(Stage::Mining).count(), 1);
    assert!(report.stage_spans(Stage::Generation).count() >= stimuli.len());
    // Spans are monotone: sorted by start, each with positive duration,
    // none starting after the report's total.
    let mut last_start = std::time::Duration::ZERO;
    for span in &report.spans {
        assert!(span.start >= last_start, "spans out of order");
        assert!(span.duration > std::time::Duration::ZERO);
        assert!(span.start <= report.total);
        last_start = span.start;
    }
    // Deterministic counters mirror the model's stats.
    assert_eq!(report.counters.states_merged, model.stats.states_merged);
    assert_eq!(
        report.counters.calibrated_states,
        model.stats.calibrated_states
    );

    // The textual and JSON reports mention every stage by name.
    let text = report.text();
    let json = report.to_json().render();
    for stage in Stage::TRAINING {
        assert!(
            text.contains(stage.name()),
            "{stage} missing from text report"
        );
        assert!(
            json.contains(stage.name()),
            "{stage} missing from JSON report"
        );
    }
}

#[test]
fn estimation_telemetry_records_the_estimation_stage() {
    let flow = multsum_flow(Parallelism::Sequential);
    let model = flow
        .train(&mut MultSum::new(), &[testbench::multsum_short_ts(1)])
        .expect("trains");
    let workload = testbench::multsum_long_ts(7, 1_000);
    let (estimate, report) = flow
        .estimate_with_telemetry(&model, &mut MultSum::new(), &workload)
        .expect("estimates");
    assert!(report.covers(&[Stage::Estimation, Stage::Capture]));
    assert!(report.stage_total(Stage::Estimation) > std::time::Duration::ZERO);
    assert_eq!(
        report.counters.wrong_state_predictions,
        estimate.outcome.wrong_state_predictions
    );
    assert_eq!(
        report.counters.sync_losses,
        estimate.outcome.unknown_instants
    );
}

#[test]
fn estimate_batch_handles_many_workloads() {
    let flow = multsum_flow(Parallelism::Auto);
    let model = flow
        .train(&mut MultSum::new(), &[testbench::multsum_short_ts(1)])
        .expect("trains");
    let workloads: Vec<Stimulus> = (0..5)
        .map(|k| testbench::multsum_long_ts(20 + k, 400))
        .collect();
    let estimates = flow
        .estimate_batch(&model, || Box::new(MultSum::new()), &workloads)
        .expect("batch estimates");
    assert_eq!(estimates.len(), workloads.len());
    for (est, workload) in estimates.iter().zip(&workloads) {
        assert_eq!(est.outcome.estimate.len(), workload.len());
        assert_eq!(est.reference.len(), workload.len());
    }
}
