//! Bounded-model-checking tests: the k-cycle ternary unroller must be
//! sound against the concrete simulator, the seeded defect fixture must
//! keep reporting its refuted and vacuous assertions, every emitted
//! counterexample must replay to a real violation, and the four paper
//! benches must verify clean at the default depth.

use psm_prng::Prng;
use psmgen::analyze::{
    replay_witness, unroll_ternary, verify_model, Severity, Ternary, Verdict, VerifyConfig,
};
use psmgen::flow::{IpPreset, PsmFlow, TrainedModel};
use psmgen::ips::{ip_by_name, testbench, BENCHMARK_NAMES};
use psmgen::rtl::{parse_verilog, NetId, Netlist, Simulator};
use psmgen::trace::{
    read_functional_csv, write_functional_csv, Bits, Direction, FunctionalTrace, SignalSet,
};
use std::process::Command;

fn fixture_pair() -> (Netlist, TrainedModel) {
    let verilog = std::fs::read_to_string("examples/artifacts/verify_defect.v")
        .expect("fixture netlist is checked in");
    let netlist = parse_verilog(&verilog).expect("fixture netlist parses");
    let model = TrainedModel::load("examples/artifacts/verify_defect.json")
        .expect("fixture model is checked in");
    (netlist, model)
}

/// Soundness of the sequential unroller: on every bench netlist, under
/// random concrete stimuli, the concrete value of every net at every
/// instant is contained in the abstract one (`v ⊑ unrolled[t][net]`).
#[test]
fn unroller_contains_concrete_runs_on_all_benches() {
    let depth = 6;
    let mut prng = Prng::seed_from_u64(0xBEEF);
    for name in BENCHMARK_NAMES {
        let ip = ip_by_name(name).expect("known bench");
        let netlist = ip.netlist().expect("bench netlist builds");
        let unrolled = unroll_ternary(&netlist, depth)
            .unwrap_or_else(|| panic!("{name}: bench netlist unrolls"));
        let mut sim = Simulator::new(&netlist).expect("bench netlist simulates");
        let handles = sim.input_handles();
        for run in 0..3 {
            sim.reset();
            for (t, instant) in unrolled.iter().enumerate() {
                for (port_name, handle) in &handles {
                    let width = netlist.port(port_name).expect("input port exists").width();
                    let mut bits = Bits::zero(width);
                    for i in 0..width {
                        bits.set_bit(i, prng.chance(0.5));
                    }
                    sim.set_input_by_handle(*handle, &bits).expect("width fits");
                }
                sim.step();
                for (net, &abstracted) in instant.iter().enumerate() {
                    let concrete = Ternary::from_bool(sim.net_value(NetId(net)));
                    assert!(
                        concrete.le(abstracted),
                        "{name} run {run}: net {net} at instant {t} escapes the abstraction"
                    );
                }
            }
        }
    }
}

/// The pinned MC001/MC002 regression target: the checked-in defect pair
/// must report at least one refuted and one vacuous assertion.
#[test]
fn defect_fixture_reports_refuted_and_vacuous() {
    let (netlist, model) = fixture_pair();
    let outcome = verify_model(&netlist, &model.table, &model.psm, &VerifyConfig::default());
    let refuted = outcome
        .checks
        .iter()
        .filter(|c| c.verdict == Verdict::Refuted)
        .count();
    let vacuous = outcome
        .checks
        .iter()
        .filter(|c| c.verdict == Verdict::Vacuous)
        .count();
    assert!(
        refuted >= 1,
        "expected a refutation:\n{}",
        outcome.report.text()
    );
    assert!(vacuous >= 1, "expected vacuity:\n{}", outcome.report.text());
    let codes: Vec<&str> = outcome
        .report
        .diagnostics()
        .iter()
        .map(|d| d.code)
        .collect();
    assert!(codes.contains(&"MC001"), "{codes:?}");
    assert!(codes.contains(&"MC002"), "{codes:?}");
    // Refutations are errors, vacuity is a warning.
    assert!(outcome.report.has_errors());
}

/// Every reported counterexample must re-simulate to an actual violation,
/// and must survive the witness-CSV round trip that `psmlint
/// --witness-dir`/`--replay` uses.
#[test]
fn every_counterexample_replays_to_a_violation() {
    let (netlist, model) = fixture_pair();
    let outcome = verify_model(&netlist, &model.table, &model.psm, &VerifyConfig::default());
    let mut seen = 0;
    for check in &outcome.checks {
        let Some(cex) = &check.counterexample else {
            continue;
        };
        seen += 1;
        // Direct replay of the in-memory stimulus.
        let replay = replay_witness(&netlist, &model.table, &model.psm, &cex.stimulus);
        assert!(
            replay.diagnostics().iter().any(|d| d.code == "MC001"),
            "counterexample of `{}` does not replay:\n{}",
            check.text,
            replay.text()
        );
        // The same stimulus through the CSV witness format.
        let mut inputs = SignalSet::new();
        for (_, decl) in netlist.signal_set().iter() {
            if decl.direction() == Direction::Input {
                inputs
                    .push(decl.name(), decl.width(), Direction::Input)
                    .expect("fresh set");
            }
        }
        let mut trace = FunctionalTrace::new(inputs.clone());
        for cycle in &cex.stimulus {
            trace.push_cycle(cycle.clone()).expect("stimulus fits");
        }
        let mut csv = Vec::new();
        write_functional_csv(&trace, &mut csv).expect("witness writes");
        let back = read_functional_csv(inputs, csv.as_slice()).expect("witness reads back");
        let stimulus: Vec<Vec<Bits>> = back.iter().map(<[Bits]>::to_vec).collect();
        let replay = replay_witness(&netlist, &model.table, &model.psm, &stimulus);
        assert!(
            replay.diagnostics().iter().any(|d| d.code == "MC001"),
            "CSV round-tripped witness of `{}` does not replay",
            check.text
        );
    }
    assert!(seen >= 1, "fixture produced no counterexamples");
}

/// Assertions mined by the standard flow must verify clean on the very
/// netlist they were mined from, for all four paper benches at the
/// default depth: no refutation, no error-severity MC finding.
#[test]
fn paper_benches_verify_clean_at_default_depth() {
    for name in BENCHMARK_NAMES {
        let preset = match name {
            "RAM" => IpPreset::Ram1k,
            "MultSum" => IpPreset::MultSum,
            "AES" => IpPreset::Aes,
            "Camellia" => IpPreset::Camellia,
            other => panic!("unknown bench {other}"),
        };
        let flow = PsmFlow::builder().preset(preset).build();
        let mut ip = ip_by_name(name).expect("known bench");
        let training = testbench::short_ts(name, 1).expect("known bench");
        let model = flow
            .train(ip.as_mut(), &[training])
            .unwrap_or_else(|e| panic!("{name}: training fails: {e}"));
        let netlist = ip.netlist().expect("bench netlist builds");
        let outcome = verify_model(&netlist, &model.table, &model.psm, &VerifyConfig::default());
        for check in &outcome.checks {
            assert_ne!(
                check.verdict,
                Verdict::Refuted,
                "{name}: `{}` refuted:\n{}",
                check.text,
                outcome.report.text()
            );
        }
        assert!(
            !outcome
                .report
                .diagnostics()
                .iter()
                .any(|d| d.severity == Severity::Error),
            "{name}: verification errors:\n{}",
            outcome.report.text()
        );
    }
}

/// The strictness-gated flow hook: training the defect model's behaviour
/// is fine, but `verify.depth = 0` must disable the pass entirely (the
/// validate stage emits no MC diagnostics).
#[test]
fn flow_exposes_and_disables_the_verify_knob() {
    assert_eq!(PsmFlow::default().verify, VerifyConfig::default());
    assert!(PsmFlow::default().verify.depth > 0, "hook is on by default");
    let flow = PsmFlow::builder()
        .verify(VerifyConfig {
            depth: 0,
            ..VerifyConfig::default()
        })
        .build();
    assert_eq!(flow.verify.depth, 0);
}

/// `--baseline` pointing at a missing or unparsable file must exit with
/// the dedicated status 3 and a clear message, for both failure shapes.
#[test]
fn psmlint_bad_baseline_exits_3() {
    let missing = Command::new(env!("CARGO_BIN_EXE_psmlint"))
        .args([
            "--baseline",
            "definitely/not/a/file.json",
            "examples/artifacts/verify_defect.v",
        ])
        .output()
        .expect("psmlint runs");
    assert_eq!(missing.status.code(), Some(3));
    let stderr = String::from_utf8(missing.stderr).expect("utf-8");
    assert!(stderr.contains("--baseline is unusable"), "{stderr}");

    let garbage = std::env::temp_dir().join(format!("psmgen-verify-{}.json", std::process::id()));
    std::fs::write(&garbage, "not json at all").unwrap();
    let unparsable = Command::new(env!("CARGO_BIN_EXE_psmlint"))
        .args([
            "--baseline",
            garbage.to_str().unwrap(),
            "examples/artifacts/verify_defect.v",
        ])
        .output()
        .expect("psmlint runs");
    std::fs::remove_file(&garbage).ok();
    assert_eq!(unparsable.status.code(), Some(3));
}

/// End-to-end CLI pass over the checked-in defect pair: `--verify` must
/// surface MC001 and MC002, a saved witness must `--replay` to exit 1.
#[test]
fn psmlint_verify_and_replay_cli_round_trip() {
    let dir = std::env::temp_dir().join(format!("psmgen-witness-{}", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_psmlint"))
        .args([
            "--quiet",
            "--verify",
            "--witness-dir",
            dir.to_str().unwrap(),
            "examples/artifacts/verify_defect.v",
            "examples/artifacts/verify_defect.json",
        ])
        .output()
        .expect("psmlint runs");
    let text = String::from_utf8(out.stdout).expect("utf-8");
    assert_eq!(out.status.code(), Some(1), "{text}");
    assert!(text.contains("MC001"), "{text}");
    assert!(text.contains("MC002"), "{text}");

    let witness = dir.join("witness_001.csv");
    assert!(witness.exists(), "witness CSV emitted");
    let replay = Command::new(env!("CARGO_BIN_EXE_psmlint"))
        .args([
            "--quiet",
            "--replay",
            witness.to_str().unwrap(),
            "examples/artifacts/verify_defect.v",
            "examples/artifacts/verify_defect.json",
        ])
        .output()
        .expect("psmlint runs");
    let text = String::from_utf8(replay.stdout).expect("utf-8");
    std::fs::remove_dir_all(&dir).ok();
    assert_eq!(replay.status.code(), Some(1), "{text}");
    assert!(text.contains("replay confirms the violation"), "{text}");
}
