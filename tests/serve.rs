//! End-to-end contracts of the `psmd` estimation service: wire-level
//! estimates are byte-identical to in-process `PsmFlow` estimation,
//! backpressure is explicit (`BUSY`), registry hot-reload is atomic
//! towards in-flight requests, and shutdown drains before exiting.

use psmgen::flow::{IpPreset, PsmFlow, TrainedModel};
use psmgen::ips::{behavioural_trace, testbench, MultSum};
use psmgen::serve::{Client, ClientError, PoolConfig, Server, ServerConfig};
use psmgen::trace::FunctionalTrace;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_registry(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psmgen-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Trains a MultSum model from `stimuli_seeds` and saves it as a
/// registry artifact.
fn train_into(dir: &Path, file: &str, stimuli_seeds: &[u64]) -> TrainedModel {
    let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    let stimuli: Vec<_> = stimuli_seeds
        .iter()
        .map(|&seed| testbench::multsum_short_ts(seed))
        .collect();
    let model = flow
        .train(&mut MultSum::new(), &stimuli)
        .expect("training succeeds");
    model.save(dir.join(file)).expect("model saves");
    model
}

/// A fresh MultSum workload trace (never part of training).
fn workload(seed: u64, cycles: usize) -> FunctionalTrace {
    let stimulus = testbench::multsum_long_ts(seed, cycles);
    behavioural_trace(&mut MultSum::new(), &stimulus).expect("behavioural trace")
}

#[test]
fn eight_parallel_clients_get_byte_identical_estimates() {
    let dir = temp_registry("equivalence");
    train_into(&dir, "multsum@1.json", &[1]);

    // The reference is the facade estimating against the *loaded* model —
    // the same artifact bytes the daemon serves.
    let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    let loaded = TrainedModel::load(dir.join("multsum@1.json")).unwrap();

    let running = Server::bind(ServerConfig::new(&dir)).unwrap().spawn();
    let addr = running.addr();

    let clients: Vec<_> = (0..8)
        .map(|i| {
            let trace = workload(100 + i, 400 + 25 * i as usize);
            let expected = flow.estimate_from_trace(&loaded, &trace);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let reply = client.estimate("multsum", None, &trace).expect("estimate");
                let expected_bits: Vec<u64> = expected.estimate.iter().map(f64::to_bits).collect();
                let got_bits: Vec<u64> = reply.estimate.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    got_bits, expected_bits,
                    "client {i}: daemon estimate must be byte-identical to PsmFlow"
                );
                assert_eq!(
                    reply.wrong_state_predictions,
                    expected.wrong_state_predictions
                );
                assert_eq!(reply.unknown_instants, expected.unknown_instants);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    Client::connect(addr).unwrap().shutdown().unwrap();
    let report = running.join().expect("clean exit");
    assert_eq!(report.named_counter("serve.op.estimate"), 8);
    assert!(report.named_counter("serve.connections") >= 8);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_queue_answers_busy_without_losing_accepted_work() {
    let dir = temp_registry("busy");
    train_into(&dir, "multsum@1.json", &[1]);
    let mut cfg = ServerConfig::new(&dir);
    // One worker that stalls long enough for the queue to be observably
    // full: one request in flight, one queued, the third must bounce.
    cfg.pool = PoolConfig {
        workers: 1,
        queue_capacity: 1,
        max_batch: 1,
        stall: Duration::from_millis(600),
    };
    let running = Server::bind(cfg).unwrap().spawn();
    let addr = running.addr();

    let spawn_estimate = |seed: u64| {
        std::thread::spawn(move || {
            let trace = workload(seed, 300);
            Client::connect(addr)
                .unwrap()
                .estimate("multsum", None, &trace)
        })
    };
    let a = spawn_estimate(1);
    std::thread::sleep(Duration::from_millis(200));
    let b = spawn_estimate(2);
    std::thread::sleep(Duration::from_millis(150));
    let trace = workload(3, 300);
    let mut c = Client::connect(addr).unwrap();
    let err = c.estimate("multsum", None, &trace).unwrap_err();
    assert!(matches!(err, ClientError::Busy), "expected BUSY, got {err}");

    // Backpressure never cancels accepted work.
    a.join().unwrap().expect("first request completes");
    b.join().unwrap().expect("queued request completes");

    c.shutdown().unwrap();
    let report = running.join().expect("clean exit");
    assert!(report.named_counter("serve.busy") >= 1);
    assert_eq!(report.named_counter("serve.op.estimate"), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_reload_is_atomic_towards_a_live_request_stream() {
    let dir = temp_registry("reload");
    train_into(&dir, "multsum@1.json", &[1]);
    let running = Server::bind(ServerConfig::new(&dir)).unwrap().spawn();
    let addr = running.addr();

    // A client hammers estimates while the registry is swapped under it.
    let stop = Arc::new(AtomicBool::new(false));
    let stream = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let trace = workload(7, 200);
            let mut versions = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                let reply = client
                    .estimate("multsum", None, &trace)
                    .expect("no estimate may fail across the reload");
                assert_eq!(reply.estimate.len(), trace.len());
                versions.push(reply.version);
            }
            versions
        })
    };

    std::thread::sleep(Duration::from_millis(150));
    // v2 is a genuinely different model (more training data).
    train_into(&dir, "multsum@2.json", &[1, 2]);
    let mut admin = Client::connect(addr).unwrap();
    let models = admin.reload().expect("reload succeeds");
    assert_eq!(models.len(), 2);
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::SeqCst);

    let versions = stream.join().expect("request stream");
    assert!(!versions.is_empty());
    assert_eq!(*versions.first().unwrap(), 1, "stream started on v1");
    assert_eq!(*versions.last().unwrap(), 2, "stream ended on v2");
    // Monotone flip: once v2 serves, v1 never reappears.
    let first_v2 = versions.iter().position(|&v| v == 2).expect("v2 served");
    assert!(versions[first_v2..].iter().all(|&v| v == 2));

    admin.shutdown().unwrap();
    running.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_drains_queued_estimates_and_flushes_stats() {
    let dir = temp_registry("drain");
    train_into(&dir, "multsum@1.json", &[1]);
    let mut cfg = ServerConfig::new(&dir);
    cfg.pool = PoolConfig {
        workers: 1,
        queue_capacity: 16,
        max_batch: 8,
        stall: Duration::from_millis(400),
    };
    let running = Server::bind(cfg).unwrap().spawn();
    let addr = running.addr();

    // Three estimates pile up behind the stalled worker…
    let pending: Vec<_> = (0..3)
        .map(|seed| {
            std::thread::spawn(move || {
                let trace = workload(seed, 250);
                let reply = Client::connect(addr)
                    .unwrap()
                    .estimate("multsum", None, &trace)
                    .expect("accepted estimate must be answered before exit");
                (reply.estimate.len(), trace.len())
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    // …then the daemon is told to shut down while they are in flight.
    Client::connect(addr).unwrap().shutdown().unwrap();

    for p in pending {
        let (got, want) = p.join().expect("pending client");
        assert_eq!(got, want, "drained estimate is complete, not truncated");
    }
    let report = running.join().expect("exit 0 equivalent: a clean Ok join");
    assert_eq!(report.named_counter("serve.op.estimate"), 3);
    assert_eq!(report.named_counter("serve.op.shutdown"), 1);
    assert!(
        report.gauge("serve.queue_depth").is_some(),
        "gauges flushed"
    );
    std::fs::remove_dir_all(&dir).ok();
}
