//! End-to-end contracts of the `psmd` estimation service: wire-level
//! estimates (JSON, binary and streamed) are byte-identical to
//! in-process `PsmFlow` estimation, v1 clients interoperate with the v2
//! daemon, malformed binary frames get structured errors, backpressure
//! is explicit (`BUSY`), registry hot-reload is atomic towards
//! in-flight requests, slow writers cannot stall other connections, and
//! shutdown drains before exiting.

use psmgen::flow::{IpPreset, PsmFlow, TrainedModel};
use psmgen::ips::{behavioural_trace, testbench, MultSum};
use psmgen::serve::protocol::{self, Frame, Opcode, Status};
use psmgen::serve::{Client, ClientError, IoMode, PoolConfig, Server, ServerConfig};
use psmgen::trace::FunctionalTrace;
use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_registry(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psmgen-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Trains a MultSum model from `stimuli_seeds` and saves it as a
/// registry artifact.
fn train_into(dir: &Path, file: &str, stimuli_seeds: &[u64]) -> TrainedModel {
    let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    let stimuli: Vec<_> = stimuli_seeds
        .iter()
        .map(|&seed| testbench::multsum_short_ts(seed))
        .collect();
    let model = flow
        .train(&mut MultSum::new(), &stimuli)
        .expect("training succeeds");
    model.save(dir.join(file)).expect("model saves");
    model
}

/// A fresh MultSum workload trace (never part of training).
fn workload(seed: u64, cycles: usize) -> FunctionalTrace {
    let stimulus = testbench::multsum_long_ts(seed, cycles);
    behavioural_trace(&mut MultSum::new(), &stimulus).expect("behavioural trace")
}

#[test]
fn eight_parallel_clients_get_byte_identical_estimates() {
    let dir = temp_registry("equivalence");
    train_into(&dir, "multsum@1.json", &[1]);

    // The reference is the facade estimating against the *loaded* model —
    // the same artifact bytes the daemon serves.
    let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    let loaded = TrainedModel::load(dir.join("multsum@1.json")).unwrap();

    let running = Server::bind(ServerConfig::new(&dir)).unwrap().spawn();
    let addr = running.addr();

    let clients: Vec<_> = (0..8)
        .map(|i| {
            let trace = workload(100 + i, 400 + 25 * i as usize);
            let expected = flow.estimate_from_trace(&loaded, &trace);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let reply = client
                    .estimate_json("multsum", None, &trace)
                    .expect("estimate");
                let expected_bits: Vec<u64> = expected.estimate.iter().map(f64::to_bits).collect();
                let got_bits: Vec<u64> = reply.estimate.iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    got_bits, expected_bits,
                    "client {i}: daemon estimate must be byte-identical to PsmFlow"
                );
                assert_eq!(
                    reply.wrong_state_predictions,
                    expected.wrong_state_predictions
                );
                assert_eq!(reply.unknown_instants, expected.unknown_instants);
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    Client::connect(addr).unwrap().shutdown().unwrap();
    let report = running.join().expect("clean exit");
    assert_eq!(report.named_counter("serve.op.estimate"), 8);
    assert!(report.named_counter("serve.connections") >= 8);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn full_queue_answers_busy_without_losing_accepted_work() {
    let dir = temp_registry("busy");
    train_into(&dir, "multsum@1.json", &[1]);
    let mut cfg = ServerConfig::new(&dir);
    // One worker that stalls long enough for the queue to be observably
    // full: one request in flight, one queued, the third must bounce.
    cfg.pool = PoolConfig {
        workers: 1,
        queue_capacity: 1,
        max_batch: 1,
        stall: Duration::from_millis(600),
    };
    let running = Server::bind(cfg).unwrap().spawn();
    let addr = running.addr();

    let spawn_estimate = |seed: u64| {
        std::thread::spawn(move || {
            let trace = workload(seed, 300);
            Client::connect(addr)
                .unwrap()
                .estimate_json("multsum", None, &trace)
        })
    };
    let a = spawn_estimate(1);
    std::thread::sleep(Duration::from_millis(200));
    let b = spawn_estimate(2);
    std::thread::sleep(Duration::from_millis(150));
    let trace = workload(3, 300);
    let mut c = Client::connect(addr).unwrap();
    let err = c.estimate_json("multsum", None, &trace).unwrap_err();
    assert!(matches!(err, ClientError::Busy), "expected BUSY, got {err}");

    // Backpressure never cancels accepted work.
    a.join().unwrap().expect("first request completes");
    b.join().unwrap().expect("queued request completes");

    c.shutdown().unwrap();
    let report = running.join().expect("clean exit");
    assert!(report.named_counter("serve.busy") >= 1);
    assert_eq!(report.named_counter("serve.op.estimate"), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_reload_is_atomic_towards_a_live_request_stream() {
    let dir = temp_registry("reload");
    train_into(&dir, "multsum@1.json", &[1]);
    let running = Server::bind(ServerConfig::new(&dir)).unwrap().spawn();
    let addr = running.addr();

    // A client hammers estimates while the registry is swapped under it.
    let stop = Arc::new(AtomicBool::new(false));
    let stream = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let trace = workload(7, 200);
            let mut versions = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                let reply = client
                    .estimate_json("multsum", None, &trace)
                    .expect("no estimate may fail across the reload");
                assert_eq!(reply.estimate.len(), trace.len());
                versions.push(reply.version);
            }
            versions
        })
    };

    std::thread::sleep(Duration::from_millis(150));
    // v2 is a genuinely different model (more training data).
    train_into(&dir, "multsum@2.json", &[1, 2]);
    let mut admin = Client::connect(addr).unwrap();
    let models = admin.reload().expect("reload succeeds");
    assert_eq!(models.len(), 2);
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::SeqCst);

    let versions = stream.join().expect("request stream");
    assert!(!versions.is_empty());
    assert_eq!(*versions.first().unwrap(), 1, "stream started on v1");
    assert_eq!(*versions.last().unwrap(), 2, "stream ended on v2");
    // Monotone flip: once v2 serves, v1 never reappears.
    let first_v2 = versions.iter().position(|&v| v == 2).expect("v2 served");
    assert!(versions[first_v2..].iter().all(|&v| v == 2));

    admin.shutdown().unwrap();
    running.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn shutdown_drains_queued_estimates_and_flushes_stats() {
    let dir = temp_registry("drain");
    train_into(&dir, "multsum@1.json", &[1]);
    let mut cfg = ServerConfig::new(&dir);
    cfg.pool = PoolConfig {
        workers: 1,
        queue_capacity: 16,
        max_batch: 8,
        stall: Duration::from_millis(400),
    };
    let running = Server::bind(cfg).unwrap().spawn();
    let addr = running.addr();

    // Three estimates pile up behind the stalled worker…
    let pending: Vec<_> = (0..3)
        .map(|seed| {
            std::thread::spawn(move || {
                let trace = workload(seed, 250);
                let reply = Client::connect(addr)
                    .unwrap()
                    .estimate_json("multsum", None, &trace)
                    .expect("accepted estimate must be answered before exit");
                (reply.estimate.len(), trace.len())
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150));
    // …then the daemon is told to shut down while they are in flight.
    Client::connect(addr).unwrap().shutdown().unwrap();

    for p in pending {
        let (got, want) = p.join().expect("pending client");
        assert_eq!(got, want, "drained estimate is complete, not truncated");
    }
    let report = running.join().expect("exit 0 equivalent: a clean Ok join");
    assert_eq!(report.named_counter("serve.op.estimate"), 3);
    assert_eq!(report.named_counter("serve.op.shutdown"), 1);
    assert!(
        report.gauge("serve.queue_depth").is_some(),
        "gauges flushed"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v1_client_interops_with_the_v2_daemon() {
    let dir = temp_registry("v1compat");
    train_into(&dir, "multsum@1.json", &[1]);
    let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    let loaded = TrainedModel::load(dir.join("multsum@1.json")).unwrap();
    let running = Server::bind(ServerConfig::new(&dir)).unwrap().spawn();
    let addr = running.addr();
    let trace = workload(5, 120);
    let expected = flow.estimate_from_trace(&loaded, &trace);

    // Speak raw v1 frames — exactly what a client built before the v2
    // protocol existed sends.
    let mut sock = TcpStream::connect(addr).unwrap();
    protocol::write_frame(&mut sock, &Frame::request_v(1, Opcode::Ping, 1, Vec::new())).unwrap();
    let reply = protocol::read_frame(&mut sock)
        .unwrap()
        .expect("ping reply");
    assert_eq!(reply.version, 1, "responses echo the request's version");
    assert_eq!(reply.status(), Some(Status::Ok));
    let (tag, versions) = protocol::parse_ping_reply(&reply).unwrap();
    assert_eq!(tag, "psmd/v1", "a v1 conversation stays psmd/v1");
    assert!(
        versions.contains(&2),
        "the daemon still advertises v2 for upgraders: {versions:?}"
    );

    let payload = protocol::estimate_request("multsum", None, &trace);
    protocol::write_frame(
        &mut sock,
        &Frame::request_v(1, Opcode::Estimate, 2, payload),
    )
    .unwrap();
    let reply = protocol::read_frame(&mut sock)
        .unwrap()
        .expect("estimate reply");
    assert_eq!(reply.version, 1);
    assert_eq!(reply.status(), Some(Status::Ok));
    let doc = reply.json().unwrap();
    let got_bits: Vec<u64> = doc
        .arr_field("estimate")
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap().to_bits())
        .collect();
    let expected_bits: Vec<u64> = expected.estimate.iter().map(f64::to_bits).collect();
    assert_eq!(got_bits, expected_bits, "v1 estimates stay bit-exact");

    // v2-only opcodes inside a v1 frame are structured errors, not hangs.
    let payload = protocol::stream_close_request(1);
    protocol::write_frame(
        &mut sock,
        &Frame::request_v(1, Opcode::StreamClose, 3, payload),
    )
    .unwrap();
    let reply = protocol::read_frame(&mut sock)
        .unwrap()
        .expect("gate reply");
    assert_eq!(reply.version, 1);
    assert_eq!(reply.status(), Some(Status::Error));
    assert!(
        protocol::parse_error(&reply).contains("requires protocol v2"),
        "{}",
        protocol::parse_error(&reply)
    );

    Client::connect(addr).unwrap().shutdown().unwrap();
    running.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_binary_frames_are_structured_errors() {
    let dir = temp_registry("malformed");
    train_into(&dir, "multsum@1.json", &[1]);
    let running = Server::bind(ServerConfig::new(&dir)).unwrap().spawn();
    let addr = running.addr();
    let trace = workload(2, 60);

    // Payload-level corruption keeps the connection usable: bad magic…
    let mut client = Client::connect(addr).unwrap();
    let mut payload = protocol::estimate_bin_request("multsum", None, &trace);
    payload[0] = b'X';
    let id = client
        .pipeline_request(Opcode::EstimateBin, payload)
        .unwrap();
    let reply = client.pipeline_response().unwrap();
    assert_eq!(reply.request_id, id);
    assert_eq!(reply.status(), Some(Status::Error));

    // …and truncated bodies, cut at several depths.
    for cut in [5usize, 9, 2] {
        let full = protocol::estimate_bin_request("multsum", None, &trace);
        let mut payload = full.clone();
        payload.truncate(full.len() / cut);
        let id = client
            .pipeline_request(Opcode::EstimateBin, payload)
            .unwrap();
        let reply = client.pipeline_response().unwrap();
        assert_eq!(reply.request_id, id);
        assert_eq!(reply.status(), Some(Status::Error), "cut 1/{cut}");
    }
    // A zero-signal dictionary must not smuggle a huge cycle count past
    // the size check (each cycle would be wire-free but heap-allocated):
    // structured error, not an OOM.
    let empty = FunctionalTrace::new(psmgen::trace::SignalSet::new());
    let mut payload = protocol::estimate_bin_request("multsum", None, &empty);
    payload.push(0x02); // a second, hostile cycles frame…
    payload.extend_from_slice(&u32::MAX.to_le_bytes()); // …claiming 2^32-1 cycles
    let id = client
        .pipeline_request(Opcode::EstimateBin, payload)
        .unwrap();
    let reply = client.pipeline_response().unwrap();
    assert_eq!(reply.request_id, id);
    assert_eq!(reply.status(), Some(Status::Error));

    // The same connection still serves good requests afterwards.
    client.estimate_binary("multsum", None, &trace).unwrap();

    // An oversized frame header is answered once, then the daemon hangs
    // up — it cannot resynchronise inside a lying length field.
    let mut sock = TcpStream::connect(addr).unwrap();
    let mut header = Vec::new();
    header.extend_from_slice(b"PSMD");
    header.push(2);
    header.push(Opcode::EstimateBin.as_u8());
    header.extend_from_slice(&9u64.to_le_bytes());
    header.extend_from_slice(&(protocol::MAX_PAYLOAD + 1).to_le_bytes());
    sock.write_all(&header).unwrap();
    let reply = protocol::read_frame(&mut sock)
        .unwrap()
        .expect("error reply");
    assert_eq!(reply.status(), Some(Status::Error));
    assert!(matches!(protocol::read_frame(&mut sock), Ok(None) | Err(_)));

    client.shutdown().unwrap();
    let report = running.join().expect("clean exit");
    assert!(report.named_counter("serve.protocol_errors") >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streamed_chunks_are_bit_identical_to_one_shot_estimation() {
    let dir = temp_registry("stream");
    train_into(&dir, "multsum@1.json", &[1]);
    let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    let loaded = TrainedModel::load(dir.join("multsum@1.json")).unwrap();
    let running = Server::bind(ServerConfig::new(&dir)).unwrap().spawn();
    let trace = workload(11, 600);
    let expected = flow.estimate_from_trace(&loaded, &trace);
    let expected_bits: Vec<u64> = expected.estimate.iter().map(f64::to_bits).collect();

    let mut client = Client::connect(running.addr()).unwrap();
    let mut stream = client
        .open_stream("multsum", None, trace.signals())
        .unwrap();
    assert_eq!(stream.model(), "multsum");
    let mut streamed = Vec::new();
    for chunk in trace.split_windows(64) {
        let reply = stream.send_chunk(&chunk).unwrap();
        streamed.extend(reply.estimate);
    }
    let summary = stream.close().unwrap();
    let streamed_bits: Vec<u64> = streamed.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        streamed_bits, expected_bits,
        "chunked estimates must be bit-identical to PsmFlow::estimate_from_trace"
    );
    assert_eq!(summary.instants, trace.len());
    assert_eq!(
        summary.wrong_state_predictions,
        expected.wrong_state_predictions
    );
    assert_eq!(summary.unknown_instants, expected.unknown_instants);

    // The binary one-shot path agrees too.
    let bin = client.estimate_binary("multsum", None, &trace).unwrap();
    let bin_bits: Vec<u64> = bin.estimate.iter().map(|v| v.to_bits()).collect();
    assert_eq!(bin_bits, expected_bits);

    client.shutdown().unwrap();
    let report = running.join().expect("clean exit");
    assert_eq!(report.named_counter("serve.op.stream_open"), 1);
    assert_eq!(
        report.named_counter("serve.op.stream_chunk"),
        trace.len().div_ceil(64) as u64
    );
    assert_eq!(report.named_counter("serve.op.stream_close"), 1);
    assert_eq!(
        report.named_counter("serve.stream_chunks"),
        trace.len().div_ceil(64) as u64
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn threaded_io_mode_still_serves_every_dialect() {
    let dir = temp_registry("threads");
    train_into(&dir, "multsum@1.json", &[1]);
    let mut cfg = ServerConfig::new(&dir);
    cfg.io = IoMode::Threads;
    let running = Server::bind(cfg).unwrap().spawn();
    let trace = workload(4, 150);

    let mut client = Client::connect(running.addr()).unwrap();
    assert_eq!(client.negotiate().unwrap(), 2);
    let json = client.estimate_json("multsum", None, &trace).unwrap();
    let bin = client.estimate_binary("multsum", None, &trace).unwrap();
    assert_eq!(
        json.estimate
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>(),
        bin.estimate.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    let mut stream = client
        .open_stream("multsum", None, trace.signals())
        .unwrap();
    let mut streamed = Vec::new();
    for chunk in trace.split_windows(40) {
        streamed.extend(stream.send_chunk(&chunk).unwrap().estimate);
    }
    let summary = stream.close().unwrap();
    assert_eq!(summary.instants, trace.len());
    assert_eq!(
        streamed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        bin.estimate.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
    );
    client.shutdown().unwrap();
    running.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slow_partial_writer_does_not_stall_other_clients() {
    let dir = temp_registry("slowwrite");
    train_into(&dir, "multsum@1.json", &[1]);
    let running = Server::bind(ServerConfig::new(&dir)).unwrap().spawn();
    let addr = running.addr();
    let trace = workload(3, 200);

    // One connection trickles an estimate request in eight pieces with
    // long pauses — under thread-per-connection this held a thread; the
    // readiness loop must keep serving everyone else meanwhile.
    let mut bytes = Vec::new();
    protocol::write_frame(
        &mut bytes,
        &Frame::request_v(
            2,
            Opcode::EstimateBin,
            77,
            protocol::estimate_bin_request("multsum", None, &trace),
        ),
    )
    .unwrap();
    let slow = std::thread::spawn(move || {
        let mut sock = TcpStream::connect(addr).unwrap();
        let piece = bytes.len().div_ceil(8);
        for part in bytes.chunks(piece) {
            sock.write_all(part).unwrap();
            std::thread::sleep(Duration::from_millis(60));
        }
        let reply = protocol::read_frame(&mut sock)
            .unwrap()
            .expect("slow reply");
        assert_eq!(reply.status(), Some(Status::Ok));
        assert_eq!(reply.request_id, 77);
        Instant::now()
    });

    // Meanwhile a normal client completes several estimates.
    let mut fast = Client::connect(addr).unwrap();
    for _ in 0..3 {
        fast.estimate_binary("multsum", None, &trace).unwrap();
    }
    let fast_done = Instant::now();
    let slow_done = slow.join().expect("slow writer");
    assert!(
        fast_done < slow_done,
        "fast client had to finish while the slow writer was still trickling"
    );

    fast.shutdown().unwrap();
    running.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn half_closing_client_still_gets_its_responses() {
    let dir = temp_registry("halfclose");
    train_into(&dir, "multsum@1.json", &[1]);
    let running = Server::bind(ServerConfig::new(&dir)).unwrap().spawn();
    let addr = running.addr();
    let trace = workload(5, 120);

    // Pipeline two binary estimates, then shutdown(SHUT_WR) immediately:
    // the daemon sees EOF alongside the requests but must keep the
    // connection until both pool responses have been delivered.
    let mut bytes = Vec::new();
    for id in [11u64, 12] {
        protocol::write_frame(
            &mut bytes,
            &Frame::request_v(
                2,
                Opcode::EstimateBin,
                id,
                protocol::estimate_bin_request("multsum", None, &trace),
            ),
        )
        .unwrap();
    }
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.write_all(&bytes).unwrap();
    sock.shutdown(std::net::Shutdown::Write).unwrap();
    for expected in [11u64, 12] {
        let reply = protocol::read_frame(&mut sock)
            .unwrap()
            .unwrap_or_else(|| panic!("response {expected} must arrive after SHUT_WR"));
        assert_eq!(reply.request_id, expected);
        assert_eq!(reply.status(), Some(Status::Ok));
        protocol::parse_estimate_bin_reply(&reply).unwrap();
    }
    // EOF after the owed responses, not before.
    assert!(matches!(protocol::read_frame(&mut sock), Ok(None)));

    Client::connect(addr).unwrap().shutdown().unwrap();
    running.join().expect("clean exit");
    std::fs::remove_dir_all(&dir).ok();
}
