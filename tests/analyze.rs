//! End-to-end static-analysis tests: seeded defects in every artifact
//! class must surface through `psmlint` (text and JSON) with stable codes,
//! and strict flows must refuse to train on them.

use psmgen::analyze::{codes, Severity};
use psmgen::flow::{FlowError, IpPreset, PsmFlow, Strictness, TrainedModel};
use psmgen::ips::{testbench, Ip, MultSum};
use psmgen::mining::{TemporalAssertion, TemporalPattern};
use psmgen::psm::{ChainAssertion, PowerAttributes, PowerState, SourceWindow};
use psmgen::rtl::{parse_verilog, write_verilog, Netlist, RtlError, Stimulus};
use psmgen::trace::{write_power_csv, PowerTrace, SignalSet};
use std::path::PathBuf;
use std::process::Command;

/// The writer grammar with hand-seeded defects: a combinational cycle on
/// n3/n4 and a doubly driven n5 (kept on disjoint nets so neither defect
/// masks the other in `levelize`).
const DEFECTIVE_VERILOG: &str = "\
module broken (clk, a, x);
  input clk;
  input a;
  output x;
  wire n2;
  wire n3;
  wire n4;
  wire n5;
  assign n2 = a[0];
  assign x[0] = n4;
  and  g0 (n3, n2, n4);
  and  g1 (n4, n3, 1'b1);
  buf  g2 (n5, 1'b0);
  buf  g3 (n5, 1'b1);
endmodule
";

fn scratch_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("psmgen-analyze-{}-{name}", std::process::id()))
}

fn run_psmlint(args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_psmlint"))
        .args(args)
        .output()
        .expect("psmlint runs");
    let stdout = String::from_utf8(out.stdout).expect("utf-8 output");
    (out.status.code(), stdout)
}

fn quick_model() -> TrainedModel {
    let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    flow.train(&mut MultSum::new(), &[testbench::multsum_short_ts(1)])
        .expect("clean training succeeds")
}

#[test]
fn psmlint_flags_defective_netlist_in_text_and_json() {
    let path = scratch_path("broken.v");
    std::fs::write(&path, DEFECTIVE_VERILOG).unwrap();

    let (code, text) = run_psmlint(&[path.to_str().unwrap()]);
    assert_eq!(code, Some(1), "errors must exit 1:\n{text}");
    assert!(text.contains("NL001"), "cycle missing from:\n{text}");
    assert!(text.contains("NL002"), "multi-driver missing from:\n{text}");

    let (code, json) = run_psmlint(&["--json", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(1));
    assert!(json.contains("\"code\":\"NL001\""), "{json}");
    assert!(json.contains("\"code\":\"NL002\""), "{json}");
}

#[test]
fn psmlint_flags_nan_power_sample() {
    let trace: PowerTrace = [1.0, f64::NAN, 2.0].into_iter().collect();
    let path = scratch_path("nan.csv");
    let mut file = std::fs::File::create(&path).unwrap();
    write_power_csv(&trace, &mut file).unwrap();
    drop(file);

    let (code, text) = run_psmlint(&[path.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{text}");
    assert!(text.contains("TR001"), "{text}");

    let (code, json) = run_psmlint(&["--json", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(1));
    assert!(json.contains("\"code\":\"TR001\""), "{json}");
}

#[test]
fn psmlint_flags_unreachable_state_in_saved_model() {
    let mut model = quick_model();
    // Seed an orphan: a state no transition reaches and no initial names.
    // The HMM keeps its original dimensions, so the same file also trips
    // the PSM/HMM consistency check.
    let delta: PowerTrace = [3.0, 3.5].into_iter().collect();
    let p = psmgen::mining::PropositionId::from_index(0);
    let orphan = PowerState::new(
        ChainAssertion::single(TemporalAssertion::new(TemporalPattern::Until, p, p)),
        SourceWindow {
            trace: 0,
            start: 0,
            stop: 1,
        },
        PowerAttributes::from_window(&delta, 0, 1),
    );
    model.psm.add_state(orphan);
    let path = scratch_path("orphan.json");
    model.save(&path).unwrap();

    let (code, text) = run_psmlint(&[path.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{text}");
    assert!(text.contains("PS001"), "unreachable state missing:\n{text}");
    assert!(text.contains("HM003"), "psm/hmm mismatch missing:\n{text}");

    let (code, json) = run_psmlint(&["--json", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(1));
    assert!(json.contains("\"code\":\"PS001\""), "{json}");
    assert!(json.contains("\"code\":\"HM003\""), "{json}");
}

#[test]
fn psmlint_flags_non_stochastic_hmm_row() {
    let model = quick_model();
    // Perturb the first transition-matrix entry by 5e-7: small enough for
    // the persist loader's 1e-6 tolerance, far beyond the lint's 1e-9.
    let json = model.to_json_string();
    let hmm_at = json.find("\"hmm\":").expect("model json has an hmm");
    let marker = "\"a\":[[";
    let row_at = hmm_at + json[hmm_at..].find(marker).expect("hmm has an A matrix");
    let start = row_at + marker.len();
    let end = start + json[start..].find([',', ']']).expect("row has entries");
    let value: f64 = json[start..end].parse().expect("entry is a number");
    let perturbed = format!("{}{}{}", &json[..start], value + 5e-7, &json[end..]);

    let path = scratch_path("skewed.json");
    std::fs::write(&path, perturbed).unwrap();

    let (code, text) = run_psmlint(&[path.to_str().unwrap()]);
    assert_eq!(code, Some(1), "{text}");
    assert!(text.contains("HM001"), "{text}");
    assert!(text.contains("A row 0"), "{text}");

    let (code, json_out) = run_psmlint(&["--json", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(1));
    assert!(json_out.contains("\"code\":\"HM001\""), "{json_out}");
}

#[test]
fn psmlint_passes_clean_artifacts() {
    let model = quick_model();
    let model_path = scratch_path("clean.json");
    model.save(&model_path).unwrap();
    let netlist_path = scratch_path("clean.v");
    let netlist = MultSum::new().netlist().unwrap();
    let mut file = std::fs::File::create(&netlist_path).unwrap();
    write_verilog(&netlist, &mut file).unwrap();
    drop(file);

    let (code, text) = run_psmlint(&[netlist_path.to_str().unwrap(), model_path.to_str().unwrap()]);
    std::fs::remove_file(&model_path).ok();
    std::fs::remove_file(&netlist_path).ok();
    assert_eq!(code, Some(0), "clean artifacts must pass:\n{text}");
    assert!(text.contains("0 error(s)"), "{text}");
}

#[test]
fn psmlint_rejects_unloadable_artifacts() {
    let path = scratch_path("garbage.json");
    std::fs::write(&path, "not a model").unwrap();
    let (code, _) = run_psmlint(&[path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(2), "load failures must exit 2");
    let (code, _) = run_psmlint(&["/nonexistent/psmgen/nowhere.v"]);
    assert_eq!(code, Some(2));
}

/// MultSum with a corrupted structural twin: its netlist round-trips
/// through the Verilog writer with an extra driver spliced onto the first
/// gate's output net — the builder would reject this, the parser loads it.
struct DefectiveMultSum(MultSum);

impl Ip for DefectiveMultSum {
    fn name(&self) -> &'static str {
        "DefectiveMultSum"
    }
    fn signals(&self) -> SignalSet {
        self.0.signals()
    }
    fn netlist(&self) -> Result<Netlist, RtlError> {
        let clean = self.0.netlist()?;
        let driven = clean.gates()[0].output;
        let mut text = Vec::new();
        write_verilog(&clean, &mut text)?;
        let text = String::from_utf8(text).expect("writer emits utf-8");
        let defective = text.replace(
            "endmodule",
            &format!("  buf  g9999 (n{}, 1'b0);\nendmodule", driven.index()),
        );
        parse_verilog(&defective)
    }
    fn reset(&mut self) {
        self.0.reset()
    }
    fn step(&mut self, inputs: &[psmgen::trace::Bits]) -> Vec<psmgen::trace::Bits> {
        self.0.step(inputs)
    }
}

fn short_training() -> Stimulus {
    testbench::multsum_short_ts(1)
}

#[test]
fn strict_flow_refuses_defective_netlist() {
    let flow = PsmFlow::builder()
        .preset(IpPreset::MultSum)
        .strictness(Strictness::Strict)
        .build();
    match flow.train(&mut DefectiveMultSum(MultSum::new()), &[short_training()]) {
        Err(FlowError::Validation(report)) => {
            assert!(report.has_errors());
            assert!(
                report.diagnostics().iter().any(|d| d.code == "NL002"),
                "expected the multi-driver error, got: {}",
                report.text()
            );
        }
        other => panic!("strict mode must fail validation, got {other:?}"),
    }
}

#[test]
fn lenient_flow_trains_with_warnings_in_telemetry() {
    let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    assert_eq!(flow.strictness, Strictness::Lenient);
    let (model, report) = flow
        .train_with_telemetry(&mut DefectiveMultSum(MultSum::new()), &[short_training()])
        .expect("lenient mode demotes errors to report entries");
    assert!(model.stats.states > 0);
    assert!(
        report.diagnostics.iter().any(|d| d.code == "NL002"),
        "telemetry must carry the finding: {}",
        report.text()
    );
    assert!(report.text().contains("NL002"));
    assert!(report.to_json().render().contains("NL002"));
}

#[test]
fn strict_flow_trains_clean_designs() {
    let flow = PsmFlow::builder()
        .preset(IpPreset::MultSum)
        .strictness(Strictness::Strict)
        .build();
    let (model, report) = flow
        .train_with_telemetry(&mut MultSum::new(), &[short_training()])
        .expect("clean design passes strict validation");
    assert!(model.stats.states > 0);
    assert!(
        report
            .diagnostics
            .iter()
            .all(|d| d.severity < Severity::Error),
        "{}",
        report.text()
    );
}

#[test]
fn every_code_is_documented_in_diagnostics_md() {
    let doc = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/DIAGNOSTICS.md"))
        .expect("DIAGNOSTICS.md exists at the repo root");
    for info in codes::ALL {
        assert!(
            doc.contains(info.code),
            "{} missing from DIAGNOSTICS.md",
            info.code
        );
    }
}

#[test]
fn every_code_is_unique_and_catalogued() {
    let mut seen = std::collections::HashSet::new();
    for info in codes::ALL {
        assert!(seen.insert(info.code), "duplicate code {}", info.code);
        assert!(!info.summary.is_empty());
        assert!(!info.help.is_empty());
    }
}

/// Writer-grammar netlist with an undriven net whose X reaches the output
/// port: NL003 names the floating net, NL010 proves it observable.
const UNDRIVEN_VERILOG: &str = "\
module floating (a, x);
  input a;
  output [1:0] x;
  wire n2;
  wire n3;
  wire n4;
  wire n5;
  assign n2 = a[0];
  and g0 (n4, n2, n3);
  buf g1 (n5, n4);
  assign x[0] = n5;
  assign x[1] = n2;
endmodule
";

/// A netlist whose defects are only visible *semantically*: a register
/// that can only re-latch 0 (NL008 on its feedback and masking gates,
/// NL009 on both stuck output ports) and inputs whose every path is
/// blocked by the stuck constant (NL011).
fn stuck_register_netlist() -> Netlist {
    use psmgen::rtl::{NetlistBuilder, Word};
    let mut b = NetlistBuilder::new("stuck");
    let a = b.input("a", 1);
    let c = b.input("c", 1);
    let r = b.register("r", 1);
    let next = b.and(r.q().bit(0), a.bit(0));
    b.connect_register(&r, &Word::from_nets(vec![next]));
    let masked = b.and(c.bit(0), r.q().bit(0));
    b.output("x", &r.q());
    b.output("y", &Word::from_nets(vec![masked]));
    b.finish()
        .expect("stuck netlist is structurally well-formed")
}

#[test]
fn psmlint_flags_semantic_netlist_defects() {
    let path = scratch_path("stuck.v");
    let mut file = std::fs::File::create(&path).unwrap();
    write_verilog(&stuck_register_netlist(), &mut file).unwrap();
    drop(file);

    // The defects are warnings: visible in the report, clean exit by
    // default, non-zero under --deny-warnings.
    let (code, text) = run_psmlint(&[path.to_str().unwrap()]);
    assert_eq!(code, Some(0), "{text}");
    assert!(text.contains("NL008"), "stuck gates missing from:\n{text}");
    assert!(
        text.contains("NL009"),
        "stuck outputs missing from:\n{text}"
    );
    assert!(
        text.contains("NL011"),
        "blocked inputs missing from:\n{text}"
    );

    let (code, _) = run_psmlint(&["--deny-warnings", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(1), "warnings must fail under --deny-warnings");
}

#[test]
fn psmlint_flags_observable_x_from_undriven_net() {
    let path = scratch_path("floating.v");
    std::fs::write(&path, UNDRIVEN_VERILOG).unwrap();
    let (code, text) = run_psmlint(&[path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(1), "{text}");
    assert!(text.contains("NL003"), "floating net missing from:\n{text}");
    assert!(text.contains("NL010"), "observable X missing from:\n{text}");
}

#[test]
fn psmlint_config_levels_change_exit_codes() {
    let netlist_path = scratch_path("configured.v");
    std::fs::write(&netlist_path, UNDRIVEN_VERILOG).unwrap();
    let config_path = scratch_path("psmlint.toml");
    std::fs::write(
        &config_path,
        "# demote the floating-net pair for triage\n[levels]\nNL003 = \"allow\"\nNL010 = \"warn\"\n",
    )
    .unwrap();

    // Both findings are errors by default…
    let (code, _) = run_psmlint(&[netlist_path.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    // …the config demotes them below the failure threshold…
    let (code, text) = run_psmlint(&[
        "--config",
        config_path.to_str().unwrap(),
        netlist_path.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(0), "{text}");
    assert!(!text.contains("NL003"), "allowed code must vanish:\n{text}");
    assert!(text.contains("NL010"), "demoted code must remain:\n{text}");
    // …unless warnings are denied wholesale.
    let (code, _) = run_psmlint(&[
        "--config",
        config_path.to_str().unwrap(),
        "--deny-warnings",
        netlist_path.to_str().unwrap(),
    ]);
    assert_eq!(code, Some(1));

    // And the other direction: denying a warn-level code fails the run.
    let stuck_path = scratch_path("stuck-deny.v");
    let mut file = std::fs::File::create(&stuck_path).unwrap();
    write_verilog(&stuck_register_netlist(), &mut file).unwrap();
    drop(file);
    std::fs::write(&config_path, "[levels]\nNL009 = \"deny\"\n").unwrap();
    let (code, text) = run_psmlint(&[
        "--config",
        config_path.to_str().unwrap(),
        stuck_path.to_str().unwrap(),
    ]);
    std::fs::remove_file(&netlist_path).ok();
    std::fs::remove_file(&config_path).ok();
    std::fs::remove_file(&stuck_path).ok();
    assert_eq!(code, Some(1), "denied warning must fail:\n{text}");
}

#[test]
fn psmlint_baseline_suppresses_previous_findings() {
    let netlist_path = scratch_path("baselined.v");
    std::fs::write(&netlist_path, UNDRIVEN_VERILOG).unwrap();

    let (code, json) = run_psmlint(&["--format", "json", netlist_path.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(json.contains("\"schema\":\"psmlint/v1\""), "{json}");
    assert!(json.contains("\"elapsed_ns\":"), "{json}");
    let baseline_path = scratch_path("baseline.json");
    std::fs::write(&baseline_path, &json).unwrap();

    // The same findings again: suppressed, clean exit.
    let (code, text) = run_psmlint(&[
        "--baseline",
        baseline_path.to_str().unwrap(),
        netlist_path.to_str().unwrap(),
    ]);
    std::fs::remove_file(&netlist_path).ok();
    std::fs::remove_file(&baseline_path).ok();
    assert_eq!(code, Some(0), "baselined findings must not fail:\n{text}");
    assert!(text.contains("suppressed"), "{text}");
}

#[test]
fn psmlint_sarif_output_is_schema_shaped() {
    use psm_persist::JsonValue;
    let path = scratch_path("sarif.v");
    std::fs::write(&path, UNDRIVEN_VERILOG).unwrap();
    let (code, sarif) = run_psmlint(&["--format", "sarif", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(code, Some(1), "format does not change the exit code");

    let doc = JsonValue::parse(&sarif).expect("sarif output is valid JSON");
    assert_eq!(doc.str_field("version").unwrap(), "2.1.0");
    assert!(doc.str_field("$schema").unwrap().contains("sarif-2.1.0"));
    let runs = doc.arr_field("runs").unwrap();
    assert_eq!(runs.len(), 1);
    let driver = runs[0]
        .field("tool")
        .unwrap()
        .field("driver")
        .unwrap()
        .clone();
    assert_eq!(driver.str_field("name").unwrap(), "psmlint");
    assert_eq!(
        driver.arr_field("rules").unwrap().len(),
        codes::ALL.len(),
        "every catalogued code ships as a SARIF rule"
    );
    let results = runs[0].arr_field("results").unwrap();
    let rule_ids: Vec<&str> = results
        .iter()
        .map(|r| r.str_field("ruleId").unwrap())
        .collect();
    assert!(rule_ids.contains(&"NL003"), "{rule_ids:?}");
    assert!(rule_ids.contains(&"NL010"), "{rule_ids:?}");
    assert!(results
        .iter()
        .all(|r| r.field("locations").is_ok() && r.field("message").is_ok()));
}

#[test]
fn psmlint_cross_checks_model_against_power_traces() {
    let model = quick_model();
    let model_path = scratch_path("xa002.json");
    model.save(&model_path).unwrap();
    // Two samples cannot be the training trace the model's source windows
    // reference: the attribute re-derivation must fail loudly.
    let trace: PowerTrace = [1.0, 2.0].into_iter().collect();
    let csv_path = scratch_path("xa002.csv");
    let mut file = std::fs::File::create(&csv_path).unwrap();
    write_power_csv(&trace, &mut file).unwrap();
    drop(file);

    let (code, text) = run_psmlint(&[model_path.to_str().unwrap(), csv_path.to_str().unwrap()]);
    std::fs::remove_file(&model_path).ok();
    std::fs::remove_file(&csv_path).ok();
    assert_eq!(code, Some(1), "{text}");
    assert!(
        text.contains("XA002"),
        "attribute mismatch missing:\n{text}"
    );
}

/// MultSum advertising a trace interface that disagrees with its netlist:
/// `a` claims 8 bits where the port has 16.
struct MismatchedMultSum(MultSum);

impl Ip for MismatchedMultSum {
    fn name(&self) -> &'static str {
        "MismatchedMultSum"
    }
    fn signals(&self) -> SignalSet {
        use psmgen::trace::Direction;
        let mut s = SignalSet::new();
        s.push("a", 8, Direction::Input).expect("unique");
        s.push("b", 16, Direction::Input).expect("unique");
        s.push("en", 1, Direction::Input).expect("unique");
        s.push("clear", 1, Direction::Input).expect("unique");
        s.push("sum", 32, Direction::Output).expect("unique");
        s
    }
    fn netlist(&self) -> Result<Netlist, RtlError> {
        self.0.netlist()
    }
    fn reset(&mut self) {
        self.0.reset()
    }
    fn step(&mut self, inputs: &[psmgen::trace::Bits]) -> Vec<psmgen::trace::Bits> {
        self.0.step(inputs)
    }
}

#[test]
fn strict_flow_refuses_interface_mismatch() {
    let flow = PsmFlow::builder()
        .preset(IpPreset::MultSum)
        .strictness(Strictness::Strict)
        .build();
    match flow.train(&mut MismatchedMultSum(MultSum::new()), &[short_training()]) {
        Err(FlowError::Validation(report)) => {
            assert!(
                report.diagnostics().iter().any(|d| d.code == "XA001"),
                "expected the interface mismatch, got: {}",
                report.text()
            );
        }
        other => panic!("strict mode must fail on XA001, got {other:?}"),
    }
}

#[test]
fn flow_lint_config_overrides_strictness_outcome() {
    use psmgen::flow::{LintConfig, LintLevel};
    // Allowing XA001 lets the mismatched interface train even strictly…
    let flow = PsmFlow::builder()
        .preset(IpPreset::MultSum)
        .strictness(Strictness::Strict)
        .lint_config(LintConfig::new().with_level("XA001", LintLevel::Allow))
        .build();
    let model = flow
        .train(&mut MismatchedMultSum(MultSum::new()), &[short_training()])
        .expect("allowed code no longer aborts");
    assert!(model.stats.states > 0);
    // …and the telemetry no longer carries the finding at all.
    let (_, report) = flow
        .train_with_telemetry(&mut MismatchedMultSum(MultSum::new()), &[short_training()])
        .expect("allowed code no longer aborts");
    assert!(
        report.diagnostics.iter().all(|d| d.code != "XA001"),
        "{}",
        report.text()
    );
}

#[test]
fn benchmark_netlists_are_clean_under_semantic_lints() {
    use psmgen::analyze::{lint_interface, lint_netlist_dataflow, lint_power_intent};
    use psmgen::ips::{ip_by_name, BENCHMARK_NAMES};
    for name in BENCHMARK_NAMES {
        let ip = ip_by_name(name).expect("known IP");
        let netlist = ip.netlist().expect("netlist builds");
        let report = lint_netlist_dataflow(&netlist);
        assert!(report.is_clean(), "{name}: {}", report.text());
        let report = lint_interface(&ip.signals(), &netlist);
        assert!(report.is_clean(), "{name}: {}", report.text());
        let report = lint_power_intent(&netlist);
        assert!(report.is_clean(), "{name}: {}", report.text());
    }
}

/// The seeded power-intent defect fixture shipped with the repo, shared
/// with the CI SARIF gate and the baseline workflow.
fn powerintent_fixture() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/examples/artifacts/powerintent_defect.v"
    )
}

#[test]
fn psmlint_pins_power_intent_defect_fixture() {
    use psm_persist::JsonValue;
    let (code, json) = run_psmlint(&["--format", "json", powerintent_fixture()]);
    assert_eq!(code, Some(1), "{json}");
    let doc = JsonValue::parse(&json).expect("valid JSON envelope");
    let reports = doc.arr_field("reports").unwrap();
    assert_eq!(reports.len(), 1);
    let mut counts = std::collections::BTreeMap::new();
    for d in reports[0]
        .field("report")
        .unwrap()
        .arr_field("diagnostics")
        .unwrap()
    {
        *counts
            .entry(d.str_field("code").unwrap().to_string())
            .or_insert(0usize) += 1;
    }
    let expect: std::collections::BTreeMap<String, usize> = [
        ("PD001", 1), // unisolated unit -> core crossing (n6 and n8's sink)
        ("PD002", 1), // clamp1-marked AND can only force 0
        ("PD006", 2), // both core gates read X with unit off
        ("PD007", 2), // both output bits observe the X
        ("PD008", 1), // intent summary: unit LEAKS
    ]
    .into_iter()
    .map(|(c, n)| (c.to_string(), n))
    .collect();
    assert_eq!(counts, expect, "{json}");
    assert_eq!(doc.u64_field("errors").unwrap(), 6, "{json}");
    assert_eq!(doc.u64_field("warnings").unwrap(), 0, "{json}");
}

#[test]
fn psmlint_list_codes_matches_the_catalogue() {
    use psm_persist::JsonValue;
    let (code, text) = run_psmlint(&["--list-codes"]);
    assert_eq!(code, Some(0), "{text}");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), codes::ALL.len(), "one line per code:\n{text}");
    for (line, info) in lines.iter().zip(codes::ALL) {
        assert!(
            line.starts_with(info.code),
            "catalogue order must hold: {line}"
        );
        assert!(line.contains(info.severity.name()), "{line}");
    }

    let (code, json) = run_psmlint(&["--list-codes", "--format", "json"]);
    assert_eq!(code, Some(0), "{json}");
    let doc = JsonValue::parse(&json).expect("valid JSON");
    assert_eq!(doc.str_field("schema").unwrap(), "psmlint-codes/v1");
    let entries = doc.arr_field("codes").unwrap();
    assert_eq!(entries.len(), codes::ALL.len());
    for (entry, info) in entries.iter().zip(codes::ALL) {
        assert_eq!(entry.str_field("code").unwrap(), info.code);
        assert_eq!(entry.str_field("severity").unwrap(), info.severity.name());
    }
}

#[test]
fn psmlint_cross_checks_power_states_against_intent() {
    // Graft a reachable low-power state onto the trained machine. The
    // guard is an exit proposition of the initial state and, by
    // construction, the entry proposition of the new state's chain, so
    // the PSM stays structurally valid (no PS001/PS004); rebuilding the
    // HMM keeps the dimensions consistent (no HM003).
    let mut model = quick_model();
    let (root, _) = model.psm.initials()[0];
    let g = model.psm.state(root).chains()[0].exit_proposition();
    let max_mu = model
        .psm
        .states()
        .map(|(_, s)| s.attrs().mu())
        .fold(0.0, f64::max);
    assert!(max_mu > 0.0, "training yields positive power states");
    let delta: PowerTrace = [max_mu * 0.01, max_mu * 0.01].into_iter().collect();
    let off = PowerState::new(
        ChainAssertion::single(TemporalAssertion::new(TemporalPattern::Until, g, g)),
        SourceWindow {
            trace: 0,
            start: 0,
            stop: 1,
        },
        PowerAttributes::from_window(&delta, 0, 1),
    );
    let off_id = model.psm.add_state(off);
    model.psm.add_transition(root, off_id, g);
    model.hmm = psmgen::hmm::build_hmm(&model.psm, model.hmm.num_symbols());

    let model_path = scratch_path("xa005.json");
    model.save(&model_path).unwrap();
    let (code, json) = run_psmlint(&[
        "--json",
        model_path.to_str().unwrap(),
        powerintent_fixture(),
    ]);
    std::fs::remove_file(&model_path).ok();
    assert_eq!(code, Some(1), "{json}");
    assert!(json.contains("\"code\":\"XA005\""), "{json}");
    // The cross-artifact finding names both inputs so SARIF viewers can
    // resolve the related locations.
    let related = format!(
        "\"related\":[\"{}\",\"{}\"]",
        model_path.display(),
        powerintent_fixture()
    );
    assert!(json.contains(&related), "{json}");
}

#[test]
fn off_domain_proof_matches_concrete_simulation() {
    use psmgen::analyze::prove_domain_off;
    use psmgen::rtl::Simulator;
    use psmgen::trace::Bits;
    let src = std::fs::read_to_string(powerintent_fixture()).unwrap();
    let netlist = parse_verilog(&src).unwrap();
    let unit = netlist
        .domains()
        .iter()
        .position(|d| d == "unit")
        .expect("fixture declares the unit domain");
    let proof = prove_domain_off(&netlist, unit).expect("fixture is interpretable");
    assert!(!proof.is_isolated());
    // The ternary proof says both output bits escape…
    assert_eq!(proof.leaks.iter().filter(|l| l.at_output).count(), 2);

    // …and the scalar simulator agrees. With isolation asserted
    // (en_n = 0), toggling the off domain's source still moves x[1]
    // (the unisolated n6/n8 route, PD006/PD007) while x[0] parks at 0
    // despite the declared clamp1 polarity (PD002).
    let mut sim = Simulator::new(&netlist).unwrap();
    let mut x_at = |a: u64| {
        sim.set_input("a", &Bits::from_u64(a, 2)).unwrap();
        sim.set_input("en_n", &Bits::from_u64(0, 1)).unwrap();
        sim.step();
        sim.output("x").unwrap().to_u64().unwrap()
    };
    let x_lo = x_at(0b00);
    let x_hi = x_at(0b10);
    assert_eq!(x_lo & 1, 0, "marked clamp parks at 0, not the declared 1");
    assert_eq!(x_hi & 1, 0);
    assert_ne!(
        x_lo >> 1,
        x_hi >> 1,
        "off-domain data must reach x[1] through the unisolated crossing"
    );
}
