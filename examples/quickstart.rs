//! Quickstart: train power state machines for the 1 KB RAM benchmark and
//! estimate the power of a fresh workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

#![deny(deprecated)]

use psmgen::flow::{IpPreset, PsmFlow};
use psmgen::ips::{testbench, Ram1k};
use psmgen::psm::to_dot;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A per-IP tuned pipeline (mining thresholds, merge policy,
    //    calibration, golden power model), built fluently. Training fans
    //    across all cores by default (`Parallelism::Auto`).
    let flow = PsmFlow::builder().preset(IpPreset::Ram1k).build();

    // 2. Train on the verification-style testbench (the paper's short-TS):
    //    one gate-level golden run, assertion mining, PSM generation,
    //    simplify/join, calibration and HMM construction. The telemetry
    //    variant additionally returns per-stage timing spans.
    let mut ram = Ram1k::new();
    let training = testbench::short_ts("RAM", 1).expect("RAM is a benchmark");
    let (model, telemetry) = flow.train_with_telemetry(&mut ram, &[training])?;

    println!(
        "trained in {:?} on {} instants:",
        model.stats.generation_time, model.stats.training_instants
    );
    println!(
        "  {} states, {} transitions, {} merged away, {} regression-calibrated",
        model.stats.states,
        model.stats.transitions,
        model.stats.states_merged,
        model.stats.calibrated_states
    );
    for (id, state) in model.psm.states() {
        println!(
            "  {id}: {}  —  {}",
            state.attrs(),
            state.chains()[0].render(&model.table)
        );
    }
    println!("\nper-stage telemetry:\n{}", telemetry.text());

    // 3. Estimate a never-seen randomised workload and compare against the
    //    golden gate-level reference.
    let workload = testbench::long_ts("RAM", 99, 10_000).expect("RAM is a benchmark");
    let estimate = flow.estimate(&model, &mut ram, &workload)?;
    println!(
        "workload: {} instants, mean estimated power {:.3} mW (golden {:.3} mW)",
        workload.len(),
        estimate.outcome.estimate.mean(),
        estimate.reference.mean()
    );
    println!(
        "MRE {:.2} %, wrong-state predictions {:.2} %, unknown behaviour {:.2} %",
        estimate.mre_vs_reference()? * 100.0,
        estimate.outcome.wsp_rate() * 100.0,
        estimate.outcome.unknown_rate() * 100.0
    );

    // 4. Export the PSM for graphviz rendering.
    let dot = to_dot(&model.psm, Some(&model.table));
    std::fs::write("ram_psm.dot", &dot)?;
    println!(
        "\nwrote ram_psm.dot ({} bytes) — render with `dot -Tsvg`",
        dot.len()
    );
    Ok(())
}
