// Deliberately defective power intent for the CI lint gate. Domain
// `unit` is gateable and leaves through two nets: n5 is "isolated" by a
// clamp1-marked AND (which can only force 0 — PD002), n6 crosses with no
// isolation cell at all (PD001). Powering `unit` down therefore drives
// both core gates and both output bits to X (PD006 x2, PD007 x2); PD008
// summarises the run. The findings are recorded in psmlint-baseline.json
// next to this file, so CI fails only when a *new* finding appears.
module pdefect (a, en_n, x);
  input [1:0] a;
  input en_n;
  output [1:0] x;
  wire n2;
  wire n3;
  wire n4;
  wire n5;
  wire n6;
  wire n7;
  wire n8;
  assign n2 = a[0];
  assign n3 = a[1];
  assign n4 = en_n[0];
  (* power_domain = "unit" *) not g0 (n5, n2);
  (* power_domain = "unit" *) not g1 (n6, n3);
  (* isolation = "clamp1" *) and g2 (n7, n5, n4);
  or g3 (n8, n6, n4);
  assign x[0] = n7;
  assign x[1] = n8;
endmodule
