// Deliberately defective netlist for the CI lint gate: n3 is read but
// never driven (NL003) and its X reaches output bit x[0] (NL010). The
// findings are recorded in psmlint-baseline.json next to this file, so
// CI fails only when a *new* finding appears.
module floating (a, x);
  input a;
  output [1:0] x;
  wire n2;
  wire n3;
  wire n4;
  wire n5;
  assign n2 = a[0];
  and g0 (n4, n2, n3);
  buf g1 (n5, n4);
  assign x[0] = n5;
  assign x[1] = n2;
endmodule
