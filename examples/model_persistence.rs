//! Train once, ship the model: persistence workflow.
//!
//! Training needs the slow golden (gate-level) power simulation; the
//! trained model does not. This example trains a MAC power model, saves it
//! as JSON, reloads it in a fresh "deployment" context and estimates a new
//! workload without ever touching the netlist again.
//!
//! ```sh
//! cargo run --release --example model_persistence
//! ```

#![deny(deprecated)]

use psmgen::flow::{IpPreset, PsmFlow, TrainedModel};
use psmgen::ips::{behavioural_trace, testbench, MultSum};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("multsum_power_model.json");

    // --- Vendor side: train against the golden simulator and publish. ----
    {
        let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
        let t0 = Instant::now();
        let model = flow.train(&mut MultSum::new(), &[testbench::multsum_short_ts(1)])?;
        println!(
            "trained in {:?} ({} states, {} transitions)",
            t0.elapsed(),
            model.stats.states,
            model.stats.transitions
        );
        model.save(&path)?;
        println!(
            "published {} ({} bytes)",
            path.display(),
            std::fs::metadata(&path)?.len()
        );
    }

    // --- Integrator side: load and estimate, no gate-level anything. -----
    {
        let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
        let model = TrainedModel::load(&path)?;
        let workload = testbench::multsum_long_ts(99, 20_000);
        let t0 = Instant::now();
        let trace = behavioural_trace(&mut MultSum::new(), &workload)?;
        let outcome = flow.estimate_from_trace(&model, &trace);
        println!(
            "estimated {} instants in {:?}: {:.3} mW mean, {:.1} mW·cycles total",
            workload.len(),
            t0.elapsed(),
            outcome.estimate.mean(),
            outcome.estimate.total_energy()
        );
        // Error tails, for the integrator's sign-off report.
        let golden = flow.reference_power(&MultSum::new(), &workload)?;
        let errs = psmgen::stats::relative_errors(outcome.estimate.as_slice(), golden.as_slice())?;
        println!("relative error: {}", psmgen::stats::Summary::of(&errs)?);
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
