//! Netlist tooling tour: synthesise a benchmark, optimise it, export
//! structural Verilog, profile signal activity and print the PSM report.
//!
//! ```sh
//! cargo run --release --example netlist_tools
//! ```

#![deny(deprecated)]

use psmgen::flow::{IpPreset, PsmFlow};
use psmgen::ips::{ip_by_name, testbench};
use psmgen::psm::report;
use psmgen::rtl::{logic_depth, optimize, write_verilog};
use psmgen::trace::activity_profile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = "MultSum";
    let ip = ip_by_name(name).expect("benchmark exists");

    // 1. Synthesise and optimise the gate-level twin.
    let netlist = ip.netlist()?;
    let before = netlist.stats();
    let (optimised, opt_stats) = optimize(&netlist)?;
    let after = optimised.stats();
    println!(
        "{name}: {} cells (depth {}) → {} cells after optimisation \
         ({} folded, {} dead, {} stuck flops)",
        before.combinational,
        logic_depth(&netlist)?,
        after.combinational,
        opt_stats.folded,
        opt_stats.dead,
        opt_stats.const_dffs,
    );

    // 2. Export structural Verilog for external tooling.
    let mut verilog = Vec::new();
    write_verilog(&optimised, &mut verilog)?;
    std::fs::write("multsum_netlist.v", &verilog)?;
    println!("wrote multsum_netlist.v ({} bytes)", verilog.len());

    // 3. Profile the training trace's signal activity — the numbers that
    //    guide the mining thresholds.
    let flow = PsmFlow::builder()
        .preset(IpPreset::from_name(name).expect("benchmark preset"))
        .build();
    let mut core = ip_by_name(name).expect("benchmark exists");
    let stim = testbench::short_ts(name, 1).expect("benchmark exists");
    let trace = psmgen::ips::behavioural_trace(core.as_mut(), &stim)?;
    println!("\nsignal activity over the training trace:");
    for a in activity_profile(&trace, 256) {
        let decl = trace.signals().decl(a.signal);
        println!(
            "  {:>6}: {:6.2} toggles/cycle, duty {:4.1} %, {} distinct value(s)",
            decl.name(),
            a.toggles_per_cycle,
            a.nonzero_duty * 100.0,
            a.distinct_values
        );
    }

    // 4. Train, show what the miner extracted and the model report.
    let model = flow.train(core.as_mut(), &[stim])?;
    println!(
        "\n{}",
        psmgen::mining::MiningReport::new(&model.table, &[&trace]).render()
    );
    println!("{}", report(&model.psm, Some(&model.table)));
    Ok(())
}
