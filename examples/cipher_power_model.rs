//! Power-models the two cipher benchmarks and contrasts them — the paper's
//! central qualitative result: AES tracks well, Camellia does not, because
//! Camellia's subcomponents (F unit, FL unit, key schedule) alternate
//! invisibly behind one externally uniform "busy" behaviour.
//!
//! ```sh
//! cargo run --release --example cipher_power_model
//! ```

#![deny(deprecated)]

use psmgen::flow::{IpPreset, PsmFlow};
use psmgen::ips::{ip_by_name, testbench};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for name in ["AES", "Camellia"] {
        let flow = PsmFlow::builder()
            .preset(IpPreset::from_name(name).expect("benchmark preset"))
            .build();
        let mut core = ip_by_name(name).expect("benchmark exists");
        let training = testbench::short_ts(name, 1).expect("benchmark exists");
        let model = flow.train(core.as_mut(), &[training])?;

        println!("== {name}: {} states ==", model.psm.state_count());
        for (id, state) in model.psm.states() {
            let a = state.attrs();
            println!(
                "  {id}: μ={:6.3} mW  σ={:5.3}  n={:6}  (σ/μ = {:.2})",
                a.mu(),
                a.sigma(),
                a.n(),
                if a.mu() > 0.0 {
                    a.sigma() / a.mu()
                } else {
                    0.0
                }
            );
        }

        let workload = testbench::long_ts(name, 31, 15_000).expect("benchmark exists");
        let est = flow.estimate(&model, core.as_mut(), &workload)?;
        println!(
            "  fresh workload: MRE {:.2} %, WSP {:.2} %\n",
            est.mre_vs_reference()? * 100.0,
            est.outcome.wsp_rate() * 100.0
        );
    }
    println!("expected shape (paper Table II): AES ~3 %, Camellia ~30 % —");
    println!("a constant-per-state PSM cannot see Camellia's internal alternation.");
    Ok(())
}
