//! Dynamic-power-management exploration — the use case the paper's
//! introduction motivates: once an IP has a trained PSM, a system architect
//! can compare the energy of alternative workload schedules in milliseconds
//! instead of re-running gate-level power simulation for each candidate.
//!
//! Here: the same 96 MAC jobs executed back-to-back (race-to-idle) versus
//! spread out with gaps (always-on) — the PSM prices both instantly, and
//! the golden simulator confirms the ranking.
//!
//! ```sh
//! cargo run --release --example dpm_exploration
//! ```

#![deny(deprecated)]

use psmgen::flow::{IpPreset, PsmFlow};
use psmgen::ips::{behavioural_trace, testbench, MultSum};
use psmgen::rtl::Stimulus;
use psmgen::trace::Bits;
use std::time::Instant;

fn mac_cycle(a: u64, b: u64, en: bool) -> Vec<Bits> {
    vec![
        Bits::from_u64(a, 16),
        Bits::from_u64(b, 16),
        Bits::from_bool(en),
        Bits::from_bool(false),
    ]
}

/// `jobs` bursts of `len` MACs separated by `gap` idle cycles.
fn schedule(jobs: usize, len: usize, gap: usize) -> Stimulus {
    let mut s = Stimulus::new();
    let mut x = 0x1234_5678u64;
    for _ in 0..10 {
        s.push_cycle(mac_cycle(0, 0, false));
    }
    let mut last = (0, 0);
    for _ in 0..jobs {
        for _ in 0..len {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            last = ((x >> 16) & 0xFFFF, (x >> 32) & 0xFFFF);
            s.push_cycle(mac_cycle(last.0, last.1, true));
        }
        for _ in 0..gap {
            s.push_cycle(mac_cycle(last.0, last.1, false));
        }
    }
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    let mut mac = MultSum::new();
    let model = flow.train(&mut mac, &[testbench::multsum_short_ts(1)])?;
    println!(
        "MAC power model trained ({} states) in {:?}\n",
        model.stats.states, model.stats.generation_time
    );

    // Two schedules with identical total work (96 × 32 MACs).
    let candidates = [
        (
            "race-to-idle (3 bursts × 1024, long gaps)",
            schedule(3, 1024, 1024),
        ),
        (
            "always-on (96 bursts × 32, short gaps)",
            schedule(96, 32, 32),
        ),
    ];

    for (label, stim) in &candidates {
        let t0 = Instant::now();
        let trace = behavioural_trace(&mut mac, stim)?;
        let outcome = flow.estimate_from_trace(&model, &trace);
        let psm_time = t0.elapsed();
        let psm_energy = outcome.estimate.total_energy();

        let t0 = Instant::now();
        let golden = flow.reference_power(&mac, stim)?;
        let golden_time = t0.elapsed();

        println!("{label}:");
        println!(
            "  PSM estimate: {:9.1} mW·cycles in {:?}",
            psm_energy, psm_time
        );
        println!(
            "  golden:       {:9.1} mW·cycles in {:?}  (estimate off by {:+.1} %)",
            golden.total_energy(),
            golden_time,
            100.0 * (psm_energy - golden.total_energy()) / golden.total_energy()
        );
    }
    println!("\nThe PSM ranks the schedules like the golden simulator, at a fraction");
    println!("of the cost — the early-DPM-exploration workflow of the paper's intro.");
    Ok(())
}
