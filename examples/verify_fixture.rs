//! Regenerates the bounded-model-checking regression fixture under
//! `examples/artifacts/`:
//!
//! * `verify_defect.json` — a model trained from the *intended* behaviour
//!   of a one-register IP (the output `y` follows the input `en` one
//!   cycle late), mined into `X`/`U` assertions;
//! * `verify_defect.v` — a defective implementation whose register is
//!   gated by its own (reset-zero) output, so `y` is stuck at 0.
//!
//! Against that netlist, `psmlint --verify` must refute the assertions
//! leaving the `en=1, y=0` row (the design never answers with `y=1`) and
//! find the `y=1` rows vacuous (unreachable) — the pinned MC001/MC002
//! regression target of `tests/verify.rs` and `ci.sh`.
//!
//! Run with `cargo run --example verify_fixture`. Both outputs are
//! deterministic, so a fresh run reproduces the checked-in bytes.

use psmgen::flow::{TrainedModel, TrainingStats};
use psmgen::hmm::build_hmm;
use psmgen::mining::{Miner, MiningConfig};
use psmgen::psm::{generate_psm, simplify, MergePolicy};
use psmgen::rtl::{write_verilog, NetlistBuilder, Word};
use psmgen::trace::{Bits, Direction, FunctionalTrace, PowerTrace, SignalSet};

/// The training stimulus: revisits every `(en, y)` row often enough for
/// the miner to emit both an `X` and a `U` assertion per antecedent.
const EN: [bool; 16] = [
    true, true, true, false, false, true, false, true, true, false, false, true, true, true, false,
    false,
];

fn interface() -> SignalSet {
    let mut signals = SignalSet::new();
    signals.push("en", 1, Direction::Input).expect("fresh set");
    signals.push("y", 1, Direction::Output).expect("fresh set");
    signals
}

/// The intended behaviour: `y` follows `en` one cycle late.
fn training_trace() -> FunctionalTrace {
    let mut trace = FunctionalTrace::new(interface());
    let mut y = false;
    for en in EN {
        trace
            .push_cycle(vec![Bits::from_bool(en), Bits::from_bool(y)])
            .expect("interface-shaped cycle");
        y = en;
    }
    trace
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Model of the intended behaviour.
    let functional = training_trace();
    let mined = Miner::new(MiningConfig::default()).mine(&[&functional])?;
    let power: PowerTrace = (0..functional.len())
        .map(|i| 1.0 + (i % 3) as f64)
        .collect();
    let mut psm = generate_psm(&mined.traces[0], &power, 0)?;
    simplify(&mut psm, &MergePolicy::default());
    let hmm = build_hmm(&psm, mined.table.len());
    let stats = TrainingStats {
        training_instants: functional.len(),
        states: psm.state_count(),
        transitions: psm.transition_count(),
        ..TrainingStats::default()
    };
    let model = TrainedModel {
        table: mined.table,
        psm,
        hmm,
        stats,
    };
    model.save("examples/artifacts/verify_defect.json")?;
    println!("wrote examples/artifacts/verify_defect.json");

    // Defective implementation: the register's next value is `en & y`,
    // which with a reset-zero register keeps `y` stuck at 0 forever.
    let mut builder = NetlistBuilder::new("verify_defect");
    let en = builder.input("en", 1);
    let reg = builder.register("y_r", 1);
    let gated = builder.and(en.bit(0), reg.q().bit(0));
    builder.connect_register(&reg, &Word::from_nets(vec![gated]));
    builder.output("y", &reg.q());
    let netlist = builder.finish()?;
    let mut verilog = Vec::new();
    write_verilog(&netlist, &mut verilog)?;
    std::fs::write("examples/artifacts/verify_defect.v", &verilog)?;
    println!("wrote examples/artifacts/verify_defect.v");
    Ok(())
}
