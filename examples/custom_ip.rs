//! Brings your own IP: defines a small peripheral from scratch (a
//! parallel-to-serial UART-style transmitter), gives it both a behavioural
//! model and a structural twin, and runs the whole PSM flow on it.
//!
//! This is the integration path a downstream user follows for their own
//! designs: implement [`Ip`], reuse everything else.
//!
//! ```sh
//! cargo run --release --example custom_ip
//! ```

#![deny(deprecated)]

use psmgen::flow::PsmFlow;
use psmgen::ips::Ip;
use psmgen::rtl::{Netlist, NetlistBuilder, RtlError, Stimulus, Word};
use psmgen::trace::{Bits, Direction, SignalSet};

/// A byte transmitter: `send` latches `data`, then 8 bits shift out on
/// `tx` (LSB first) while `busy` is high.
#[derive(Debug, Default)]
struct TxByte {
    shift: u8,
    remaining: u8,
}

impl Ip for TxByte {
    fn name(&self) -> &'static str {
        "TxByte"
    }

    fn signals(&self) -> SignalSet {
        let mut s = SignalSet::new();
        s.push("data", 8, Direction::Input).expect("unique");
        s.push("send", 1, Direction::Input).expect("unique");
        s.push("tx", 1, Direction::Output).expect("unique");
        s.push("busy", 1, Direction::Output).expect("unique");
        s
    }

    fn netlist(&self) -> Result<Netlist, RtlError> {
        let mut b = NetlistBuilder::new("tx_byte");
        let data = b.input("data", 8);
        let send = b.input("send", 1).bit(0);

        let shift = b.register("shift", 8);
        let count = b.register("count", 4);

        let count_q = count.q();
        let busy = {
            let idle = b.eq_const(&count_q, 0);
            b.not(idle)
        };
        let n_busy = b.not(busy);
        let fire = b.and(send, n_busy);

        // Shift register: load on fire, shift right while busy.
        let shift_q = shift.q();
        let shifted = b.shr_const(&shift_q, 1);
        let held = b.mux_word(busy, &shift_q, &shifted);
        let next_shift = b.mux_word(fire, &held, &data);
        b.connect_register(&shift, &next_shift);

        // Bit counter: 8 on fire, minus one while busy.
        let one = b.const_word(1, 4);
        let dec = b.sub(&count_q, &one).sum;
        let held_c = b.mux_word(busy, &count_q, &dec);
        let eight = b.const_word(8, 4);
        let next_count = b.mux_word(fire, &held_c, &eight);
        b.connect_register(&count, &next_count);

        b.output("tx", &shift.q().slice(0, 1));
        b.output("busy", &Word::from_nets(vec![busy]));
        b.finish()
    }

    fn reset(&mut self) {
        *self = TxByte::default();
    }

    fn step(&mut self, inputs: &[Bits]) -> Vec<Bits> {
        let data = inputs[0].to_u64().expect("8-bit data") as u8;
        let send = inputs[1].bit(0);
        let busy = self.remaining > 0;

        let outs = vec![Bits::from_bool(self.shift & 1 == 1), Bits::from_bool(busy)];

        if busy {
            self.shift >>= 1;
            self.remaining -= 1;
        } else if send {
            self.shift = data;
            self.remaining = 8;
        }
        outs
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simple directed-plus-random testbench for the transmitter.
    let make_stimulus = |seed: u64, frames: usize| {
        let mut s = Stimulus::new();
        let mut x = seed;
        for _ in 0..10 {
            s.push_cycle(vec![Bits::from_u64(0, 8), Bits::from_bool(false)]);
        }
        for _ in 0..frames {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let byte = (x >> 33) & 0xFF;
            s.push_cycle(vec![Bits::from_u64(byte, 8), Bits::from_bool(true)]);
            for _ in 0..8 {
                s.push_cycle(vec![Bits::from_u64(byte, 8), Bits::from_bool(false)]);
            }
            for _ in 0..(3 + (x >> 40) % 9) {
                s.push_cycle(vec![Bits::from_u64(byte, 8), Bits::from_bool(false)]);
            }
        }
        s
    };

    // Tiny peripheral, tiny power levels: tighten the designer knobs.
    let mut flow = PsmFlow::default();
    flow.merge = psmgen::psm::MergePolicy::new(0.005, 0.3);
    flow.mining = flow.mining.with_pair_relations(false);
    let mut ip = TxByte::default();
    let model = flow.train(&mut ip, &[make_stimulus(1, 150)])?;
    println!(
        "TxByte model: {} states, {} transitions",
        model.stats.states, model.stats.transitions
    );
    for (id, state) in model.psm.states() {
        println!(
            "  {id}: {}  —  {}",
            state.attrs(),
            state.chains()[0].render(&model.table)
        );
    }

    let workload = make_stimulus(777, 300);
    let est = flow.estimate(&model, &mut ip, &workload)?;
    println!(
        "fresh workload: MRE {:.2} %, WSP {:.2} %",
        est.mre_vs_reference()? * 100.0,
        est.outcome.wsp_rate() * 100.0
    );
    Ok(())
}
