//! The scoped-thread work engine behind the parallel pipeline.
//!
//! `run_indexed` fans an indexed job set over `std::thread::scope`
//! workers pulling from a shared atomic counter, and returns the results
//! in index order regardless of completion order. Determinism is the
//! contract: the caller sees exactly what a sequential loop would have
//! produced (the first error by *index* wins, not the first in time), so
//! a parallel training run serialises byte-identically to a sequential
//! one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads the engine may use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker; the engine degenerates to a plain loop on the calling
    /// thread. The baseline of the scaling bench.
    Sequential,
    /// One worker per available core (capped by the job count).
    #[default]
    Auto,
    /// An explicit worker count (clamped to at least one).
    Workers(usize),
}

impl Parallelism {
    /// Workers to use for `jobs` items.
    pub fn worker_count(self, jobs: usize) -> usize {
        let cap = match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Workers(n) => n.max(1),
        };
        cap.min(jobs).max(1)
    }
}

/// Runs `f(0..jobs)` across `workers` scoped threads, returning results in
/// index order. With one worker the jobs run inline, in order, with no
/// thread spawned.
pub(crate) fn run_indexed<T, E, F>(jobs: usize, workers: usize, f: F) -> Vec<Result<T, E>>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<T, E>>>> = Mutex::new((0..jobs).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers.min(jobs) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let r = f(i);
                slots.lock().expect("worker slot lock")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("worker slot lock")
        .into_iter()
        .map(|slot| slot.expect("every job index was claimed"))
        .collect()
}

/// Collapses ordered job results into `Ok(all)` or the lowest-index error.
pub(crate) fn collect_ordered<T, E>(results: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 4, 8] {
            let results = run_indexed(100, workers, |i| {
                // Stagger completion so later indices often finish first.
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
                Ok::<usize, ()>(i * i)
            });
            let values = collect_ordered(results).unwrap();
            assert_eq!(values, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        for workers in [1, 4] {
            let results = run_indexed(
                50,
                workers,
                |i| {
                    if i == 9 || i == 33 {
                        Err(i)
                    } else {
                        Ok(i)
                    }
                },
            );
            assert_eq!(collect_ordered(results), Err(9));
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let results = run_indexed(0, 4, Ok::<usize, ()>);
        assert!(collect_ordered(results).unwrap().is_empty());
    }

    #[test]
    fn worker_count_respects_mode_and_jobs() {
        assert_eq!(Parallelism::Sequential.worker_count(16), 1);
        assert_eq!(Parallelism::Workers(4).worker_count(16), 4);
        assert_eq!(Parallelism::Workers(4).worker_count(2), 2);
        assert_eq!(Parallelism::Workers(0).worker_count(2), 1);
        let auto = Parallelism::Auto.worker_count(64);
        assert!(auto >= 1);
        assert_eq!(Parallelism::Auto.worker_count(1), 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }
}
