//! The scoped-thread work engine behind the parallel pipeline.
//!
//! `run_indexed` fans an indexed job set over `std::thread::scope`
//! workers pulling from a shared atomic counter, and returns the results
//! in index order regardless of completion order. Determinism is the
//! contract: the caller sees exactly what a sequential loop would have
//! produced (the first error by *index* wins, not the first in time), so
//! a parallel training run serialises byte-identically to a sequential
//! one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many worker threads the engine may use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One worker; the engine degenerates to a plain loop on the calling
    /// thread. The baseline of the scaling bench.
    Sequential,
    /// One worker per available core (capped by the job count).
    #[default]
    Auto,
    /// An explicit worker count (clamped to at least one).
    Workers(usize),
}

impl Parallelism {
    /// Workers to use for `jobs` items.
    pub fn worker_count(self, jobs: usize) -> usize {
        let cap = match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Workers(n) => n.max(1),
        };
        cap.min(jobs).max(1)
    }
}

/// Splits `items` stimuli into contiguous lane groups for the bit-parallel
/// capture engine (`psm_rtl::BatchSimulator` packs up to 64 stimuli into
/// one run), returning `(start, end)` index ranges.
///
/// The group count balances two pressures:
///
/// * never split below full 64-lane words — fewer, fuller batches amortise
///   the levelized sweep best (`ceil(items / 64)` is the floor);
/// * hand every *effective* worker its own group so the scoped-thread
///   fan-out has work to steal — but never more workers than the host has
///   cores, because splitting one core's worth of lanes across threads
///   only adds merge and scheduling overhead (the pre-batch engine's t2
///   `speedup_vs_1_thread` of 0.83 in BENCH_psmgen.json).
///
/// Grouping never affects results: lanes are fully independent, so the
/// per-stimulus outputs are byte-identical for every partition (pinned by
/// `tests/parallel.rs`).
pub(crate) fn lane_partition(items: usize, parallelism: Parallelism) -> Vec<(usize, usize)> {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    lane_partition_for(items, parallelism, cores)
}

/// Testable core of [`lane_partition`] with an explicit core count.
pub(crate) fn lane_partition_for(
    items: usize,
    parallelism: Parallelism,
    cores: usize,
) -> Vec<(usize, usize)> {
    if items == 0 {
        return Vec::new();
    }
    let want = match parallelism {
        Parallelism::Sequential => 1,
        Parallelism::Auto => cores.max(1),
        Parallelism::Workers(n) => n.clamp(1, cores.max(1)),
    };
    let packed = items.div_ceil(64);
    let groups = packed.max(want.min(items));
    // Contiguous near-equal ranges: the first `rem` groups get one extra.
    let base = items / groups;
    let rem = items % groups;
    let mut out = Vec::with_capacity(groups);
    let mut start = 0;
    for g in 0..groups {
        let len = base + usize::from(g < rem);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Runs `f(0..jobs)` across `workers` scoped threads, returning results in
/// index order. With one worker the jobs run inline, in order, with no
/// thread spawned.
pub(crate) fn run_indexed<T, E, F>(jobs: usize, workers: usize, f: F) -> Vec<Result<T, E>>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<Result<T, E>>>> = Mutex::new((0..jobs).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..workers.min(jobs) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let r = f(i);
                slots.lock().expect("worker slot lock")[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .expect("worker slot lock")
        .into_iter()
        .map(|slot| slot.expect("every job index was claimed"))
        .collect()
}

/// Collapses ordered job results into `Ok(all)` or the lowest-index error.
pub(crate) fn collect_ordered<T, E>(results: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 4, 8] {
            let results = run_indexed(100, workers, |i| {
                // Stagger completion so later indices often finish first.
                if i % 7 == 0 {
                    std::thread::yield_now();
                }
                Ok::<usize, ()>(i * i)
            });
            let values = collect_ordered(results).unwrap();
            assert_eq!(values, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        for workers in [1, 4] {
            let results = run_indexed(
                50,
                workers,
                |i| {
                    if i == 9 || i == 33 {
                        Err(i)
                    } else {
                        Ok(i)
                    }
                },
            );
            assert_eq!(collect_ordered(results), Err(9));
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let results = run_indexed(0, 4, Ok::<usize, ()>);
        assert!(collect_ordered(results).unwrap().is_empty());
    }

    #[test]
    fn lane_partition_covers_contiguously() {
        for (items, par, cores) in [
            (4, Parallelism::Sequential, 8),
            (4, Parallelism::Auto, 1),
            (4, Parallelism::Auto, 8),
            (67, Parallelism::Workers(2), 2),
            (130, Parallelism::Auto, 4),
            (1, Parallelism::Workers(8), 8),
        ] {
            let groups = lane_partition_for(items, par, cores);
            let mut expect = 0;
            for &(start, end) in &groups {
                assert_eq!(start, expect, "{items} items, {par:?}, {cores} cores");
                assert!(end > start, "no empty groups");
                assert!(end - start <= 64, "a group never exceeds one lane word");
                expect = end;
            }
            assert_eq!(expect, items, "every stimulus is covered once");
        }
    }

    #[test]
    fn lane_partition_matches_effective_workers() {
        // One core: everything packs into the fewest possible batches,
        // regardless of the requested worker count.
        assert_eq!(lane_partition_for(4, Parallelism::Workers(8), 1).len(), 1);
        assert_eq!(lane_partition_for(70, Parallelism::Workers(8), 1).len(), 2);
        // Multi-core: one group per effective worker.
        assert_eq!(lane_partition_for(4, Parallelism::Workers(2), 4).len(), 2);
        assert_eq!(lane_partition_for(4, Parallelism::Auto, 4).len(), 4);
        // Never more groups than items.
        assert_eq!(lane_partition_for(2, Parallelism::Auto, 16).len(), 2);
        // Sequential always packs maximally.
        assert_eq!(lane_partition_for(64, Parallelism::Sequential, 16).len(), 1);
        assert!(lane_partition_for(0, Parallelism::Auto, 4).is_empty());
    }

    #[test]
    fn worker_count_respects_mode_and_jobs() {
        assert_eq!(Parallelism::Sequential.worker_count(16), 1);
        assert_eq!(Parallelism::Workers(4).worker_count(16), 4);
        assert_eq!(Parallelism::Workers(4).worker_count(2), 2);
        assert_eq!(Parallelism::Workers(0).worker_count(2), 1);
        let auto = Parallelism::Auto.worker_count(64);
        assert!(auto >= 1);
        assert_eq!(Parallelism::Auto.worker_count(1), 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }
}
