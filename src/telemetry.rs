//! Per-stage telemetry of the pipeline (re-export of [`psm_telemetry`]).
//!
//! The collector and report types moved into the `psm-telemetry` crate so
//! that the `psm-serve` daemon can record spans, per-opcode counters and
//! queue/batch gauges through the same layer the training engine uses,
//! without depending on this facade. The API is unchanged: [`Telemetry`],
//! [`TelemetryReport`], [`Stage`], [`Span`], [`Counters`] and the new
//! [`GaugeSnapshot`] all live here as before.

pub use psm_telemetry::{Counters, GaugeSnapshot, Span, Stage, Telemetry, TelemetryReport};
