//! `psmgen` — automatic generation of power state machines through dynamic
//! mining of temporal assertions.
//!
//! This crate is the facade of a workspace reproducing Danese, Pravadelli
//! and Zandonà, *DATE 2016*. It re-exports the layer crates and adds the
//! end-to-end [`PsmFlow`](flow::PsmFlow) pipeline that the paper's Fig. 1
//! describes:
//!
//! ```text
//! functional traces ─┬─► assertion mining ─► PSM generation ─► simplify
//! power traces ──────┘                                           │
//!        HMM simulation ◄─ calibration ◄─ join ◄─────────────────┘
//! ```
//!
//! Flows are configured through [`PsmFlow::builder`](flow::PsmFlow::builder)
//! (with [`IpPreset`](flow::IpPreset) for the paper's benchmarks). Training
//! and estimation fan across scoped worker threads
//! ([`Parallelism`](flow::Parallelism)) with a deterministic merge, and
//! every pipeline stage is instrumented ([`telemetry`]).
//!
//! # Quickstart
//!
//! Train PSMs for the 1 KB RAM benchmark and estimate power on a fresh
//! workload:
//!
//! ```
//! use psmgen::flow::{IpPreset, PsmFlow};
//! use psmgen::ips::{testbench, Ram1k};
//!
//! let flow = PsmFlow::builder().preset(IpPreset::Ram1k).build();
//! let training = testbench::short_ts("RAM", 1).expect("RAM exists");
//! let model = flow.train(&mut Ram1k::new(), &[training])?;
//!
//! let workload = testbench::long_ts("RAM", 2, 2_000).expect("RAM exists");
//! let estimate = flow.estimate(&model, &mut Ram1k::new(), &workload)?;
//! assert_eq!(estimate.outcome.estimate.len(), workload.len());
//! // The reference power of the same workload tells us the accuracy:
//! assert!(estimate.mre_vs_reference()? < 0.2);
//! # Ok::<(), psmgen::flow::FlowError>(())
//! ```
//!
//! The layer crates are re-exported under short names: [`stats`],
//! [`trace`], [`rtl`], [`ips`], [`mining`], [`psm`], [`hmm`], [`analyze`],
//! [`compile`] (the flat-table serving runtime) and [`serve`] (the `psmd`
//! estimation daemon and its `psmctl` client).
//! The static lints of [`analyze`] also run inside the flow
//! itself (the telemetry's `validate` stage, gated by
//! [`Strictness`](flow::Strictness)) and behind the `psmlint` binary.

#![deny(missing_docs)]

pub use psm_analyze as analyze;
pub use psm_compile as compile;
/// The PSM core crate (`psm-core`).
pub use psm_core as psm;
pub use psm_hmm as hmm;
pub use psm_ips as ips;
pub use psm_mining as mining;
pub use psm_rtl as rtl;
pub use psm_serve as serve;
pub use psm_stats as stats;
pub use psm_trace as trace;

pub mod flow;
pub mod parallel;
mod persist;
pub mod telemetry;
