//! JSON persistence for the facade model types.
//!
//! The substrate impls (`Psm`, `Hmm`, `PropositionTable`, …) live in their
//! owning crates; this module adds the facade closure — [`TrainingStats`],
//! [`TrainedModel`], [`HierarchicalModel`] — plus the path-level
//! save/load helpers that wrap failures in [`FlowError::Persistence`].
//!
//! The serialised form is canonical: field order is fixed, numbers render
//! through the deterministic `psm-persist` writer, and the wall-clock
//! `Duration` fields of [`TrainingStats`] are excluded (they depend on the
//! machine and the worker schedule, and would break the parallel engine's
//! byte-identity guarantee).

use crate::flow::{FlowError, HierarchicalModel, TrainedModel, TrainingStats};
use psm_persist::{JsonValue, Persist, PersistError};
use std::path::Path;

impl Persist for TrainingStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("training_instants", JsonValue::from(self.training_instants)),
            ("states", JsonValue::from(self.states)),
            ("transitions", JsonValue::from(self.transitions)),
            (
                "states_before_optimisation",
                JsonValue::from(self.states_before_optimisation),
            ),
            ("states_merged", JsonValue::from(self.states_merged)),
            ("calibrated_states", JsonValue::from(self.calibrated_states)),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        Ok(TrainingStats {
            training_instants: v.usize_field("training_instants")?,
            states: v.usize_field("states")?,
            transitions: v.usize_field("transitions")?,
            states_before_optimisation: v.usize_field("states_before_optimisation")?,
            states_merged: v.usize_field("states_merged")?,
            calibrated_states: v.usize_field("calibrated_states")?,
            ..TrainingStats::default()
        })
    }
}

impl Persist for TrainedModel {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("table", self.table.to_json()),
            ("psm", self.psm.to_json()),
            ("hmm", self.hmm.to_json()),
            ("stats", self.stats.to_json()),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        Ok(TrainedModel {
            table: Persist::from_json(v.field("table")?)?,
            psm: Persist::from_json(v.field("psm")?)?,
            hmm: Persist::from_json(v.field("hmm")?)?,
            stats: Persist::from_json(v.field("stats")?)?,
        })
    }
}

impl Persist for HierarchicalModel {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("domains", self.domains.to_json()),
            ("models", self.models.to_json()),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        let model = HierarchicalModel {
            domains: Persist::from_json(v.field("domains")?)?,
            models: Persist::from_json(v.field("models")?)?,
        };
        if model.domains.len() != model.models.len() {
            return Err(PersistError::schema(format!(
                "{} domains but {} models",
                model.domains.len(),
                model.models.len()
            )));
        }
        Ok(model)
    }
}

/// The canonical serialised JSON body of a model — the byte string the
/// parallel-equivalence tests compare. [`TrainedModel::save`] wraps this
/// body in the versioned artifact container
/// (`psm_persist::encode_artifact`, header `psmgen-artifact/v2`).
pub(crate) fn render_model<T: Persist>(value: &T) -> String {
    value.to_json().render()
}

pub(crate) fn save_to_path<T: Persist>(value: &T, path: &Path) -> Result<(), FlowError> {
    std::fs::write(path, psm_persist::encode_artifact(&value.to_json()))
        .map_err(|e| FlowError::persistence_io(path, e))
}

/// Writes `model` as a `psmgen-artifact/v3`: the canonical v2 body plus a
/// `"compiled"` field carrying the flat-table serving form. Backs
/// [`TrainedModel::save_compiled`] and `psmctl compile`.
pub(crate) fn save_compiled_to_path(model: &TrainedModel, path: &Path) -> Result<(), FlowError> {
    let compiled = model
        .compile()
        .map_err(|e| FlowError::persistence_format(path, PersistError::schema(e.to_string())))?;
    let mut body = model.to_json();
    let JsonValue::Obj(fields) = &mut body else {
        unreachable!("TrainedModel::to_json returns an object");
    };
    fields.push(("compiled".to_owned(), compiled.to_json()));
    std::fs::write(
        path,
        psm_persist::encode_artifact_versioned(&body, psm_persist::ARTIFACT_VERSION_COMPILED),
    )
    .map_err(|e| FlowError::persistence_io(path, e))
}

pub(crate) fn load_from_path<T: Persist>(path: &Path) -> Result<T, FlowError> {
    let text = std::fs::read_to_string(path).map_err(|e| FlowError::persistence_io(path, e))?;
    // Both container versions load: v2 (headered) and the PR 1-era bare
    // JSON (v1). Truncated or wrong-magic files fail structurally here.
    let (_, doc) =
        psm_persist::decode_artifact(&text).map_err(|e| FlowError::persistence_format(path, e))?;
    T::from_json(&doc).map_err(|e| FlowError::persistence_format(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_round_trip_without_durations() {
        let stats = TrainingStats {
            training_instants: 1234,
            reference_power_time: std::time::Duration::from_millis(5),
            generation_time: std::time::Duration::from_millis(7),
            states: 9,
            transitions: 14,
            states_before_optimisation: 31,
            states_merged: 22,
            calibrated_states: 3,
        };
        let back = TrainingStats::from_json(&stats.to_json()).unwrap();
        assert_eq!(back.training_instants, stats.training_instants);
        assert_eq!(back.states, stats.states);
        assert_eq!(back.transitions, stats.transitions);
        assert_eq!(
            back.states_before_optimisation,
            stats.states_before_optimisation
        );
        assert_eq!(back.states_merged, stats.states_merged);
        assert_eq!(back.calibrated_states, stats.calibrated_states);
        assert_eq!(back.reference_power_time, std::time::Duration::ZERO);
        assert_eq!(back.generation_time, std::time::Duration::ZERO);
        // Serialisation is schedule-independent: two runs differing only in
        // wall-clock render identically.
        let other = TrainingStats {
            reference_power_time: std::time::Duration::from_secs(60),
            generation_time: std::time::Duration::from_secs(61),
            ..stats.clone()
        };
        assert_eq!(stats.to_json().render(), other.to_json().render());
    }

    #[test]
    fn hierarchical_schema_rejects_misaligned_lengths() {
        let doc = JsonValue::parse(r#"{"domains":["core"],"models":[]}"#).unwrap();
        assert!(HierarchicalModel::from_json(&doc).is_err());
    }
}
