//! `psmctl` — client CLI for the `psmd` estimation daemon.
//!
//! Submits functional traces for estimation (generated from the built-in
//! IP testbenches or loaded from a trace artifact) as binary v2 frames —
//! one-shot, streamed in chunks, or the v1 JSON dialect on request —
//! benchmarks a daemon with pipelined streams, lists and hot-reloads the
//! daemon's model registry, fetches its stats, and shuts it down.
//! Results print as text or the machine-readable JSON the workspace's
//! other tools emit on stdout; progress goes to stderr.

use psm_persist::{decode_artifact, JsonValue, Persist};
use psmgen::ips::{behavioural_trace, ip_by_name, testbench};
use psmgen::serve::protocol::{self, Frame, Opcode, Status};
use psmgen::serve::{Client, ClientError, EstimateReply, ModelInfo, DEFAULT_ADDR};
use psmgen::trace::FunctionalTrace;
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const USAGE: &str = "\
usage: psmctl [--addr <ip:port>] <command> [options]

Commands:
  ping                        liveness probe and protocol negotiation
  list                        models in the daemon's registry snapshot
  estimate <model>            estimate a workload against <model>
      --version <n>           pin a registry version (default: latest)
      --gen <IP>:<seed>:<cycles>  generate the workload from a built-in
                              testbench (IP: RAM, MultSum, AES, Camellia)
      --trace <path>          load the workload from a trace artifact
                              (FunctionalTrace JSON)
      --json-payload          send the trace as v1 JSON instead of the
                              default v2 binary frames
      --stream                stream the workload through a session
      --chunks <k>            cycles per streamed chunk (default 256)
      --slow-write-ms <ms>    write the request in two halves with a
                              pause between them (I/O testing aid)
      --format <text|json>    output format (default text)
  bench <model>               streaming throughput/latency benchmark
      --gen <IP>:<seed>:<cycles>  the per-chunk workload (required;
                              the seed makes runs reproducible)
      --clients <n>           parallel connections (default 4)
      --streams <m>           in-flight streams per connection (default 4)
      --rounds <r>            chunks sent per stream (default 32)
      --format <text|json>    report format (default text)
  stats [--format text|json]  the daemon's telemetry report
  reload                      atomically reload the model registry
  shutdown                    drain in-flight work and stop the daemon
  compile <in> <out>          offline: rewrite a trained-model artifact
                              (v1/v2) as a psmgen-artifact/v3 with the
                              flat-table serving form precomputed; psmd
                              verifies and serves it without compiling

Options:
  --addr <ip:port>  daemon address (default 127.0.0.1:7411)
  -h, --help        show this help

Exit status: 0 on success, 1 on errors, 2 on usage errors, 3 when the
daemon answered BUSY (queue full — safe to retry).";

fn fail(message: &str) -> ExitCode {
    eprintln!("psmctl: {message}");
    ExitCode::FAILURE
}

fn client_exit(err: &ClientError) -> ExitCode {
    eprintln!("psmctl: {err}");
    match err {
        ClientError::Busy => ExitCode::from(3),
        _ => ExitCode::FAILURE,
    }
}

/// Builds the estimate workload from `--gen IP:seed:cycles` or `--trace`.
fn load_workload(gen: Option<&str>, trace: Option<&str>) -> Result<FunctionalTrace, String> {
    match (gen, trace) {
        (Some(spec), None) => {
            let parts: Vec<&str> = spec.split(':').collect();
            let [ip_name, seed, cycles] = parts.as_slice() else {
                return Err(format!("--gen wants <IP>:<seed>:<cycles>, got `{spec}`"));
            };
            let seed: u64 = seed.parse().map_err(|_| format!("bad seed `{seed}`"))?;
            let cycles: usize = cycles
                .parse()
                .map_err(|_| format!("bad cycle count `{cycles}`"))?;
            let stimulus = testbench::long_ts(ip_name, seed, cycles)
                .ok_or_else(|| format!("unknown IP `{ip_name}`"))?;
            let mut ip = ip_by_name(ip_name).ok_or_else(|| format!("unknown IP `{ip_name}`"))?;
            behavioural_trace(ip.as_mut(), &stimulus).map_err(|e| format!("generating trace: {e}"))
        }
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let (_, doc) = decode_artifact(&text).map_err(|e| format!("{path}: {e}"))?;
            FunctionalTrace::from_json(&doc).map_err(|e| format!("{path}: {e}"))
        }
        _ => Err("estimate needs exactly one of --gen or --trace".to_owned()),
    }
}

fn print_models(models: &[ModelInfo], action: &str) {
    println!("{action}: {} model(s)", models.len());
    for m in models {
        println!(
            "  {}@{}  format v{}  {} state(s), {} proposition(s)",
            m.name, m.version, m.format_version, m.states, m.propositions
        );
    }
}

fn print_estimate(reply: &EstimateReply, format: &str) {
    if format == "json" {
        let doc = JsonValue::obj([
            ("model", JsonValue::from(reply.model.as_str())),
            ("version", JsonValue::from(reply.version)),
            ("cycles", JsonValue::from(reply.estimate.len())),
            ("mean_mw", JsonValue::from_f64(reply.mean_power())),
            (
                "wrong_state_predictions",
                JsonValue::from(reply.wrong_state_predictions),
            ),
            ("unknown_instants", JsonValue::from(reply.unknown_instants)),
            (
                "estimate",
                JsonValue::arr(reply.estimate.iter().map(|&v| JsonValue::from_f64(v))),
            ),
        ]);
        println!("{}", doc.render());
    } else {
        println!(
            "{}@{}: {} cycle(s), mean {:.4} mW, {} wrong-state prediction(s), {} unknown instant(s)",
            reply.model,
            reply.version,
            reply.estimate.len(),
            reply.mean_power(),
            reply.wrong_state_predictions,
            reply.unknown_instants
        );
    }
}

/// Streams the workload through one session in `chunk` cycle pieces.
fn stream_estimate(
    client: &mut Client,
    model: &str,
    version: Option<u64>,
    workload: &FunctionalTrace,
    chunk: usize,
) -> Result<EstimateReply, ClientError> {
    let mut stream = client.open_stream(model, version, workload.signals())?;
    let mut estimate = Vec::with_capacity(workload.len());
    for piece in workload.split_windows(chunk) {
        estimate.extend(stream.send_chunk(&piece)?.estimate);
    }
    let summary = stream.close()?;
    Ok(EstimateReply {
        model: summary.model,
        version: summary.version,
        estimate,
        wrong_state_predictions: summary.wrong_state_predictions,
        unknown_instants: summary.unknown_instants,
    })
}

/// One-shot binary estimate written in two halves with a pause between
/// them — exercises the daemon's partial-read handling from the CLI.
fn slow_estimate(
    addr: &str,
    model: &str,
    version: Option<u64>,
    workload: &FunctionalTrace,
    pause: Duration,
) -> Result<EstimateReply, ClientError> {
    protocol::validate_model_name(model)?;
    let mut sock = TcpStream::connect(addr)?;
    let _ = sock.set_nodelay(true);
    let payload = protocol::estimate_bin_request(model, version, workload);
    let mut bytes = Vec::new();
    protocol::write_frame(
        &mut bytes,
        &Frame::request_v(2, Opcode::EstimateBin, 1, payload),
    )?;
    let half = bytes.len() / 2;
    sock.write_all(&bytes[..half])?;
    std::thread::sleep(pause);
    sock.write_all(&bytes[half..])?;
    let frame = protocol::read_frame(&mut sock)?.ok_or(ClientError::Disconnected)?;
    match frame.status() {
        Some(Status::Ok) => {
            let bin = protocol::parse_estimate_bin_reply(&frame)?;
            Ok(EstimateReply {
                model: bin.model,
                version: bin.version,
                estimate: bin.estimate,
                wrong_state_predictions: bin.wrong_state_predictions as usize,
                unknown_instants: bin.unknown_instants as usize,
            })
        }
        Some(Status::Busy) => Err(ClientError::Busy),
        _ => Err(ClientError::Server(protocol::parse_error(&frame))),
    }
}

/// The `bench` report: latencies in nanoseconds plus wall-clock facts.
struct BenchReport {
    clients: usize,
    streams: usize,
    rounds: usize,
    chunk_cycles: usize,
    wall: Duration,
    latencies_ns: Vec<u64>,
}

impl BenchReport {
    fn chunks(&self) -> usize {
        self.latencies_ns.len()
    }

    fn chunks_per_sec(&self) -> f64 {
        self.chunks() as f64 / self.wall.as_secs_f64()
    }

    fn percentile_ns(&self, p: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_ns.len() - 1) as f64 * p).round() as usize;
        self.latencies_ns[idx]
    }

    fn print(&self, format: &str) {
        let p50 = self.percentile_ns(0.50);
        let p99 = self.percentile_ns(0.99);
        if format == "json" {
            let doc = JsonValue::obj([
                ("clients", JsonValue::from(self.clients)),
                ("streams_per_client", JsonValue::from(self.streams)),
                ("rounds", JsonValue::from(self.rounds)),
                ("chunk_cycles", JsonValue::from(self.chunk_cycles)),
                ("chunks", JsonValue::from(self.chunks())),
                (
                    "wall_ms",
                    JsonValue::from_f64(self.wall.as_secs_f64() * 1e3),
                ),
                ("chunks_per_sec", JsonValue::from_f64(self.chunks_per_sec())),
                (
                    "cycles_per_sec",
                    JsonValue::from_f64(self.chunks_per_sec() * self.chunk_cycles as f64),
                ),
                ("p50_ns", JsonValue::from(p50)),
                ("p99_ns", JsonValue::from(p99)),
            ]);
            println!("{}", doc.render());
        } else {
            println!(
                "bench: {} client(s) × {} stream(s) × {} round(s) = {} chunk(s) of {} cycle(s)",
                self.clients,
                self.streams,
                self.rounds,
                self.chunks(),
                self.chunk_cycles
            );
            println!(
                "throughput: {:.1} chunk/s ({:.0} cycle/s) over {:.2} s",
                self.chunks_per_sec(),
                self.chunks_per_sec() * self.chunk_cycles as f64,
                self.wall.as_secs_f64()
            );
            println!(
                "latency: p50 {:.3} ms, p99 {:.3} ms",
                p50 as f64 / 1e6,
                p99 as f64 / 1e6
            );
        }
    }
}

/// One bench connection: `streams` pipelined sessions fed `rounds`
/// chunks each, chunk latencies measured per response id.
fn bench_connection(
    addr: &str,
    model: &str,
    version: Option<u64>,
    chunk: &FunctionalTrace,
    streams: usize,
    rounds: usize,
) -> Result<Vec<u64>, ClientError> {
    protocol::validate_model_name(model)?;
    let mut client = Client::connect(addr)?;
    // Open every stream up front (ids 1..=streams), pipelined.
    for s in 0..streams {
        let payload = protocol::stream_open_request(s as u32 + 1, model, version, chunk.signals());
        client.pipeline_request(Opcode::StreamOpen, payload)?;
    }
    for _ in 0..streams {
        let frame = client.pipeline_response()?;
        if frame.status() != Some(Status::Ok) {
            return Err(ClientError::Server(protocol::parse_error(&frame)));
        }
    }
    // Rounds of one chunk per stream: `streams` requests in flight, each
    // latency measured from its own send. Responses of different streams
    // may arrive out of order — pair them by request id.
    let mut latencies = Vec::with_capacity(streams * rounds);
    let mut in_flight: HashMap<u64, Instant> = HashMap::with_capacity(streams);
    for _ in 0..rounds {
        for s in 0..streams {
            let payload = protocol::stream_chunk_request(s as u32 + 1, chunk);
            let id = client.pipeline_request(Opcode::StreamChunk, payload)?;
            in_flight.insert(id, Instant::now());
        }
        for _ in 0..streams {
            let frame = client.pipeline_response()?;
            let sent = in_flight
                .remove(&frame.request_id)
                .ok_or_else(|| ClientError::Server("unsolicited response id".into()))?;
            if frame.status() != Some(Status::Ok) {
                return Err(ClientError::Server(protocol::parse_error(&frame)));
            }
            latencies.push(sent.elapsed().as_nanos() as u64);
        }
    }
    for s in 0..streams {
        client.pipeline_request(
            Opcode::StreamClose,
            protocol::stream_close_request(s as u32 + 1),
        )?;
    }
    for _ in 0..streams {
        let frame = client.pipeline_response()?;
        if frame.status() != Some(Status::Ok) {
            return Err(ClientError::Server(protocol::parse_error(&frame)));
        }
    }
    Ok(latencies)
}

#[allow(clippy::too_many_arguments)]
fn run_bench(
    addr: &str,
    model: &str,
    version: Option<u64>,
    chunk: FunctionalTrace,
    clients: usize,
    streams: usize,
    rounds: usize,
    format: &str,
) -> ExitCode {
    eprintln!(
        "psmctl: benching {model} at {addr}: {clients} client(s) × {streams} stream(s) × \
         {rounds} round(s), {} cycle(s) per chunk",
        chunk.len()
    );
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.to_owned();
            let model = model.to_owned();
            let chunk = chunk.clone();
            std::thread::spawn(move || {
                bench_connection(&addr, &model, version, &chunk, streams, rounds)
            })
        })
        .collect();
    let mut latencies_ns = Vec::with_capacity(clients * streams * rounds);
    for handle in handles {
        match handle.join() {
            Ok(Ok(lat)) => latencies_ns.extend(lat),
            Ok(Err(e)) => return client_exit(&e),
            Err(_) => return fail("bench connection thread panicked"),
        }
    }
    let wall = t0.elapsed();
    latencies_ns.sort_unstable();
    BenchReport {
        clients,
        streams,
        rounds,
        chunk_cycles: chunk.len(),
        wall,
        latencies_ns,
    }
    .print(format);
    ExitCode::SUCCESS
}

/// The offline `compile` command: trained artifact in (any readable
/// format version), `psmgen-artifact/v3` with a verified-identical
/// compiled section out. No daemon involved.
fn run_compile(input: &str, output: &str) -> ExitCode {
    let model = match psmgen::flow::TrainedModel::load(input) {
        Ok(model) => model,
        Err(e) => return fail(&e.to_string()),
    };
    let compiled = match model.compile() {
        Ok(compiled) => compiled,
        Err(e) => return fail(&format!("{input}: {e}")),
    };
    if let Err(e) = model.save_compiled(output) {
        return fail(&e.to_string());
    }
    println!(
        "compiled {input} -> {output}: {} state(s), {} symbol(s), {} dictionary row(s), \
         {} byte(s) of tables",
        compiled.num_states(),
        compiled.num_symbols(),
        compiled.dictionary_len(),
        compiled.footprint_bytes()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut format = "text".to_owned();
    let mut version: Option<u64> = None;
    let mut gen: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut command: Option<String> = None;
    let mut model: Option<String> = None;
    let mut second: Option<String> = None;
    let mut json_payload = false;
    let mut stream_mode = false;
    let mut chunk_cycles = 256usize;
    let mut slow_write: Option<Duration> = None;
    let mut clients = 4usize;
    let mut streams = 4usize;
    let mut rounds = 32usize;

    let parse_pos = |text: Option<&String>, what: &str| -> Result<usize, String> {
        text.and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .ok_or_else(|| format!("{what} needs a positive number"))
    };

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => return fail("--addr needs ip:port"),
            },
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" => format = f.clone(),
                _ => return fail("--format needs text or json"),
            },
            "--version" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => version = Some(v),
                None => return fail("--version needs a number"),
            },
            "--gen" => match it.next() {
                Some(spec) => gen = Some(spec.clone()),
                None => return fail("--gen needs <IP>:<seed>:<cycles>"),
            },
            "--trace" => match it.next() {
                Some(path) => trace_path = Some(path.clone()),
                None => return fail("--trace needs a path"),
            },
            "--json-payload" => json_payload = true,
            "--stream" => stream_mode = true,
            "--chunks" => match parse_pos(it.next(), "--chunks") {
                Ok(n) => chunk_cycles = n,
                Err(e) => return fail(&e),
            },
            "--slow-write-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => slow_write = Some(Duration::from_millis(ms)),
                None => return fail("--slow-write-ms needs a number"),
            },
            "--clients" => match parse_pos(it.next(), "--clients") {
                Ok(n) => clients = n,
                Err(e) => return fail(&e),
            },
            "--streams" => match parse_pos(it.next(), "--streams") {
                Ok(n) => streams = n,
                Err(e) => return fail(&e),
            },
            "--rounds" => match parse_pos(it.next(), "--rounds") {
                Ok(n) => rounds = n,
                Err(e) => return fail(&e),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("psmctl: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            word if command.is_none() => command = Some(word.to_owned()),
            word if matches!(
                command.as_deref(),
                Some("estimate") | Some("bench") | Some("compile")
            ) && model.is_none() =>
            {
                model = Some(word.to_owned());
            }
            word if matches!(command.as_deref(), Some("compile")) && second.is_none() => {
                second = Some(word.to_owned());
            }
            word => {
                eprintln!("psmctl: unexpected argument `{word}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let Some(command) = command else {
        eprintln!("psmctl: no command given\n{USAGE}");
        return ExitCode::from(2);
    };

    if command == "bench" {
        let Some(model) = model else {
            eprintln!("psmctl: bench needs a model name\n{USAGE}");
            return ExitCode::from(2);
        };
        let workload = match load_workload(gen.as_deref(), trace_path.as_deref()) {
            Ok(trace) => trace,
            Err(message) => {
                eprintln!("psmctl: {message}\n{USAGE}");
                return ExitCode::from(2);
            }
        };
        return run_bench(
            &addr, &model, version, workload, clients, streams, rounds, &format,
        );
    }

    if command == "compile" {
        let (Some(input), Some(output)) = (model.as_deref(), second.as_deref()) else {
            eprintln!("psmctl: compile needs <in> and <out> artifact paths\n{USAGE}");
            return ExitCode::from(2);
        };
        return run_compile(input, output);
    }

    let mut client = match Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => return fail(&format!("cannot connect to {addr}: {e}")),
    };

    match command.as_str() {
        "ping" => match client.negotiate().and_then(|v| {
            client.ping()?;
            Ok(v)
        }) {
            Ok(v) => {
                println!("psmd at {addr} is alive (psmd/v{v})");
                ExitCode::SUCCESS
            }
            Err(e) => client_exit(&e),
        },
        "list" => match client.list() {
            Ok(models) => {
                print_models(&models, "registry");
                ExitCode::SUCCESS
            }
            Err(e) => client_exit(&e),
        },
        "estimate" => {
            let Some(model) = model else {
                eprintln!("psmctl: estimate needs a model name\n{USAGE}");
                return ExitCode::from(2);
            };
            let workload = match load_workload(gen.as_deref(), trace_path.as_deref()) {
                Ok(trace) => trace,
                Err(message) => {
                    eprintln!("psmctl: {message}\n{USAGE}");
                    return ExitCode::from(2);
                }
            };
            let payload_kind = match (stream_mode, json_payload) {
                (true, _) => "streamed binary",
                (false, true) => "JSON",
                (false, false) => "binary",
            };
            eprintln!(
                "psmctl: submitting {} cycle(s) to {model} at {addr} ({payload_kind} payload)",
                workload.len()
            );
            let result = if let Some(pause) = slow_write {
                slow_estimate(&addr, &model, version, &workload, pause)
            } else if stream_mode {
                stream_estimate(&mut client, &model, version, &workload, chunk_cycles)
            } else if json_payload {
                client.estimate_json(&model, version, &workload)
            } else {
                client.estimate_binary(&model, version, &workload)
            };
            match result {
                Ok(reply) => {
                    print_estimate(&reply, &format);
                    ExitCode::SUCCESS
                }
                Err(e) => client_exit(&e),
            }
        }
        "stats" => {
            let result = if format == "json" {
                client.stats_json().map(|doc| doc.render())
            } else {
                client.stats_text()
            };
            match result {
                Ok(stats) => {
                    println!("{stats}");
                    ExitCode::SUCCESS
                }
                Err(e) => client_exit(&e),
            }
        }
        "reload" => match client.reload() {
            Ok(models) => {
                print_models(&models, "reloaded");
                ExitCode::SUCCESS
            }
            Err(e) => client_exit(&e),
        },
        "shutdown" => match client.shutdown() {
            Ok(()) => {
                println!("psmd at {addr} is draining and shutting down");
                ExitCode::SUCCESS
            }
            Err(e) => client_exit(&e),
        },
        other => {
            eprintln!("psmctl: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
