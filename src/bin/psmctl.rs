//! `psmctl` — client CLI for the `psmd` estimation daemon.
//!
//! Submits functional traces for estimation (generated from the built-in
//! IP testbenches or loaded from a trace artifact), lists and hot-reloads
//! the daemon's model registry, fetches its stats, and shuts it down.
//! Results print as text or the machine-readable JSON the workspace's
//! other tools emit on stdout; progress goes to stderr.

use psm_persist::{decode_artifact, JsonValue, Persist};
use psmgen::ips::{behavioural_trace, ip_by_name, testbench};
use psmgen::serve::{Client, ClientError, EstimateReply, ModelInfo, DEFAULT_ADDR};
use psmgen::trace::FunctionalTrace;
use std::process::ExitCode;

const USAGE: &str = "\
usage: psmctl [--addr <ip:port>] <command> [options]

Commands:
  ping                        liveness probe
  list                        models in the daemon's registry snapshot
  estimate <model>            estimate a workload against <model>
      --version <n>           pin a registry version (default: latest)
      --gen <IP>:<seed>:<cycles>  generate the workload from a built-in
                              testbench (IP: RAM, MultSum, AES, Camellia)
      --trace <path>          load the workload from a trace artifact
                              (FunctionalTrace JSON)
      --format <text|json>    output format (default text)
  stats [--format text|json]  the daemon's telemetry report
  reload                      atomically reload the model registry
  shutdown                    drain in-flight work and stop the daemon

Options:
  --addr <ip:port>  daemon address (default 127.0.0.1:7411)
  -h, --help        show this help

Exit status: 0 on success, 1 on errors, 2 on usage errors, 3 when the
daemon answered BUSY (queue full — safe to retry).";

fn fail(message: &str) -> ExitCode {
    eprintln!("psmctl: {message}");
    ExitCode::FAILURE
}

fn client_exit(err: &ClientError) -> ExitCode {
    eprintln!("psmctl: {err}");
    match err {
        ClientError::Busy => ExitCode::from(3),
        _ => ExitCode::FAILURE,
    }
}

/// Builds the estimate workload from `--gen IP:seed:cycles` or `--trace`.
fn load_workload(gen: Option<&str>, trace: Option<&str>) -> Result<FunctionalTrace, String> {
    match (gen, trace) {
        (Some(spec), None) => {
            let parts: Vec<&str> = spec.split(':').collect();
            let [ip_name, seed, cycles] = parts.as_slice() else {
                return Err(format!("--gen wants <IP>:<seed>:<cycles>, got `{spec}`"));
            };
            let seed: u64 = seed.parse().map_err(|_| format!("bad seed `{seed}`"))?;
            let cycles: usize = cycles
                .parse()
                .map_err(|_| format!("bad cycle count `{cycles}`"))?;
            let stimulus = testbench::long_ts(ip_name, seed, cycles)
                .ok_or_else(|| format!("unknown IP `{ip_name}`"))?;
            let mut ip = ip_by_name(ip_name).ok_or_else(|| format!("unknown IP `{ip_name}`"))?;
            behavioural_trace(ip.as_mut(), &stimulus).map_err(|e| format!("generating trace: {e}"))
        }
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let (_, doc) = decode_artifact(&text).map_err(|e| format!("{path}: {e}"))?;
            FunctionalTrace::from_json(&doc).map_err(|e| format!("{path}: {e}"))
        }
        _ => Err("estimate needs exactly one of --gen or --trace".to_owned()),
    }
}

fn print_models(models: &[ModelInfo], action: &str) {
    println!("{action}: {} model(s)", models.len());
    for m in models {
        println!(
            "  {}@{}  format v{}  {} state(s), {} proposition(s)",
            m.name, m.version, m.format_version, m.states, m.propositions
        );
    }
}

fn print_estimate(reply: &EstimateReply, format: &str) {
    if format == "json" {
        let doc = JsonValue::obj([
            ("model", JsonValue::from(reply.model.as_str())),
            ("version", JsonValue::from(reply.version)),
            ("cycles", JsonValue::from(reply.estimate.len())),
            ("mean_mw", JsonValue::from_f64(reply.mean_power())),
            (
                "wrong_state_predictions",
                JsonValue::from(reply.wrong_state_predictions),
            ),
            ("unknown_instants", JsonValue::from(reply.unknown_instants)),
            (
                "estimate",
                JsonValue::arr(reply.estimate.iter().map(|&v| JsonValue::from_f64(v))),
            ),
        ]);
        println!("{}", doc.render());
    } else {
        println!(
            "{}@{}: {} cycle(s), mean {:.4} mW, {} wrong-state prediction(s), {} unknown instant(s)",
            reply.model,
            reply.version,
            reply.estimate.len(),
            reply.mean_power(),
            reply.wrong_state_predictions,
            reply.unknown_instants
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut format = "text".to_owned();
    let mut version: Option<u64> = None;
    let mut gen: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut command: Option<String> = None;
    let mut model: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => return fail("--addr needs ip:port"),
            },
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" => format = f.clone(),
                _ => return fail("--format needs text or json"),
            },
            "--version" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => version = Some(v),
                None => return fail("--version needs a number"),
            },
            "--gen" => match it.next() {
                Some(spec) => gen = Some(spec.clone()),
                None => return fail("--gen needs <IP>:<seed>:<cycles>"),
            },
            "--trace" => match it.next() {
                Some(path) => trace_path = Some(path.clone()),
                None => return fail("--trace needs a path"),
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("psmctl: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            word if command.is_none() => command = Some(word.to_owned()),
            word if command.as_deref() == Some("estimate") && model.is_none() => {
                model = Some(word.to_owned());
            }
            word => {
                eprintln!("psmctl: unexpected argument `{word}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let Some(command) = command else {
        eprintln!("psmctl: no command given\n{USAGE}");
        return ExitCode::from(2);
    };

    let mut client = match Client::connect(addr.as_str()) {
        Ok(client) => client,
        Err(e) => return fail(&format!("cannot connect to {addr}: {e}")),
    };

    match command.as_str() {
        "ping" => match client.ping() {
            Ok(()) => {
                println!("psmd at {addr} is alive (psmd/v1)");
                ExitCode::SUCCESS
            }
            Err(e) => client_exit(&e),
        },
        "list" => match client.list() {
            Ok(models) => {
                print_models(&models, "registry");
                ExitCode::SUCCESS
            }
            Err(e) => client_exit(&e),
        },
        "estimate" => {
            let Some(model) = model else {
                eprintln!("psmctl: estimate needs a model name\n{USAGE}");
                return ExitCode::from(2);
            };
            let workload = match load_workload(gen.as_deref(), trace_path.as_deref()) {
                Ok(trace) => trace,
                Err(message) => {
                    eprintln!("psmctl: {message}\n{USAGE}");
                    return ExitCode::from(2);
                }
            };
            eprintln!(
                "psmctl: submitting {} cycle(s) to {model} at {addr}",
                workload.len()
            );
            match client.estimate(&model, version, &workload) {
                Ok(reply) => {
                    print_estimate(&reply, &format);
                    ExitCode::SUCCESS
                }
                Err(e) => client_exit(&e),
            }
        }
        "stats" => {
            let result = if format == "json" {
                client.stats_json().map(|doc| doc.render())
            } else {
                client.stats_text()
            };
            match result {
                Ok(stats) => {
                    println!("{stats}");
                    ExitCode::SUCCESS
                }
                Err(e) => client_exit(&e),
            }
        }
        "reload" => match client.reload() {
            Ok(models) => {
                print_models(&models, "reloaded");
                ExitCode::SUCCESS
            }
            Err(e) => client_exit(&e),
        },
        "shutdown" => match client.shutdown() {
            Ok(()) => {
                println!("psmd at {addr} is draining and shutting down");
                ExitCode::SUCCESS
            }
            Err(e) => client_exit(&e),
        },
        other => {
            eprintln!("psmctl: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
