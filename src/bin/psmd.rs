//! `psmd` — the power-estimation daemon.
//!
//! Serves a registry of trained models (`psm-persist` artifacts named
//! `<model>@<version>.json`) over the `psmd/v2` framed TCP protocol
//! (v1 clients keep working): clients submit functional traces as JSON
//! or binary frames — one-shot or chunked over a streaming session —
//! and the daemon classifies and HMM-simulates them through a batching
//! worker pool, answering per-instant estimates incrementally. By
//! default one readiness-driven event loop serves every connection
//! (`--io threads` restores thread-per-connection). `RELOAD` hot-swaps
//! the registry atomically; `SHUTDOWN` (or SIGTERM) drains in-flight
//! work, flushes the telemetry report to stderr and exits 0. See
//! `psmctl` for the client.

use psmgen::serve::{Engine, IoMode, PoolConfig, Server, ServerConfig, DEFAULT_ADDR};
use std::process::ExitCode;

const USAGE: &str = "\
usage: psmd --registry <dir> [options]

Options:
  --registry <dir>   model registry: a directory of psmgen artifacts
                     named <model>@<version>.json (required)
  --addr <ip:port>   listen address (default 127.0.0.1:7411; port 0
                     takes an ephemeral port, see --port-file)
  --workers <n>      estimation worker threads (default: CPU count, max 8)
  --queue <n>        queue slots before requests bounce BUSY (default 64)
  --batch <n>        max estimates answered through one simulator (default 8)
  --io <mode>        connection engine: readiness (poll-driven event
                     loop, the default) or threads (one per connection)
  --engine <which>   estimation engine: compiled (flat-table runtime,
                     the default) or interpreted (assertion walker);
                     both produce bit-identical estimates
  --port-file <path> write the bound address to <path> once listening
  -h, --help         show this help

Shutdown: the SHUTDOWN opcode (psmctl shutdown) or SIGTERM. Both drain
queued estimates, flush the stats report to stderr and exit 0.";

struct Options {
    registry: String,
    addr: String,
    pool: PoolConfig,
    io: IoMode,
    engine: Engine,
    port_file: Option<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut registry = None;
    let mut addr = DEFAULT_ADDR.to_owned();
    let mut pool = PoolConfig::default();
    let mut io = IoMode::default();
    let mut engine = Engine::default();
    let mut port_file = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--registry" => {
                registry = Some(it.next().ok_or("--registry needs a directory")?.clone())
            }
            "--addr" => addr = it.next().ok_or("--addr needs ip:port")?.clone(),
            "--workers" => {
                pool.workers = parse_count(it.next().ok_or("--workers needs a number")?)?;
            }
            "--queue" => {
                pool.queue_capacity = parse_count(it.next().ok_or("--queue needs a number")?)?;
            }
            "--batch" => {
                pool.max_batch = parse_count(it.next().ok_or("--batch needs a number")?)?;
            }
            "--io" => {
                io = match it.next().ok_or("--io needs a mode")?.as_str() {
                    "readiness" => IoMode::Readiness,
                    "threads" => IoMode::Threads,
                    other => {
                        return Err(format!("--io must be readiness or threads, got `{other}`"))
                    }
                };
            }
            "--engine" => {
                engine = it.next().ok_or("--engine needs a mode")?.parse()?;
            }
            "--port-file" => {
                port_file = Some(it.next().ok_or("--port-file needs a path")?.clone());
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Options {
        registry: registry.ok_or("--registry is required")?.to_owned(),
        addr,
        pool,
        io,
        engine,
        port_file,
    })
}

fn parse_count(text: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("`{text}` is not a positive number"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("psmd: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let workers = opts.pool.workers;
    let server = match Server::bind(ServerConfig {
        addr: opts.addr,
        registry_dir: opts.registry.clone().into(),
        pool: opts.pool,
        io: opts.io,
        engine: opts.engine,
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("psmd: {e}");
            return ExitCode::from(2);
        }
    };
    let addr = server.local_addr();
    if let Some(path) = &opts.port_file {
        if let Err(e) = std::fs::write(path, format!("{addr}\n")) {
            eprintln!("psmd: cannot write port file {path}: {e}");
            return ExitCode::from(2);
        }
    }
    let handle = server.handle();
    if let Err(e) = psmgen::serve::signals::on_sigterm(move || handle.shutdown()) {
        eprintln!("psmd: cannot install SIGTERM handler: {e}");
        return ExitCode::from(2);
    }
    eprintln!(
        "psmd: serving registry {} at {addr} ({workers} worker(s), {} engine)",
        opts.registry, opts.engine
    );

    match server.run() {
        Ok(report) => {
            eprintln!("psmd: shut down cleanly; final stats:");
            eprintln!("{}", report.text());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("psmd: {e}");
            ExitCode::FAILURE
        }
    }
}
