//! `psmlint` — static analysis of psmgen pipeline artifacts.
//!
//! Loads persisted artifacts and runs the [`psmgen::analyze`] lints over
//! them, printing an [`AnalysisReport`] per artifact as text or JSON:
//!
//! * `*.v` — a structural-Verilog netlist (the `psm-rtl` writer grammar),
//!   checked for combinational cycles, multi-driven nets, undriven reads,
//!   dead cones and unused input bits;
//! * `*.csv` — a golden power trace (`write_power_csv` format), checked
//!   for non-finite and negative samples;
//! * `*.json` — a trained model file ([`TrainedModel`] or
//!   [`HierarchicalModel`]), checked for unreachable states, invalid power
//!   attributes, broken chain adjacency, non-stochastic HMM rows and
//!   PSM/HMM inconsistencies.
//!
//! Exit status: `0` when clean, `1` when any error-severity diagnostic was
//! found (warnings too under `--deny-warnings`), `2` when an artifact could
//! not be loaded or the command line is malformed.

use psmgen::analyze::{lint_model, lint_netlist, lint_power_trace, AnalysisReport, Severity};
use psmgen::flow::{HierarchicalModel, IpPreset, PsmFlow, TrainedModel};
use psmgen::ips::{testbench, MultSum};
use psmgen::rtl::parse_verilog;
use psmgen::trace::read_power_csv;
use std::process::ExitCode;

const USAGE: &str = "\
usage: psmlint [options] <artifact>...

Artifacts:
  *.v      structural Verilog netlist (psm-rtl writer grammar)
  *.csv    golden power trace (write_power_csv format)
  *.json   model file saved by TrainedModel or HierarchicalModel

Options:
  --json            emit the reports as one JSON document
  --deny-warnings   exit non-zero on warnings, not just errors
  --demo <path>     train a quick MultSum model, save it at <path>,
                    then lint the saved file
  -h, --help        show this help";

struct Options {
    json: bool,
    deny_warnings: bool,
    demo: Option<String>,
    paths: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny_warnings: false,
        demo: None,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--demo" => {
                let path = it.next().ok_or("--demo needs a file path")?;
                opts.demo = Some(path.clone());
            }
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            path => opts.paths.push(path.to_owned()),
        }
    }
    if opts.paths.is_empty() && opts.demo.is_none() {
        return Err("no artifacts given".to_owned());
    }
    Ok(opts)
}

/// Lints one artifact file, returning one report per contained model.
fn lint_path(path: &str) -> Result<Vec<AnalysisReport>, String> {
    if path.ends_with(".v") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let netlist = parse_verilog(&text).map_err(|e| format!("{path}: {e}"))?;
        return Ok(vec![lint_netlist(&netlist)]);
    }
    if path.ends_with(".csv") {
        let file = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let trace =
            read_power_csv(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
        return Ok(vec![lint_power_trace(&trace, path)]);
    }
    // Model files: a flat TrainedModel, else a HierarchicalModel.
    match TrainedModel::load(path) {
        Ok(model) => Ok(vec![lint_model(&model.psm, &model.hmm, model.table.len())]),
        Err(flat_err) => match HierarchicalModel::load(path) {
            Ok(model) => Ok(model
                .models
                .iter()
                .zip(&model.domains)
                .map(|(m, domain)| {
                    let mut report = AnalysisReport::new(format!("domain `{domain}`"));
                    report.merge(lint_model(&m.psm, &m.hmm, m.table.len()));
                    report
                })
                .collect()),
            Err(_) => Err(format!("cannot load {path}: {flat_err}")),
        },
    }
}

/// Trains a small MultSum model and saves it, so CI can exercise the whole
/// persist-and-lint path offline.
fn train_demo(path: &str) -> Result<(), String> {
    let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    let training = testbench::multsum_short_ts(1);
    let model = flow
        .train(&mut MultSum::new(), &[training])
        .map_err(|e| format!("demo training failed: {e}"))?;
    model
        .save(path)
        .map_err(|e| format!("cannot save demo model at {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("psmlint: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(demo) = &opts.demo {
        if let Err(message) = train_demo(demo) {
            eprintln!("psmlint: {message}");
            return ExitCode::from(2);
        }
        opts.paths.push(demo.clone());
    }

    let mut reports: Vec<(String, AnalysisReport)> = Vec::new();
    for path in &opts.paths {
        match lint_path(path) {
            Ok(found) => reports.extend(found.into_iter().map(|r| (path.clone(), r))),
            Err(message) => {
                eprintln!("psmlint: {message}");
                return ExitCode::from(2);
            }
        }
    }

    let errors: usize = reports.iter().map(|(_, r)| r.count(Severity::Error)).sum();
    let warnings: usize = reports.iter().map(|(_, r)| r.count(Severity::Warn)).sum();

    if opts.json {
        // JsonValue renders each report; the envelope is assembled by hand
        // so the binary needs no JSON dependency of its own.
        let rendered: Vec<String> = reports
            .iter()
            .map(|(path, r)| {
                let body = r.to_json().render();
                let mut obj = String::with_capacity(body.len() + path.len() + 16);
                obj.push_str("{\"file\":\"");
                obj.push_str(&path.replace('\\', "\\\\").replace('"', "\\\""));
                obj.push_str("\",\"report\":");
                obj.push_str(&body);
                obj.push('}');
                obj
            })
            .collect();
        println!(
            "{{\"reports\":[{}],\"errors\":{errors},\"warnings\":{warnings}}}",
            rendered.join(",")
        );
    } else {
        for (path, report) in &reports {
            println!("== {path}");
            println!("{}", report.text());
        }
        println!("psmlint: {errors} error(s), {warnings} warning(s)");
    }

    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
