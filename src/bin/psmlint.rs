//! `psmlint` — static analysis of psmgen pipeline artifacts.
//!
//! Loads persisted artifacts and runs the [`psmgen::analyze`] lints over
//! them, printing an [`AnalysisReport`] per artifact as text, JSON or
//! SARIF 2.1.0:
//!
//! * `*.v` — a structural-Verilog netlist (the `psm-rtl` writer grammar),
//!   checked structurally (cycles, multi-driven nets, undriven reads,
//!   dead cones, unused input bits) and semantically through a ternary
//!   dataflow fixpoint (stuck gates and outputs, observable X,
//!   influence-free inputs);
//! * `*.csv` — a golden power trace (`write_power_csv` format), checked
//!   for non-finite and negative samples;
//! * `*.json` — a trained model file ([`TrainedModel`] or
//!   [`HierarchicalModel`]), checked for unreachable states, invalid power
//!   attributes, broken chain adjacency, non-stochastic HMM rows,
//!   PSM/HMM inconsistencies and guards outside the proposition
//!   dictionary. When power CSVs accompany a flat model on the same
//!   command line, the model's state attributes are additionally
//!   re-derived from them (XA002), the CSVs taken in command-line order
//!   as the training traces.
//!
//! Findings can be policed per code (`--config psmlint.toml`) and gated
//! against a previous run (`--baseline old.json`); see DIAGNOSTICS.md.
//!
//! With `--verify`, every netlist × flat-model pair on the command line
//! is additionally run through the bounded model checker
//! ([`psmgen::analyze::verify_model`]): each mined assertion comes back
//! proved (to the depth), refuted with a replayable counterexample, or
//! vacuous, as the `MC` diagnostic family. `--witness-dir` saves each
//! counterexample stimulus as a functional CSV, and `--replay <csv>`
//! re-executes such a witness against the same netlist × model pair.
//!
//! Stdout carries only the report in the selected format — progress and
//! log lines go to stderr (suppressed entirely by `--quiet`), so
//! `--format json|sarif` output pipes straight into `jq` or a SARIF
//! viewer.
//!
//! Exit status: `0` when clean, `1` when any *new* error-severity
//! diagnostic survives the configuration and baseline (warnings too under
//! `--deny-warnings`), `2` when an artifact could not be loaded or the
//! command line is malformed, `3` when `--baseline` points at a missing
//! or unparsable file.

use psm_persist::JsonValue;
use psmgen::analyze::{
    codes, lint_model, lint_netlist, lint_netlist_dataflow, lint_power_intent, lint_power_trace,
    lint_psm_against_table, lint_psm_against_training, lint_psm_power_intent, replay_witness,
    to_sarif, verify_model, AnalysisReport, Baseline, LintConfig, Severity,
};
use psmgen::flow::{HierarchicalModel, IpPreset, PsmFlow, TrainedModel};
use psmgen::ips::{testbench, MultSum};
use psmgen::mining::PropositionTable;
use psmgen::psm::Psm;
use psmgen::rtl::{parse_verilog, Netlist};
use psmgen::trace::{
    read_functional_csv, read_power_csv, write_functional_csv, Bits, Direction, FunctionalTrace,
    PowerTrace, SignalSet,
};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
usage: psmlint [options] <artifact>...

Artifacts:
  *.v      structural Verilog netlist (psm-rtl writer grammar)
  *.csv    golden power trace (write_power_csv format)
  *.json   model file saved by TrainedModel or HierarchicalModel

Giving a flat model together with power CSVs cross-checks the model's
state attributes against those traces (XA002, CSVs in command-line
order).

Options:
  --format <text|json|sarif>  output format (default text)
  --json            alias of --format json
  --config <path>   psmlint.toml with per-code allow/warn/deny levels
                    and an optional [verify] section
  --baseline <path> suppress findings recorded by a previous --format
                    json run; exit status reflects new findings only
                    (exit 3 when the file is missing or unparsable)
  --deny-warnings   exit non-zero on warnings, not just errors
  --verify          bounded-model-check every mined assertion of each
                    flat model against each netlist given alongside it
                    (MC codes; see DIAGNOSTICS.md)
  --depth <n>       unroll depth of --verify (default 8); --replay
                    always re-executes the full witness stimulus
  --witness-dir <dir>  save each counterexample stimulus as a
                    functional CSV witness under <dir>
  --replay <csv>    re-execute a witness stimulus against the netlist
                    and model given alongside it, instead of --verify
  --demo <path>     train a quick MultSum model, save it at <path>,
                    then lint the saved file
  --list-codes      print the full diagnostic catalogue (code, severity,
                    summary) as text, or as JSON with --format json, and
                    exit; needs no artifacts
  -q, --quiet       suppress progress lines (stderr); stdout carries
                    only the report in the selected format
  -h, --help        show this help";

/// Version tag of the JSON envelope (`--format json`).
const SCHEMA: &str = "psmlint/v1";

/// Significance level of the XA002 cross-check between a model file and
/// accompanying power CSVs — the default `MergePolicy` α.
const CROSS_CHECK_ALPHA: f64 = 0.01;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    format: Format,
    deny_warnings: bool,
    quiet: bool,
    config: Option<String>,
    baseline: Option<String>,
    demo: Option<String>,
    list_codes: bool,
    verify: bool,
    depth: Option<usize>,
    witness_dir: Option<String>,
    replay: Option<String>,
    paths: Vec<String>,
}

impl Options {
    /// A progress/log line: stderr only, silenced by `--quiet`. Keeps
    /// stdout pipe-clean for `--format json|sarif` consumers.
    fn progress(&self, message: std::fmt::Arguments<'_>) {
        if !self.quiet {
            eprintln!("psmlint: {message}");
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        deny_warnings: false,
        quiet: false,
        config: None,
        baseline: None,
        demo: None,
        list_codes: false,
        verify: false,
        depth: None,
        witness_dir: None,
        replay: None,
        paths: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                let name = it.next().ok_or("--format needs text, json or sarif")?;
                opts.format = match name.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--json" => opts.format = Format::Json,
            "--deny-warnings" => opts.deny_warnings = true,
            "-q" | "--quiet" => opts.quiet = true,
            "--config" => {
                let path = it.next().ok_or("--config needs a file path")?;
                opts.config = Some(path.clone());
            }
            "--baseline" => {
                let path = it.next().ok_or("--baseline needs a file path")?;
                opts.baseline = Some(path.clone());
            }
            "--demo" => {
                let path = it.next().ok_or("--demo needs a file path")?;
                opts.demo = Some(path.clone());
            }
            "--list-codes" => opts.list_codes = true,
            "--verify" => opts.verify = true,
            "--depth" => {
                let value = it.next().ok_or("--depth needs a cycle count")?;
                let depth = value
                    .parse()
                    .map_err(|_| format!("--depth needs an integer, got `{value}`"))?;
                opts.depth = Some(depth);
            }
            "--witness-dir" => {
                let dir = it.next().ok_or("--witness-dir needs a directory path")?;
                opts.witness_dir = Some(dir.clone());
            }
            "--replay" => {
                let path = it.next().ok_or("--replay needs a witness CSV path")?;
                opts.replay = Some(path.clone());
            }
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            path => opts.paths.push(path.to_owned()),
        }
    }
    if opts.paths.is_empty() && opts.demo.is_none() && !opts.list_codes {
        return Err("no artifacts given".to_owned());
    }
    Ok(opts)
}

/// Prints the diagnostic catalogue (`--list-codes`) in the selected
/// format. The text form is one `code severity summary` line per code —
/// the shape CI diffs against the DIAGNOSTICS.md tables.
fn print_codes(format: Format) {
    match format {
        Format::Json | Format::Sarif => {
            let entries = JsonValue::arr(codes::ALL.iter().map(|info| {
                JsonValue::obj([
                    ("code", JsonValue::from(info.code)),
                    ("severity", JsonValue::from(info.severity.name())),
                    ("summary", JsonValue::from(info.summary)),
                    ("help", JsonValue::from(info.help)),
                ])
            }));
            let doc = JsonValue::obj([
                ("schema", JsonValue::from("psmlint-codes/v1")),
                ("codes", entries),
            ]);
            println!("{}", doc.render());
        }
        Format::Text => {
            for info in codes::ALL {
                println!(
                    "{}  {:<7}  {}",
                    info.code,
                    info.severity.name(),
                    info.summary
                );
            }
        }
    }
}

/// Artifacts remembered across files for the cross-artifact checks.
#[derive(Default)]
struct Loaded {
    /// Flat models, by path, for the XA002 attribute re-derivation and
    /// the `--verify`/`--replay` modes.
    models: Vec<(String, PropositionTable, Psm)>,
    /// Per-domain PSMs of hierarchical models, as (path, domain, psm),
    /// for the domain-scoped XA005 power-intent cross-check.
    domain_models: Vec<(String, String, Psm)>,
    /// Power traces in command-line order.
    power: Vec<PowerTrace>,
    /// Paths of the power traces, same order (XA002 related artifacts).
    power_paths: Vec<String>,
    /// Parsed netlists, by path, for the `--verify`/`--replay` modes and
    /// the XA005 power-intent cross-check.
    netlists: Vec<(String, Netlist)>,
}

/// One linted artifact with its wall-clock cost and baseline bookkeeping.
struct LintedFile {
    file: String,
    report: AnalysisReport,
    elapsed_ns: u64,
    suppressed: usize,
}

/// Lints one artifact file, returning one report per contained model and
/// remembering cross-checkable artifacts in `loaded`.
fn lint_path(path: &str, loaded: &mut Loaded) -> Result<Vec<AnalysisReport>, String> {
    if path.ends_with(".v") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let netlist = parse_verilog(&text).map_err(|e| format!("{path}: {e}"))?;
        let mut report = lint_netlist(&netlist);
        report.merge(lint_netlist_dataflow(&netlist));
        report.merge(lint_power_intent(&netlist));
        loaded.netlists.push((path.to_owned(), netlist));
        return Ok(vec![report]);
    }
    if path.ends_with(".csv") {
        let file = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let trace =
            read_power_csv(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
        let report = lint_power_trace(&trace, path);
        loaded.power.push(trace);
        loaded.power_paths.push(path.to_owned());
        return Ok(vec![report]);
    }
    // Model files: a flat TrainedModel, else a HierarchicalModel.
    match TrainedModel::load(path) {
        Ok(model) => {
            let mut report = lint_model(&model.psm, &model.hmm, model.table.len());
            report.merge(lint_psm_against_table(&model.psm, model.table.len()));
            loaded
                .models
                .push((path.to_owned(), model.table, model.psm));
            Ok(vec![report])
        }
        Err(flat_err) => match HierarchicalModel::load(path) {
            Ok(model) => Ok(model
                .models
                .iter()
                .zip(&model.domains)
                .map(|(m, domain)| {
                    let mut report = AnalysisReport::new(format!("domain `{domain}`"));
                    report.merge(lint_model(&m.psm, &m.hmm, m.table.len()));
                    report.merge(lint_psm_against_table(&m.psm, m.table.len()));
                    loaded
                        .domain_models
                        .push((path.to_owned(), domain.clone(), m.psm.clone()));
                    report
                })
                .collect()),
            Err(_) => Err(format!("cannot load {path}: {flat_err}")),
        },
    }
}

/// Trains a small MultSum model and saves it, so CI can exercise the whole
/// persist-and-lint path offline.
fn train_demo(path: &str) -> Result<(), String> {
    let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    let training = testbench::multsum_short_ts(1);
    let model = flow
        .train(&mut MultSum::new(), &[training])
        .map_err(|e| format!("demo training failed: {e}"))?;
    model
        .save(path)
        .map_err(|e| format!("cannot save demo model at {path}: {e}"))
}

fn load_config(path: &str) -> Result<LintConfig, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    LintConfig::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_baseline(path: &str) -> Result<Baseline, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Baseline::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// The input-only port interface of a netlist — the witness CSV schema.
fn input_signals(netlist: &Netlist) -> Result<SignalSet, String> {
    let mut set = SignalSet::new();
    for (_, decl) in netlist.signal_set().iter() {
        if decl.direction() == Direction::Input {
            set.push(decl.name(), decl.width(), Direction::Input)
                .map_err(|e| format!("netlist `{}`: {e}", netlist.name()))?;
        }
    }
    Ok(set)
}

/// Saves one counterexample stimulus as a functional CSV under `dir`.
fn save_witness(
    dir: &str,
    index: usize,
    netlist: &Netlist,
    stimulus: &[Vec<Bits>],
) -> Result<String, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let mut trace = FunctionalTrace::new(input_signals(netlist)?);
    for cycle in stimulus {
        trace
            .push_cycle(cycle.clone())
            .map_err(|e| format!("witness stimulus is malformed: {e}"))?;
    }
    let path = format!("{dir}/witness_{index:03}.csv");
    let mut file = std::fs::File::create(&path).map_err(|e| format!("cannot write {path}: {e}"))?;
    write_functional_csv(&trace, &mut file).map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(path)
}

/// Reads a witness CSV back into a per-cycle input stimulus.
fn load_witness(path: &str, netlist: &Netlist) -> Result<Vec<Vec<Bits>>, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = read_functional_csv(input_signals(netlist)?, std::io::BufReader::new(file))
        .map_err(|e| format!("{path}: {e}"))?;
    Ok(trace.iter().map(<[Bits]>::to_vec).collect())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("psmlint: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list_codes {
        print_codes(opts.format);
        return ExitCode::SUCCESS;
    }
    let config = match opts.config.as_deref().map(load_config).transpose() {
        Ok(config) => config.unwrap_or_default(),
        Err(message) => {
            eprintln!("psmlint: {message}");
            return ExitCode::from(2);
        }
    };
    let baseline = match opts.baseline.as_deref().map(load_baseline).transpose() {
        Ok(baseline) => baseline.unwrap_or_default(),
        Err(message) => {
            // A distinct status: the gate itself is broken (stale path in
            // CI, corrupted record), not the artifacts under analysis.
            eprintln!(
                "psmlint: --baseline is unusable: {message}\n\
                 psmlint: regenerate it with `psmlint --format json ... > baseline.json`"
            );
            return ExitCode::from(3);
        }
    };
    if let Some(demo) = &opts.demo.clone() {
        opts.progress(format_args!("training demo MultSum model at {demo}"));
        if let Err(message) = train_demo(demo) {
            eprintln!("psmlint: {message}");
            return ExitCode::from(2);
        }
        opts.paths.push(demo.clone());
    }

    let mut loaded = Loaded::default();
    let mut files: Vec<LintedFile> = Vec::new();
    for path in &opts.paths {
        opts.progress(format_args!("linting {path}"));
        let start = Instant::now();
        match lint_path(path, &mut loaded) {
            Ok(found) => {
                let elapsed_ns = start.elapsed().as_nanos() as u64;
                files.extend(found.into_iter().map(|report| LintedFile {
                    file: path.clone(),
                    report,
                    elapsed_ns,
                    suppressed: 0,
                }));
            }
            Err(message) => {
                eprintln!("psmlint: {message}");
                return ExitCode::from(2);
            }
        }
    }
    // Cross-check every flat model against the power traces given
    // alongside it (XA002: are the stored attributes re-derivable?).
    if !loaded.power.is_empty() {
        for (path, _, psm) in &loaded.models {
            opts.progress(format_args!(
                "cross-checking {path} against {} power trace(s)",
                loaded.power.len()
            ));
            let start = Instant::now();
            let mut report = lint_psm_against_training(psm, &loaded.power, CROSS_CHECK_ALPHA);
            let mut related = vec![path.clone()];
            related.extend(loaded.power_paths.iter().cloned());
            report.tag_related(&related);
            files.push(LintedFile {
                file: path.clone(),
                report,
                elapsed_ns: start.elapsed().as_nanos() as u64,
                suppressed: 0,
            });
        }
    }
    // Power-intent cross-check (XA005): every model given alongside a
    // netlist that declares power intent is checked for off-implying
    // states over domains the netlist cannot actually gate. Hierarchical
    // models scope the check to their own domain.
    for (netlist_path, netlist) in &loaded.netlists {
        if !netlist.has_power_intent() {
            continue;
        }
        let flat = loaded.models.iter().map(|(path, _, psm)| (path, None, psm));
        let scoped = loaded
            .domain_models
            .iter()
            .map(|(path, domain, psm)| (path, Some(domain.as_str()), psm));
        for (model_path, domain, psm) in flat.chain(scoped) {
            opts.progress(format_args!(
                "cross-checking power intent of {model_path} against {netlist_path}"
            ));
            let start = Instant::now();
            let mut report = lint_psm_power_intent(psm, domain, netlist);
            report.tag_related(&[model_path.clone(), netlist_path.clone()]);
            files.push(LintedFile {
                file: model_path.clone(),
                report,
                elapsed_ns: start.elapsed().as_nanos() as u64,
                suppressed: 0,
            });
        }
    }
    // Bounded model checking: every mined assertion of every flat model
    // against every netlist given alongside it.
    if opts.verify || opts.replay.is_some() {
        if loaded.netlists.is_empty() || loaded.models.is_empty() {
            eprintln!(
                "psmlint: --verify/--replay need at least one netlist (*.v) and one flat \
                 model (*.json) on the command line"
            );
            return ExitCode::from(2);
        }
        let mut verify_cfg = config.verify().cloned().unwrap_or_default();
        if let Some(depth) = opts.depth {
            verify_cfg.depth = depth;
        }
        let mut witness_index = 0usize;
        for (netlist_path, netlist) in &loaded.netlists {
            for (model_path, table, psm) in &loaded.models {
                let start = Instant::now();
                let report = if let Some(witness) = &opts.replay {
                    opts.progress(format_args!(
                        "replaying {witness} against {netlist_path} x {model_path}"
                    ));
                    let stimulus = match load_witness(witness, netlist) {
                        Ok(stimulus) => stimulus,
                        Err(message) => {
                            eprintln!("psmlint: {message}");
                            return ExitCode::from(2);
                        }
                    };
                    replay_witness(netlist, table, psm, &stimulus)
                } else {
                    opts.progress(format_args!(
                        "verifying {model_path} against {netlist_path} (depth {})",
                        verify_cfg.depth
                    ));
                    let outcome = verify_model(netlist, table, psm, &verify_cfg);
                    if let Some(dir) = &opts.witness_dir {
                        for check in &outcome.checks {
                            let Some(cex) = &check.counterexample else {
                                continue;
                            };
                            witness_index += 1;
                            match save_witness(dir, witness_index, netlist, &cex.stimulus) {
                                Ok(path) => opts.progress(format_args!(
                                    "witness for `{}` saved at {path}",
                                    check.text
                                )),
                                Err(message) => {
                                    eprintln!("psmlint: {message}");
                                    return ExitCode::from(2);
                                }
                            }
                        }
                    }
                    outcome.report
                };
                let mut report = report;
                report.tag_related(&[model_path.clone(), netlist_path.clone()]);
                files.push(LintedFile {
                    file: model_path.clone(),
                    report,
                    elapsed_ns: start.elapsed().as_nanos() as u64,
                    suppressed: 0,
                });
            }
        }
    }
    // Policy first (re-level / drop), then the baseline (suppress what a
    // previous run already recorded).
    for f in &mut files {
        let report = config.apply(std::mem::replace(
            &mut f.report,
            AnalysisReport::new(String::new()),
        ));
        let (report, suppressed) = baseline.filter(&f.file, report);
        f.report = report;
        f.suppressed = suppressed;
    }

    let errors: usize = files.iter().map(|f| f.report.count(Severity::Error)).sum();
    let warnings: usize = files.iter().map(|f| f.report.count(Severity::Warn)).sum();
    let suppressed: usize = files.iter().map(|f| f.suppressed).sum();

    match opts.format {
        Format::Json => {
            let entries = JsonValue::arr(files.iter().map(|f| {
                JsonValue::obj([
                    ("file", JsonValue::from(f.file.as_str())),
                    ("elapsed_ns", JsonValue::from(f.elapsed_ns)),
                    ("errors", JsonValue::from(f.report.count(Severity::Error))),
                    ("warnings", JsonValue::from(f.report.count(Severity::Warn))),
                    ("infos", JsonValue::from(f.report.count(Severity::Info))),
                    ("suppressed", JsonValue::from(f.suppressed)),
                    ("report", f.report.to_json()),
                ])
            }));
            let doc = JsonValue::obj([
                ("schema", JsonValue::from(SCHEMA)),
                ("reports", entries),
                ("errors", JsonValue::from(errors)),
                ("warnings", JsonValue::from(warnings)),
                ("suppressed", JsonValue::from(suppressed)),
            ]);
            println!("{}", doc.render());
            opts.progress(format_args!(
                "{errors} error(s), {warnings} warning(s), {suppressed} suppressed"
            ));
        }
        Format::Sarif => {
            let pairs: Vec<(String, AnalysisReport)> =
                files.into_iter().map(|f| (f.file, f.report)).collect();
            println!("{}", to_sarif(&pairs).render());
            opts.progress(format_args!(
                "{errors} error(s), {warnings} warning(s), {suppressed} suppressed"
            ));
        }
        Format::Text => {
            for f in &files {
                println!("== {}", f.file);
                if f.suppressed > 0 {
                    println!("   ({} baselined finding(s) suppressed)", f.suppressed);
                }
                println!("{}", f.report.text());
            }
            if suppressed > 0 {
                println!(
                    "psmlint: {errors} error(s), {warnings} warning(s), {suppressed} suppressed"
                );
            } else {
                println!("psmlint: {errors} error(s), {warnings} warning(s)");
            }
        }
    }

    if errors > 0 || (opts.deny_warnings && warnings > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
