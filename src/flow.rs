//! The end-to-end PSM pipeline (paper Fig. 1).
//!
//! [`PsmFlow`] packages the whole methodology behind two calls:
//!
//! * [`PsmFlow::train`] — run the *golden* gate-level power simulation on
//!   the training stimuli (the PrimeTime-PX role), mine temporal
//!   assertions, generate one chain PSM per trace, `simplify`, `join`,
//!   calibrate data-dependent states and build the HMM;
//! * [`PsmFlow::estimate`] — simulate the fast behavioural model of the IP
//!   concurrently with the PSMs (through the HMM) on a fresh workload and
//!   return the power estimate, plus the golden reference for accuracy
//!   evaluation.

use psm_core::{
    calibrate, classify_trace, generate_psm, join, simplify, CalibrationConfig, CoreError,
    MergePolicy, Psm,
};
use psm_hmm::{build_hmm, Hmm, HmmOutcome, HmmSimulator};
use psm_ips::{behavioural_trace, Ip};
use psm_mining::{Miner, MiningConfig, MiningError, PropositionTable};
use psm_rtl::{capture_traces, PowerModel, RtlError, Stimulus};
use psm_stats::{mean_relative_error, StatsError};
use psm_trace::{FunctionalTrace, PowerTrace, TraceError};
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Errors surfaced by the pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// Assertion mining failed.
    Mining(MiningError),
    /// PSM generation or simulation failed.
    Core(CoreError),
    /// Gate-level capture failed.
    Rtl(RtlError),
    /// Trace assembly failed.
    Trace(TraceError),
    /// An accuracy metric could not be computed.
    Stats(StatsError),
    /// No training stimulus was provided.
    NoTrainingData,
    /// Saving or loading a trained model failed.
    Persistence(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Mining(e) => write!(f, "mining: {e}"),
            FlowError::Core(e) => write!(f, "psm: {e}"),
            FlowError::Rtl(e) => write!(f, "gate-level: {e}"),
            FlowError::Trace(e) => write!(f, "trace: {e}"),
            FlowError::Stats(e) => write!(f, "metric: {e}"),
            FlowError::NoTrainingData => write!(f, "at least one training stimulus is required"),
            FlowError::Persistence(msg) => write!(f, "model persistence failed: {msg}"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Mining(e) => Some(e),
            FlowError::Core(e) => Some(e),
            FlowError::Rtl(e) => Some(e),
            FlowError::Trace(e) => Some(e),
            FlowError::Stats(e) => Some(e),
            FlowError::NoTrainingData | FlowError::Persistence(_) => None,
        }
    }
}

impl From<MiningError> for FlowError {
    fn from(e: MiningError) -> Self {
        FlowError::Mining(e)
    }
}
impl From<CoreError> for FlowError {
    fn from(e: CoreError) -> Self {
        FlowError::Core(e)
    }
}
impl From<RtlError> for FlowError {
    fn from(e: RtlError) -> Self {
        FlowError::Rtl(e)
    }
}
impl From<TraceError> for FlowError {
    fn from(e: TraceError) -> Self {
        FlowError::Trace(e)
    }
}
impl From<StatsError> for FlowError {
    fn from(e: StatsError) -> Self {
        FlowError::Stats(e)
    }
}

/// Timing and size measurements gathered while training — the raw material
/// of the paper's Table II.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct TrainingStats {
    /// Total training instants across all stimuli (Table II column *TS*).
    pub training_instants: usize,
    /// Wall-clock of the golden gate-level power simulation (column *PX*).
    pub reference_power_time: Duration,
    /// Wall-clock of mining + generation + simplify + join + calibration +
    /// HMM construction (column *PSMs gen.*).
    pub generation_time: Duration,
    /// States of the combined model (column *States*).
    pub states: usize,
    /// Transitions of the combined model (column *Trans.*).
    pub transitions: usize,
    /// States before `simplify`/`join` (for the ablation benches).
    pub states_before_optimisation: usize,
    /// States replaced by a regression output during calibration.
    pub calibrated_states: usize,
}

/// A trained power model for one IP.
///
/// Serialisable: a model trained once against the slow golden simulator can
/// be saved ([`TrainedModel::save`]) and shipped alongside the IP for
/// instant reuse in system-level explorations.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainedModel {
    /// The shared proposition set mined from the training traces.
    pub table: PropositionTable,
    /// The combined, optimised PSM.
    pub psm: Psm,
    /// The HMM driving non-deterministic simulation.
    pub hmm: Hmm,
    /// Measurements gathered during training.
    pub stats: TrainingStats,
}

/// A hierarchical power model: one trained PSM set per power domain of the
/// IP's netlist (the paper's future-work extension).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct HierarchicalModel {
    /// Domain names, aligned with [`models`](Self::models).
    pub domains: Vec<String>,
    /// One trained model per domain (sharing one proposition table).
    pub models: Vec<TrainedModel>,
}

impl TrainedModel {
    /// Saves the model as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Persistence`] on serialisation or I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), FlowError> {
        let json = serde_json::to_string(self).map_err(|e| FlowError::Persistence(e.to_string()))?;
        std::fs::write(path, json).map_err(|e| FlowError::Persistence(e.to_string()))
    }

    /// Loads a model previously written by [`TrainedModel::save`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Persistence`] on I/O or parse failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, FlowError> {
        let json =
            std::fs::read_to_string(path).map_err(|e| FlowError::Persistence(e.to_string()))?;
        serde_json::from_str(&json).map_err(|e| FlowError::Persistence(e.to_string()))
    }
}

/// A power estimate for one workload, with its golden reference.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// The PSM/HMM estimation outcome (per-instant power, WSP counters).
    pub outcome: HmmOutcome,
    /// The golden gate-level reference power of the same workload.
    pub reference: PowerTrace,
}

impl Estimate {
    /// Mean relative error of the estimate against the golden reference —
    /// the paper's MRE metric.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] when the traces are empty or misaligned.
    pub fn mre_vs_reference(&self) -> Result<f64, StatsError> {
        mean_relative_error(self.outcome.estimate.as_slice(), self.reference.as_slice())
    }
}

/// Pipeline configuration: the designer-tunable knobs of the methodology.
///
/// # Examples
///
/// ```
/// use psmgen::flow::PsmFlow;
///
/// // Per-benchmark tuning as the paper's designers would do it:
/// let flow = PsmFlow::for_ip("AES");
/// assert!(!flow.mining.pair_relations());
/// ```
#[derive(Debug, Clone)]
pub struct PsmFlow {
    /// Assertion-mining thresholds (§III-A).
    pub mining: MiningConfig,
    /// Mergeability policy of `simplify`/`join` (§IV-A).
    pub merge: MergePolicy,
    /// Regression-calibration thresholds (§IV).
    pub calibration: CalibrationConfig,
    /// Electrical model of the golden power estimator.
    pub power_model: PowerModel,
    /// Seed of the golden estimator's measurement noise.
    pub noise_seed: u64,
}

impl Default for PsmFlow {
    fn default() -> Self {
        PsmFlow {
            mining: MiningConfig::default(),
            merge: MergePolicy::default(),
            calibration: CalibrationConfig::default(),
            power_model: PowerModel::default(),
            noise_seed: 0xD5E_u64,
        }
    }
}

impl PsmFlow {
    /// Defaults tuned for the Table I benchmarks, mirroring the paper's
    /// per-design configuration step.
    ///
    /// All four benchmarks disable relational atoms: their wide data buses
    /// carry (pseudo-)random payloads whose pairwise order says nothing
    /// about *behaviour*, and under this crate's closed-world proposition
    /// composition such atoms would fragment every control state into
    /// data-dependent shards. Data-dependent *power* is instead handled
    /// where the paper handles it — by the Hamming-distance regression
    /// calibration.
    ///
    /// The merge tests run at α = 0.3 (power traces are noisy, so a lenient
    /// rejection level keeps genuinely different behaviours apart), and the
    /// calibration accepts fits with |r| ≥ 0.6.
    ///
    /// Unknown names fall back to the stock defaults.
    pub fn for_ip(name: &str) -> Self {
        let mut flow = PsmFlow::default();
        if matches!(name, "RAM" | "MultSum" | "AES" | "Camellia") {
            flow.mining = flow.mining.with_pair_relations(false);
            flow.merge = MergePolicy::new(0.05, 0.3);
            flow.calibration = CalibrationConfig::default().with_min_abs_r(0.6);
        }
        flow
    }

    /// Runs the full training pipeline of Fig. 1 on one IP.
    ///
    /// Every stimulus becomes one training trace pair (functional + golden
    /// power, captured in a single gate-level run); the traces are mined
    /// together so PSMs from different traces share a proposition set and
    /// can be joined.
    ///
    /// # Errors
    ///
    /// * [`FlowError::NoTrainingData`] when `stimuli` is empty;
    /// * any layer error, wrapped in the matching [`FlowError`] variant.
    pub fn train(&self, ip: &mut dyn Ip, stimuli: &[Stimulus]) -> Result<TrainedModel, FlowError> {
        if stimuli.is_empty() {
            return Err(FlowError::NoTrainingData);
        }
        let netlist = ip.netlist()?;

        // Golden capture: functional + reference power per stimulus.
        let px_start = Instant::now();
        let mut functional = Vec::with_capacity(stimuli.len());
        let mut power = Vec::with_capacity(stimuli.len());
        for (i, stim) in stimuli.iter().enumerate() {
            let cap = capture_traces(&netlist, &self.power_model, stim, self.noise_seed + i as u64)?;
            functional.push(cap.functional);
            power.push(cap.power);
        }
        let reference_power_time = px_start.elapsed();

        // Mining + generation + optimisation + calibration + HMM.
        let gen_start = Instant::now();
        let miner = Miner::new(self.mining);
        let trace_refs: Vec<&FunctionalTrace> = functional.iter().collect();
        let mined = miner.mine(&trace_refs)?;

        let mut psms = Vec::with_capacity(mined.traces.len());
        let mut states_before = 0;
        for (i, gamma) in mined.traces.iter().enumerate() {
            let mut psm = generate_psm(gamma, &power[i], i)?;
            states_before += psm.state_count();
            simplify(&mut psm, &self.merge);
            psms.push(psm);
        }
        let mut combined = join(&psms, &self.merge);

        let training: Vec<(&FunctionalTrace, &PowerTrace)> =
            functional.iter().zip(power.iter()).collect();
        let report = calibrate(&mut combined, &training, &self.calibration)?;

        let hmm = build_hmm(&combined, mined.table.len());
        let generation_time = gen_start.elapsed();

        let stats = TrainingStats {
            training_instants: stimuli.iter().map(Stimulus::len).sum(),
            reference_power_time,
            generation_time,
            states: combined.state_count(),
            transitions: combined.transition_count(),
            states_before_optimisation: states_before,
            calibrated_states: report.calibrated_count(),
        };
        Ok(TrainedModel {
            table: mined.table,
            psm: combined,
            hmm,
            stats,
        })
    }

    /// Estimates the power of a fresh workload through the trained PSMs
    /// *and* computes the golden reference for the same workload, so the
    /// result carries its own accuracy ground truth.
    ///
    /// # Errors
    ///
    /// Any layer error, wrapped in the matching [`FlowError`] variant.
    pub fn estimate(
        &self,
        model: &TrainedModel,
        ip: &mut dyn Ip,
        workload: &Stimulus,
    ) -> Result<Estimate, FlowError> {
        let functional = behavioural_trace(ip, workload)?;
        let outcome = self.estimate_from_trace(model, &functional);
        let reference = self.reference_power(ip, workload)?;
        Ok(Estimate { outcome, reference })
    }

    /// The fast path of Table III: PSM/HMM estimation from an
    /// already-captured functional trace, with no gate-level work at all.
    pub fn estimate_from_trace(
        &self,
        model: &TrainedModel,
        functional: &FunctionalTrace,
    ) -> HmmOutcome {
        let observations = classify_trace(&model.table, functional);
        let hamming = functional.input_hamming_series();
        let sim = HmmSimulator::new(&model.psm, model.hmm.clone());
        sim.run(&observations, &hamming)
    }

    /// Trains one PSM set **per power domain** of the IP's netlist — the
    /// hierarchical power model the paper proposes as future work ("a power
    /// model based on hierarchical PSMs that distinguishes among IP
    /// subcomponents").
    ///
    /// The proposition mining runs once over the shared functional traces;
    /// each domain's PSMs are generated, optimised and calibrated against
    /// that domain's golden power trace. The hierarchical estimate of a
    /// workload is the per-instant sum of the domain estimates
    /// ([`PsmFlow::estimate_hierarchical`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PsmFlow::train`].
    pub fn train_hierarchical(
        &self,
        ip: &mut dyn Ip,
        stimuli: &[Stimulus],
    ) -> Result<HierarchicalModel, FlowError> {
        if stimuli.is_empty() {
            return Err(FlowError::NoTrainingData);
        }
        let netlist = ip.netlist()?;
        let mut functional = Vec::with_capacity(stimuli.len());
        let mut domain_power: Vec<Vec<PowerTrace>> = Vec::new();
        let mut domains = Vec::new();
        for (i, stim) in stimuli.iter().enumerate() {
            let cap = psm_rtl::capture_traces_by_domain(
                &netlist,
                &self.power_model,
                stim,
                self.noise_seed + i as u64,
            )?;
            domains = cap.domains.clone();
            functional.push(cap.functional);
            domain_power.push(cap.by_domain);
        }

        let miner = Miner::new(self.mining);
        let trace_refs: Vec<&FunctionalTrace> = functional.iter().collect();
        let mined = miner.mine(&trace_refs)?;

        let mut models = Vec::with_capacity(domains.len());
        for d in 0..domains.len() {
            let mut psms = Vec::new();
            for (i, gamma) in mined.traces.iter().enumerate() {
                let mut psm = generate_psm(gamma, &domain_power[i][d], i)?;
                simplify(&mut psm, &self.merge);
                psms.push(psm);
            }
            let mut combined = join(&psms, &self.merge);
            let training: Vec<(&FunctionalTrace, &PowerTrace)> = functional
                .iter()
                .zip(domain_power.iter().map(|p| &p[d]))
                .collect();
            let report = calibrate(&mut combined, &training, &self.calibration)?;
            let hmm = build_hmm(&combined, mined.table.len());
            let stats = TrainingStats {
                training_instants: stimuli.iter().map(Stimulus::len).sum(),
                states: combined.state_count(),
                transitions: combined.transition_count(),
                calibrated_states: report.calibrated_count(),
                ..TrainingStats::default()
            };
            models.push(TrainedModel {
                table: mined.table.clone(),
                psm: combined,
                hmm,
                stats,
            });
        }
        Ok(HierarchicalModel { domains, models })
    }

    /// Hierarchical estimation: sums the per-domain PSM estimates of a
    /// functional trace (the fast path; no gate-level work).
    pub fn estimate_hierarchical(
        &self,
        model: &HierarchicalModel,
        functional: &FunctionalTrace,
    ) -> HmmOutcome {
        let mut total: Option<HmmOutcome> = None;
        for m in &model.models {
            let outcome = self.estimate_from_trace(m, functional);
            total = Some(match total {
                None => outcome,
                Some(acc) => HmmOutcome {
                    estimate: acc
                        .estimate
                        .iter()
                        .zip(outcome.estimate.iter())
                        .map(|(a, b)| a + b)
                        .collect(),
                    wrong_state_predictions: acc
                        .wrong_state_predictions
                        .max(outcome.wrong_state_predictions),
                    unknown_instants: acc.unknown_instants.max(outcome.unknown_instants),
                },
            });
        }
        total.expect("netlists always have at least the core domain")
    }

    /// The slow golden path of Table II's *PX* column: gate-level power
    /// simulation of a workload.
    ///
    /// # Errors
    ///
    /// Any layer error, wrapped in the matching [`FlowError`] variant.
    pub fn reference_power(&self, ip: &dyn Ip, workload: &Stimulus) -> Result<PowerTrace, FlowError> {
        let netlist = ip.netlist()?;
        let cap = capture_traces(&netlist, &self.power_model, workload, self.noise_seed ^ 0x5A5A)?;
        Ok(cap.power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_ips::{testbench, MultSum, Ram1k};

    #[test]
    fn train_and_estimate_multsum() {
        let flow = PsmFlow::for_ip("MultSum");
        let training = testbench::multsum_short_ts(1);
        let model = flow.train(&mut MultSum::new(), &[training]).unwrap();
        assert!(model.stats.states > 0);
        assert!(model.stats.states <= model.stats.states_before_optimisation);
        assert_eq!(model.psm.state_count(), model.stats.states);

        let workload = testbench::multsum_long_ts(9, 3_000);
        let est = flow
            .estimate(&model, &mut MultSum::new(), &workload)
            .unwrap();
        assert_eq!(est.outcome.estimate.len(), workload.len());
        let mre = est.mre_vs_reference().unwrap();
        assert!(mre < 0.30, "MultSum MRE {mre}");
    }

    #[test]
    fn models_round_trip_through_json() {
        let flow = PsmFlow::for_ip("MultSum");
        let training = testbench::multsum_short_ts(1);
        let model = flow.train(&mut MultSum::new(), &[training]).unwrap();

        let dir = std::env::temp_dir().join("psmgen-model-roundtrip.json");
        model.save(&dir).unwrap();
        let loaded = TrainedModel::load(&dir).unwrap();
        std::fs::remove_file(&dir).ok();
        assert_eq!(loaded.psm.state_count(), model.psm.state_count());
        assert_eq!(loaded.psm.transitions(), model.psm.transitions());
        assert_eq!(loaded.hmm.num_states(), model.hmm.num_states());
        assert_eq!(loaded.table.len(), model.table.len());

        // The loaded model estimates the same powers (floats may differ by
        // an ulp through the JSON round-trip).
        let workload = testbench::multsum_long_ts(5, 1_000);
        let mut ip = MultSum::new();
        let trace = psm_ips::behavioural_trace(&mut ip, &workload).unwrap();
        let a = flow.estimate_from_trace(&model, &trace);
        let b = flow.estimate_from_trace(&loaded, &trace);
        assert_eq!(a.wrong_state_predictions, b.wrong_state_predictions);
        assert_eq!(a.unknown_instants, b.unknown_instants);
        for (x, y) in a.estimate.iter().zip(b.estimate.iter()) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn training_needs_data() {
        let flow = PsmFlow::default();
        assert!(matches!(
            flow.train(&mut Ram1k::new(), &[]),
            Err(FlowError::NoTrainingData)
        ));
    }

    #[test]
    fn multiple_training_traces_share_a_table() {
        let flow = PsmFlow::for_ip("MultSum");
        let a = testbench::multsum_short_ts(1);
        let b = testbench::multsum_long_ts(2, 1_500);
        let model = flow.train(&mut MultSum::new(), &[a, b]).unwrap();
        // Two traces, joined into one model with at most one initial state
        // per distinct starting behaviour.
        assert!(model.psm.initials().iter().map(|(_, c)| c).sum::<usize>() == 2);
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn flow_errors_render_and_chain() {
        use std::error::Error as _;
        let errs: Vec<FlowError> = vec![
            FlowError::Mining(psm_mining::MiningError::EmptyTrace),
            FlowError::Core(psm_core::CoreError::NoBehaviours),
            FlowError::Trace(psm_trace::TraceError::ZeroWidth),
            FlowError::Stats(psm_stats::StatsError::InvalidParameter("x")),
            FlowError::NoTrainingData,
            FlowError::Persistence("disk full".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
            // sources chain where applicable
            match &e {
                FlowError::NoTrainingData | FlowError::Persistence(_) => {
                    assert!(e.source().is_none())
                }
                _ => assert!(e.source().is_some()),
            }
        }
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("psmgen-garbage-model.json");
        std::fs::write(&dir, "not json at all").unwrap();
        let r = TrainedModel::load(&dir);
        std::fs::remove_file(&dir).ok();
        assert!(matches!(r, Err(FlowError::Persistence(_))));
    }

    #[test]
    fn load_missing_file_is_a_persistence_error() {
        let r = TrainedModel::load("/nonexistent/psmgen/model.json");
        assert!(matches!(r, Err(FlowError::Persistence(_))));
    }
}
