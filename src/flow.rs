//! The end-to-end PSM pipeline (paper Fig. 1).
//!
//! [`PsmFlow`] packages the whole methodology behind two calls:
//!
//! * [`PsmFlow::train`] — run the *golden* gate-level power simulation on
//!   the training stimuli (the PrimeTime-PX role), mine temporal
//!   assertions, generate one chain PSM per trace, `simplify`, `join`,
//!   calibrate data-dependent states and build the HMM;
//! * [`PsmFlow::estimate`] — simulate the fast behavioural model of the IP
//!   concurrently with the PSMs (through the HMM) on a fresh workload and
//!   return the power estimate, plus the golden reference for accuracy
//!   evaluation.
//!
//! Flows are configured through [`PsmFlow::builder`] (with [`IpPreset`]
//! for the paper's Table I benchmarks). The training engine fans the
//! per-stimulus golden captures and the per-trace PSM generation across
//! scoped worker threads ([`Parallelism`]); the merge is deterministic, so
//! a parallel run produces a [`TrainedModel`] byte-identical to a
//! sequential one. Every stage is instrumented
//! ([`train_with_telemetry`](PsmFlow::train_with_telemetry)), and batch
//! entry points ([`train_batch`](PsmFlow::train_batch),
//! [`estimate_batch`](PsmFlow::estimate_batch)) spread whole jobs over the
//! same worker pool.
//!
//! Every pipeline artifact is statically checked by the [`psm_analyze`]
//! lints as training proceeds (the `validate` stage of the telemetry
//! report). Under the default [`Strictness::Lenient`] the diagnostics are
//! demoted to warnings and ride along in the [`TelemetryReport`]; under
//! [`Strictness::Strict`] any error-severity finding aborts training with
//! [`FlowError::Validation`].

pub use crate::parallel::Parallelism;
use crate::parallel::{collect_ordered, lane_partition, run_indexed};
use crate::telemetry::{Stage, Telemetry, TelemetryReport};
use psm_analyze::{
    lint_hmm_against_observations, lint_interface, lint_model, lint_netlist, lint_netlist_dataflow,
    lint_power_intent, lint_proposition_coverage, lint_psm_against_table,
    lint_psm_against_training, lint_psm_power_intent, lint_trace_pair, verify_model,
    AnalysisReport, Severity,
};
pub use psm_analyze::{LintConfig, LintLevel, Strictness, VerifyConfig};
use psm_core::{
    calibrate, classify_trace, generate_psm, join, simplify, CalibrationConfig, CoreError,
    MergePolicy, Psm,
};
use psm_hmm::{build_hmm, Hmm, HmmOutcome, HmmSimulator};
use psm_ips::{behavioural_trace, Ip};
use psm_mining::{Miner, MiningConfig, MiningError, PropositionTable};
use psm_rtl::{
    capture_traces_batch, capture_traces_by_domain_batch, PowerModel, RtlError, Stimulus,
};
use psm_stats::{mean_relative_error, StatsError};
use psm_trace::{FunctionalTrace, PowerTrace, TraceError};
use std::error::Error;
use std::fmt;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// What went wrong while saving or loading a model file.
#[derive(Debug)]
pub enum PersistenceError {
    /// Reading or writing the file failed.
    Io(std::io::Error),
    /// The file's contents did not parse or validate as a model.
    Format(psm_persist::PersistError),
}

impl fmt::Display for PersistenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistenceError::Io(e) => write!(f, "i/o: {e}"),
            PersistenceError::Format(e) => write!(f, "format: {e}"),
        }
    }
}

/// Errors surfaced by the pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum FlowError {
    /// Assertion mining failed.
    Mining(MiningError),
    /// PSM generation or simulation failed.
    Core(CoreError),
    /// Gate-level capture failed.
    Rtl(RtlError),
    /// Trace assembly failed.
    Trace(TraceError),
    /// An accuracy metric could not be computed.
    Stats(StatsError),
    /// No training stimulus was provided.
    NoTrainingData,
    /// Static validation found error-severity diagnostics and the flow runs
    /// under [`Strictness::Strict`]. The report carries every finding for
    /// the offending artifact.
    Validation(AnalysisReport),
    /// Saving or loading a model file failed.
    Persistence {
        /// The file involved.
        path: PathBuf,
        /// The underlying i/o or format failure.
        source: PersistenceError,
    },
}

impl FlowError {
    pub(crate) fn persistence_io(path: impl Into<PathBuf>, e: std::io::Error) -> Self {
        FlowError::Persistence {
            path: path.into(),
            source: PersistenceError::Io(e),
        }
    }

    pub(crate) fn persistence_format(
        path: impl Into<PathBuf>,
        e: psm_persist::PersistError,
    ) -> Self {
        FlowError::Persistence {
            path: path.into(),
            source: PersistenceError::Format(e),
        }
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Mining(e) => write!(f, "mining: {e}"),
            FlowError::Core(e) => write!(f, "psm: {e}"),
            FlowError::Rtl(e) => write!(f, "gate-level: {e}"),
            FlowError::Trace(e) => write!(f, "trace: {e}"),
            FlowError::Stats(e) => write!(f, "metric: {e}"),
            FlowError::NoTrainingData => write!(f, "at least one training stimulus is required"),
            FlowError::Validation(report) => write!(
                f,
                "validation failed for {}: {} error(s)",
                report.artifact(),
                report.count(Severity::Error)
            ),
            FlowError::Persistence { path, source } => {
                write!(
                    f,
                    "model persistence failed at {}: {source}",
                    path.display()
                )
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Mining(e) => Some(e),
            FlowError::Core(e) => Some(e),
            FlowError::Rtl(e) => Some(e),
            FlowError::Trace(e) => Some(e),
            FlowError::Stats(e) => Some(e),
            FlowError::NoTrainingData => None,
            FlowError::Validation(_) => None,
            FlowError::Persistence { source, .. } => match source {
                PersistenceError::Io(e) => Some(e),
                PersistenceError::Format(e) => Some(e),
            },
        }
    }
}

impl From<MiningError> for FlowError {
    fn from(e: MiningError) -> Self {
        FlowError::Mining(e)
    }
}
impl From<CoreError> for FlowError {
    fn from(e: CoreError) -> Self {
        FlowError::Core(e)
    }
}
impl From<RtlError> for FlowError {
    fn from(e: RtlError) -> Self {
        FlowError::Rtl(e)
    }
}
impl From<TraceError> for FlowError {
    fn from(e: TraceError) -> Self {
        FlowError::Trace(e)
    }
}
impl From<StatsError> for FlowError {
    fn from(e: StatsError) -> Self {
        FlowError::Stats(e)
    }
}

/// Timing and size measurements gathered while training — the raw material
/// of the paper's Table II.
///
/// The two `Duration` fields are wall-clock and therefore machine- and
/// schedule-dependent; they are **excluded from the serialised form** so
/// that a parallel and a sequential training run of the same flow produce
/// byte-identical model files. Loading a model restores them as zero.
#[derive(Debug, Clone, Default)]
pub struct TrainingStats {
    /// Total training instants across all stimuli (Table II column *TS*).
    pub training_instants: usize,
    /// Wall-clock of the golden gate-level power simulation (column *PX*).
    pub reference_power_time: Duration,
    /// Wall-clock of mining + generation + simplify + join + calibration +
    /// HMM construction (column *PSMs gen.*).
    pub generation_time: Duration,
    /// States of the combined model (column *States*).
    pub states: usize,
    /// Transitions of the combined model (column *Trans.*).
    pub transitions: usize,
    /// States before `simplify`/`join` (for the ablation benches).
    pub states_before_optimisation: usize,
    /// States eliminated by `simplify` + `join`.
    pub states_merged: usize,
    /// States replaced by a regression output during calibration.
    pub calibrated_states: usize,
}

/// A trained power model for one IP.
///
/// Serialisable: a model trained once against the slow golden simulator can
/// be saved ([`TrainedModel::save`]) and shipped alongside the IP for
/// instant reuse in system-level explorations.
#[derive(Debug, Clone)]
pub struct TrainedModel {
    /// The shared proposition set mined from the training traces.
    pub table: PropositionTable,
    /// The combined, optimised PSM.
    pub psm: Psm,
    /// The HMM driving non-deterministic simulation.
    pub hmm: Hmm,
    /// Measurements gathered during training.
    pub stats: TrainingStats,
}

impl TrainedModel {
    /// Saves the model as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Persistence`] on serialisation or I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), FlowError> {
        crate::persist::save_to_path(self, path.as_ref())
    }

    /// Loads a model previously written by [`TrainedModel::save`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Persistence`] on I/O or parse failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, FlowError> {
        crate::persist::load_from_path(path.as_ref())
    }

    /// The canonical serialised JSON body — what [`TrainedModel::save`]
    /// wraps in the `psmgen-artifact/v2` container. Deterministic: equal
    /// models render to equal bytes, regardless of the [`Parallelism`]
    /// they were trained under.
    pub fn to_json_string(&self) -> String {
        crate::persist::render_model(self)
    }

    /// Lowers this model to its flat-table serving form (see
    /// [`psm_compile::CompiledModel`]): interned observation codes, flat
    /// transition/emission tables, precomputed log-probabilities and an
    /// allocation-free forward pass, bit-identical to the interpreted
    /// estimator.
    ///
    /// # Errors
    ///
    /// Returns [`psm_compile::CompileError`] when the PSM and HMM disagree
    /// on the state space (impossible for models produced by
    /// [`PsmFlow::train`], possible for hand-assembled ones).
    pub fn compile(&self) -> Result<psm_compile::CompiledModel, psm_compile::CompileError> {
        psm_compile::CompiledModel::compile_with_dictionary(&self.table, &self.psm, &self.hmm)
    }

    /// Saves the model as a `psmgen-artifact/v3`: the
    /// [`save`](TrainedModel::save) body plus a `"compiled"` section
    /// holding the serving form, so `psmd` can load the flat tables
    /// directly instead of compiling at registry-load time. The file still
    /// loads through [`TrainedModel::load`] (the extra section is ignored
    /// by the training-side reader).
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Persistence`] on compilation, serialisation or
    /// I/O failure.
    pub fn save_compiled(&self, path: impl AsRef<std::path::Path>) -> Result<(), FlowError> {
        crate::persist::save_compiled_to_path(self, path.as_ref())
    }
}

/// A hierarchical power model: one trained PSM set per power domain of the
/// IP's netlist (the paper's future-work extension).
#[derive(Debug, Clone)]
pub struct HierarchicalModel {
    /// Domain names, aligned with [`models`](Self::models).
    pub domains: Vec<String>,
    /// One trained model per domain (sharing one proposition table).
    pub models: Vec<TrainedModel>,
}

impl HierarchicalModel {
    /// Saves the hierarchical model as JSON.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Persistence`] on serialisation or I/O failure.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), FlowError> {
        crate::persist::save_to_path(self, path.as_ref())
    }

    /// Loads a model previously written by [`HierarchicalModel::save`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Persistence`] on I/O or parse failure.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, FlowError> {
        crate::persist::load_from_path(path.as_ref())
    }

    /// The canonical serialised JSON body — what
    /// [`HierarchicalModel::save`] wraps in the `psmgen-artifact/v2`
    /// container.
    pub fn to_json_string(&self) -> String {
        crate::persist::render_model(self)
    }
}

/// A power estimate for one workload, with its golden reference.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// The PSM/HMM estimation outcome (per-instant power, WSP counters).
    pub outcome: HmmOutcome,
    /// The golden gate-level reference power of the same workload.
    pub reference: PowerTrace,
}

impl Estimate {
    /// Mean relative error of the estimate against the golden reference —
    /// the paper's MRE metric.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] when the traces are empty or misaligned.
    pub fn mre_vs_reference(&self) -> Result<f64, StatsError> {
        mean_relative_error(self.outcome.estimate.as_slice(), self.reference.as_slice())
    }
}

/// The Table I benchmark presets — the paper's per-design configuration
/// step, as a typed knob for [`PsmFlowBuilder::preset`].
///
/// All four benchmarks disable relational atoms: their wide data buses
/// carry (pseudo-)random payloads whose pairwise order says nothing about
/// *behaviour*, and under this crate's closed-world proposition composition
/// such atoms would fragment every control state into data-dependent
/// shards. Data-dependent *power* is instead handled where the paper
/// handles it — by the Hamming-distance regression calibration.
///
/// The merge tests run at α = 0.3 (power traces are noisy, so a lenient
/// rejection level keeps genuinely different behaviours apart), and the
/// calibration accepts fits with |r| ≥ 0.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpPreset {
    /// The 1 KB synchronous RAM (Table I row *RAM*).
    Ram1k,
    /// The multiply–accumulate datapath (row *MultSum*).
    MultSum,
    /// The AES-128 cipher round design (row *AES*).
    Aes,
    /// The Camellia cipher design (row *Camellia*).
    Camellia,
}

impl IpPreset {
    /// All presets, in Table I order.
    pub const ALL: [IpPreset; 4] = [
        IpPreset::Ram1k,
        IpPreset::MultSum,
        IpPreset::Aes,
        IpPreset::Camellia,
    ];

    /// The benchmark name as the IP registry spells it
    /// ([`psm_ips::ip_by_name`]).
    pub fn benchmark_name(self) -> &'static str {
        match self {
            IpPreset::Ram1k => "RAM",
            IpPreset::MultSum => "MultSum",
            IpPreset::Aes => "AES",
            IpPreset::Camellia => "Camellia",
        }
    }

    /// Looks a preset up by benchmark name; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        IpPreset::ALL
            .into_iter()
            .find(|p| p.benchmark_name() == name)
    }

    fn apply(self, flow: &mut PsmFlow) {
        flow.mining = flow.mining.with_pair_relations(false);
        flow.merge = MergePolicy::new(0.05, 0.3);
        flow.calibration = CalibrationConfig::default().with_min_abs_r(0.6);
    }
}

impl fmt::Display for IpPreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.benchmark_name())
    }
}

/// Fluent constructor for [`PsmFlow`], started with [`PsmFlow::builder`].
///
/// # Examples
///
/// ```
/// use psmgen::flow::{IpPreset, Parallelism, PsmFlow};
///
/// let flow = PsmFlow::builder()
///     .preset(IpPreset::Aes)
///     .noise_seed(7)
///     .parallelism(Parallelism::Sequential)
///     .build();
/// assert!(!flow.mining.pair_relations());
/// assert_eq!(flow.noise_seed, 7);
/// ```
#[derive(Debug, Clone, Default)]
#[must_use = "a builder does nothing until `.build()`"]
pub struct PsmFlowBuilder {
    flow: PsmFlow,
}

impl PsmFlowBuilder {
    /// Applies a Table I benchmark preset (later knob calls still override
    /// individual fields).
    pub fn preset(mut self, preset: IpPreset) -> Self {
        preset.apply(&mut self.flow);
        self
    }

    /// Sets the assertion-mining thresholds (§III-A).
    pub fn mining(mut self, mining: MiningConfig) -> Self {
        self.flow.mining = mining;
        self
    }

    /// Sets the mergeability policy of `simplify`/`join` (§IV-A).
    pub fn merge(mut self, merge: MergePolicy) -> Self {
        self.flow.merge = merge;
        self
    }

    /// Sets the regression-calibration thresholds (§IV).
    pub fn calibration(mut self, calibration: CalibrationConfig) -> Self {
        self.flow.calibration = calibration;
        self
    }

    /// Sets the electrical model of the golden power estimator.
    pub fn power_model(mut self, power_model: PowerModel) -> Self {
        self.flow.power_model = power_model;
        self
    }

    /// Sets the seed of the golden estimator's measurement noise.
    pub fn noise_seed(mut self, noise_seed: u64) -> Self {
        self.flow.noise_seed = noise_seed;
        self
    }

    /// Sets the worker budget of the parallel engine.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.flow.parallelism = parallelism;
        self
    }

    /// Sets how validation diagnostics are handled: [`Strictness::Strict`]
    /// aborts training on the first error-severity finding, the default
    /// [`Strictness::Lenient`] demotes everything to telemetry warnings.
    pub fn strictness(mut self, strictness: Strictness) -> Self {
        self.flow.strictness = strictness;
        self
    }

    /// Sets per-code lint-level overrides (`allow`/`warn`/`deny`), applied
    /// to every validation report before the [`Strictness`] decision.
    pub fn lint_config(mut self, lint_config: LintConfig) -> Self {
        self.flow.lint_config = lint_config;
        self
    }

    /// Tunes the bounded model checker run at the end of the validate
    /// stage (`depth: 0` disables it entirely).
    pub fn verify(mut self, verify: VerifyConfig) -> Self {
        self.flow.verify = verify;
        self
    }

    /// Finishes the flow.
    pub fn build(self) -> PsmFlow {
        self.flow
    }
}

/// Pipeline configuration: the designer-tunable knobs of the methodology.
///
/// # Examples
///
/// ```
/// use psmgen::flow::{IpPreset, PsmFlow};
///
/// // Per-benchmark tuning as the paper's designers would do it:
/// let flow = PsmFlow::builder().preset(IpPreset::Aes).build();
/// assert!(!flow.mining.pair_relations());
/// ```
#[derive(Debug, Clone)]
pub struct PsmFlow {
    /// Assertion-mining thresholds (§III-A).
    pub mining: MiningConfig,
    /// Mergeability policy of `simplify`/`join` (§IV-A).
    pub merge: MergePolicy,
    /// Regression-calibration thresholds (§IV).
    pub calibration: CalibrationConfig,
    /// Electrical model of the golden power estimator.
    pub power_model: PowerModel,
    /// Seed of the golden estimator's measurement noise.
    pub noise_seed: u64,
    /// Worker budget of the parallel training/estimation engine. Does not
    /// affect results: any setting produces byte-identical models.
    pub parallelism: Parallelism,
    /// How static-validation diagnostics affect training
    /// ([`Strictness::Lenient`] by default).
    pub strictness: Strictness,
    /// Per-code lint-level overrides, applied to every validation report
    /// before the [`Strictness`] decision (empty by default).
    pub lint_config: LintConfig,
    /// Bounded-model-checking knobs for the mined-assertion verification
    /// pass at the end of the validate stage; `depth: 0` disables it.
    pub verify: VerifyConfig,
}

impl Default for PsmFlow {
    fn default() -> Self {
        PsmFlow {
            mining: MiningConfig::default(),
            merge: MergePolicy::default(),
            calibration: CalibrationConfig::default(),
            power_model: PowerModel::default(),
            noise_seed: 0xD5E_u64,
            parallelism: Parallelism::Auto,
            strictness: Strictness::default(),
            lint_config: LintConfig::default(),
            verify: VerifyConfig::default(),
        }
    }
}

impl PsmFlow {
    /// Starts a fluent configuration ([`PsmFlowBuilder`]).
    pub fn builder() -> PsmFlowBuilder {
        PsmFlowBuilder::default()
    }

    /// Defaults tuned for the Table I benchmarks by name.
    ///
    /// Unknown names fall back to the stock defaults.
    #[deprecated(
        since = "0.2.0",
        note = "use `PsmFlow::builder().preset(IpPreset::…)` — presets are now typed"
    )]
    pub fn for_ip(name: &str) -> Self {
        match IpPreset::from_name(name) {
            Some(preset) => PsmFlow::builder().preset(preset).build(),
            None => PsmFlow::default(),
        }
    }

    /// Runs the full training pipeline of Fig. 1 on one IP.
    ///
    /// Every stimulus becomes one training trace pair (functional + golden
    /// power, captured in a single gate-level run); the traces are mined
    /// together so PSMs from different traces share a proposition set and
    /// can be joined. Captures and per-trace generation fan across the
    /// worker pool ([`PsmFlow::parallelism`]); the result does not depend
    /// on the worker count.
    ///
    /// # Examples
    ///
    /// Train on a verification-style testbench, then estimate a fresh
    /// workload straight from a behavioural trace (the paper's fast path):
    ///
    /// ```
    /// use psmgen::flow::{IpPreset, PsmFlow};
    /// use psmgen::ips::{behavioural_trace, testbench, MultSum};
    ///
    /// let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
    /// let mut ip = MultSum::new();
    /// let model = flow.train(&mut ip, &[testbench::multsum_short_ts(1)])?;
    /// assert!(model.psm.state_count() > 0);
    ///
    /// let workload = testbench::multsum_long_ts(7, 300);
    /// let trace = behavioural_trace(&mut ip, &workload)?;
    /// let outcome = flow.estimate_from_trace(&model, &trace);
    /// assert_eq!(outcome.estimate.len(), workload.len());
    /// # Ok::<(), psmgen::flow::FlowError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// * [`FlowError::NoTrainingData`] when `stimuli` is empty;
    /// * any layer error, wrapped in the matching [`FlowError`] variant.
    pub fn train(&self, ip: &mut dyn Ip, stimuli: &[Stimulus]) -> Result<TrainedModel, FlowError> {
        let telemetry = Telemetry::new();
        self.train_core(ip, stimuli, &telemetry)
    }

    /// Like [`PsmFlow::train`], additionally returning the per-stage
    /// [`TelemetryReport`] of the run.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PsmFlow::train`].
    pub fn train_with_telemetry(
        &self,
        ip: &mut dyn Ip,
        stimuli: &[Stimulus],
    ) -> Result<(TrainedModel, TelemetryReport), FlowError> {
        let telemetry = Telemetry::new();
        let model = self.train_core(ip, stimuli, &telemetry)?;
        Ok((model, telemetry.report()))
    }

    /// Folds one validation report into the run: the per-code
    /// [`LintConfig`] re-levels the diagnostics first, then everything
    /// lands in the telemetry; strict flows additionally abort on errors.
    fn check(&self, telemetry: &Telemetry, report: AnalysisReport) -> Result<(), FlowError> {
        let report = self.lint_config.apply(report);
        telemetry.add_diagnostics(&report);
        if self.strictness.is_strict() && report.has_errors() {
            return Err(FlowError::Validation(report));
        }
        Ok(())
    }

    fn train_core(
        &self,
        ip: &mut dyn Ip,
        stimuli: &[Stimulus],
        telemetry: &Telemetry,
    ) -> Result<TrainedModel, FlowError> {
        if stimuli.is_empty() {
            return Err(FlowError::NoTrainingData);
        }
        let netlist = ip.netlist()?;
        let netlist_report = telemetry.time(Stage::Validate, "netlist", || lint_netlist(&netlist));
        self.check(telemetry, netlist_report)?;
        let dataflow_report = telemetry.time(Stage::Validate, "netlist dataflow", || {
            lint_netlist_dataflow(&netlist)
        });
        self.check(telemetry, dataflow_report)?;
        let interface_report = telemetry.time(Stage::Validate, "interface", || {
            lint_interface(&ip.signals(), &netlist)
        });
        self.check(telemetry, interface_report)?;
        // Silent unless the netlist declares power intent (isolation-marked
        // cells); PD001/PD006/PD007 holes fail training under the default
        // strictness before any power-down is ever mined.
        let intent_report = telemetry.time(Stage::Validate, "power intent", || {
            lint_power_intent(&netlist)
        });
        self.check(telemetry, intent_report)?;

        // Golden capture: functional + reference power over the bit-parallel
        // engine. Stimuli pack 64-to-a-lane-word into contiguous groups (one
        // work unit per effective worker, see `lane_partition`), and the
        // noise seed stays a function of the stimulus *index*, so neither
        // grouping nor worker scheduling can change any trace.
        let px_start = Instant::now();
        let groups = lane_partition(stimuli.len(), self.parallelism);
        let workers = self.parallelism.worker_count(groups.len());
        let captures = collect_ordered(run_indexed(groups.len(), workers, |g| {
            let (start, end) = groups[g];
            telemetry.time(Stage::Capture, format!("stimuli {start}..{end}"), || {
                let seeds: Vec<u64> = (start..end).map(|i| self.noise_seed + i as u64).collect();
                capture_traces_batch(&netlist, &self.power_model, &stimuli[start..end], &seeds)
                    .map_err(FlowError::from)
            })
        }))?;
        let (functional, power): (Vec<FunctionalTrace>, Vec<PowerTrace>) = captures
            .into_iter()
            .flatten()
            .map(|c| (c.functional, c.power))
            .unzip();
        let reference_power_time = px_start.elapsed();
        for (i, (f, p)) in functional.iter().zip(power.iter()).enumerate() {
            let report = telemetry.time(Stage::Validate, format!("trace pair {i}"), || {
                lint_trace_pair(f, p, &format!("training trace {i}"))
            });
            self.check(telemetry, report)?;
        }

        // Mining interns one shared proposition set over all traces, so it
        // stays sequential (and cheap relative to capture).
        let gen_start = Instant::now();
        let mined = telemetry.time(Stage::Mining, "all traces", || {
            let miner = Miner::new(self.mining);
            let trace_refs: Vec<&FunctionalTrace> = functional.iter().collect();
            miner.mine(&trace_refs)
        })?;
        for (i, f) in functional.iter().enumerate() {
            let report = telemetry.time(Stage::Validate, format!("coverage {i}"), || {
                lint_proposition_coverage(&mined.table, f, &format!("training trace {i}"))
            });
            self.check(telemetry, report)?;
        }

        // Per-trace chain-PSM generation + simplify, fanned per trace.
        // Each worker touches only its own (gamma, power) pair; the merge
        // below walks the results in index order.
        let gen_workers = self.parallelism.worker_count(mined.traces.len());
        let generated = collect_ordered(run_indexed(mined.traces.len(), gen_workers, |i| {
            let mut psm = telemetry
                .time(Stage::Generation, format!("trace {i}"), || {
                    generate_psm(&mined.traces[i], &power[i], i)
                })
                .map_err(FlowError::from)?;
            let before = psm.state_count();
            telemetry.time(Stage::Simplify, format!("trace {i}"), || {
                simplify(&mut psm, &self.merge)
            });
            Ok::<_, FlowError>((before, psm))
        }))?;
        let states_before: usize = generated.iter().map(|(before, _)| before).sum();
        let psms: Vec<Psm> = generated.into_iter().map(|(_, psm)| psm).collect();

        let mut combined = telemetry.time(Stage::Join, "all psms", || join(&psms, &self.merge));
        let states_merged = states_before.saturating_sub(combined.state_count());
        telemetry.add_states_merged(states_merged);

        let training: Vec<(&FunctionalTrace, &PowerTrace)> =
            functional.iter().zip(power.iter()).collect();
        let report = telemetry.time(Stage::Calibrate, "combined psm", || {
            calibrate(&mut combined, &training, &self.calibration)
        })?;
        telemetry.add_calibrated_states(report.calibrated_count());

        let hmm = telemetry.time(Stage::HmmBuild, "combined psm", || {
            build_hmm(&combined, mined.table.len())
        });
        let model_report = telemetry.time(Stage::Validate, "trained model", || {
            lint_model(&combined, &hmm, mined.table.len())
        });
        self.check(telemetry, model_report)?;
        // Cross-artifact consistency: the trained model against the very
        // artifacts it was derived from.
        let attrs_report = telemetry.time(Stage::Validate, "state attributes", || {
            lint_psm_against_training(&combined, &power, self.merge.alpha())
        });
        self.check(telemetry, attrs_report)?;
        let emissions_report = telemetry.time(Stage::Validate, "hmm emissions", || {
            lint_hmm_against_observations(&hmm, &mined.traces)
        });
        self.check(telemetry, emissions_report)?;
        let guards_report = telemetry.time(Stage::Validate, "psm guards", || {
            lint_psm_against_table(&combined, mined.table.len())
        });
        self.check(telemetry, guards_report)?;
        // Off-implying mined states versus the netlist's isolation proofs
        // (XA005): the model must not promise power-downs the netlist
        // cannot survive.
        let psm_intent_report = telemetry.time(Stage::Validate, "psm power intent", || {
            lint_psm_power_intent(&combined, None, &netlist)
        });
        self.check(telemetry, psm_intent_report)?;
        // Bounded model checking: every mined assertion against the
        // netlist's reachable behaviours, not just the training traces.
        if self.verify.depth > 0 {
            let verify_report = telemetry.time(Stage::Validate, "assertion verify", || {
                verify_model(&netlist, &mined.table, &combined, &self.verify).report
            });
            self.check(telemetry, verify_report)?;
        }
        let generation_time = gen_start.elapsed();

        let stats = TrainingStats {
            training_instants: stimuli.iter().map(Stimulus::len).sum(),
            reference_power_time,
            generation_time,
            states: combined.state_count(),
            transitions: combined.transition_count(),
            states_before_optimisation: states_before,
            states_merged,
            calibrated_states: report.calibrated_count(),
        };
        Ok(TrainedModel {
            table: mined.table,
            psm: combined,
            hmm,
            stats,
        })
    }

    /// Trains one model per stimulus set, fanning whole jobs across the
    /// worker pool. `make_ip` constructs a fresh IP inside each worker (an
    /// [`Ip`] need not be `Send`).
    ///
    /// Job `i` trains on `jobs[i]` and produces `models[i]`, each
    /// byte-identical to what a lone [`PsmFlow::train`] call would return.
    ///
    /// # Errors
    ///
    /// The lowest-index failing job's error, under the same conditions as
    /// [`PsmFlow::train`].
    pub fn train_batch<F>(
        &self,
        make_ip: F,
        jobs: &[Vec<Stimulus>],
    ) -> Result<Vec<TrainedModel>, FlowError>
    where
        F: Fn() -> Box<dyn Ip> + Sync,
    {
        // Jobs are the parallel axis here; each job trains sequentially so
        // the pool is not oversubscribed.
        let inner = PsmFlow {
            parallelism: Parallelism::Sequential,
            ..self.clone()
        };
        let workers = self.parallelism.worker_count(jobs.len());
        collect_ordered(run_indexed(jobs.len(), workers, |i| {
            let mut ip = make_ip();
            let telemetry = Telemetry::new();
            inner.train_core(ip.as_mut(), &jobs[i], &telemetry)
        }))
    }

    /// Estimates the power of a fresh workload through the trained PSMs
    /// *and* computes the golden reference for the same workload, so the
    /// result carries its own accuracy ground truth.
    ///
    /// # Errors
    ///
    /// Any layer error, wrapped in the matching [`FlowError`] variant.
    pub fn estimate(
        &self,
        model: &TrainedModel,
        ip: &mut dyn Ip,
        workload: &Stimulus,
    ) -> Result<Estimate, FlowError> {
        let telemetry = Telemetry::new();
        self.estimate_core(model, ip, workload, &telemetry)
    }

    /// Like [`PsmFlow::estimate`], additionally returning the per-stage
    /// [`TelemetryReport`] (estimation spans plus the golden-reference
    /// capture span, and the run's WSP/sync-loss counters).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PsmFlow::estimate`].
    pub fn estimate_with_telemetry(
        &self,
        model: &TrainedModel,
        ip: &mut dyn Ip,
        workload: &Stimulus,
    ) -> Result<(Estimate, TelemetryReport), FlowError> {
        let telemetry = Telemetry::new();
        let estimate = self.estimate_core(model, ip, workload, &telemetry)?;
        Ok((estimate, telemetry.report()))
    }

    fn estimate_core(
        &self,
        model: &TrainedModel,
        ip: &mut dyn Ip,
        workload: &Stimulus,
        telemetry: &Telemetry,
    ) -> Result<Estimate, FlowError> {
        let functional = telemetry.time(Stage::Estimation, "behavioural trace", || {
            behavioural_trace(ip, workload)
        })?;
        let outcome = telemetry.time(Stage::Estimation, "psm/hmm simulation", || {
            self.estimate_from_trace(model, &functional)
        });
        telemetry.add_wrong_state_predictions(outcome.wrong_state_predictions);
        telemetry.add_sync_losses(outcome.unknown_instants);
        let reference = telemetry.time(Stage::Capture, "golden reference", || {
            self.reference_power(ip, workload)
        })?;
        Ok(Estimate { outcome, reference })
    }

    /// Estimates many workloads against one model, fanning across the
    /// worker pool. `make_ip` constructs a fresh IP inside each worker.
    ///
    /// # Errors
    ///
    /// The lowest-index failing workload's error, under the same
    /// conditions as [`PsmFlow::estimate`].
    pub fn estimate_batch<F>(
        &self,
        model: &TrainedModel,
        make_ip: F,
        workloads: &[Stimulus],
    ) -> Result<Vec<Estimate>, FlowError>
    where
        F: Fn() -> Box<dyn Ip> + Sync,
    {
        let workers = self.parallelism.worker_count(workloads.len());
        collect_ordered(run_indexed(workloads.len(), workers, |i| {
            let mut ip = make_ip();
            let telemetry = Telemetry::new();
            self.estimate_core(model, ip.as_mut(), &workloads[i], &telemetry)
        }))
    }

    /// The fast path of Table III: PSM/HMM estimation from an
    /// already-captured functional trace, with no gate-level work at all.
    pub fn estimate_from_trace(
        &self,
        model: &TrainedModel,
        functional: &FunctionalTrace,
    ) -> HmmOutcome {
        let observations = classify_trace(&model.table, functional);
        let hamming = functional.input_hamming_series();
        let sim = HmmSimulator::new(&model.psm, model.hmm.clone());
        sim.run(&observations, &hamming)
    }

    /// Trains one PSM set **per power domain** of the IP's netlist — the
    /// hierarchical power model the paper proposes as future work ("a power
    /// model based on hierarchical PSMs that distinguishes among IP
    /// subcomponents").
    ///
    /// The proposition mining runs once over the shared functional traces
    /// (captures fan across the worker pool); each domain's PSMs are
    /// generated, optimised and calibrated against that domain's golden
    /// power trace. The hierarchical estimate of a workload is the
    /// per-instant sum of the domain estimates
    /// ([`PsmFlow::estimate_hierarchical`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PsmFlow::train`].
    pub fn train_hierarchical(
        &self,
        ip: &mut dyn Ip,
        stimuli: &[Stimulus],
    ) -> Result<HierarchicalModel, FlowError> {
        if stimuli.is_empty() {
            return Err(FlowError::NoTrainingData);
        }
        let netlist = ip.netlist()?;
        let groups = lane_partition(stimuli.len(), self.parallelism);
        let workers = self.parallelism.worker_count(groups.len());
        let captures: Vec<_> = collect_ordered(run_indexed(groups.len(), workers, |g| {
            let (start, end) = groups[g];
            let seeds: Vec<u64> = (start..end).map(|i| self.noise_seed + i as u64).collect();
            capture_traces_by_domain_batch(
                &netlist,
                &self.power_model,
                &stimuli[start..end],
                &seeds,
            )
            .map_err(FlowError::from)
        }))?
        .into_iter()
        .flatten()
        .collect();
        let domains = captures
            .first()
            .map(|c| c.domains.clone())
            .unwrap_or_default();
        let mut functional = Vec::with_capacity(captures.len());
        let mut domain_power: Vec<Vec<PowerTrace>> = Vec::with_capacity(captures.len());
        for cap in captures {
            functional.push(cap.functional);
            domain_power.push(cap.by_domain);
        }

        let miner = Miner::new(self.mining);
        let trace_refs: Vec<&FunctionalTrace> = functional.iter().collect();
        let mined = miner.mine(&trace_refs)?;

        let mut models = Vec::with_capacity(domains.len());
        for d in 0..domains.len() {
            let mut psms = Vec::new();
            let mut states_before = 0;
            for (i, gamma) in mined.traces.iter().enumerate() {
                let mut psm = generate_psm(gamma, &domain_power[i][d], i)?;
                states_before += psm.state_count();
                simplify(&mut psm, &self.merge);
                psms.push(psm);
            }
            let mut combined = join(&psms, &self.merge);
            let training: Vec<(&FunctionalTrace, &PowerTrace)> = functional
                .iter()
                .zip(domain_power.iter().map(|p| &p[d]))
                .collect();
            let report = calibrate(&mut combined, &training, &self.calibration)?;
            let hmm = build_hmm(&combined, mined.table.len());
            let stats = TrainingStats {
                training_instants: stimuli.iter().map(Stimulus::len).sum(),
                states: combined.state_count(),
                transitions: combined.transition_count(),
                states_before_optimisation: states_before,
                states_merged: states_before.saturating_sub(combined.state_count()),
                calibrated_states: report.calibrated_count(),
                ..TrainingStats::default()
            };
            models.push(TrainedModel {
                table: mined.table.clone(),
                psm: combined,
                hmm,
                stats,
            });
        }
        Ok(HierarchicalModel { domains, models })
    }

    /// Hierarchical estimation: sums the per-domain PSM estimates of a
    /// functional trace (the fast path; no gate-level work).
    pub fn estimate_hierarchical(
        &self,
        model: &HierarchicalModel,
        functional: &FunctionalTrace,
    ) -> HmmOutcome {
        let mut total: Option<HmmOutcome> = None;
        for m in &model.models {
            let outcome = self.estimate_from_trace(m, functional);
            total = Some(match total {
                None => outcome,
                Some(acc) => HmmOutcome {
                    estimate: acc
                        .estimate
                        .iter()
                        .zip(outcome.estimate.iter())
                        .map(|(a, b)| a + b)
                        .collect(),
                    wrong_state_predictions: acc
                        .wrong_state_predictions
                        .max(outcome.wrong_state_predictions),
                    unknown_instants: acc.unknown_instants.max(outcome.unknown_instants),
                },
            });
        }
        total.expect("netlists always have at least the core domain")
    }

    /// The slow golden path of Table II's *PX* column: gate-level power
    /// simulation of a workload.
    ///
    /// # Errors
    ///
    /// Any layer error, wrapped in the matching [`FlowError`] variant.
    pub fn reference_power(
        &self,
        ip: &dyn Ip,
        workload: &Stimulus,
    ) -> Result<PowerTrace, FlowError> {
        let netlist = ip.netlist()?;
        // A one-lane batch run: the compiled op program makes even single
        // workloads faster than the scalar engine, with identical bytes.
        let mut cap = capture_traces_batch(
            &netlist,
            &self.power_model,
            std::slice::from_ref(workload),
            &[self.noise_seed ^ 0x5A5A],
        )?;
        Ok(cap.remove(0).power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_ips::{testbench, MultSum, Ram1k};

    #[test]
    fn train_and_estimate_multsum() {
        let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
        let training = testbench::multsum_short_ts(1);
        let model = flow.train(&mut MultSum::new(), &[training]).unwrap();
        assert!(model.stats.states > 0);
        assert!(model.stats.states <= model.stats.states_before_optimisation);
        assert_eq!(
            model.stats.states_merged,
            model.stats.states_before_optimisation - model.stats.states
        );
        assert_eq!(model.psm.state_count(), model.stats.states);

        let workload = testbench::multsum_long_ts(9, 3_000);
        let est = flow
            .estimate(&model, &mut MultSum::new(), &workload)
            .unwrap();
        assert_eq!(est.outcome.estimate.len(), workload.len());
        let mre = est.mre_vs_reference().unwrap();
        assert!(mre < 0.30, "MultSum MRE {mre}");
    }

    #[test]
    fn models_round_trip_through_json() {
        let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
        let training = testbench::multsum_short_ts(1);
        let model = flow.train(&mut MultSum::new(), &[training]).unwrap();

        let dir = std::env::temp_dir().join("psmgen-model-roundtrip.json");
        model.save(&dir).unwrap();
        let loaded = TrainedModel::load(&dir).unwrap();
        std::fs::remove_file(&dir).ok();
        assert_eq!(loaded.psm.state_count(), model.psm.state_count());
        assert_eq!(loaded.psm.transitions(), model.psm.transitions());
        assert_eq!(loaded.hmm.num_states(), model.hmm.num_states());
        assert_eq!(loaded.table.len(), model.table.len());
        assert_eq!(loaded.stats.states_merged, model.stats.states_merged);
        // Wall-clock fields are deliberately not serialised.
        assert_eq!(loaded.stats.generation_time, Duration::ZERO);

        // The loaded model estimates the same powers (floats may differ by
        // an ulp through the JSON round-trip).
        let workload = testbench::multsum_long_ts(5, 1_000);
        let mut ip = MultSum::new();
        let trace = psm_ips::behavioural_trace(&mut ip, &workload).unwrap();
        let a = flow.estimate_from_trace(&model, &trace);
        let b = flow.estimate_from_trace(&loaded, &trace);
        assert_eq!(a.wrong_state_predictions, b.wrong_state_predictions);
        assert_eq!(a.unknown_instants, b.unknown_instants);
        for (x, y) in a.estimate.iter().zip(b.estimate.iter()) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn training_needs_data() {
        let flow = PsmFlow::default();
        assert!(matches!(
            flow.train(&mut Ram1k::new(), &[]),
            Err(FlowError::NoTrainingData)
        ));
    }

    #[test]
    fn multiple_training_traces_share_a_table() {
        let flow = PsmFlow::builder().preset(IpPreset::MultSum).build();
        let a = testbench::multsum_short_ts(1);
        let b = testbench::multsum_long_ts(2, 1_500);
        let model = flow.train(&mut MultSum::new(), &[a, b]).unwrap();
        // Two traces, joined into one model with at most one initial state
        // per distinct starting behaviour.
        assert!(model.psm.initials().iter().map(|(_, c)| c).sum::<usize>() == 2);
    }

    #[test]
    fn deprecated_for_ip_matches_preset() {
        #[allow(deprecated)]
        let old = PsmFlow::for_ip("MultSum");
        let new = PsmFlow::builder().preset(IpPreset::MultSum).build();
        assert_eq!(old.mining.pair_relations(), new.mining.pair_relations());
        assert_eq!(old.noise_seed, new.noise_seed);
        #[allow(deprecated)]
        let unknown = PsmFlow::for_ip("nonesuch");
        assert!(unknown.mining.pair_relations());
    }

    #[test]
    fn presets_resolve_by_name() {
        for preset in IpPreset::ALL {
            assert_eq!(IpPreset::from_name(preset.benchmark_name()), Some(preset));
            assert!(psm_ips::ip_by_name(preset.benchmark_name()).is_some());
        }
        assert_eq!(IpPreset::from_name("nope"), None);
    }

    #[test]
    fn train_batch_matches_individual_runs() {
        let flow = PsmFlow::builder()
            .preset(IpPreset::MultSum)
            .parallelism(Parallelism::Workers(2))
            .build();
        let jobs = vec![
            vec![testbench::multsum_short_ts(1)],
            vec![testbench::multsum_short_ts(2)],
        ];
        let batch = flow
            .train_batch(|| Box::new(MultSum::new()), &jobs)
            .unwrap();
        assert_eq!(batch.len(), 2);
        for (job, model) in jobs.iter().zip(&batch) {
            let lone = flow.train(&mut MultSum::new(), job).unwrap();
            assert_eq!(model.to_json_string(), lone.to_json_string());
        }
    }

    #[test]
    fn estimate_batch_matches_individual_runs() {
        let flow = PsmFlow::builder()
            .preset(IpPreset::MultSum)
            .parallelism(Parallelism::Workers(2))
            .build();
        let model = flow
            .train(&mut MultSum::new(), &[testbench::multsum_short_ts(1)])
            .unwrap();
        let workloads = vec![
            testbench::multsum_long_ts(3, 500),
            testbench::multsum_long_ts(4, 700),
        ];
        let batch = flow
            .estimate_batch(&model, || Box::new(MultSum::new()), &workloads)
            .unwrap();
        assert_eq!(batch.len(), 2);
        for (workload, est) in workloads.iter().zip(&batch) {
            let lone = flow
                .estimate(&model, &mut MultSum::new(), workload)
                .unwrap();
            assert_eq!(est.outcome.estimate, lone.outcome.estimate);
            assert_eq!(est.reference, lone.reference);
        }
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn flow_errors_render_and_chain() {
        use std::error::Error as _;
        let errs: Vec<FlowError> = vec![
            FlowError::Mining(psm_mining::MiningError::EmptyTrace),
            FlowError::Core(psm_core::CoreError::NoBehaviours),
            FlowError::Trace(psm_trace::TraceError::ZeroWidth),
            FlowError::Stats(psm_stats::StatsError::InvalidParameter("x")),
            FlowError::NoTrainingData,
            FlowError::Validation(psm_analyze::AnalysisReport::new("netlist `x`")),
            FlowError::persistence_io("/tmp/model.json", std::io::Error::other("disk full")),
            FlowError::persistence_format(
                "/tmp/model.json",
                psm_persist::PersistError::schema("bad field"),
            ),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
            // sources chain where applicable
            match &e {
                FlowError::NoTrainingData | FlowError::Validation(_) => {
                    assert!(e.source().is_none())
                }
                _ => assert!(e.source().is_some()),
            }
        }
    }

    #[test]
    fn persistence_errors_name_the_path() {
        let e = FlowError::persistence_io(
            "/some/dir/model.json",
            std::io::Error::new(std::io::ErrorKind::NotFound, "missing"),
        );
        let msg = e.to_string();
        assert!(msg.contains("/some/dir/model.json"), "{msg}");
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("psmgen-garbage-model.json");
        std::fs::write(&dir, "not json at all").unwrap();
        let r = TrainedModel::load(&dir);
        std::fs::remove_file(&dir).ok();
        assert!(matches!(
            r,
            Err(FlowError::Persistence {
                source: PersistenceError::Format(_),
                ..
            })
        ));
    }

    #[test]
    fn load_missing_file_is_a_persistence_error() {
        let r = TrainedModel::load("/nonexistent/psmgen/model.json");
        assert!(matches!(
            r,
            Err(FlowError::Persistence {
                source: PersistenceError::Io(_),
                ..
            })
        ));
    }
}
