//! Multi-stimulus parallel-scaling bench: trains one model over many
//! training stimuli with the sequential engine and with increasing worker
//! counts, reporting wall-clock and speedup, and verifying that every
//! configuration serialises to byte-identical JSON (the engine's
//! determinism contract).
//!
//! ```sh
//! cargo bench -p psm-bench --bench scaling
//! # knobs: PSM_SCALING_STIMULI (default 6), PSM_SCALING_CYCLES (default 1500)
//! ```

use psm_bench::{flow, ip};
use psm_ips::testbench;
use psm_rtl::Stimulus;
use psmgen::flow::Parallelism;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

fn main() {
    let name = "MultSum";
    let n_stimuli = env_usize("PSM_SCALING_STIMULI", 6);
    let cycles = env_usize("PSM_SCALING_CYCLES", 1_500);
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let stimuli: Vec<Stimulus> = (0..n_stimuli)
        .map(|k| testbench::multsum_long_ts(100 + k as u64, cycles))
        .collect();
    println!("{name}: {n_stimuli} training stimuli x {cycles} cycles, {cores} cores available\n");

    let base = flow(name);
    let mut worker_counts = vec![1usize, 2, 4, 8];
    worker_counts.retain(|&w| w == 1 || w <= cores.max(2));
    if !worker_counts.contains(&cores) && cores > 1 {
        worker_counts.push(cores);
    }

    let mut sequential: Option<(f64, String)> = None;
    psm_bench::header(&["workers", "wall-clock (s)", "speedup", "model bytes"]);
    for &w in &worker_counts {
        let parallelism = if w == 1 {
            Parallelism::Sequential
        } else {
            Parallelism::Workers(w)
        };
        let run = psmgen::flow::PsmFlow {
            parallelism,
            ..base.clone()
        };
        let t0 = Instant::now();
        let model = run
            .train(ip(name).as_mut(), &stimuli)
            .expect("training succeeds");
        let secs = t0.elapsed().as_secs_f64();
        let json = model.to_json_string();

        let speedup = match &sequential {
            None => {
                sequential = Some((secs, json.clone()));
                1.0
            }
            Some((base_secs, base_json)) => {
                assert_eq!(
                    &json, base_json,
                    "parallel model diverged from the sequential one at {w} workers"
                );
                base_secs / secs
            }
        };
        psm_bench::row(&[
            format!("{w}"),
            format!("{secs:.3}"),
            format!("{speedup:.2}x"),
            format!("{}", json.len()),
        ]);
    }
    println!("\nall worker counts serialised byte-identically");
}
