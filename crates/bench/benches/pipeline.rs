//! Micro-benchmarks of the PSM pipeline stages: assertion mining, PSM
//! generation + optimisation, and HMM-driven estimation throughput.
//!
//! ```sh
//! cargo bench -p psm-bench --bench pipeline
//! ```

use psm_bench::timing::{bench, bench_throughput};
use psm_bench::{flow, ip};
use psm_core::{classify_trace, generate_psm, join, simplify};
use psm_hmm::{build_hmm, HmmSimulator};
use psm_ips::{behavioural_trace, testbench};
use psm_mining::Miner;
use psm_rtl::capture_traces;

fn mining() {
    let pipeline = flow("MultSum");
    let netlist = ip("MultSum").netlist().expect("netlist builds");
    let stim = testbench::multsum_short_ts(1);
    let cap = capture_traces(&netlist, &pipeline.power_model, &stim, 1).expect("capture succeeds");

    let miner = Miner::new(pipeline.mining);
    bench_throughput("mine_multsum_short_ts", cap.functional.len(), || {
        miner.mine(&[&cap.functional]).expect("mines")
    });

    let mined = miner.mine(&[&cap.functional]).expect("mines");
    bench("generate_simplify_join", || {
        let mut psm = generate_psm(&mined.traces[0], &cap.power, 0).expect("generates");
        simplify(&mut psm, &pipeline.merge);
        join(&[psm], &pipeline.merge)
    });
}

fn estimation() {
    let pipeline = flow("MultSum");
    let mut core = ip("MultSum");
    let model = pipeline
        .train(core.as_mut(), &[testbench::multsum_short_ts(1)])
        .expect("trains");
    let workload = testbench::multsum_long_ts(3, 5_000);
    let trace = behavioural_trace(core.as_mut(), &workload).expect("workload fits");
    let obs = classify_trace(&model.table, &trace);
    let hamming = trace.input_hamming_series();

    bench_throughput("hmm_estimate_5k_cycles", obs.len(), || {
        let sim = HmmSimulator::new(&model.psm, model.hmm.clone());
        sim.run(&obs, &hamming)
    });
    bench_throughput("classify_5k_cycles", obs.len(), || {
        classify_trace(&model.table, &trace)
    });
    bench("hmm_build", || build_hmm(&model.psm, model.table.len()));
}

fn main() {
    mining();
    estimation();
}
