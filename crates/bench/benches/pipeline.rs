//! Criterion benchmarks of the PSM pipeline stages: assertion mining, PSM
//! generation + optimisation, and HMM-driven estimation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use psm_bench::{flow, ip};
use psm_core::{classify_trace, generate_psm, join, simplify};
use psm_hmm::{build_hmm, HmmSimulator};
use psm_ips::{behavioural_trace, testbench};
use psm_mining::Miner;
use psm_rtl::capture_traces;

fn mining(c: &mut Criterion) {
    let pipeline = flow("MultSum");
    let netlist = ip("MultSum").netlist().expect("netlist builds");
    let stim = testbench::multsum_short_ts(1);
    let cap =
        capture_traces(&netlist, &pipeline.power_model, &stim, 1).expect("capture succeeds");
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(cap.functional.len() as u64));
    group.bench_function("mine_multsum_short_ts", |b| {
        let miner = Miner::new(pipeline.mining);
        b.iter(|| std::hint::black_box(miner.mine(&[&cap.functional]).expect("mines")))
    });

    let miner = Miner::new(pipeline.mining);
    let mined = miner.mine(&[&cap.functional]).expect("mines");
    group.bench_function("generate_simplify_join", |b| {
        b.iter(|| {
            let mut psm =
                generate_psm(&mined.traces[0], &cap.power, 0).expect("generates");
            simplify(&mut psm, &pipeline.merge);
            std::hint::black_box(join(&[psm], &pipeline.merge))
        })
    });
    group.finish();
}

fn estimation(c: &mut Criterion) {
    let pipeline = flow("MultSum");
    let mut core = ip("MultSum");
    let model = pipeline
        .train(core.as_mut(), &[testbench::multsum_short_ts(1)])
        .expect("trains");
    let workload = testbench::multsum_long_ts(3, 5_000);
    let trace = behavioural_trace(core.as_mut(), &workload).expect("workload fits");
    let obs = classify_trace(&model.table, &trace);
    let hamming = trace.input_hamming_series();

    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(obs.len() as u64));
    group.bench_function("hmm_estimate_5k_cycles", |b| {
        b.iter(|| {
            let sim = HmmSimulator::new(&model.psm, model.hmm.clone());
            std::hint::black_box(sim.run(&obs, &hamming))
        })
    });
    group.bench_function("classify_5k_cycles", |b| {
        b.iter(|| std::hint::black_box(classify_trace(&model.table, &trace)))
    });
    group.bench_function("hmm_build", |b| {
        b.iter(|| std::hint::black_box(build_hmm(&model.psm, model.table.len())))
    });
    group.finish();
}

criterion_group!(benches, mining, estimation);
criterion_main!(benches);
