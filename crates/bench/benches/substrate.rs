//! Micro-benchmarks of the substrate layers: gate-level simulation
//! throughput, bit-vector operations, statistics and HMM filtering.
//!
//! ```sh
//! cargo bench -p psm-bench --bench substrate
//! ```

use psm_bench::ip;
use psm_bench::timing::{bench, bench_throughput};
use psm_rtl::Simulator;
use psm_stats::{welch_t_test, OnlineStats};
use psm_trace::Bits;

fn gate_sim() {
    for name in ["MultSum", "AES", "Camellia"] {
        let netlist = ip(name).netlist().expect("netlist builds");
        let mut sim = Simulator::new(&netlist).expect("acyclic");
        let inputs = sim.input_handles();
        let widths: Vec<usize> = {
            let set = netlist.signal_set();
            inputs
                .iter()
                .map(|(n, _)| set.decl(set.by_name(n).expect("port exists")).width())
                .collect()
        };
        let mut k = 0u64;
        bench_throughput(&format!("{name}_100_cycles"), 100, || {
            for _ in 0..100 {
                k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
                for ((_, h), w) in inputs.iter().zip(&widths) {
                    sim.set_input_by_handle(*h, &Bits::from_u64(k, (*w).min(64)))
                        .ok();
                }
                std::hint::black_box(sim.step());
            }
        });
    }
}

fn bits_ops() {
    let a = Bits::from_le_bytes(&[0xA5; 32], 256);
    let b = Bits::from_le_bytes(&[0x3C; 32], 256);
    bench("bits_hamming_256", || {
        a.hamming_distance(&b).expect("equal widths")
    });
    bench("bits_xor_256", || a.clone() ^ b.clone());
}

fn stats_ops() {
    let xs: OnlineStats = (0..1000).map(|i| 3.0 + 0.01 * (i % 7) as f64).collect();
    let ys: OnlineStats = (0..800).map(|i| 3.01 + 0.01 * (i % 5) as f64).collect();
    bench("welch_t_test", || welch_t_test(&xs, &ys).expect("n >= 2"));
}

fn hmm_filter() {
    let m = 16;
    let a = vec![vec![1.0; m]; m];
    let bm = vec![vec![1.0; 8]; m];
    let pi = vec![1.0; m];
    let hmm = psm_hmm::Hmm::new(a, bm, pi).expect("well-formed");
    bench("hmm_filter_1000_steps", || {
        let mut belief = hmm.initial_belief(0).expect("symbol in range");
        for t in 0..1000 {
            hmm.filter_step(&mut belief, t % 8).expect("in range");
        }
        belief
    });
}

fn main() {
    gate_sim();
    bits_ops();
    stats_ops();
    hmm_filter();
}
