//! A dependency-free micro-benchmark harness.
//!
//! The workspace builds with no network access, so the benches cannot pull
//! in an external benchmarking crate. This module provides the small slice
//! of that functionality they need: run a closure for a warm-up pass plus
//! a fixed number of measured iterations, and report mean / best-case
//! wall-clock (optionally as throughput).
//!
//! Iteration budgets scale with `PSM_BENCH_ITERS` (default 10).

use std::time::{Duration, Instant};

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Measured iterations (excludes the warm-up pass).
    pub iters: u32,
    /// Mean wall-clock per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
}

impl Measurement {
    /// `elems / mean` in millions of elements per second.
    pub fn melems_per_sec(&self, elems: usize) -> f64 {
        let secs = self.mean.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            elems as f64 / secs / 1.0e6
        }
    }
}

/// Measured iterations per bench: `PSM_BENCH_ITERS` or 10.
pub fn iters() -> u32 {
    std::env::var("PSM_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
        .max(1)
}

/// Times `f` over [`iters`] iterations (after one warm-up call) and prints
/// a one-line summary.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    bench_iters(name, iters(), &mut f)
}

/// Like [`bench`] with an explicit iteration count.
pub fn bench_iters<T>(name: &str, iters: u32, f: &mut impl FnMut() -> T) -> Measurement {
    std::hint::black_box(f()); // warm-up: page in code and caches
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
    }
    let m = Measurement {
        name: name.to_owned(),
        iters,
        mean: total / iters,
        min,
    };
    println!(
        "{:<40} mean {:>12?}  min {:>12?}  ({} iters)",
        m.name, m.mean, m.min, m.iters
    );
    m
}

/// Times `f` and additionally reports throughput for `elems` elements
/// processed per iteration.
pub fn bench_throughput<T>(name: &str, elems: usize, mut f: impl FnMut() -> T) -> Measurement {
    let m = bench_iters(name, iters(), &mut f);
    println!(
        "{:<40} {:>10.2} Melem/s over {} elements",
        format!("{} (throughput)", m.name),
        m.melems_per_sec(elems),
        elems
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_reports() {
        let mut calls = 0u32;
        let m = bench_iters("unit", 5, &mut || {
            calls += 1;
            calls
        });
        assert_eq!(m.iters, 5);
        assert_eq!(calls, 6); // warm-up + 5 measured
        assert!(m.min <= m.mean);
    }

    #[test]
    fn throughput_is_finite_for_real_work() {
        let m = bench_iters("sum", 3, &mut || (0..10_000u64).sum::<u64>());
        let tp = m.melems_per_sec(10_000);
        assert!(tp > 0.0);
    }

    #[test]
    fn iters_respects_floor() {
        assert!(iters() >= 1);
    }
}
