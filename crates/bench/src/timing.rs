//! A dependency-free micro-benchmark harness.
//!
//! The workspace builds with no network access, so the benches cannot pull
//! in an external benchmarking crate. This module provides the small slice
//! of that functionality they need: run a closure for a warm-up pass plus
//! a fixed number of measured iterations, and report robust per-iteration
//! statistics (optionally as throughput).
//!
//! # Outlier policy
//!
//! Wall-clock samples on a shared machine are contaminated by scheduler
//! noise that is strictly *additive* (preemption only ever makes an
//! iteration slower). The harness therefore summarises each run with the
//! **median** and the **median absolute deviation** (MAD) instead of
//! mean/σ: a single descheduled iteration moves the mean arbitrarily but
//! leaves the median untouched. The mean and minimum are still recorded
//! for comparison; `psmbench` keys its regression gate on the median.
//!
//! Iteration budgets scale with `PSM_BENCH_ITERS` (default 10).

use std::time::{Duration, Instant};

/// One benchmark's timing summary.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Measured iterations (excludes the warm-up pass).
    pub iters: u32,
    /// Mean wall-clock per iteration.
    pub mean: Duration,
    /// Fastest iteration.
    pub min: Duration,
    /// Median wall-clock per iteration — the robust central estimate.
    pub median: Duration,
    /// Median absolute deviation of the samples around
    /// [`Measurement::median`]: the robust spread estimate.
    pub mad: Duration,
}

impl Measurement {
    /// `elems / mean` in millions of elements per second.
    pub fn melems_per_sec(&self, elems: usize) -> f64 {
        let secs = self.mean.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            elems as f64 / secs / 1.0e6
        }
    }

    /// `elems / median` in elements per second — the throughput figure
    /// `psmbench` reports as rows/s.
    pub fn elems_per_sec_median(&self, elems: usize) -> f64 {
        let secs = self.median.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            elems as f64 / secs
        }
    }
}

/// Median of a sample of durations (lower-middle for even counts, so the
/// value is always one actually observed — never an interpolation).
fn median_of(sorted: &[Duration]) -> Duration {
    sorted[(sorted.len() - 1) / 2]
}

/// Measured iterations per bench: `PSM_BENCH_ITERS` or 10.
pub fn iters() -> u32 {
    std::env::var("PSM_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
        .max(1)
}

/// Times `f` over [`iters`] iterations (after one warm-up call) and prints
/// a one-line summary.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    bench_iters(name, iters(), &mut f)
}

/// Like [`fn@bench`] with an explicit iteration count.
pub fn bench_iters<T>(name: &str, iters: u32, f: &mut impl FnMut() -> T) -> Measurement {
    std::hint::black_box(f()); // warm-up: page in code and caches
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed();
        total += dt;
        min = min.min(dt);
        samples.push(dt);
    }
    samples.sort_unstable();
    let median = median_of(&samples);
    let mut deviations: Vec<Duration> = samples.iter().map(|&s| s.abs_diff(median)).collect();
    deviations.sort_unstable();
    let m = Measurement {
        name: name.to_owned(),
        iters,
        mean: total / iters,
        min,
        median,
        mad: median_of(&deviations),
    };
    println!(
        "{:<40} median {:>12?} ±{:<10?}  mean {:>12?}  min {:>12?}  ({} iters)",
        m.name, m.median, m.mad, m.mean, m.min, m.iters
    );
    m
}

/// Times `f` and additionally reports throughput for `elems` elements
/// processed per iteration.
pub fn bench_throughput<T>(name: &str, elems: usize, mut f: impl FnMut() -> T) -> Measurement {
    let m = bench_iters(name, iters(), &mut f);
    println!(
        "{:<40} {:>10.2} Melem/s over {} elements",
        format!("{} (throughput)", m.name),
        m.melems_per_sec(elems),
        elems
    );
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_reports() {
        let mut calls = 0u32;
        let m = bench_iters("unit", 5, &mut || {
            calls += 1;
            calls
        });
        assert_eq!(m.iters, 5);
        assert_eq!(calls, 6); // warm-up + 5 measured
        assert!(m.min <= m.mean);
        assert!(m.min <= m.median);
    }

    #[test]
    fn median_and_mad_resist_one_outlier() {
        // Four fast iterations and one artificially slow one: the mean is
        // dragged up but the median must stay with the fast cluster.
        let mut call = 0u32;
        let m = bench_iters("outlier", 5, &mut || {
            call += 1;
            if call == 3 {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            call
        });
        assert!(m.median < std::time::Duration::from_millis(25));
        assert!(m.mad <= m.median.max(std::time::Duration::from_nanos(1)) * 4);
    }

    #[test]
    fn median_of_picks_observed_sample() {
        let d = |ms| Duration::from_millis(ms);
        assert_eq!(median_of(&[d(1)]), d(1));
        assert_eq!(median_of(&[d(1), d(2)]), d(1));
        assert_eq!(median_of(&[d(1), d(2), d(9)]), d(2));
        assert_eq!(median_of(&[d(1), d(2), d(3), d(9)]), d(2));
    }

    #[test]
    fn throughput_is_finite_for_real_work() {
        let m = bench_iters("sum", 3, &mut || (0..10_000u64).sum::<u64>());
        let tp = m.melems_per_sec(10_000);
        assert!(tp > 0.0);
    }

    #[test]
    fn iters_respects_floor() {
        assert!(iters() >= 1);
    }
}
