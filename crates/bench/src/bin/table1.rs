//! Regenerates the paper's **Table I** — characteristics of benchmarks.
//!
//! The paper reports Verilog line counts, PI/PO widths, DesignCompiler
//! synthesis time and gate-level memory elements. Our analogues: PI/PO
//! widths of the same interfaces, the synthesis time of our netlist
//! builder, and the cell statistics of the resulting netlists.

use psm_bench::{header, ip, row, BENCHMARKS};
use psm_rtl::{logic_depth, optimize};
use std::time::Instant;

fn main() {
    println!("# Table I — characteristics of benchmarks\n");
    header(&[
        "IP",
        "PIs",
        "POs",
        "Syn. time (s)",
        "Cells",
        "Cells (opt.)",
        "Logic depth",
        "Memory elements",
    ]);
    for name in BENCHMARKS {
        let core = ip(name);
        let signals = core.signals();
        let t0 = Instant::now();
        let netlist = core.netlist().expect("benchmark netlists build");
        let syn_time = t0.elapsed();
        let stats = netlist.stats();
        let depth = logic_depth(&netlist).expect("benchmark netlists are acyclic");
        let (optimised, _) = optimize(&netlist).expect("optimisation succeeds");
        row(&[
            name.to_owned(),
            signals.input_width().to_string(),
            signals.output_width().to_string(),
            format!("{:.3}", syn_time.as_secs_f64()),
            stats.combinational.to_string(),
            optimised.stats().combinational.to_string(),
            depth.to_string(),
            stats.memory_elements.to_string(),
        ]);
    }
    println!("\npaper reference (PIs/POs/mem): RAM 44/32/8192, MultSum 49/32/225,");
    println!("AES 260/129/670, Camellia 262/129/397");
}
