//! `psmbench` — the psmgen performance harness.
//!
//! Runs the fixed scenario suite from [`psm_bench::scenarios`] (assertion
//! mining, PSM generation, merging, HMM build + forward simulation, the
//! compiled flat-table forward pass against the interpreted walker on
//! all four paper benches, the full [`psmgen::flow::PsmFlow`]
//! train/estimate path at several worker counts, and the `psmd` daemon
//! end to end: eight concurrent loopback clients at the same worker
//! counts on both engines, a one-shot JSON-vs-binary wire format
//! comparison, and chunked streaming sessions with per-chunk
//! latency percentiles), prints a human-readable table, and writes a
//! schema-versioned `BENCH_psmgen.json` with per-scenario ns/op,
//! throughput in trace-rows/s and speedup-vs-1-thread.
//!
//! With `--baseline <file> --max-regress <pct>` the run additionally
//! compares each scenario's median against a previous `BENCH_*.json` and
//! fails when any scenario slowed down by more than the threshold, so CI
//! can gate on performance. A failing comparison is re-measured (up to
//! `--retries` extra suite runs, keeping each scenario's best median)
//! before the gate fails, so transient load on a shared host does not
//! produce false alarms. See `BENCHMARKS.md` for the methodology and the
//! JSON schema.
//!
//! Exit status (the psmlint convention): `0` success, `1` at least one
//! scenario regressed past `--max-regress`, `2` malformed command line or
//! unreadable/invalid baseline file.

use psm_bench::scenarios::{run_suite, ScenarioResult, SuiteConfig};
use psm_persist::JsonValue;
use std::process::ExitCode;

/// Format version of the emitted JSON document. Bump on any breaking
/// change to field names or semantics.
const SCHEMA: &str = "psmbench/v1";

const USAGE: &str = "\
usage: psmbench [options]

Runs the fixed psmgen benchmark suite and writes BENCH_psmgen.json.

Options:
  --quick              CI-sized budget (5 iters, 2k-cycle traces, 1/2 threads)
  --iters <n>          measured iterations per scenario (overrides the budget)
  --cycles <n>         long-trace cycle budget (overrides the budget)
  --out <file>         output path (default BENCH_psmgen.json)
  --baseline <file>    previous BENCH_*.json to compare against
  --max-regress <pct>  fail (exit 1) when any scenario's median is more than
                       <pct> percent slower than the baseline (default 25)
  --retries <n>        when the baseline check fails, re-measure up to <n>
                       times and keep each scenario's best run, so transient
                       host load cannot fail the gate (default 1)
  --min-flow-speedup <x>
                       fail (exit 1) when any multi-threaded flow_train
                       scenario's speedup_vs_1_thread is below <x>; only
                       meaningful on hosts with 2+ cores
  --list               print the scenario names and exit
  -h, --help           show this help";

struct Options {
    quick: bool,
    iters: Option<u32>,
    cycles: Option<usize>,
    out: String,
    baseline: Option<String>,
    max_regress: f64,
    retries: u32,
    min_flow_speedup: Option<f64>,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        quick: false,
        iters: None,
        cycles: None,
        out: "BENCH_psmgen.json".to_owned(),
        baseline: None,
        max_regress: 25.0,
        retries: 1,
        min_flow_speedup: None,
        list: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--list" => opts.list = true,
            "--iters" => {
                let v = it.next().ok_or("--iters needs a number")?;
                opts.iters = Some(v.parse().map_err(|_| format!("bad --iters `{v}`"))?);
            }
            "--cycles" => {
                let v = it.next().ok_or("--cycles needs a number")?;
                opts.cycles = Some(v.parse().map_err(|_| format!("bad --cycles `{v}`"))?);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a file path")?;
                opts.out = v.clone();
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a file path")?;
                opts.baseline = Some(v.clone());
            }
            "--max-regress" => {
                let v = it.next().ok_or("--max-regress needs a percentage")?;
                opts.max_regress = v.parse().map_err(|_| format!("bad --max-regress `{v}`"))?;
                if !opts.max_regress.is_finite() || opts.max_regress < 0.0 {
                    return Err(format!("bad --max-regress `{v}`"));
                }
            }
            "--retries" => {
                let v = it.next().ok_or("--retries needs a number")?;
                opts.retries = v.parse().map_err(|_| format!("bad --retries `{v}`"))?;
            }
            "--min-flow-speedup" => {
                let v = it.next().ok_or("--min-flow-speedup needs a number")?;
                let x: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --min-flow-speedup `{v}`"))?;
                if !x.is_finite() || x <= 0.0 {
                    return Err(format!("bad --min-flow-speedup `{v}`"));
                }
                opts.min_flow_speedup = Some(x);
            }
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn config(opts: &Options) -> SuiteConfig {
    let mut cfg = if opts.quick {
        SuiteConfig::quick()
    } else {
        SuiteConfig::full()
    };
    if let Some(iters) = opts.iters {
        cfg.iters = iters.max(1);
    }
    if let Some(cycles) = opts.cycles {
        cfg.cycles = cycles.max(100);
    }
    cfg
}

fn scenario_json(name: &str, r: &ScenarioResult) -> JsonValue {
    let mut fields: Vec<(String, JsonValue)> = vec![
        ("name".into(), name.into()),
        ("iters".into(), JsonValue::from(u64::from(r.m.iters))),
        ("rows".into(), JsonValue::from(r.rows as u64)),
        (
            "median_ns".into(),
            JsonValue::from(r.m.median.as_nanos() as u64),
        ),
        ("mad_ns".into(), JsonValue::from(r.m.mad.as_nanos() as u64)),
        (
            "mean_ns".into(),
            JsonValue::from(r.m.mean.as_nanos() as u64),
        ),
        ("min_ns".into(), JsonValue::from(r.m.min.as_nanos() as u64)),
        ("rows_per_sec".into(), JsonValue::from_f64(r.rows_per_sec())),
    ];
    if let Some(t) = r.threads {
        fields.push(("threads".into(), JsonValue::from(t as u64)));
    }
    if let Some(s) = r.speedup_vs_1_thread {
        fields.push(("speedup_vs_1_thread".into(), JsonValue::from_f64(s)));
    }
    if !r.stages.is_empty() {
        let stages = r.stages.iter().map(|(stage, total_ns, wall_ns)| {
            JsonValue::obj([
                ("stage", JsonValue::from(stage.as_str())),
                ("total_ns", JsonValue::from(*total_ns)),
                ("wall_ns", JsonValue::from(*wall_ns)),
            ])
        });
        fields.push(("stages".into(), JsonValue::arr(stages)));
    }
    for (key, value) in &r.extras {
        fields.push((key.clone(), JsonValue::from(*value)));
    }
    JsonValue::obj(fields)
}

fn suite_json(cfg: &SuiteConfig, quick: bool, results: &[(String, ScenarioResult)]) -> JsonValue {
    JsonValue::obj([
        ("schema", JsonValue::from(SCHEMA)),
        (
            "config",
            JsonValue::obj([
                ("iters", JsonValue::from(u64::from(cfg.iters))),
                ("cycles", JsonValue::from(cfg.cycles as u64)),
                ("seed", JsonValue::from(cfg.seed)),
                ("quick", JsonValue::from(quick)),
                (
                    "threads",
                    JsonValue::arr(cfg.threads.iter().map(|&t| JsonValue::from(t as u64))),
                ),
            ]),
        ),
        (
            "scenarios",
            JsonValue::arr(results.iter().map(|(name, r)| scenario_json(name, r))),
        ),
    ])
}

/// Baseline medians by scenario name, from a previous `BENCH_*.json`.
fn load_baseline(path: &str) -> Result<Vec<(String, u64)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("baseline {path}: {e}"))?;
    let schema = doc
        .str_field("schema")
        .map_err(|e| format!("baseline {path}: {e}"))?;
    if schema != SCHEMA {
        return Err(format!(
            "baseline {path}: schema `{schema}` does not match `{SCHEMA}`"
        ));
    }
    let scenarios = doc
        .arr_field("scenarios")
        .map_err(|e| format!("baseline {path}: {e}"))?;
    scenarios
        .iter()
        .map(|s| {
            let name = s.str_field("name")?.to_owned();
            let median = s.u64_field("median_ns")?;
            Ok((name, median))
        })
        .collect::<Result<Vec<_>, psm_persist::PersistError>>()
        .map_err(|e| format!("baseline {path}: {e}"))
}

/// Compares the run against the baseline; returns the regressed
/// scenarios as `(name, change_pct)`.
fn regressions(
    results: &[(String, ScenarioResult)],
    baseline: &[(String, u64)],
    max_regress: f64,
) -> Vec<(String, f64)> {
    let mut bad = Vec::new();
    for (name, r) in results {
        let Some((_, base_ns)) = baseline.iter().find(|(n, _)| n == name) else {
            println!("psmbench: note: `{name}` missing from baseline, skipped");
            continue;
        };
        if *base_ns == 0 {
            continue;
        }
        let cur_ns = r.m.median.as_nanos() as f64;
        let change = (cur_ns - *base_ns as f64) / *base_ns as f64 * 100.0;
        if change > max_regress {
            bad.push((name.clone(), change));
        }
    }
    bad
}

/// Multi-threaded `flow_train` scenarios whose `speedup_vs_1_thread`
/// falls below the floor, as `(name, speedup)`.
fn slow_flows(results: &[(String, ScenarioResult)], floor: f64) -> Vec<(String, f64)> {
    results
        .iter()
        .filter(|(name, r)| name.starts_with("flow_train_t") && r.threads.is_some_and(|t| t > 1))
        .filter_map(|(name, r)| {
            let s = r.speedup_vs_1_thread?;
            (s < floor).then(|| (name.clone(), s))
        })
        .collect()
}

/// Per-scenario best of two suite runs (smaller median wins). A genuine
/// code regression slows every run; transient host load slows only some,
/// so taking the best before judging keeps the gate honest on shared
/// machines without hiding real slowdowns.
fn merge_best(
    first: Vec<(String, ScenarioResult)>,
    rerun: Vec<(String, ScenarioResult)>,
) -> Vec<(String, ScenarioResult)> {
    first
        .into_iter()
        .map(|(name, r)| {
            let best = match rerun.iter().find(|(n, _)| *n == name) {
                Some((_, again)) if again.m.median < r.m.median => again.clone(),
                _ => r,
            };
            (name, best)
        })
        .collect()
}

fn print_table(results: &[(String, ScenarioResult)]) {
    println!();
    psm_bench::header(&[
        "scenario", "threads", "rows", "median", "mad", "rows/s", "speedup",
    ]);
    for (name, r) in results {
        psm_bench::row(&[
            name.clone(),
            r.threads.map_or_else(|| "-".into(), |t| t.to_string()),
            r.rows.to_string(),
            format!("{:?}", r.m.median),
            format!("{:?}", r.m.mad),
            format!("{:.0}", r.rows_per_sec()),
            r.speedup_vs_1_thread
                .map_or_else(|| "-".into(), |s| format!("{s:.2}x")),
        ]);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(message) => {
            if message.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("psmbench: {message}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let cfg = config(&opts);
    if opts.list {
        // The canonical scenario names, without running anything.
        for name in [
            "mine_long_trace",
            "classify_long_trace",
            "psm_generate_simplify",
            "join_traces",
            "hmm_build",
            "hmm_forward_sim",
            "compiled_forward_ram",
            "compiled_forward_multsum",
            "compiled_forward_aes",
            "compiled_forward_camellia",
            "lint_suite",
            "verify_suite",
            "powerintent_suite",
        ] {
            println!("{name}");
        }
        for t in &cfg.threads {
            println!("flow_train_t{t}");
            println!("flow_estimate_t{t}");
        }
        for t in &cfg.threads {
            println!("serve_estimate_t{t}");
            println!("serve_estimate_compiled_t{t}");
        }
        println!("serve_oneshot_json");
        println!("serve_oneshot_bin");
        for t in &cfg.threads {
            println!("serve_stream_t{t}");
        }
        return ExitCode::SUCCESS;
    }

    // Load the baseline *before* the (slow) suite so a bad path fails fast.
    let baseline = match opts.baseline.as_deref().map(load_baseline) {
        Some(Ok(b)) => Some(b),
        Some(Err(message)) => {
            eprintln!("psmbench: {message}");
            return ExitCode::from(2);
        }
        None => None,
    };

    println!(
        "psmbench: {} iters/scenario, {}-cycle traces, threads {:?}{}",
        cfg.iters,
        cfg.cycles,
        cfg.threads,
        if opts.quick { " (quick)" } else { "" }
    );
    let mut results = run_suite(&cfg);

    let mut failed = false;
    if let Some(baseline) = &baseline {
        let mut bad = regressions(&results, baseline, opts.max_regress);
        let mut retries = opts.retries;
        while !bad.is_empty() && retries > 0 {
            println!(
                "psmbench: {} scenario(s) over the limit; re-measuring to rule out host noise \
                 ({retries} retry(s) left)",
                bad.len()
            );
            results = merge_best(results, run_suite(&cfg));
            bad = regressions(&results, baseline, opts.max_regress);
            retries -= 1;
        }
        if bad.is_empty() {
            println!(
                "psmbench: no scenario regressed more than {:.1}% vs baseline",
                opts.max_regress
            );
        } else {
            for (name, change) in &bad {
                eprintln!(
                    "psmbench: REGRESSION {name}: median {change:+.1}% vs baseline (limit +{:.1}%)",
                    opts.max_regress
                );
            }
            failed = true;
        }
    }

    if let Some(floor) = opts.min_flow_speedup {
        let slow = slow_flows(&results, floor);
        if slow.is_empty() {
            println!("psmbench: every multi-threaded flow_train scenario scales >= {floor:.2}x");
        } else {
            for (name, s) in &slow {
                eprintln!(
                    "psmbench: SCALING FAILURE {name}: speedup_vs_1_thread {s:.2}x \
                     below the required {floor:.2}x"
                );
            }
            failed = true;
        }
    }

    print_table(&results);
    let doc = suite_json(&cfg, opts.quick, &results);
    if let Err(e) = std::fs::write(&opts.out, doc.render() + "\n") {
        eprintln!("psmbench: cannot write {}: {e}", opts.out);
        return ExitCode::from(2);
    }
    println!(
        "\npsmbench: wrote {} ({} scenarios)",
        opts.out,
        results.len()
    );
    if failed {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
