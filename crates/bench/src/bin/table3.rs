//! Regenerates the paper's **Table III** — simulation times and accuracy.
//!
//! PSMs are generated from *short-TS* and then simulated against the
//! *long-TS* workload:
//!
//! * `IP sim.` — wall-clock of the behavioural functional simulation alone;
//! * `IP+PSMs` — the same plus concurrent PSM/HMM power estimation;
//! * `Overhead` — the relative cost of the power model;
//! * `PX (s)` — the golden gate-level power simulation of the same
//!   workload, for the headline speedup;
//! * `MRE` / `WSP` — accuracy of the short-TS-trained PSMs on the unseen
//!   long workload.

use psm_bench::{flow, header, ip, long_ts, long_ts_cycles, row, short_ts, BENCHMARKS};
use psm_ips::behavioural_trace;
use std::time::Instant;

fn main() {
    println!(
        "# Table III — simulation times and accuracy ({} instants)\n",
        long_ts_cycles()
    );
    header(&[
        "IP",
        "IP sim. (s)",
        "IP+PSMs (s)",
        "Overhead",
        "PX (s)",
        "Speedup vs PX",
        "MRE",
        "P95 rel. err.",
        "WSP",
    ]);
    for name in BENCHMARKS {
        let pipeline = flow(name);
        let mut core = ip(name);
        let training = short_ts(name);
        let model = pipeline
            .train(core.as_mut(), &[training])
            .expect("training succeeds");

        let workload = long_ts(name);

        // Functional simulation alone.
        let t0 = Instant::now();
        let functional =
            behavioural_trace(core.as_mut(), &workload).expect("workload fits the interface");
        let ip_sim = t0.elapsed();

        // Functional simulation + concurrent PSM power estimation.
        let t0 = Instant::now();
        let functional2 =
            behavioural_trace(core.as_mut(), &workload).expect("workload fits the interface");
        let outcome = pipeline.estimate_from_trace(&model, &functional2);
        let ip_psm = t0.elapsed();

        // The golden path (PrimeTime-PX role).
        let t0 = Instant::now();
        let reference = pipeline
            .reference_power(core.as_ref(), &workload)
            .expect("gate-level capture succeeds");
        let px = t0.elapsed();

        let mre = psm_stats::mean_relative_error(outcome.estimate.as_slice(), reference.as_slice())
            .expect("non-empty traces");
        let errs = psm_stats::relative_errors(outcome.estimate.as_slice(), reference.as_slice())
            .expect("aligned traces");
        let p95 = psm_stats::quantile(&errs, 0.95).expect("non-empty");
        let overhead = (ip_psm.as_secs_f64() - ip_sim.as_secs_f64()) / ip_sim.as_secs_f64();
        let speedup = px.as_secs_f64() / ip_psm.as_secs_f64();

        row(&[
            name.to_owned(),
            format!("{:.2}", ip_sim.as_secs_f64()),
            format!("{:.2}", ip_psm.as_secs_f64()),
            format!("{:.1} %", overhead * 100.0),
            format!("{:.2}", px.as_secs_f64()),
            format!("{speedup:.1}x"),
            format!("{:.2} %", mre * 100.0),
            format!("{:.2} %", p95 * 100.0),
            format!("{:.2} %", outcome.wsp_rate() * 100.0),
        ]);
        let _ = functional;
    }
    println!("\npaper reference: overhead 3.5-26.4 %, PSM estimation up to two orders");
    println!("of magnitude faster than PrimeTime PX; MRE RAM 0.29 %, MultSum 3.97 %,");
    println!("AES 3.11 %, Camellia 32.64 %; WSP 0 % everywhere except Camellia (20 %)");
}
