//! Extension experiment — the paper's **future work** implemented:
//! hierarchical PSMs that distinguish among IP subcomponents.
//!
//! The paper closes by noting that Camellia's ~32 % MRE comes from
//! subcomponents "whose power behaviours are low correlated to each other"
//! and proposes hierarchical PSMs as the fix. This binary measures three
//! rungs of that ladder on Camellia:
//!
//! 1. **flat, black-box** — the paper's published flow (the ~30 % row);
//! 2. **flat, white-box** — one probe bit (`fl_active`) exposes which
//!    subcomponent is working, so the miner can split the busy behaviour;
//! 3. **hierarchical, white-box** — one PSM set per netlist power domain
//!    (core / F unit / FL unit / key schedule), estimates summed.

use psm_bench::{flow, header, long_ts_cycles, row};
use psm_ips::{behavioural_trace, testbench, Camellia128, Camellia128Whitebox};

fn main() {
    println!(
        "# Extension — hierarchical PSMs on Camellia ({} instants)\n",
        long_ts_cycles()
    );
    header(&["configuration", "states", "MRE", "WSP"]);

    let pipeline = flow("Camellia");
    let training = testbench::camellia_short_ts(1);
    let workload = testbench::camellia_long_ts(7, long_ts_cycles());

    // 1. Flat black-box (the paper's flow).
    {
        let mut ip = Camellia128::new();
        let model = pipeline
            .train(&mut ip, std::slice::from_ref(&training))
            .expect("training succeeds");
        let trace = behavioural_trace(&mut ip, &workload).expect("workload fits");
        let outcome = pipeline.estimate_from_trace(&model, &trace);
        let golden = pipeline
            .reference_power(&ip, &workload)
            .expect("capture succeeds");
        let mre = psm_stats::mean_relative_error(outcome.estimate.as_slice(), golden.as_slice())
            .expect("non-empty");
        row(&[
            "flat black-box (paper)".into(),
            model.stats.states.to_string(),
            format!("{:.2} %", mre * 100.0),
            format!("{:.2} %", outcome.wsp_rate() * 100.0),
        ]);
    }

    // 2 & 3. White-box variants.
    let mut wb = Camellia128Whitebox::new();
    let golden = pipeline
        .reference_power(&wb, &workload)
        .expect("capture succeeds");

    {
        let mut ip = Camellia128Whitebox::new();
        let model = pipeline
            .train(&mut ip, std::slice::from_ref(&training))
            .expect("training succeeds");
        let trace = behavioural_trace(&mut wb, &workload).expect("workload fits");
        let outcome = pipeline.estimate_from_trace(&model, &trace);
        let mre = psm_stats::mean_relative_error(outcome.estimate.as_slice(), golden.as_slice())
            .expect("non-empty");
        row(&[
            "flat white-box (+fl_active probe)".into(),
            model.stats.states.to_string(),
            format!("{:.2} %", mre * 100.0),
            format!("{:.2} %", outcome.wsp_rate() * 100.0),
        ]);
        let _ = model;
    }

    {
        let mut ip = Camellia128Whitebox::new();
        let model = pipeline
            .train_hierarchical(&mut ip, &[training])
            .expect("training succeeds");
        let trace = behavioural_trace(&mut wb, &workload).expect("workload fits");
        let outcome = pipeline.estimate_hierarchical(&model, &trace);
        let mre = psm_stats::mean_relative_error(outcome.estimate.as_slice(), golden.as_slice())
            .expect("non-empty");
        let states: usize = model.models.iter().map(|m| m.stats.states).sum();
        row(&[
            format!("hierarchical white-box ({} domains)", model.domains.len()),
            states.to_string(),
            format!("{:.2} %", mre * 100.0),
            format!("{:.2} %", outcome.wsp_rate() * 100.0),
        ]);
        println!("\nper-domain models:");
        for (name, m) in model.domains.iter().zip(&model.models) {
            println!(
                "  {name}: {} states, {} transitions, {} calibrated",
                m.stats.states, m.stats.transitions, m.stats.calibrated_states
            );
        }
    }
    println!("\nexpected shape: the probe splits the busy behaviour and the flat");
    println!("white-box MRE collapses toward the AES level; the hierarchical model");
    println!("additionally attributes power to subcomponents.");
}
