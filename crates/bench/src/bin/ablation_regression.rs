//! Ablation: the Hamming-distance regression calibration (paper §IV).
//!
//! Compares every benchmark with calibration enabled (the paper's flow)
//! and disabled (constant μ per state). The data-dependent IPs — RAM above
//! all — should degrade sharply without it; the paper's §VI discussion of
//! RAM's "very low MRE" rests on exactly this mechanism.

use psm_bench::{flow, header, ip, long_ts, row, short_ts, BENCHMARKS};
use psm_core::CalibrationConfig;
use psm_ips::behavioural_trace;

fn main() {
    println!("# Ablation — regression calibration on/off\n");
    header(&["IP", "Calibration", "Calibrated states", "MRE"]);
    for name in BENCHMARKS {
        for enabled in [true, false] {
            let mut pipeline = flow(name);
            if !enabled {
                // An impossible correlation bar disables all calibration.
                pipeline.calibration = CalibrationConfig::default().with_min_abs_r(1.0);
            }
            let mut core = ip(name);
            let model = pipeline
                .train(core.as_mut(), &[short_ts(name)])
                .expect("training succeeds");
            let workload = long_ts(name);
            let functional = behavioural_trace(core.as_mut(), &workload).expect("workload fits");
            let outcome = pipeline.estimate_from_trace(&model, &functional);
            let reference = pipeline
                .reference_power(core.as_ref(), &workload)
                .expect("capture succeeds");
            let mre =
                psm_stats::mean_relative_error(outcome.estimate.as_slice(), reference.as_slice())
                    .expect("non-empty traces");
            row(&[
                name.to_owned(),
                if enabled { "on" } else { "off" }.to_owned(),
                model.stats.calibrated_states.to_string(),
                format!("{:.2} %", mre * 100.0),
            ]);
        }
    }
}
