//! Ablation: the `join` optimisation (paper §IV).
//!
//! Trains each benchmark on *two* traces and combines the per-trace PSMs
//! either with the paper's `join` (mergeable states collapse across PSMs)
//! or with a disjoint union (a merge policy that never fires). Without
//! `join` the model balloons and every behaviour the second trace shares
//! with the first is duplicated — the HMM still works, but the model is
//! bigger and resynchronises more.

use psm_bench::{flow, header, ip, row, short_ts, BENCHMARKS};
use psm_core::{calibrate, classify_trace, generate_psm, join, simplify, MergePolicy};
use psm_hmm::{build_hmm, HmmSimulator};
use psm_ips::{behavioural_trace, testbench};
use psm_mining::Miner;
use psm_rtl::capture_traces;
use psm_trace::{FunctionalTrace, PowerTrace};

fn main() {
    println!("# Ablation — join on/off (two training traces)\n");
    header(&["IP", "Join", "States", "Trans.", "MRE", "WSP"]);
    for name in BENCHMARKS {
        let pipeline = flow(name);
        let netlist = ip(name).netlist().expect("netlist builds");
        let stimuli = [
            short_ts(name),
            testbench::long_ts(name, 2, 6_000).expect("benchmark names are valid"),
        ];
        let caps: Vec<_> = stimuli
            .iter()
            .enumerate()
            .map(|(i, s)| {
                capture_traces(
                    &netlist,
                    &pipeline.power_model,
                    s,
                    pipeline.noise_seed + i as u64,
                )
                .expect("capture succeeds")
            })
            .collect();
        let functional: Vec<&FunctionalTrace> = caps.iter().map(|c| &c.functional).collect();
        let power: Vec<&PowerTrace> = caps.iter().map(|c| &c.power).collect();
        let mined = Miner::new(pipeline.mining)
            .mine(&functional)
            .expect("mining succeeds");

        // A policy that never merges: ε = 0 and a rejection level so high
        // the t-tests always reject.
        let never = MergePolicy::new(0.0, 0.999).with_mean_tolerance_override(false);

        for (label, policy) in [("on", pipeline.merge), ("off", never)] {
            let mut psms = Vec::new();
            for (i, gamma) in mined.traces.iter().enumerate() {
                let mut psm = generate_psm(gamma, power[i], i).expect("generation succeeds");
                simplify(&mut psm, &pipeline.merge); // simplify stays on
                psms.push(psm);
            }
            let mut combined = join(&psms, &policy);
            let training: Vec<(&FunctionalTrace, &PowerTrace)> = functional
                .iter()
                .copied()
                .zip(power.iter().copied())
                .collect();
            calibrate(&mut combined, &training, &pipeline.calibration)
                .expect("calibration succeeds");
            let hmm = build_hmm(&combined, mined.table.len());

            // The non-joined model has hundreds of states; its O(states²)
            // filtering makes long workloads impractical, and the point
            // (model size vs accuracy) shows at moderate length.
            let workload =
                psm_ips::testbench::long_ts(name, 7, 10_000).expect("benchmark names are valid");
            let mut core = ip(name);
            let trace = behavioural_trace(core.as_mut(), &workload).expect("workload fits");
            let obs = classify_trace(&mined.table, &trace);
            let hamming = trace.input_hamming_series();
            let outcome = HmmSimulator::new(&combined, hmm).run(&obs, &hamming);
            let reference = pipeline
                .reference_power(core.as_ref(), &workload)
                .expect("capture succeeds");
            let mre =
                psm_stats::mean_relative_error(outcome.estimate.as_slice(), reference.as_slice())
                    .expect("non-empty traces");
            row(&[
                name.to_owned(),
                label.to_owned(),
                combined.state_count().to_string(),
                combined.transition_count().to_string(),
                format!("{:.2} %", mre * 100.0),
                format!("{:.2} %", outcome.wsp_rate() * 100.0),
            ]);
        }
    }
}
