//! Ablation: the significance level α of the §IV-A mergeability t-tests.
//!
//! A *small* α merges aggressively (the null of equal means is rejected
//! only on overwhelming evidence); a *large* α keeps more states apart.
//! The paper leaves α as "an arbitrary percentage of error" — this sweep
//! shows what the choice costs on each benchmark.

use psm_bench::{flow, header, ip, long_ts, row, short_ts, BENCHMARKS};
use psm_core::MergePolicy;
use psm_ips::behavioural_trace;

fn main() {
    println!("# Ablation — t-test significance level α\n");
    header(&["IP", "α", "States", "MRE", "WSP"]);
    for name in BENCHMARKS {
        for alpha in [0.01, 0.1, 0.3, 0.6] {
            let mut pipeline = flow(name);
            pipeline.merge = MergePolicy::new(pipeline.merge.epsilon(), alpha);
            let mut core = ip(name);
            let model = pipeline
                .train(core.as_mut(), &[short_ts(name)])
                .expect("training succeeds");
            let workload = long_ts(name);
            let functional = behavioural_trace(core.as_mut(), &workload).expect("workload fits");
            let outcome = pipeline.estimate_from_trace(&model, &functional);
            let reference = pipeline
                .reference_power(core.as_ref(), &workload)
                .expect("capture succeeds");
            let mre =
                psm_stats::mean_relative_error(outcome.estimate.as_slice(), reference.as_slice())
                    .expect("non-empty traces");
            row(&[
                name.to_owned(),
                format!("{alpha}"),
                model.stats.states.to_string(),
                format!("{:.2} %", mre * 100.0),
                format!("{:.2} %", outcome.wsp_rate() * 100.0),
            ]);
        }
    }
}
