//! Regenerates the paper's **Table II** — characteristics of the generated
//! PSMs.
//!
//! For every IP and both testset families (*short-TS* above the line,
//! *long-TS* below it): the testset length, the golden power-simulation
//! time (the PrimeTime-PX role), the PSM generation time, the state and
//! transition counts of the combined model, and the MRE of simulating the
//! PSMs back against the golden reference of the *same* testset.
//!
//! `PSM_BENCH_CYCLES` sizes the long testsets (default 60 000; the paper
//! uses 500 000).

use psm_bench::{flow, header, ip, long_ts, row, short_ts, BENCHMARKS};
use psm_ips::behavioural_trace;
use psm_rtl::Stimulus;

fn run_row(name: &str, label: &str, stimulus: &Stimulus) {
    let pipeline = flow(name);
    let mut core = ip(name);
    let model = pipeline
        .train(core.as_mut(), std::slice::from_ref(stimulus))
        .expect("training succeeds on benchmark stimuli");

    // Self-MRE: simulate the PSMs on the training workload and compare
    // against the golden reference (regenerated with the same seed).
    let functional =
        behavioural_trace(core.as_mut(), stimulus).expect("stimulus fits the interface");
    let outcome = pipeline.estimate_from_trace(&model, &functional);
    let reference = {
        // Reproduce the training reference exactly (same noise seed).
        let netlist = core.netlist().expect("netlist builds");
        psm_rtl::capture_traces(
            &netlist,
            &pipeline.power_model,
            stimulus,
            pipeline.noise_seed,
        )
        .expect("capture succeeds")
        .power
    };
    let mre = psm_stats::mean_relative_error(outcome.estimate.as_slice(), reference.as_slice())
        .expect("non-empty traces");

    row(&[
        format!("{name} ({label})"),
        model.stats.training_instants.to_string(),
        format!("{:.2}", model.stats.reference_power_time.as_secs_f64()),
        format!("{:.2}", model.stats.generation_time.as_secs_f64()),
        model.stats.states.to_string(),
        model.stats.transitions.to_string(),
        format!("{:.2} %", mre * 100.0),
    ]);
}

fn main() {
    println!("# Table II — characteristics of the generated PSMs\n");
    header(&[
        "IP",
        "TS",
        "PX (s)",
        "PSMs gen. (s)",
        "States",
        "Trans.",
        "MRE",
    ]);
    for name in BENCHMARKS {
        run_row(name, "short-TS", &short_ts(name));
    }
    for name in BENCHMARKS {
        run_row(name, "long-TS", &long_ts(name));
    }
    println!("\npaper reference (short-TS MRE): RAM 0.30 %, MultSum 4.03 %,");
    println!("AES 3.45 %, Camellia 32.66 %  (long-TS within ~0.4 % of short-TS)");
}
