//! Ablation: the designer's ε merge tolerance (paper §IV-A case 1).
//!
//! Sweeps ε and reports, per benchmark, how aggressively states merge and
//! what it costs in accuracy. Small ε leaves near-duplicate states apart
//! (bigger models, marginally better fits); large ε collapses genuinely
//! different power levels (smaller models, exploding MRE).

use psm_bench::{flow, header, ip, long_ts, row, short_ts, BENCHMARKS};
use psm_core::MergePolicy;
use psm_ips::behavioural_trace;

fn main() {
    println!("# Ablation — merge tolerance ε\n");
    header(&["IP", "ε (mW)", "States", "Trans.", "MRE", "WSP"]);
    for name in BENCHMARKS {
        for eps in [0.0125, 0.05, 0.2, 0.8] {
            let mut pipeline = flow(name);
            pipeline.merge = MergePolicy::new(eps, pipeline.merge.alpha());
            let mut core = ip(name);
            let model = pipeline
                .train(core.as_mut(), &[short_ts(name)])
                .expect("training succeeds");
            let workload = long_ts(name);
            let functional = behavioural_trace(core.as_mut(), &workload).expect("workload fits");
            let outcome = pipeline.estimate_from_trace(&model, &functional);
            let reference = pipeline
                .reference_power(core.as_ref(), &workload)
                .expect("capture succeeds");
            let mre =
                psm_stats::mean_relative_error(outcome.estimate.as_slice(), reference.as_slice())
                    .expect("non-empty traces");
            row(&[
                name.to_owned(),
                format!("{eps}"),
                model.stats.states.to_string(),
                model.stats.transitions.to_string(),
                format!("{:.2} %", mre * 100.0),
                format!("{:.2} %", outcome.wsp_rate() * 100.0),
            ]);
        }
    }
}
