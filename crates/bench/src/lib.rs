//! Shared plumbing for the table-regeneration binaries and benches.
//!
//! Every binary in this crate regenerates one table (or ablation) of
//! Danese et al. (DATE 2016); see `DESIGN.md` for the experiment index.
//! Trace lengths are scaled down by default so the whole suite runs in
//! minutes — set `PSM_BENCH_CYCLES` (long-TS length, default 60 000;
//! the paper uses 500 000) to change the budget.
//!
//! The benches use the in-tree [`timing`] harness (mean/min over a fixed
//! iteration budget) instead of an external benchmarking crate, so the
//! whole workspace builds offline.
#![deny(missing_docs)]

use psm_ips::{ip_by_name, testbench, Ip};
use psm_rtl::Stimulus;
use psmgen::flow::{IpPreset, PsmFlow};

pub mod scenarios;
pub mod timing;

/// The Table I benchmark names, in paper order.
pub const BENCHMARKS: [&str; 4] = ["RAM", "MultSum", "AES", "Camellia"];

/// Instantiates a benchmark IP.
///
/// # Panics
///
/// Panics on unknown names — the binaries iterate over [`BENCHMARKS`].
pub fn ip(name: &str) -> Box<dyn Ip> {
    ip_by_name(name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"))
}

/// The per-IP tuned pipeline (mirrors the paper's per-design knobs).
///
/// # Panics
///
/// Panics on unknown names — the binaries iterate over [`BENCHMARKS`].
pub fn flow(name: &str) -> PsmFlow {
    let preset = IpPreset::from_name(name).unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    PsmFlow::builder().preset(preset).build()
}

/// The verification-style training set (paper *short-TS*).
pub fn short_ts(name: &str) -> Stimulus {
    testbench::short_ts(name, 1).expect("benchmark names are valid")
}

/// The long randomised testset (paper *long-TS*), sized by
/// `PSM_BENCH_CYCLES`.
pub fn long_ts(name: &str) -> Stimulus {
    testbench::long_ts(name, 7, long_ts_cycles()).expect("benchmark names are valid")
}

/// Long-TS cycle budget: `PSM_BENCH_CYCLES` or 60 000.
pub fn long_ts_cycles() -> usize {
    std::env::var("PSM_BENCH_CYCLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000)
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header (with separator line).
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_resolve() {
        for name in BENCHMARKS {
            assert_eq!(ip(name).name(), name);
            assert!(!short_ts(name).is_empty());
            // The preset resolves too (flow() panics otherwise).
            let _ = flow(name);
        }
    }

    #[test]
    fn cycle_budget_default() {
        assert!(long_ts_cycles() >= 1000);
    }
}
