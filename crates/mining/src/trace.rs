//! Proposition traces: Γ = ⟨γ₁, …, γₙ⟩.

use crate::proposition::PropositionId;

/// A proposition trace (paper Def. 2): for every simulation instant, the
/// single proposition of *Prop* that holds there.
///
/// Produced by [`Miner::mine`](crate::Miner::mine); consumed by the XU
/// automaton in `psm-core` to recognise `next`/`until` temporal patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropositionTrace {
    ids: Vec<PropositionId>,
}

impl PropositionTrace {
    /// Wraps a sequence of proposition ids.
    pub fn new(ids: Vec<PropositionId>) -> Self {
        PropositionTrace { ids }
    }

    /// Number of instants.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The proposition holding at instant `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn id(&self, t: usize) -> PropositionId {
        self.ids[t]
    }

    /// The proposition at instant `t`, or `None` past the end (the paper's
    /// `nil` sentinel in Fig. 3).
    pub fn get(&self, t: usize) -> Option<PropositionId> {
        self.ids.get(t).copied()
    }

    /// Iterates over the proposition ids in time order.
    pub fn iter(&self) -> impl Iterator<Item = PropositionId> + '_ {
        self.ids.iter().copied()
    }

    /// Collapses the trace into maximal runs of one proposition:
    /// `(id, start, stop)` with the inclusive interval where it holds.
    ///
    /// ```
    /// use psm_mining::{PropositionTrace, PropositionId};
    /// # // ids are crate-constructed in real use; build a toy trace here.
    /// let trace = PropositionTrace::from_indices(&[0, 0, 1, 1, 1, 0]);
    /// let runs = trace.runs();
    /// assert_eq!(runs.len(), 3);
    /// assert_eq!(runs[0], (PropositionId::from_index(0), 0, 1));
    /// assert_eq!(runs[1], (PropositionId::from_index(1), 2, 4));
    /// assert_eq!(runs[2], (PropositionId::from_index(0), 5, 5));
    /// ```
    pub fn runs(&self) -> Vec<(PropositionId, usize, usize)> {
        let mut out = Vec::new();
        let mut iter = self.ids.iter().copied().enumerate();
        let Some((_, mut current)) = iter.next() else {
            return out;
        };
        let mut start = 0usize;
        let mut last = 0usize;
        for (t, id) in iter {
            if id != current {
                out.push((current, start, last));
                current = id;
                start = t;
            }
            last = t;
        }
        out.push((current, start, last));
        out
    }

    /// Test/demo helper: builds a trace straight from raw indices.
    pub fn from_indices(indices: &[u32]) -> Self {
        PropositionTrace {
            ids: indices.iter().map(|&i| PropositionId(i)).collect(),
        }
    }
}

impl PropositionId {
    /// Test/demo helper: builds an id from a raw index.
    pub fn from_index(index: u32) -> Self {
        PropositionId(index)
    }
}

impl FromIterator<PropositionId> for PropositionTrace {
    fn from_iter<I: IntoIterator<Item = PropositionId>>(iter: I) -> Self {
        PropositionTrace {
            ids: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_nil() {
        let t = PropositionTrace::from_indices(&[0, 1, 1]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.id(1), PropositionId(1));
        assert_eq!(t.get(2), Some(PropositionId(1)));
        assert_eq!(t.get(3), None); // the paper's `nil`
    }

    #[test]
    fn runs_collapse_consecutive() {
        let t = PropositionTrace::from_indices(&[5, 5, 5, 2, 2, 7]);
        assert_eq!(
            t.runs(),
            vec![
                (PropositionId(5), 0, 2),
                (PropositionId(2), 3, 4),
                (PropositionId(7), 5, 5),
            ]
        );
    }

    #[test]
    fn runs_of_empty_trace() {
        assert!(PropositionTrace::new(Vec::new()).runs().is_empty());
    }

    #[test]
    fn runs_single_instant() {
        let t = PropositionTrace::from_indices(&[3]);
        assert_eq!(t.runs(), vec![(PropositionId(3), 0, 0)]);
    }
}
