//! Dynamic mining of propositions and temporal assertions from functional
//! traces — the §III-A front-end of Danese et al. (DATE 2016), implementing
//! the two-phase procedure of their ref.\[9\] (Danese et al., DATE 2015).
//!
//! # The two phases
//!
//! 1. **Atomic-proposition extraction** ([`Miner::mine_vocabulary`]): scan a
//!    set of training functional traces and collect atomic propositions
//!    that hold *frequently* — `v = c` for control-like signals with a small
//!    observed domain, and `v ∘ w` (for ∘ ∈ {=, <, >}) between equal-width
//!    signals. The result is a [`PropositionVocabulary`]: the columns of the
//!    paper's truth matrix *m*.
//!
//! 2. **Composition** ([`Miner::mine_trace`]): evaluate every atom at every
//!    instant (a row of *m*) and intern each distinct row as one
//!    [`Proposition`] — an AND-composition of the atoms. By construction
//!    **exactly one proposition holds at every instant**: propositions are
//!    identified with full truth-value rows (closed-world composition), so
//!    they are mutually exclusive on *any* trace, including traces unseen
//!    during mining. An unseen row during later simulation classifies as
//!    *unknown behaviour* — the trigger for the HMM resynchronisation of
//!    paper §V.
//!
//! The proposition trace is then scanned for `next`/`until` temporal
//! patterns ([`TemporalAssertion`]) by the XU automaton in `psm-core`.
//!
//! # Examples
//!
//! Reproduce the paper's Fig. 3 (functional trace → proposition trace):
//!
//! ```
//! use psm_mining::{Miner, MiningConfig};
//! use psm_trace::{Bits, Direction, FunctionalTrace, SignalSet};
//!
//! let mut signals = SignalSet::new();
//! signals.push("v1", 1, Direction::Input)?;
//! signals.push("v2", 1, Direction::Input)?;
//! signals.push("v3", 4, Direction::Output)?;
//! signals.push("v4", 4, Direction::Output)?;
//! let mut phi = FunctionalTrace::new(signals);
//! let rows: [(u64, u64, u64, u64); 8] = [
//!     (1, 0, 3, 1), (1, 0, 3, 1), (1, 0, 3, 1),   // p_a
//!     (0, 1, 3, 3), (0, 1, 4, 4), (0, 1, 2, 2),   // p_b
//!     (1, 1, 0, 0),                               // p_c
//!     (1, 1, 3, 1),                               // p_d
//! ];
//! for (v1, v2, v3, v4) in rows {
//!     phi.push_cycle(vec![
//!         Bits::from_u64(v1, 1),
//!         Bits::from_u64(v2, 1),
//!         Bits::from_u64(v3, 4),
//!         Bits::from_u64(v4, 4),
//!     ])?;
//! }
//!
//! let miner = Miner::new(MiningConfig::default());
//! let mined = miner.mine(&[&phi])?;
//! let gamma = &mined.traces[0];
//! // Four distinct propositions, grouped exactly as the paper's Γ.
//! assert_eq!(mined.table.len(), 4);
//! assert_eq!(gamma.id(0), gamma.id(2));
//! assert_eq!(gamma.id(3), gamma.id(5));
//! assert_ne!(gamma.id(5), gamma.id(6));
//! assert_ne!(gamma.id(6), gamma.id(7));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

mod atom;
mod config;
mod miner;
mod proposition;
mod report;
mod temporal;
mod trace;

pub use atom::{AtomicProposition, Comparison};
pub use config::MiningConfig;
pub use miner::{MinedTraces, Miner};
pub use proposition::{
    Proposition, PropositionId, PropositionTable, PropositionVocabulary, RowScratch,
};
pub use report::{AtomSupport, MiningReport};
pub use temporal::{TemporalAssertion, TemporalPattern};
pub use trace::PropositionTrace;

use std::error::Error;
use std::fmt;

/// Errors produced by the mining flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MiningError {
    /// No trace (or an empty trace) was supplied; nothing can be mined.
    EmptyTrace,
    /// Traces passed to one mining run declare different interfaces.
    SignalSetMismatch,
    /// No atomic proposition survived the support thresholds, so instants
    /// cannot be distinguished at all.
    EmptyVocabulary,
}

impl fmt::Display for MiningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiningError::EmptyTrace => write!(f, "cannot mine from an empty trace set"),
            MiningError::SignalSetMismatch => {
                write!(f, "traces in one mining run must share a signal interface")
            }
            MiningError::EmptyVocabulary => {
                write!(f, "no atomic proposition survived the support thresholds")
            }
        }
    }
}

impl Error for MiningError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        for e in [
            MiningError::EmptyTrace,
            MiningError::SignalSetMismatch,
            MiningError::EmptyVocabulary,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
