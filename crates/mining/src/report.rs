//! Mining diagnostics: per-atom support and proposition-set statistics.
//!
//! Choosing the thresholds of a [`MiningConfig`](crate::MiningConfig) is a
//! designer activity; this report shows what the miner actually extracted
//! so the thresholds can be judged against the trace.

use crate::proposition::PropositionTable;
use psm_trace::FunctionalTrace;
use std::fmt::Write as _;

/// Support statistics of one mined atom over a set of traces.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomSupport {
    /// Rendered atom formula (e.g. `start=true`).
    pub atom: String,
    /// Instants where the atom holds.
    pub holds: usize,
    /// Fraction of all instants where the atom holds.
    pub support: f64,
}

/// Statistics of a completed mining run.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningReport {
    /// Per-atom support, in vocabulary order.
    pub atoms: Vec<AtomSupport>,
    /// Number of interned propositions.
    pub propositions: usize,
    /// Total instants analysed.
    pub instants: usize,
}

impl MiningReport {
    /// Computes the report for a table over its training traces.
    pub fn new(table: &PropositionTable, traces: &[&FunctionalTrace]) -> Self {
        let vocab = table.vocabulary();
        let total: usize = traces.iter().map(|t| t.len()).sum();
        let mut holds = vec![0usize; vocab.len()];
        for trace in traces {
            for t in 0..trace.len() {
                for (i, atom) in vocab.atoms().iter().enumerate() {
                    if atom.eval(trace.cycle(t)) {
                        holds[i] += 1;
                    }
                }
            }
        }
        let atoms = vocab
            .atoms()
            .iter()
            .zip(holds)
            .map(|(atom, h)| AtomSupport {
                atom: atom.render(vocab.signals()),
                holds: h,
                support: if total > 0 {
                    h as f64 / total as f64
                } else {
                    0.0
                },
            })
            .collect();
        MiningReport {
            atoms,
            propositions: table.len(),
            instants: total,
        }
    }

    /// Renders the report as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "mining report: {} atom(s), {} proposition(s), {} instant(s)",
            self.atoms.len(),
            self.propositions,
            self.instants
        );
        for a in &self.atoms {
            let _ = writeln!(out, "  {:>6.2} %  {}", a.support * 100.0, a.atom);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Miner, MiningConfig};
    use psm_trace::{Bits, Direction, SignalSet};

    fn trace() -> FunctionalTrace {
        let mut signals = SignalSet::new();
        signals.push("en", 1, Direction::Input).expect("unique");
        let mut t = FunctionalTrace::new(signals);
        for k in 0..10u64 {
            t.push_cycle(vec![Bits::from_u64(u64::from(k >= 7), 1)])
                .expect("well-formed");
        }
        t
    }

    #[test]
    fn supports_match_the_trace() {
        let t = trace();
        let mined = Miner::new(MiningConfig::default())
            .mine(&[&t])
            .expect("mines");
        let report = MiningReport::new(&mined.table, &[&t]);
        assert_eq!(report.instants, 10);
        assert_eq!(report.propositions, 2);
        let en_true = report
            .atoms
            .iter()
            .find(|a| a.atom == "en=true")
            .expect("mined");
        assert_eq!(en_true.holds, 3);
        assert!((en_true.support - 0.3).abs() < 1e-12);
    }

    #[test]
    fn render_is_nonempty_and_lists_atoms() {
        let t = trace();
        let mined = Miner::new(MiningConfig::default())
            .mine(&[&t])
            .expect("mines");
        let text = MiningReport::new(&mined.table, &[&t]).render();
        assert!(text.contains("mining report"));
        assert!(text.contains("en=true"));
        assert!(text.contains("en=false"));
    }
}
