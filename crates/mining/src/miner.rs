//! The two-phase mining procedure (ref. [9] of the paper).

use crate::atom::{AtomicProposition, Comparison};
use crate::config::MiningConfig;
use crate::proposition::{PropositionTable, PropositionVocabulary, RowScratch};
use crate::trace::PropositionTrace;
use crate::MiningError;
use psm_trace::{Bits, FunctionalTrace};
use std::collections::HashMap;

/// The complete mining result for one IP: the shared proposition table and
/// one proposition trace per input functional trace.
#[derive(Debug, Clone)]
pub struct MinedTraces {
    /// Interned proposition set, shared by all traces of the IP.
    pub table: PropositionTable,
    /// One proposition trace Γ per input functional trace Φ, same order.
    pub traces: Vec<PropositionTrace>,
}

/// The assertion miner: extracts frequent atomic propositions (phase 1) and
/// composes them into per-instant propositions (phase 2).
///
/// See the [crate-level example](crate) for the paper's Fig. 3 worked end
/// to end.
#[derive(Debug, Clone, Default)]
pub struct Miner {
    config: MiningConfig,
}

impl Miner {
    /// Creates a miner with the given thresholds.
    pub fn new(config: MiningConfig) -> Self {
        Miner { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &MiningConfig {
        &self.config
    }

    /// Runs both phases over a set of functional traces of one IP.
    ///
    /// All traces must share a signal interface; the returned table is the
    /// shared proposition set *Prop*, and `traces[i]` is the proposition
    /// trace of input `traces[i]`.
    ///
    /// # Examples
    ///
    /// A one-signal enable line mines down to two propositions (`en=true`
    /// and its closed-world complement); see the [crate-level
    /// example](crate) for the paper's full Fig. 3 reproduction.
    ///
    /// ```
    /// use psm_mining::{Miner, MiningConfig};
    /// use psm_trace::{Bits, Direction, FunctionalTrace, SignalSet};
    ///
    /// let mut signals = SignalSet::new();
    /// signals.push("en", 1, Direction::Input)?;
    /// let mut phi = FunctionalTrace::new(signals);
    /// for v in [1u64, 1, 0, 0, 1, 1] {
    ///     phi.push_cycle(vec![Bits::from_u64(v, 1)])?;
    /// }
    ///
    /// let mined = Miner::new(MiningConfig::default()).mine(&[&phi])?;
    /// assert_eq!(mined.table.len(), 2);
    /// assert_eq!(mined.traces[0].id(0), mined.traces[0].id(4));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// * [`MiningError::EmptyTrace`] when no non-empty trace is supplied;
    /// * [`MiningError::SignalSetMismatch`] when interfaces differ;
    /// * [`MiningError::EmptyVocabulary`] when no atom survives the
    ///   thresholds.
    pub fn mine(&self, traces: &[&FunctionalTrace]) -> Result<MinedTraces, MiningError> {
        let vocabulary = self.mine_vocabulary(traces)?;
        let mut table = PropositionTable::new(vocabulary);
        let prop_traces = traces
            .iter()
            .map(|t| Self::mine_trace(&mut table, t))
            .collect();
        Ok(MinedTraces {
            table,
            traces: prop_traces,
        })
    }

    /// Like [`Miner::mine`], with designer-supplied atomic propositions
    /// unioned into the mined vocabulary — domain knowledge the templates
    /// cannot express (e.g. an address-range predicate encoded as
    /// `v = c` atoms, or relations the support thresholds would drop).
    ///
    /// Duplicates of already-mined atoms are ignored.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Miner::mine`].
    pub fn mine_with_atoms(
        &self,
        traces: &[&FunctionalTrace],
        extra: Vec<AtomicProposition>,
    ) -> Result<MinedTraces, MiningError> {
        let vocabulary = self.mine_vocabulary(traces)?;
        let mut atoms = vocabulary.atoms().to_vec();
        for atom in extra {
            if !atoms.contains(&atom) {
                atoms.push(atom);
            }
        }
        let vocabulary =
            crate::proposition::PropositionVocabulary::new(vocabulary.signals().clone(), atoms);
        let mut table = PropositionTable::new(vocabulary);
        let prop_traces = traces
            .iter()
            .map(|t| Self::mine_trace(&mut table, t))
            .collect();
        Ok(MinedTraces {
            table,
            traces: prop_traces,
        })
    }

    /// Phase 1: extracts the atomic-proposition vocabulary from the
    /// training traces.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Miner::mine`].
    pub fn mine_vocabulary(
        &self,
        traces: &[&FunctionalTrace],
    ) -> Result<PropositionVocabulary, MiningError> {
        let total: usize = traces.iter().map(|t| t.len()).sum();
        if traces.is_empty() || total == 0 {
            return Err(MiningError::EmptyTrace);
        }
        let signals = traces[0].signals().clone();
        if traces.iter().any(|t| t.signals() != &signals) {
            return Err(MiningError::SignalSetMismatch);
        }

        let min_count = (self.config.min_support() * total as f64).ceil() as usize;
        let keep = |support: usize| -> bool {
            support >= min_count.max(1) && (!self.config.drop_invariants() || support < total)
        };

        let mut atoms = Vec::new();

        // --- `v = c` atoms for small-domain (control-like) signals -------
        let max_domain = self.config.const_atom_max_domain();
        for (id, _) in signals.iter() {
            let mut counts: HashMap<Bits, usize> = HashMap::new();
            let mut overflowed = false;
            'outer: for trace in traces {
                for t in 0..trace.len() {
                    let v = trace.value(id, t);
                    if let Some(c) = counts.get_mut(v) {
                        *c += 1;
                    } else {
                        if counts.len() == max_domain {
                            overflowed = true;
                            break 'outer;
                        }
                        counts.insert(v.clone(), 1);
                    }
                }
            }
            if overflowed {
                continue;
            }
            // Deterministic order: sort observed constants numerically.
            let mut observed: Vec<(Bits, usize)> = counts.into_iter().collect();
            observed
                .sort_by(|(a, _), (b, _)| a.compare(b).expect("one signal's values share a width"));
            for (value, support) in observed {
                if keep(support) {
                    atoms.push(AtomicProposition::VarEqConst { signal: id, value });
                }
            }
        }

        // --- `v ∘ w` atoms between equal-width signal pairs ---------------
        if self.config.pair_relations() {
            let ids: Vec<_> = signals.iter().map(|(id, d)| (id, d.width())).collect();
            for i in 0..ids.len() {
                for j in (i + 1)..ids.len() {
                    let (left, wl) = ids[i];
                    let (right, wr) = ids[j];
                    if wl != wr {
                        continue;
                    }
                    let mut support = [0usize; 3]; // Eq, Lt, Gt
                    for trace in traces {
                        for t in 0..trace.len() {
                            let ord = trace
                                .value(left, t)
                                .compare(trace.value(right, t))
                                .expect("equal widths checked above");
                            match ord {
                                std::cmp::Ordering::Equal => support[0] += 1,
                                std::cmp::Ordering::Less => support[1] += 1,
                                std::cmp::Ordering::Greater => support[2] += 1,
                            }
                        }
                    }
                    for (k, cmp) in Comparison::ALL.into_iter().enumerate() {
                        if keep(support[k]) {
                            atoms.push(AtomicProposition::VarCmpVar { left, cmp, right });
                        }
                    }
                }
            }
        }

        if atoms.is_empty() {
            return Err(MiningError::EmptyVocabulary);
        }
        Ok(PropositionVocabulary::new(signals, atoms))
    }

    /// Phase 2: converts one functional trace into its proposition trace,
    /// interning any new truth row into `table`.
    ///
    /// One [`RowScratch`] spans the whole walk, so evaluating and interning
    /// a cycle allocates only when its truth row is previously unseen.
    pub fn mine_trace(table: &mut PropositionTable, trace: &FunctionalTrace) -> PropositionTrace {
        let mut scratch = RowScratch::new();
        (0..trace.len())
            .map(|t| table.intern_cycle_with(trace.cycle(t), &mut scratch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_trace::{Direction, SignalSet};

    /// The paper's Fig. 3 functional trace.
    fn fig3_trace() -> FunctionalTrace {
        let mut signals = SignalSet::new();
        signals.push("v1", 1, Direction::Input).unwrap();
        signals.push("v2", 1, Direction::Input).unwrap();
        signals.push("v3", 4, Direction::Output).unwrap();
        signals.push("v4", 4, Direction::Output).unwrap();
        let mut phi = FunctionalTrace::new(signals);
        let rows: [(u64, u64, u64, u64); 8] = [
            (1, 0, 3, 1),
            (1, 0, 3, 1),
            (1, 0, 3, 1),
            (0, 1, 3, 3),
            (0, 1, 4, 4),
            (0, 1, 2, 2),
            (1, 1, 0, 0),
            (1, 1, 3, 1),
        ];
        for (v1, v2, v3, v4) in rows {
            phi.push_cycle(vec![
                Bits::from_u64(v1, 1),
                Bits::from_u64(v2, 1),
                Bits::from_u64(v3, 4),
                Bits::from_u64(v4, 4),
            ])
            .unwrap();
        }
        phi
    }

    #[test]
    fn fig3_reproduces_paper_grouping() {
        let phi = fig3_trace();
        let mined = Miner::new(MiningConfig::default()).mine(&[&phi]).unwrap();
        let g = &mined.traces[0];
        // p_a in [0,2], p_b in [3,5], p_c at 6, p_d at 7.
        let runs = g.runs();
        assert_eq!(runs.len(), 4, "four behaviours: {runs:?}");
        assert_eq!((runs[0].1, runs[0].2), (0, 2));
        assert_eq!((runs[1].1, runs[1].2), (3, 5));
        assert_eq!((runs[2].1, runs[2].2), (6, 6));
        assert_eq!((runs[3].1, runs[3].2), (7, 7));
        // All four propositions are distinct.
        assert_eq!(mined.table.len(), 4);
    }

    #[test]
    fn fig3_propositions_render_like_paper() {
        let phi = fig3_trace();
        let mined = Miner::new(MiningConfig::default()).mine(&[&phi]).unwrap();
        let g = &mined.traces[0];
        let pa = mined.table.render(g.id(0));
        // p_a: v1=true & v2=false & v3>v4
        assert!(pa.contains("v1=true"), "{pa}");
        assert!(pa.contains("v2=false"), "{pa}");
        assert!(pa.contains("v3>v4"), "{pa}");
        let pb = mined.table.render(g.id(3));
        assert!(pb.contains("v1=false") && pb.contains("v3=v4"), "{pb}");
    }

    #[test]
    fn vocabulary_excludes_wide_domains_and_unsupported() {
        let phi = fig3_trace();
        let vocab = Miner::new(MiningConfig::default())
            .mine_vocabulary(&[&phi])
            .unwrap();
        // v3 takes 4 distinct values, v4 takes 3: no const atoms for them
        // under the default domain bound of 2. v3<v4 never holds. So:
        // v1∈{t,f}, v2∈{t,f}, the three v1∘v2 relations (both 1-bit wide),
        // v3=v4 and v3>v4 → 9 atoms.
        assert_eq!(vocab.len(), 9);
        let rendered: Vec<String> = vocab
            .atoms()
            .iter()
            .map(|a| a.render(vocab.signals()))
            .collect();
        assert!(!rendered.iter().any(|r| r == "v3<v4"), "{rendered:?}");
        assert!(
            !rendered.iter().any(|r| r.starts_with("v3=4'h")),
            "{rendered:?}"
        );
    }

    #[test]
    fn classify_unseen_behaviour_is_none() {
        let phi = fig3_trace();
        let mined = Miner::new(MiningConfig::default()).mine(&[&phi]).unwrap();
        // v1=false & v2=false never occurs in training.
        let unseen = vec![
            Bits::from_u64(0, 1),
            Bits::from_u64(0, 1),
            Bits::from_u64(1, 4),
            Bits::from_u64(2, 4),
        ];
        assert!(mined.table.classify(&unseen).is_none());
    }

    #[test]
    fn shared_table_across_traces() {
        let phi = fig3_trace();
        let mined = Miner::new(MiningConfig::default())
            .mine(&[&phi, &phi])
            .unwrap();
        assert_eq!(mined.traces.len(), 2);
        assert_eq!(mined.traces[0], mined.traces[1]);
        assert_eq!(mined.table.len(), 4); // no duplicates interned
    }

    #[test]
    fn empty_inputs_rejected() {
        let miner = Miner::new(MiningConfig::default());
        assert!(matches!(miner.mine(&[]), Err(MiningError::EmptyTrace)));
    }

    #[test]
    fn mismatched_interfaces_rejected() {
        let phi = fig3_trace();
        let mut other_signals = SignalSet::new();
        other_signals.push("x", 1, Direction::Input).unwrap();
        let mut psi = FunctionalTrace::new(other_signals);
        psi.push_cycle(vec![Bits::from_bool(true)]).unwrap();
        let r = Miner::new(MiningConfig::default()).mine(&[&phi, &psi]);
        assert!(matches!(r, Err(MiningError::SignalSetMismatch)));
    }

    #[test]
    fn invariant_atoms_dropped_by_default() {
        // A signal stuck at one value across training yields only invariant
        // atoms, which are dropped; with a second varying signal mining
        // still succeeds and the stuck signal contributes nothing.
        let mut signals = SignalSet::new();
        signals.push("stuck", 1, Direction::Input).unwrap();
        signals.push("osc", 1, Direction::Input).unwrap();
        let mut phi = FunctionalTrace::new(signals);
        for t in 0..10u64 {
            phi.push_cycle(vec![Bits::from_bool(true), Bits::from_u64(t % 2, 1)])
                .unwrap();
        }
        let vocab = Miner::new(MiningConfig::default())
            .mine_vocabulary(&[&phi])
            .unwrap();
        // osc=true, osc=false, stuck=osc (50%), stuck>osc (50%).
        for atom in vocab.atoms() {
            let rendered = atom.render(vocab.signals());
            assert_ne!(rendered, "stuck=true", "invariant must be dropped");
        }
    }

    #[test]
    fn designer_atoms_refine_the_proposition_set() {
        // A wide bus gets no const atoms by default; the designer knows
        // that the value 0xF0 marks a special mode and injects it.
        let mut signals = SignalSet::new();
        signals.push("mode", 8, Direction::Input).unwrap();
        signals.push("run", 1, Direction::Input).unwrap();
        let mut phi = FunctionalTrace::new(signals.clone());
        for t in 0..40u64 {
            let mode = if t % 10 < 3 { 0xF0 } else { t % 7 };
            phi.push_cycle(vec![Bits::from_u64(mode, 8), Bits::from_u64(t % 2, 1)])
                .unwrap();
        }
        let miner = Miner::new(MiningConfig::default());
        let plain = miner.mine(&[&phi]).unwrap();
        let special = crate::AtomicProposition::VarEqConst {
            signal: signals.by_name("mode").unwrap(),
            value: Bits::from_u64(0xF0, 8),
        };
        let refined = miner.mine_with_atoms(&[&phi], vec![special]).unwrap();
        assert!(refined.table.vocabulary().len() > plain.table.vocabulary().len());
        assert!(
            refined.table.len() > plain.table.len(),
            "finer propositions"
        );
        // The designer atom appears in renders.
        let any_mode = refined
            .table
            .ids()
            .any(|id| refined.table.render(id).contains("mode=8'hf0"));
        assert!(any_mode);
    }

    #[test]
    fn min_support_filters_rare_constants() {
        let mut signals = SignalSet::new();
        signals.push("mode", 2, Direction::Input).unwrap();
        let mut phi = FunctionalTrace::new(signals);
        // mode = 0 for 99 cycles, mode = 1 exactly once.
        for t in 0..100u64 {
            phi.push_cycle(vec![Bits::from_u64(u64::from(t == 50), 2)])
                .unwrap();
        }
        let strict = Miner::new(MiningConfig::default().with_min_support(0.05))
            .mine_vocabulary(&[&phi])
            .unwrap();
        // Only mode=0 survives (mode=1 holds 1% < 5%).
        assert_eq!(strict.len(), 1);
        let lax = Miner::new(MiningConfig::default().with_min_support(0.01))
            .mine_vocabulary(&[&phi])
            .unwrap();
        assert_eq!(lax.len(), 2);
    }
}
