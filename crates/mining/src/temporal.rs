//! LTL temporal assertions over mined propositions.

use crate::proposition::{PropositionId, PropositionTable};
use std::fmt;

/// The two temporal patterns the paper mines (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TemporalPattern {
    /// `p X q`: after one instant of `p`, `q` holds at the very next
    /// instant — `(state = p) → next (state = q)`.
    Next,
    /// `p U q`: `p` holds for one or more consecutive instants until `q`
    /// becomes true — `(state = p) until (state = q)`.
    Until,
}

impl TemporalPattern {
    /// LTL operator glyph.
    pub fn symbol(self) -> &'static str {
        match self {
            TemporalPattern::Next => "X",
            TemporalPattern::Until => "U",
        }
    }
}

impl fmt::Display for TemporalPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A mined temporal assertion `left ⟨pattern⟩ right` — the characterising
/// formula of one PSM power state.
///
/// For an `until` assertion `p U q`, the state holds while `p` repeats and
/// is exited when `q` appears; for a `next` assertion `p X q`, the state
/// holds for exactly one instant of `p` and is exited into `q`.
///
/// # Examples
///
/// ```
/// use psm_mining::{PropositionId, TemporalAssertion, TemporalPattern};
///
/// let a = TemporalAssertion::new(
///     TemporalPattern::Until,
///     PropositionId::from_index(0),
///     PropositionId::from_index(1),
/// );
/// assert_eq!(a.to_string(), "p0 U p1");
/// assert!(a.is_until());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemporalAssertion {
    pattern: TemporalPattern,
    left: PropositionId,
    right: PropositionId,
}

impl TemporalAssertion {
    /// Builds an assertion from its parts.
    pub fn new(pattern: TemporalPattern, left: PropositionId, right: PropositionId) -> Self {
        TemporalAssertion {
            pattern,
            left,
            right,
        }
    }

    /// The temporal operator.
    pub fn pattern(&self) -> TemporalPattern {
        self.pattern
    }

    /// The proposition holding *inside* the state.
    pub fn left(&self) -> PropositionId {
        self.left
    }

    /// The proposition whose appearance exits the state.
    pub fn right(&self) -> PropositionId {
        self.right
    }

    /// `true` for an `until` assertion.
    pub fn is_until(&self) -> bool {
        self.pattern == TemporalPattern::Until
    }

    /// `true` for a `next` assertion.
    pub fn is_next(&self) -> bool {
        self.pattern == TemporalPattern::Next
    }

    /// Renders with full proposition formulas resolved through `table`,
    /// e.g. `(v1=true & v3>v4) U (v2=true)`.
    pub fn render(&self, table: &PropositionTable) -> String {
        format!(
            "({}) {} ({})",
            table.render(self.left),
            self.pattern,
            table.render(self.right)
        )
    }
}

impl psm_persist::Persist for TemporalPattern {
    fn to_json(&self) -> psm_persist::JsonValue {
        psm_persist::JsonValue::from(self.symbol())
    }

    fn from_json(v: &psm_persist::JsonValue) -> Result<Self, psm_persist::PersistError> {
        match v.as_str()? {
            "X" => Ok(TemporalPattern::Next),
            "U" => Ok(TemporalPattern::Until),
            other => Err(psm_persist::PersistError::schema(format!(
                "unknown temporal pattern {other:?}"
            ))),
        }
    }
}

impl psm_persist::Persist for TemporalAssertion {
    fn to_json(&self) -> psm_persist::JsonValue {
        use psm_persist::JsonValue;
        JsonValue::obj([
            ("pattern", self.pattern.to_json()),
            ("left", self.left.to_json()),
            ("right", self.right.to_json()),
        ])
    }

    fn from_json(v: &psm_persist::JsonValue) -> Result<Self, psm_persist::PersistError> {
        Ok(TemporalAssertion {
            pattern: TemporalPattern::from_json(v.field("pattern")?)?,
            left: PropositionId::from_json(v.field("left")?)?,
            right: PropositionId::from_json(v.field("right")?)?,
        })
    }
}

impl fmt::Display for TemporalAssertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.pattern, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let a = TemporalAssertion::new(
            TemporalPattern::Next,
            PropositionId::from_index(2),
            PropositionId::from_index(3),
        );
        assert_eq!(a.pattern(), TemporalPattern::Next);
        assert_eq!(a.left().index(), 2);
        assert_eq!(a.right().index(), 3);
        assert!(a.is_next());
        assert!(!a.is_until());
        assert_eq!(a.to_string(), "p2 X p3");
    }

    #[test]
    fn equality_is_structural() {
        let mk = |p, l, r| {
            TemporalAssertion::new(
                p,
                PropositionId::from_index(l),
                PropositionId::from_index(r),
            )
        };
        assert_eq!(
            mk(TemporalPattern::Until, 0, 1),
            mk(TemporalPattern::Until, 0, 1)
        );
        assert_ne!(
            mk(TemporalPattern::Until, 0, 1),
            mk(TemporalPattern::Next, 0, 1)
        );
        assert_ne!(
            mk(TemporalPattern::Until, 0, 1),
            mk(TemporalPattern::Until, 1, 0)
        );
    }

    #[test]
    fn pattern_symbols() {
        assert_eq!(TemporalPattern::Next.to_string(), "X");
        assert_eq!(TemporalPattern::Until.to_string(), "U");
    }
}
