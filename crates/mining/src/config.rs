//! Mining thresholds.

/// Configuration of the atomic-proposition extraction phase.
///
/// The defaults reproduce the behaviour needed for the paper's Fig. 3
/// example and work well on the four benchmark IPs: constants are mined only
/// for *control-like* signals (observed domain of at most
/// `const_atom_max_domain` values), relations are mined between all
/// equal-width signal pairs, and atoms that never change truth value across
/// the training set are dropped as uninformative.
///
/// # Examples
///
/// ```
/// use psm_mining::MiningConfig;
///
/// let config = MiningConfig::default()
///     .with_min_support(0.05)
///     .with_const_atom_max_domain(4);
/// assert_eq!(config.min_support(), 0.05);
/// assert_eq!(config.const_atom_max_domain(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MiningConfig {
    min_support: f64,
    const_atom_max_domain: usize,
    pair_relations: bool,
    drop_invariants: bool,
}

impl MiningConfig {
    /// Minimum fraction of training instants an atom must hold to be kept.
    pub fn min_support(&self) -> f64 {
        self.min_support
    }

    /// Largest observed value domain for which `v = c` atoms are emitted.
    ///
    /// With the default of 2, boolean handshakes (`start`, `ready`, …) and
    /// effectively constant buses are covered while wide data buses
    /// contribute only relational atoms — this is what keeps the mined
    /// proposition set small and behavioural rather than data-enumerating.
    pub fn const_atom_max_domain(&self) -> usize {
        self.const_atom_max_domain
    }

    /// Whether `v ∘ w` relational atoms are mined.
    pub fn pair_relations(&self) -> bool {
        self.pair_relations
    }

    /// Whether atoms holding at *every* (or *no*) training instant are
    /// discarded. Such invariants cannot distinguish states.
    pub fn drop_invariants(&self) -> bool {
        self.drop_invariants
    }

    /// Sets the minimum support fraction.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= min_support <= 1.0`.
    pub fn with_min_support(mut self, min_support: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&min_support),
            "support is a fraction in [0, 1]"
        );
        self.min_support = min_support;
        self
    }

    /// Sets the maximum value domain for constant atoms.
    pub fn with_const_atom_max_domain(mut self, domain: usize) -> Self {
        self.const_atom_max_domain = domain;
        self
    }

    /// Enables or disables relational atoms.
    pub fn with_pair_relations(mut self, enabled: bool) -> Self {
        self.pair_relations = enabled;
        self
    }

    /// Enables or disables invariant dropping.
    pub fn with_drop_invariants(mut self, enabled: bool) -> Self {
        self.drop_invariants = enabled;
        self
    }
}

impl Default for MiningConfig {
    fn default() -> Self {
        MiningConfig {
            min_support: 0.02,
            const_atom_max_domain: 2,
            pair_relations: true,
            drop_invariants: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = MiningConfig::default();
        assert!(c.min_support() > 0.0 && c.min_support() < 0.5);
        assert!(c.pair_relations());
        assert!(c.drop_invariants());
        assert_eq!(c.const_atom_max_domain(), 2);
    }

    #[test]
    fn builders_set_fields() {
        let c = MiningConfig::default()
            .with_min_support(0.5)
            .with_const_atom_max_domain(16)
            .with_pair_relations(false)
            .with_drop_invariants(false);
        assert_eq!(c.min_support(), 0.5);
        assert_eq!(c.const_atom_max_domain(), 16);
        assert!(!c.pair_relations());
        assert!(!c.drop_invariants());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_support() {
        let _ = MiningConfig::default().with_min_support(1.5);
    }
}
