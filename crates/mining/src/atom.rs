//! Atomic propositions: the indivisible predicates of the mined logic.

use psm_trace::{Bits, SignalId, SignalSet};
use std::cmp::Ordering;
use std::fmt;

/// Relational operator between two signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Comparison {
    /// `left = right`
    Eq,
    /// `left < right` (unsigned)
    Lt,
    /// `left > right` (unsigned)
    Gt,
}

impl Comparison {
    /// All comparison operators, in a stable order.
    pub const ALL: [Comparison; 3] = [Comparison::Eq, Comparison::Lt, Comparison::Gt];

    /// Applies the operator to an [`Ordering`].
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            Comparison::Eq => ord == Ordering::Equal,
            Comparison::Lt => ord == Ordering::Less,
            Comparison::Gt => ord == Ordering::Greater,
        }
    }

    /// Operator glyph for rendering.
    pub fn symbol(self) -> &'static str {
        match self {
            Comparison::Eq => "=",
            Comparison::Lt => "<",
            Comparison::Gt => ">",
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An atomic proposition over the PIs/POs of a model (paper Def. 1): a
/// logic formula without connectives.
///
/// Two template families are mined, following ref.\[9\]:
///
/// * `v = c` — a signal equals one of its frequently observed constants
///   (covers boolean controls like `start = true`);
/// * `v ∘ w` — a relation between two equal-width signals
///   (e.g. the paper's `v3 > v4`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AtomicProposition {
    /// `signal = value`
    VarEqConst {
        /// The observed signal.
        signal: SignalId,
        /// The constant it is compared against.
        value: Bits,
    },
    /// `left ∘ right` for two equal-width signals.
    VarCmpVar {
        /// Left-hand signal.
        left: SignalId,
        /// Relational operator.
        cmp: Comparison,
        /// Right-hand signal.
        right: SignalId,
    },
}

impl AtomicProposition {
    /// Evaluates the atom over one functional-trace cycle (signal values in
    /// declaration order).
    ///
    /// # Panics
    ///
    /// Panics if a referenced signal index is out of range for `cycle`, or
    /// if a `VarCmpVar` was constructed over signals of different widths
    /// (the miner never does).
    pub fn eval(&self, cycle: &[Bits]) -> bool {
        match self {
            AtomicProposition::VarEqConst { signal, value } => &cycle[signal.index()] == value,
            AtomicProposition::VarCmpVar { left, cmp, right } => {
                let ord = cycle[left.index()]
                    .compare(&cycle[right.index()])
                    .expect("mined relational atoms always compare equal widths");
                cmp.test(ord)
            }
        }
    }

    /// Renders the atom with signal names resolved through `signals`.
    ///
    /// Boolean `v = c` atoms render as `v=true` / `v=false`, matching the
    /// paper's Fig. 3 notation.
    pub fn render(&self, signals: &SignalSet) -> String {
        match self {
            AtomicProposition::VarEqConst { signal, value } => {
                let name = signals.decl(*signal).name();
                if value.width() == 1 {
                    format!("{name}={}", if value.bit(0) { "true" } else { "false" })
                } else {
                    format!("{name}={value}")
                }
            }
            AtomicProposition::VarCmpVar { left, cmp, right } => {
                format!(
                    "{}{}{}",
                    signals.decl(*left).name(),
                    cmp,
                    signals.decl(*right).name()
                )
            }
        }
    }
}

impl psm_persist::Persist for Comparison {
    fn to_json(&self) -> psm_persist::JsonValue {
        psm_persist::JsonValue::from(match self {
            Comparison::Eq => "eq",
            Comparison::Lt => "lt",
            Comparison::Gt => "gt",
        })
    }

    fn from_json(v: &psm_persist::JsonValue) -> Result<Self, psm_persist::PersistError> {
        match v.as_str()? {
            "eq" => Ok(Comparison::Eq),
            "lt" => Ok(Comparison::Lt),
            "gt" => Ok(Comparison::Gt),
            other => Err(psm_persist::PersistError::schema(format!(
                "unknown comparison {other:?}"
            ))),
        }
    }
}

impl psm_persist::Persist for AtomicProposition {
    fn to_json(&self) -> psm_persist::JsonValue {
        use psm_persist::JsonValue;
        match self {
            AtomicProposition::VarEqConst { signal, value } => JsonValue::obj([
                ("kind", JsonValue::from("eq_const")),
                ("signal", signal.to_json()),
                ("value", value.to_json()),
            ]),
            AtomicProposition::VarCmpVar { left, cmp, right } => JsonValue::obj([
                ("kind", JsonValue::from("cmp_var")),
                ("left", left.to_json()),
                ("cmp", cmp.to_json()),
                ("right", right.to_json()),
            ]),
        }
    }

    fn from_json(v: &psm_persist::JsonValue) -> Result<Self, psm_persist::PersistError> {
        match v.str_field("kind")? {
            "eq_const" => Ok(AtomicProposition::VarEqConst {
                signal: SignalId::from_json(v.field("signal")?)?,
                value: Bits::from_json(v.field("value")?)?,
            }),
            "cmp_var" => Ok(AtomicProposition::VarCmpVar {
                left: SignalId::from_json(v.field("left")?)?,
                cmp: Comparison::from_json(v.field("cmp")?)?,
                right: SignalId::from_json(v.field("right")?)?,
            }),
            other => Err(psm_persist::PersistError::schema(format!(
                "unknown atom kind {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_trace::Direction;

    fn setup() -> (SignalSet, Vec<Bits>) {
        let mut s = SignalSet::new();
        s.push("en", 1, Direction::Input).unwrap();
        s.push("a", 4, Direction::Input).unwrap();
        s.push("b", 4, Direction::Output).unwrap();
        let cycle = vec![
            Bits::from_bool(true),
            Bits::from_u64(9, 4),
            Bits::from_u64(3, 4),
        ];
        (s, cycle)
    }

    #[test]
    fn var_eq_const_eval() {
        let (s, cycle) = setup();
        let en = s.by_name("en").unwrap();
        let atom = AtomicProposition::VarEqConst {
            signal: en,
            value: Bits::from_bool(true),
        };
        assert!(atom.eval(&cycle));
        let atom = AtomicProposition::VarEqConst {
            signal: en,
            value: Bits::from_bool(false),
        };
        assert!(!atom.eval(&cycle));
    }

    #[test]
    fn var_cmp_var_eval() {
        let (s, cycle) = setup();
        let a = s.by_name("a").unwrap();
        let b = s.by_name("b").unwrap();
        let gt = AtomicProposition::VarCmpVar {
            left: a,
            cmp: Comparison::Gt,
            right: b,
        };
        let lt = AtomicProposition::VarCmpVar {
            left: a,
            cmp: Comparison::Lt,
            right: b,
        };
        let eq = AtomicProposition::VarCmpVar {
            left: a,
            cmp: Comparison::Eq,
            right: b,
        };
        assert!(gt.eval(&cycle));
        assert!(!lt.eval(&cycle));
        assert!(!eq.eval(&cycle));
    }

    #[test]
    fn render_matches_paper_notation() {
        let (s, _) = setup();
        let en = s.by_name("en").unwrap();
        let a = s.by_name("a").unwrap();
        let b = s.by_name("b").unwrap();
        assert_eq!(
            AtomicProposition::VarEqConst {
                signal: en,
                value: Bits::from_bool(true)
            }
            .render(&s),
            "en=true"
        );
        assert_eq!(
            AtomicProposition::VarCmpVar {
                left: a,
                cmp: Comparison::Gt,
                right: b
            }
            .render(&s),
            "a>b"
        );
        assert_eq!(
            AtomicProposition::VarEqConst {
                signal: a,
                value: Bits::from_u64(9, 4)
            }
            .render(&s),
            "a=4'h9"
        );
    }

    #[test]
    fn comparison_test_and_symbols() {
        assert!(Comparison::Eq.test(Ordering::Equal));
        assert!(Comparison::Lt.test(Ordering::Less));
        assert!(Comparison::Gt.test(Ordering::Greater));
        assert!(!Comparison::Gt.test(Ordering::Less));
        assert_eq!(Comparison::ALL.len(), 3);
        assert_eq!(Comparison::Lt.to_string(), "<");
    }
}
