//! Propositions: AND-compositions of atomic propositions, one per distinct
//! truth-matrix row.

use crate::atom::AtomicProposition;
use psm_trace::{Bits, SignalSet};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a proposition within one [`PropositionTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropositionId(pub(crate) u32);

impl PropositionId {
    /// Dense index of this proposition.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PropositionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The mined atomic propositions — the columns of the paper's truth matrix
/// *m* — together with the interface they predicate over.
#[derive(Debug, Clone)]
pub struct PropositionVocabulary {
    signals: SignalSet,
    atoms: Vec<AtomicProposition>,
}

impl PropositionVocabulary {
    pub(crate) fn new(signals: SignalSet, atoms: Vec<AtomicProposition>) -> Self {
        PropositionVocabulary { signals, atoms }
    }

    /// The PI/PO interface the atoms predicate over.
    pub fn signals(&self) -> &SignalSet {
        &self.signals
    }

    /// The mined atoms, in stable order.
    pub fn atoms(&self) -> &[AtomicProposition] {
        &self.atoms
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Returns `true` when no atom was mined.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluates every atom over one functional-trace cycle, producing a
    /// packed truth row (bit *i* = truth of atom *i*).
    pub fn evaluate_row(&self, cycle: &[Bits]) -> Vec<u64> {
        let mut scratch = RowScratch::new();
        self.evaluate_row_into(cycle, &mut scratch);
        scratch.row
    }

    /// Like [`PropositionVocabulary::evaluate_row`], writing the packed row
    /// into a reusable [`RowScratch`] instead of allocating. The per-cycle
    /// hot paths ([`PropositionTable::intern_cycle_with`] and
    /// [`PropositionTable::classify_with`]) run on this.
    pub fn evaluate_row_into(&self, cycle: &[Bits], scratch: &mut RowScratch) {
        let words = self.atoms.len().div_ceil(64).max(1);
        scratch.row.clear();
        scratch.row.resize(words, 0);
        for (i, atom) in self.atoms.iter().enumerate() {
            if atom.eval(cycle) {
                scratch.row[i / 64] |= 1 << (i % 64);
            }
        }
    }
}

/// A reusable packed-truth-row buffer.
///
/// [`PropositionVocabulary::evaluate_row`] allocates a fresh `Vec<u64>` on
/// every call, which dominates per-cycle cost when a whole trace is
/// classified. Callers that walk traces keep one `RowScratch` alive and
/// pass it to [`PropositionTable::intern_cycle_with`] /
/// [`PropositionTable::classify_with`], so the row buffer is allocated
/// once per trace instead of once per cycle.
#[derive(Debug, Clone, Default)]
pub struct RowScratch {
    row: Vec<u64>,
}

impl RowScratch {
    /// Creates an empty scratch buffer; it sizes itself on first use.
    pub fn new() -> Self {
        RowScratch::default()
    }

    /// The packed row from the most recent evaluation.
    pub fn row(&self) -> &[u64] {
        &self.row
    }
}

/// One mined proposition: a distinct truth-value row over the vocabulary.
///
/// A proposition is the AND-composition of the atoms that hold (and,
/// implicitly, the negation of those that do not — the *closed-world*
/// reading). This identification guarantees the paper's requirement that
/// **exactly one proposition of the set holds at every instant** on any
/// trace whatsoever.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Proposition {
    row: Vec<u64>,
    atom_count: usize,
}

impl Proposition {
    /// Truth of atom `i` within this proposition.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn atom_truth(&self, i: usize) -> bool {
        assert!(i < self.atom_count, "atom {i} out of range");
        self.row[i / 64] >> (i % 64) & 1 == 1
    }

    /// Indices of the atoms that hold in this proposition.
    pub fn satisfied_atoms(&self) -> Vec<usize> {
        (0..self.atom_count)
            .filter(|&i| self.atom_truth(i))
            .collect()
    }

    /// The packed truth row.
    pub fn row(&self) -> &[u64] {
        &self.row
    }
}

/// The interned set *Prop* of mined propositions, shared across all traces
/// of one IP so that PSMs generated from different traces can be compared
/// and joined.
///
/// [`PropositionTable::intern`] is used while mining (new rows become new
/// propositions); [`PropositionTable::classify`] is used while *simulating*
/// and returns `None` for behaviour never seen in training — the paper's
/// "unknown functional behaviour".
#[derive(Debug, Clone)]
pub struct PropositionTable {
    vocabulary: PropositionVocabulary,
    props: Vec<Proposition>,
    index: HashMap<Vec<u64>, PropositionId>,
}

impl PropositionTable {
    pub(crate) fn new(vocabulary: PropositionVocabulary) -> Self {
        PropositionTable {
            vocabulary,
            props: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The vocabulary whose rows this table interns.
    pub fn vocabulary(&self) -> &PropositionVocabulary {
        &self.vocabulary
    }

    /// Number of interned propositions.
    pub fn len(&self) -> usize {
        self.props.len()
    }

    /// Returns `true` when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.props.is_empty()
    }

    /// Interns a truth row, returning the existing or a fresh id.
    pub fn intern(&mut self, row: Vec<u64>) -> PropositionId {
        if let Some(&id) = self.index.get(&row) {
            return id;
        }
        let id = PropositionId(self.props.len() as u32);
        self.props.push(Proposition {
            row: row.clone(),
            atom_count: self.vocabulary.len(),
        });
        self.index.insert(row, id);
        id
    }

    /// Evaluates one cycle and interns its row (mining path).
    pub fn intern_cycle(&mut self, cycle: &[Bits]) -> PropositionId {
        let mut scratch = RowScratch::new();
        self.intern_cycle_with(cycle, &mut scratch)
    }

    /// Like [`PropositionTable::intern_cycle`] with a caller-owned
    /// [`RowScratch`]: the row is evaluated in place and only *cloned*
    /// when it is a previously unseen proposition, so a trace walk
    /// allocates once per distinct proposition instead of once per cycle.
    pub fn intern_cycle_with(&mut self, cycle: &[Bits], scratch: &mut RowScratch) -> PropositionId {
        self.vocabulary.evaluate_row_into(cycle, scratch);
        if let Some(&id) = self.index.get(scratch.row.as_slice()) {
            return id;
        }
        let id = PropositionId(self.props.len() as u32);
        self.props.push(Proposition {
            row: scratch.row.clone(),
            atom_count: self.vocabulary.len(),
        });
        self.index.insert(scratch.row.clone(), id);
        id
    }

    /// Evaluates one cycle *without* interning (simulation path); `None`
    /// means unknown behaviour.
    pub fn classify(&self, cycle: &[Bits]) -> Option<PropositionId> {
        let mut scratch = RowScratch::new();
        self.classify_with(cycle, &mut scratch)
    }

    /// Like [`PropositionTable::classify`] with a caller-owned
    /// [`RowScratch`]: no allocation at all — the row is evaluated in
    /// place and looked up by slice (`HashMap<Vec<u64>, _>` borrows as
    /// `[u64]`), never re-built or re-boxed.
    ///
    /// # Examples
    ///
    /// ```
    /// use psm_mining::{Miner, MiningConfig, RowScratch};
    /// use psm_trace::{Bits, Direction, FunctionalTrace, SignalSet};
    ///
    /// let mut signals = SignalSet::new();
    /// signals.push("en", 1, Direction::Input)?;
    /// let mut phi = FunctionalTrace::new(signals);
    /// for v in [1u64, 1, 0, 0] {
    ///     phi.push_cycle(vec![Bits::from_u64(v, 1)])?;
    /// }
    /// let mined = Miner::new(MiningConfig::default()).mine(&[&phi])?;
    ///
    /// // One scratch serves a whole trace walk, allocation-free.
    /// let mut scratch = RowScratch::new();
    /// let a = mined.table.classify_with(&[Bits::from_u64(1, 1)], &mut scratch);
    /// let b = mined.table.classify_with(&[Bits::from_u64(0, 1)], &mut scratch);
    /// assert!(a.is_some() && b.is_some() && a != b);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn classify_with(&self, cycle: &[Bits], scratch: &mut RowScratch) -> Option<PropositionId> {
        self.vocabulary.evaluate_row_into(cycle, scratch);
        self.index.get(scratch.row.as_slice()).copied()
    }

    /// The proposition behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this table.
    pub fn get(&self, id: PropositionId) -> &Proposition {
        &self.props[id.index()]
    }

    /// All interned proposition ids, in interning order.
    pub fn ids(&self) -> impl Iterator<Item = PropositionId> + '_ {
        (0..self.props.len()).map(|i| PropositionId(i as u32))
    }

    /// Renders a proposition as the conjunction of its satisfied atoms
    /// (the paper's Fig. 3 notation, e.g.
    /// `v1=true & v2=false & v3>v4`). Propositions satisfying no atom
    /// render as `⊤` (every atom negated).
    pub fn render(&self, id: PropositionId) -> String {
        let p = self.get(id);
        let parts: Vec<String> = p
            .satisfied_atoms()
            .into_iter()
            .map(|i| self.vocabulary.atoms()[i].render(self.vocabulary.signals()))
            .collect();
        if parts.is_empty() {
            "⊤".to_owned()
        } else {
            parts.join(" & ")
        }
    }
}

impl psm_persist::Persist for PropositionId {
    fn to_json(&self) -> psm_persist::JsonValue {
        psm_persist::JsonValue::from(self.0)
    }

    fn from_json(v: &psm_persist::JsonValue) -> Result<Self, psm_persist::PersistError> {
        let raw = v.as_u64()?;
        u32::try_from(raw)
            .map(PropositionId)
            .map_err(|_| psm_persist::PersistError::schema("proposition id out of range"))
    }
}

impl psm_persist::Persist for PropositionVocabulary {
    fn to_json(&self) -> psm_persist::JsonValue {
        use psm_persist::JsonValue;
        JsonValue::obj([
            ("signals", self.signals.to_json()),
            ("atoms", self.atoms.to_json()),
        ])
    }

    fn from_json(v: &psm_persist::JsonValue) -> Result<Self, psm_persist::PersistError> {
        Ok(PropositionVocabulary {
            signals: SignalSet::from_json(v.field("signals")?)?,
            atoms: Vec::from_json(v.field("atoms")?)?,
        })
    }
}

impl psm_persist::Persist for Proposition {
    fn to_json(&self) -> psm_persist::JsonValue {
        use psm_persist::JsonValue;
        JsonValue::obj([
            ("row", self.row.to_json()),
            ("atoms", JsonValue::from(self.atom_count)),
        ])
    }

    fn from_json(v: &psm_persist::JsonValue) -> Result<Self, psm_persist::PersistError> {
        let row: Vec<u64> = Vec::from_json(v.field("row")?)?;
        let atom_count = v.usize_field("atoms")?;
        if row.len() != atom_count.div_ceil(64).max(1) {
            return Err(psm_persist::PersistError::schema(
                "proposition row length does not match its atom count",
            ));
        }
        Ok(Proposition { row, atom_count })
    }
}

/// The serialised table stores only the vocabulary and the interned
/// propositions; the row→id lookup index is derived data and is rebuilt on
/// load.
impl psm_persist::Persist for PropositionTable {
    fn to_json(&self) -> psm_persist::JsonValue {
        use psm_persist::JsonValue;
        JsonValue::obj([
            ("vocabulary", self.vocabulary.to_json()),
            ("props", self.props.to_json()),
        ])
    }

    fn from_json(v: &psm_persist::JsonValue) -> Result<Self, psm_persist::PersistError> {
        let vocabulary = PropositionVocabulary::from_json(v.field("vocabulary")?)?;
        let props: Vec<Proposition> = Vec::from_json(v.field("props")?)?;
        for (i, p) in props.iter().enumerate() {
            if p.atom_count != vocabulary.len() {
                return Err(psm_persist::PersistError::schema(format!(
                    "proposition {i} predicates over {} atom(s), vocabulary has {}",
                    p.atom_count,
                    vocabulary.len()
                )));
            }
        }
        let index: HashMap<Vec<u64>, PropositionId> = props
            .iter()
            .enumerate()
            .map(|(i, p)| (p.row.clone(), PropositionId(i as u32)))
            .collect();
        if index.len() != props.len() {
            return Err(psm_persist::PersistError::schema(
                "duplicate proposition rows in table",
            ));
        }
        Ok(PropositionTable {
            vocabulary,
            props,
            index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Comparison;
    use psm_trace::Direction;

    fn table() -> PropositionTable {
        let mut s = SignalSet::new();
        let en = s.push("en", 1, Direction::Input).unwrap();
        let a = s.push("a", 4, Direction::Input).unwrap();
        let b = s.push("b", 4, Direction::Output).unwrap();
        let atoms = vec![
            AtomicProposition::VarEqConst {
                signal: en,
                value: Bits::from_bool(true),
            },
            AtomicProposition::VarCmpVar {
                left: a,
                cmp: Comparison::Gt,
                right: b,
            },
        ];
        let vocab = PropositionVocabulary::new(s, atoms);
        PropositionTable::new(vocab)
    }

    fn cycle(en: u64, a: u64, b: u64) -> Vec<Bits> {
        vec![
            Bits::from_u64(en, 1),
            Bits::from_u64(a, 4),
            Bits::from_u64(b, 4),
        ]
    }

    #[test]
    fn interning_dedupes_rows() {
        let mut t = table();
        let p1 = t.intern_cycle(&cycle(1, 5, 3));
        let p2 = t.intern_cycle(&cycle(1, 9, 2)); // same truth row: en & a>b
        let p3 = t.intern_cycle(&cycle(0, 5, 3));
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn classify_does_not_intern() {
        let mut t = table();
        t.intern_cycle(&cycle(1, 5, 3));
        assert!(t.classify(&cycle(1, 9, 9)).is_none()); // en & !(a>b): unseen
        assert_eq!(t.len(), 1);
        assert_eq!(t.classify(&cycle(1, 7, 0)), Some(PropositionId(0)));
    }

    #[test]
    fn render_shows_satisfied_atoms_only() {
        let mut t = table();
        let p = t.intern_cycle(&cycle(1, 5, 3));
        assert_eq!(t.render(p), "en=true & a>b");
        let q = t.intern_cycle(&cycle(0, 0, 3));
        assert_eq!(t.render(q), "⊤");
    }

    #[test]
    fn proposition_truths() {
        let mut t = table();
        let p = t.intern_cycle(&cycle(0, 9, 3)); // !en, a>b
        let prop = t.get(p);
        assert!(!prop.atom_truth(0));
        assert!(prop.atom_truth(1));
        assert_eq!(prop.satisfied_atoms(), vec![1]);
    }

    #[test]
    fn ids_iterate_in_order() {
        let mut t = table();
        t.intern_cycle(&cycle(1, 5, 3));
        t.intern_cycle(&cycle(0, 5, 3));
        let ids: Vec<_> = t.ids().collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0].index(), 0);
        assert_eq!(ids[1].to_string(), "p1");
    }

    #[test]
    fn table_round_trips_through_json() {
        use psm_persist::{JsonValue, Persist};
        let mut t = table();
        let p1 = t.intern_cycle(&cycle(1, 5, 3));
        t.intern_cycle(&cycle(0, 5, 3));
        let text = t.to_json().render();
        let back = PropositionTable::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back.len(), t.len());
        // The rebuilt index classifies exactly like the original.
        assert_eq!(back.classify(&cycle(1, 9, 2)), Some(p1));
        assert_eq!(back.classify(&cycle(1, 9, 9)), None);
        assert_eq!(back.render(p1), t.render(p1));
        // Serialisation is deterministic.
        assert_eq!(text, back.to_json().render());
    }

    #[test]
    fn table_rejects_inconsistent_documents() {
        use psm_persist::{JsonValue, Persist};
        let mut t = table();
        t.intern_cycle(&cycle(1, 5, 3));
        let good = t.to_json().render();
        // Corrupt the atom count of the proposition.
        let bad = good.replace("\"atoms\":2", "\"atoms\":1");
        assert!(PropositionTable::from_json(&JsonValue::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn wide_vocabulary_rows() {
        // More than 64 atoms exercises multi-word rows.
        let mut s = SignalSet::new();
        let sig = s.push("x", 8, Direction::Input).unwrap();
        let atoms: Vec<AtomicProposition> = (0..70)
            .map(|i| AtomicProposition::VarEqConst {
                signal: sig,
                value: Bits::from_u64(i, 8),
            })
            .collect();
        let vocab = PropositionVocabulary::new(s, atoms);
        assert_eq!(vocab.len(), 70);
        let row = vocab.evaluate_row(&[Bits::from_u64(69, 8)]);
        assert_eq!(row.len(), 2);
        assert_eq!(row[1], 1 << 5); // atom 69 in word 1, bit 5
    }
}
