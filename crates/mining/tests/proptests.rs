//! Property-based tests of the mining invariants.

use proptest::prelude::*;
use psm_mining::{Miner, MiningConfig};
use psm_trace::{Bits, Direction, FunctionalTrace, SignalSet};

/// A random functional trace over a small control-style interface.
fn arb_trace() -> impl Strategy<Value = FunctionalTrace> {
    proptest::collection::vec((any::<bool>(), any::<bool>(), 0u64..16, 0u64..16), 4..120)
        .prop_map(|rows| {
            let mut signals = SignalSet::new();
            signals.push("c0", 1, Direction::Input).expect("unique");
            signals.push("c1", 1, Direction::Input).expect("unique");
            signals.push("d0", 4, Direction::Input).expect("unique");
            signals.push("d1", 4, Direction::Output).expect("unique");
            let mut t = FunctionalTrace::new(signals);
            for (c0, c1, d0, d1) in rows {
                t.push_cycle(vec![
                    Bits::from_bool(c0),
                    Bits::from_bool(c1),
                    Bits::from_u64(d0, 4),
                    Bits::from_u64(d1, 4),
                ])
                .expect("well-formed");
            }
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exactly_one_proposition_holds_per_instant(trace in arb_trace()) {
        // The paper's defining invariant of Prop: at every training instant
        // exactly one proposition holds — i.e. classification of every
        // training cycle returns the interned id.
        let miner = Miner::new(MiningConfig::default());
        if let Ok(mined) = miner.mine(&[&trace]) {
            for t in 0..trace.len() {
                prop_assert_eq!(
                    mined.table.classify(trace.cycle(t)),
                    Some(mined.traces[0].id(t)),
                    "instant {}", t
                );
            }
        }
    }

    #[test]
    fn mining_is_deterministic(trace in arb_trace()) {
        let miner = Miner::new(MiningConfig::default());
        let a = miner.mine(&[&trace]);
        let b = miner.mine(&[&trace]);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.traces, y.traces);
                prop_assert_eq!(x.table.len(), y.table.len());
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "nondeterministic outcome"),
        }
    }

    #[test]
    fn atoms_respect_support_threshold(trace in arb_trace(), support in 0.01f64..0.6) {
        let config = MiningConfig::default().with_min_support(support);
        let miner = Miner::new(config);
        if let Ok(vocab) = miner.mine_vocabulary(&[&trace]) {
            let n = trace.len() as f64;
            for atom in vocab.atoms() {
                let holds = (0..trace.len())
                    .filter(|&t| atom.eval(trace.cycle(t)))
                    .count() as f64;
                prop_assert!(
                    holds >= (support * n).ceil().max(1.0) - 0.5,
                    "atom below support: {}/{} < {}",
                    holds, n, support
                );
                // With invariant dropping on (the default), no atom holds
                // everywhere.
                prop_assert!(holds < n, "invariant atom survived");
            }
        }
    }

    #[test]
    fn runs_partition_the_trace(trace in arb_trace()) {
        let miner = Miner::new(MiningConfig::default());
        if let Ok(mined) = miner.mine(&[&trace]) {
            let runs = mined.traces[0].runs();
            let mut expected_start = 0;
            for (id, start, stop) in runs {
                prop_assert_eq!(start, expected_start);
                prop_assert!(stop >= start);
                for t in start..=stop {
                    prop_assert_eq!(mined.traces[0].id(t), id);
                }
                expected_start = stop + 1;
            }
            prop_assert_eq!(expected_start, trace.len());
        }
    }
}
