//! Randomised property tests of the mining invariants, driven by the
//! workspace PRNG so runs are deterministic and offline.

use psm_mining::{Miner, MiningConfig};
use psm_prng::Prng;
use psm_trace::{Bits, Direction, FunctionalTrace, SignalSet};

const CASES: usize = 64;

/// A random functional trace over a small control-style interface.
fn random_trace(rng: &mut Prng) -> FunctionalTrace {
    let mut signals = SignalSet::new();
    signals.push("c0", 1, Direction::Input).expect("unique");
    signals.push("c1", 1, Direction::Input).expect("unique");
    signals.push("d0", 4, Direction::Input).expect("unique");
    signals.push("d1", 4, Direction::Output).expect("unique");
    let mut t = FunctionalTrace::new(signals);
    let n = 4 + rng.range_usize(0..116);
    for _ in 0..n {
        t.push_cycle(vec![
            Bits::from_bool(rng.chance(0.5)),
            Bits::from_bool(rng.chance(0.5)),
            Bits::from_u64(rng.range_u64(0..16), 4),
            Bits::from_u64(rng.range_u64(0..16), 4),
        ])
        .expect("well-formed");
    }
    t
}

#[test]
fn exactly_one_proposition_holds_per_instant() {
    let mut rng = Prng::seed_from_u64(0x417E_0001);
    for _ in 0..CASES {
        let trace = random_trace(&mut rng);
        // The paper's defining invariant of Prop: at every training instant
        // exactly one proposition holds — i.e. classification of every
        // training cycle returns the interned id.
        let miner = Miner::new(MiningConfig::default());
        if let Ok(mined) = miner.mine(&[&trace]) {
            for t in 0..trace.len() {
                assert_eq!(
                    mined.table.classify(trace.cycle(t)),
                    Some(mined.traces[0].id(t)),
                    "instant {}",
                    t
                );
            }
        }
    }
}

#[test]
fn mining_is_deterministic() {
    let mut rng = Prng::seed_from_u64(0x417E_0002);
    for _ in 0..CASES {
        let trace = random_trace(&mut rng);
        let miner = Miner::new(MiningConfig::default());
        let a = miner.mine(&[&trace]);
        let b = miner.mine(&[&trace]);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.traces, y.traces);
                assert_eq!(x.table.len(), y.table.len());
            }
            (Err(x), Err(y)) => assert_eq!(x, y),
            _ => panic!("nondeterministic outcome"),
        }
    }
}

#[test]
fn atoms_respect_support_threshold() {
    let mut rng = Prng::seed_from_u64(0x417E_0003);
    for _ in 0..CASES {
        let trace = random_trace(&mut rng);
        let support = rng.f64_in(0.01, 0.6);
        let config = MiningConfig::default().with_min_support(support);
        let miner = Miner::new(config);
        if let Ok(vocab) = miner.mine_vocabulary(&[&trace]) {
            let n = trace.len() as f64;
            for atom in vocab.atoms() {
                let holds = (0..trace.len())
                    .filter(|&t| atom.eval(trace.cycle(t)))
                    .count() as f64;
                assert!(
                    holds >= (support * n).ceil().max(1.0) - 0.5,
                    "atom below support: {}/{} < {}",
                    holds,
                    n,
                    support
                );
                // With invariant dropping on (the default), no atom holds
                // everywhere.
                assert!(holds < n, "invariant atom survived");
            }
        }
    }
}

#[test]
fn runs_partition_the_trace() {
    let mut rng = Prng::seed_from_u64(0x417E_0004);
    for _ in 0..CASES {
        let trace = random_trace(&mut rng);
        let miner = Miner::new(MiningConfig::default());
        if let Ok(mined) = miner.mine(&[&trace]) {
            let runs = mined.traces[0].runs();
            let mut expected_start = 0;
            for (id, start, stop) in runs {
                assert_eq!(start, expected_start);
                assert!(stop >= start);
                for t in start..=stop {
                    assert_eq!(mined.traces[0].id(t), id);
                }
                expected_start = stop + 1;
            }
            assert_eq!(expected_start, trace.len());
        }
    }
}
