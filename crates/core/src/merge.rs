//! Mergeability of power states (paper §IV-A) and the `join` procedure.

use crate::psm::Psm;
use crate::PowerAttributes;
use psm_stats::{one_sample_t_test, welch_t_test};

/// Decides whether two power states are statistically indistinguishable —
/// the paper's three-case analysis:
///
/// * **Case 1** (both `n = 1`, two `next` states): merge when
///   `|μᵢ − μⱼ| < ε`;
/// * **Case 2** (both `n > 1`, two `until` states): merge when **Welch's
///   t-test** fails to reject equal means at level α;
/// * **Case 3** (`n > 1` vs `n = 1`): merge when a one-sample t-test finds
///   the singleton consistent with the larger sample.
///
/// `mean_tolerance_override` is a practical extension: with very long
/// training traces the t-tests detect arbitrarily small mean differences,
/// so means within ε are additionally accepted regardless of the test.
/// Disable it to evaluate the paper's pure-test behaviour (see the
/// `ablation_epsilon` bench).
///
/// # Examples
///
/// ```
/// use psm_core::{MergePolicy, PowerAttributes};
/// use psm_trace::PowerTrace;
///
/// let delta: PowerTrace = [3.0, 3.02, 2.98, 3.01, 5.0, 5.01, 4.99, 5.02]
///     .into_iter()
///     .collect();
/// let low = PowerAttributes::from_window(&delta, 0, 3);
/// let high = PowerAttributes::from_window(&delta, 4, 7);
/// let policy = MergePolicy::default();
/// assert!(policy.mergeable(&low, &low));
/// assert!(!policy.mergeable(&low, &high));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergePolicy {
    epsilon: f64,
    alpha: f64,
    mean_tolerance_override: bool,
}

impl MergePolicy {
    /// Creates a policy with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon >= 0` and `0 < alpha < 1`.
    pub fn new(epsilon: f64, alpha: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon cannot be negative");
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
        MergePolicy {
            epsilon,
            alpha,
            mean_tolerance_override: true,
        }
    }

    /// The designer's ε tolerance for case 1, in mW.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Significance level of the t-tests.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Whether means within ε merge regardless of the t-test outcome.
    pub fn mean_tolerance_override(&self) -> bool {
        self.mean_tolerance_override
    }

    /// Returns a copy with the ε-override enabled or disabled.
    pub fn with_mean_tolerance_override(mut self, enabled: bool) -> Self {
        self.mean_tolerance_override = enabled;
        self
    }

    /// Applies the appropriate §IV-A case to two attribute triplets.
    pub fn mergeable(&self, a: &PowerAttributes, b: &PowerAttributes) -> bool {
        if a.n() == 0 || b.n() == 0 {
            return false;
        }
        let delta = (a.mu() - b.mu()).abs();
        let mean_close = delta < self.epsilon;
        match (a.n() == 1, b.n() == 1) {
            // Case 1: two next-pattern states.
            (true, true) => mean_close,
            // Case 3: until vs next.
            (false, true) => self.case3(a, b, mean_close, delta),
            (true, false) => self.case3(b, a, mean_close, delta),
            // Case 2: two until-pattern states.
            (false, false) => {
                if self.mean_tolerance_override && mean_close {
                    return true;
                }
                // Fast conservative reject: a t statistic beyond ~6 gives
                // p < 1e-8 ≪ any practical α, so the full test (log-gamma,
                // continued fractions) is skipped. `join` over long traces
                // probes millions of pairs; almost all die here.
                let spread = Self::standard_error(a) + Self::standard_error(b);
                if delta > 6.0 * spread && spread.is_finite() {
                    return false;
                }
                match welch_t_test(a.stats(), b.stats()) {
                    Ok(t) => t.is_same_population(self.alpha),
                    Err(_) => false,
                }
            }
        }
    }

    fn standard_error(x: &PowerAttributes) -> f64 {
        x.stats().standard_error().unwrap_or(f64::INFINITY)
    }

    fn case3(
        &self,
        sample: &PowerAttributes,
        single: &PowerAttributes,
        mean_close: bool,
        delta: f64,
    ) -> bool {
        if self.mean_tolerance_override && mean_close {
            return true;
        }
        // Fast reject mirroring the one-sample prediction interval.
        if let Ok(s) = sample.stats().sample_std_dev() {
            if s > 0.0 && delta > 6.0 * s * (1.0 + 1.0 / sample.n() as f64).sqrt() {
                return false;
            }
        }
        match one_sample_t_test(sample.stats(), single.mu()) {
            Ok(t) => t.is_same_population(self.alpha),
            Err(_) => false,
        }
    }
}

impl Default for MergePolicy {
    /// ε = 0.05 mW, α = 0.01, ε-override enabled.
    fn default() -> Self {
        MergePolicy::new(0.05, 0.01)
    }
}

/// Combines a set of per-trace PSMs into one reduced model — the paper's
/// `join`: mergeable states (not necessarily adjacent, possibly from
/// different PSMs) collapse into concurrent states `{pᵢ ‖ pⱼ ‖ …}`,
/// with transitions and initial marks redirected.
///
/// The result may be non-deterministic
/// ([`Psm::is_deterministic`]); such models are simulated through the
/// HMM of `psm-hmm`.
///
/// Merging is greedy and deterministic: the lowest-indexed mergeable pair
/// merges first, repeating until no pair qualifies.
pub fn join(psms: &[Psm], policy: &MergePolicy) -> Psm {
    let mut combined = Psm::new();
    for p in psms {
        combined.absorb_psm(p);
    }
    // Greedy lowest-pair-first merging to a fixpoint. Restarting the whole
    // scan after every merge would be O(S³) on long chains; instead each
    // sweep advances `i` monotonically while folding every partner into it,
    // and sweeps repeat until a full pass performs no merge (a kept state's
    // attributes can change after its row was visited, re-enabling an
    // earlier pair — usually the second pass is a no-op).
    loop {
        let mut merged_any = false;
        let mut i = 0usize;
        while i < combined.state_count() {
            let a = crate::psm::StateId::from_index(i);
            let mut j = i + 1;
            while j < combined.state_count() {
                let b = crate::psm::StateId::from_index(j);
                if policy.mergeable(combined.state(a).attrs(), combined.state(b).attrs()) {
                    combined.merge_states(a, b, false);
                    merged_any = true;
                    // `a`'s attributes changed: partners before `j` may now
                    // match, so rescan from the start of the row.
                    j = i + 1;
                } else {
                    j += 1;
                }
            }
            i += 1;
        }
        if !merged_any {
            return combined;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_psm;
    use psm_mining::PropositionTrace;
    use psm_trace::PowerTrace;

    fn attrs(values: &[f64]) -> PowerAttributes {
        let delta: PowerTrace = values.iter().copied().collect();
        PowerAttributes::from_window(&delta, 0, values.len() - 1)
    }

    #[test]
    fn case1_epsilon() {
        let p = MergePolicy::new(0.1, 0.05);
        assert!(p.mergeable(&attrs(&[3.00]), &attrs(&[3.05])));
        assert!(!p.mergeable(&attrs(&[3.00]), &attrs(&[3.20])));
    }

    #[test]
    fn case2_welch() {
        let p = MergePolicy::new(1e-9, 0.05); // ε ~ 0 so only the test decides
        let a = attrs(&[3.0, 3.1, 2.9, 3.05, 2.95]);
        let b = attrs(&[3.02, 2.97, 3.08, 2.93, 3.0]);
        assert!(p.mergeable(&a, &b));
        let far = attrs(&[9.0, 9.1, 8.9, 9.05, 8.95]);
        assert!(!p.mergeable(&a, &far));
    }

    #[test]
    fn case3_one_sample() {
        let p = MergePolicy::new(1e-9, 0.05);
        let until = attrs(&[3.0, 3.1, 2.9, 3.05, 2.95, 3.02]);
        let next_in = attrs(&[3.01]);
        let next_out = attrs(&[8.0]);
        assert!(p.mergeable(&until, &next_in));
        assert!(p.mergeable(&next_in, &until), "case 3 is symmetric");
        assert!(!p.mergeable(&until, &next_out));
    }

    #[test]
    fn epsilon_override_bridges_strict_tests() {
        // Two long, tight samples 0.02 mW apart: Welch rejects, ε accepts.
        let a: Vec<f64> = (0..200).map(|i| 3.00 + 0.001 * (i % 3) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| 3.02 + 0.001 * (i % 3) as f64).collect();
        let with = MergePolicy::new(0.05, 0.01);
        let without = with.with_mean_tolerance_override(false);
        assert!(with.mergeable(&attrs(&a), &attrs(&b)));
        assert!(!without.mergeable(&attrs(&a), &attrs(&b)));
    }

    fn psm_from(levels: &[(u32, f64, usize)], trace_index: usize) -> Psm {
        // Builds Γ/Δ with runs of `len` instants at `power` for prop `id`.
        let mut props = Vec::new();
        let mut power = Vec::new();
        for &(id, mw, len) in levels {
            for k in 0..len {
                props.push(id);
                // deterministic jitter so variances are non-zero
                power.push(mw + 0.001 * (k % 3) as f64);
            }
        }
        let gamma = PropositionTrace::from_indices(&props);
        let delta: PowerTrace = power.into_iter().collect();
        generate_psm(&gamma, &delta, trace_index).unwrap()
    }

    #[test]
    fn join_merges_equivalent_states_across_psms() {
        // Two traces of the same IP: idle(3) → busy(9) → idle(3) → low(1);
        // a short distinct tail so the low state is recognised by XU.
        let a = psm_from(
            &[
                (0, 3.0, 10),
                (1, 9.0, 10),
                (0, 3.0, 10),
                (2, 1.0, 5),
                (3, 5.0, 2),
            ],
            0,
        );
        let b = psm_from(
            &[
                (0, 3.0, 8),
                (1, 9.0, 12),
                (0, 3.0, 9),
                (2, 1.0, 5),
                (3, 5.0, 2),
            ],
            1,
        );
        assert_eq!(a.state_count(), 4);
        let joined = join(&[a, b], &MergePolicy::default());
        // 6 chain states collapse into 3 power levels.
        assert_eq!(joined.state_count(), 3);
        // Both traces start in the same (merged) initial state.
        assert_eq!(joined.initials().len(), 1);
        assert_eq!(joined.initials()[0].1, 2);
        // The merged idle state carries windows from both traces.
        let idle = joined
            .states()
            .find(|(_, s)| (s.attrs().mu() - 3.0).abs() < 0.1)
            .expect("an idle state must survive")
            .1;
        let mut traces: Vec<usize> = idle.windows().iter().map(|w| w.trace).collect();
        traces.sort_unstable();
        traces.dedup();
        assert_eq!(traces, vec![0, 1]);
    }

    #[test]
    fn join_preserves_distinct_levels() {
        let a = psm_from(&[(0, 1.0, 10), (1, 5.0, 10), (2, 9.0, 10), (3, 13.0, 4)], 0);
        let joined = join(&[a], &MergePolicy::default());
        assert_eq!(joined.state_count(), 3); // trailing run dropped by XU
    }

    #[test]
    fn join_creates_self_loops_for_repeating_behaviour() {
        // idle → busy → idle merges the two idle states; the transition
        // busy→idle2 becomes busy→idle, and idle→busy stays: a loop.
        let a = psm_from(&[(0, 3.0, 10), (1, 9.0, 10), (0, 3.0, 10), (2, 1.0, 4)], 0);
        let joined = join(&[a], &MergePolicy::default());
        assert_eq!(joined.state_count(), 2);
        let idle = joined
            .states()
            .find(|(_, s)| (s.attrs().mu() - 3.0).abs() < 0.1)
            .unwrap()
            .0;
        let busy = joined
            .states()
            .find(|(_, s)| (s.attrs().mu() - 9.0).abs() < 0.1)
            .unwrap()
            .0;
        assert!(joined
            .transitions()
            .iter()
            .any(|t| t.from == idle && t.to == busy));
        assert!(joined
            .transitions()
            .iter()
            .any(|t| t.from == busy && t.to == idle));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn policy_rejects_bad_alpha() {
        let _ = MergePolicy::new(0.1, 0.0);
    }
}
