//! Deterministic PSM simulation (paper §III-C).
//!
//! A PSM is simulated *concurrently* with its IP: at every instant the
//! current PI/PO values classify into one mined proposition (the
//! observation), the PSM checks the temporal assertion of its current
//! state, and its output function yields the power estimate. When an
//! unexpected observation arrives, the PSM has hit behaviour not covered by
//! its training trace: it loses synchronisation, keeps emitting its last
//! state's power (unreliable) and re-synchronises on the first observation
//! matching some state entry.
//!
//! This module handles the *deterministic* case; joined, non-deterministic
//! models go through the HMM of `psm-hmm` (paper §V).

use crate::psm::{Psm, StateId};
use crate::CoreError;
use psm_mining::{PropositionId, PropositionTable, RowScratch, TemporalPattern};
use psm_trace::{FunctionalTrace, PowerTrace};

/// Classifies every instant of a functional trace into its mined
/// proposition; `None` marks behaviour unseen during training.
///
/// This is the observation stream both the deterministic simulator and the
/// HMM consume. One [`RowScratch`] spans the whole trace, so the per-cycle
/// classification is allocation-free.
pub fn classify_trace(
    table: &PropositionTable,
    trace: &FunctionalTrace,
) -> Vec<Option<PropositionId>> {
    let mut scratch = RowScratch::new();
    (0..trace.len())
        .map(|t| table.classify_with(trace.cycle(t), &mut scratch))
        .collect()
}

/// Result of replaying a PSM against an observation stream.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimationOutcome {
    /// Per-instant power estimate (mW).
    pub estimate: PowerTrace,
    /// Instants spent out of synchronisation (estimates unreliable there).
    pub sync_loss_instants: usize,
}

impl EstimationOutcome {
    /// Fraction of instants spent out of synchronisation.
    pub fn sync_loss_rate(&self) -> f64 {
        if self.estimate.is_empty() {
            0.0
        } else {
            self.sync_loss_instants as f64 / self.estimate.len() as f64
        }
    }
}

/// Where the walk currently sits inside a state's assertion chain.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cursor {
    state: StateId,
    chain: usize,
    part: usize,
    /// For a `next` part: its single left-instant was already consumed.
    next_consumed: bool,
}

/// Deterministic simulator for a single (or simplified) PSM.
///
/// # Examples
///
/// ```
/// use psm_core::{generate_psm, PsmSimulator};
/// use psm_mining::PropositionTrace;
/// use psm_trace::PowerTrace;
///
/// let gamma = PropositionTrace::from_indices(&[0, 0, 0, 1, 1, 1, 2, 3]);
/// let delta: PowerTrace = [3.0, 3.0, 3.0, 2.0, 2.0, 2.0, 3.4, 3.4]
///     .into_iter()
///     .collect();
/// let psm = generate_psm(&gamma, &delta, 0)?;
/// let sim = PsmSimulator::new(&psm)?;
/// // Replay the training observations: exact powers; only the trailing
/// // instant (beyond the last mined state) counts as unsynchronised.
/// let obs: Vec<_> = gamma.iter().map(Some).collect();
/// let hamming = vec![0u32; obs.len()];
/// let outcome = sim.run(&obs, &hamming);
/// assert_eq!(outcome.sync_loss_instants, 1);
/// assert_eq!(outcome.estimate[0], 3.0);
/// assert_eq!(outcome.estimate[3], 2.0);
/// # Ok::<(), psm_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct PsmSimulator<'a> {
    psm: &'a Psm,
}

impl<'a> PsmSimulator<'a> {
    /// Wraps a deterministic PSM for simulation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NonDeterministic`] when the model has duplicate
    /// transition guards, duplicate chain entries or multiple initial
    /// states — use the HMM simulator for those.
    pub fn new(psm: &'a Psm) -> Result<Self, CoreError> {
        if !psm.is_deterministic() {
            let state = psm
                .states()
                .find(|(id, s)| {
                    let mut guards: Vec<_> = psm.successors(*id).map(|t| t.guard).collect();
                    guards.sort();
                    let dup_guard = guards.windows(2).any(|w| w[0] == w[1]);
                    let mut entries: Vec<_> =
                        s.chains().iter().map(|c| c.entry_proposition()).collect();
                    entries.sort();
                    dup_guard || entries.windows(2).any(|w| w[0] == w[1])
                })
                .map(|(id, _)| id.index())
                .unwrap_or(0);
            return Err(CoreError::NonDeterministic { state });
        }
        Ok(PsmSimulator { psm })
    }

    /// Replays the PSM against an observation stream.
    ///
    /// `observations[t]` is the mined proposition holding at instant `t`
    /// (`None` = behaviour unseen in training); `input_hamming[t]` feeds
    /// regression-calibrated output functions.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or the PSM has no states.
    pub fn run(
        &self,
        observations: &[Option<PropositionId>],
        input_hamming: &[u32],
    ) -> EstimationOutcome {
        assert_eq!(
            observations.len(),
            input_hamming.len(),
            "observations and hamming series must align"
        );
        assert!(self.psm.state_count() > 0, "cannot simulate an empty PSM");

        let initial = self
            .psm
            .initials()
            .first()
            .map(|(s, _)| *s)
            .unwrap_or(StateId(0));
        let mut cursor = Cursor {
            state: initial,
            chain: 0,
            part: 0,
            next_consumed: false,
        };
        let mut lost = true; // must see the initial entry proposition first
        let mut estimate = PowerTrace::with_capacity(observations.len());
        let mut sync_loss_instants = 0usize;

        for (t, obs) in observations.iter().enumerate() {
            if lost {
                if let Some(o) = obs {
                    if let Some(next) = self.resync_target(*o) {
                        cursor = next;
                        lost = false;
                    }
                }
            } else {
                match obs {
                    Some(o) => {
                        if let Some(next) = self.advance(cursor, *o) {
                            cursor = next;
                        } else {
                            lost = true;
                        }
                    }
                    None => lost = true,
                }
            }
            if lost {
                sync_loss_instants += 1;
            }
            let state = self.psm.state(cursor.state);
            estimate.push(state.output().evaluate(input_hamming[t] as f64));
        }

        EstimationOutcome {
            estimate,
            sync_loss_instants,
        }
    }

    /// Finds the unique state (and chain) whose entry proposition matches
    /// `o`; preference goes to the initial state, then lowest id.
    fn resync_target(&self, o: PropositionId) -> Option<Cursor> {
        let mut candidates = self.psm.states().filter_map(|(id, s)| {
            s.chains()
                .iter()
                .position(|c| c.entry_proposition() == o)
                .map(|chain| (id, chain))
        });
        let (state, chain) = candidates.next()?;
        Some(self.enter(state, chain, o))
    }

    /// Enters `state` on `chain`, consuming `o` as the first part's left
    /// proposition.
    fn enter(&self, state: StateId, chain: usize, o: PropositionId) -> Cursor {
        let part = &self.psm.state(state).chains()[chain].parts()[0];
        debug_assert_eq!(part.left(), o);
        Cursor {
            state,
            chain,
            part: 0,
            next_consumed: part.pattern() == TemporalPattern::Next,
        }
    }

    /// One deterministic step from `cursor` on observation `o`; `None`
    /// signals a synchronisation loss.
    fn advance(&self, cursor: Cursor, o: PropositionId) -> Option<Cursor> {
        let state = self.psm.state(cursor.state);
        let chain = &state.chains()[cursor.chain];
        let part = chain.parts()[cursor.part];

        if o == part.left() && !cursor.next_consumed && part.pattern() == TemporalPattern::Until {
            // The until run continues.
            return Some(cursor);
        }
        if o == part.right() {
            // Part exits: cascade into the next part or leave the state.
            if cursor.part + 1 < chain.len() {
                let next_part = chain.parts()[cursor.part + 1];
                debug_assert_eq!(next_part.left(), o, "sequence chains cascade");
                return Some(Cursor {
                    state: cursor.state,
                    chain: cursor.chain,
                    part: cursor.part + 1,
                    next_consumed: next_part.pattern() == TemporalPattern::Next,
                });
            }
            // Leave through the transition guarded by the exit proposition.
            let t = self.psm.successors(cursor.state).find(|t| t.guard == o)?;
            let target = self.psm.state(t.to);
            let chain_idx = target
                .chains()
                .iter()
                .position(|c| c.entry_proposition() == o)?;
            return Some(self.enter(t.to, chain_idx, o));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_psm;
    use crate::merge::{join, MergePolicy};
    use psm_mining::PropositionTrace;

    fn fig3_psm() -> Psm {
        let gamma = PropositionTrace::from_indices(&[0, 0, 0, 1, 1, 1, 2, 3]);
        let delta: PowerTrace = [3.0, 3.0, 3.0, 2.0, 2.0, 2.0, 3.4, 3.4]
            .into_iter()
            .collect();
        generate_psm(&gamma, &delta, 0).unwrap()
    }

    fn obs(ids: &[u32]) -> Vec<Option<PropositionId>> {
        ids.iter()
            .map(|&i| Some(PropositionId::from_index(i)))
            .collect()
    }

    #[test]
    fn replaying_training_trace_is_exact() {
        let psm = fig3_psm();
        let sim = PsmSimulator::new(&psm).unwrap();
        let o = obs(&[0, 0, 0, 1, 1, 1, 2, 3]);
        let outcome = sim.run(&o, &vec![0; o.len()]);
        // Instant 7 (the trailing p3) exits the terminal state: the PSM has
        // no successor there, so it counts as one lost instant, estimated
        // with the last state's power — exactly the paper's "stay in the
        // last valid state" rule.
        assert_eq!(outcome.sync_loss_instants, 1);
        let exp = [3.0, 3.0, 3.0, 2.0, 2.0, 2.0, 3.4, 3.4];
        for (t, &e) in exp.iter().enumerate() {
            assert!(
                (outcome.estimate[t] - e).abs() < 1e-12,
                "t={t}: {} vs {e}",
                outcome.estimate[t]
            );
        }
    }

    #[test]
    fn variable_until_lengths_still_sync() {
        // The same behaviours with different run lengths than training.
        let psm = fig3_psm();
        let sim = PsmSimulator::new(&psm).unwrap();
        let o = obs(&[0, 0, 0, 0, 0, 1, 1, 2, 3]);
        let outcome = sim.run(&o, &vec![0; o.len()]);
        // Only the trailing exit instant is beyond the model.
        assert_eq!(outcome.sync_loss_instants, 1);
        assert_eq!(outcome.estimate[4], 3.0);
        assert_eq!(outcome.estimate[6], 2.0);
        assert_eq!(outcome.estimate[7], 3.4);
    }

    #[test]
    fn unexpected_proposition_loses_sync_and_recovers() {
        let psm = fig3_psm();
        let sim = PsmSimulator::new(&psm).unwrap();
        // p9 is never an entry proposition: the PSM stays lost during it.
        let o = obs(&[0, 0, 9, 9, 0, 0, 1, 1]);
        let outcome = sim.run(&o, &vec![0; o.len()]);
        assert_eq!(outcome.sync_loss_instants, 2);
        // After resync the estimates are reliable again.
        assert_eq!(outcome.estimate[5], 3.0);
        assert_eq!(outcome.estimate[6], 2.0);
    }

    #[test]
    fn unknown_behaviour_none_loses_sync() {
        let psm = fig3_psm();
        let sim = PsmSimulator::new(&psm).unwrap();
        let mut o = obs(&[0, 0, 0, 1, 1, 1, 2, 3]);
        o[4] = None;
        let outcome = sim.run(&o, &vec![0; o.len()]);
        assert!(outcome.sync_loss_instants >= 1);
    }

    #[test]
    fn joined_loop_simulates_repeating_workload() {
        // Training: (idle busy) × 2 then a trailing idle run the XU
        // automaton drops. Both idle states carry the *identical* chain
        // p0 U p1 and both busy states p1 U p0, so the joined loop stays
        // deterministic (identical duplicates add multiplicity only).
        let mut props = Vec::new();
        let mut power = Vec::new();
        let phases = [
            (0u32, 3.0, 6),
            (1, 9.0, 6),
            (0, 3.0, 6),
            (1, 9.0, 6),
            (0, 3.0, 6),
        ];
        for &(id, mw, len) in &phases {
            for k in 0..len {
                props.push(id);
                power.push(mw + 0.002 * (k % 3) as f64);
            }
        }
        let gamma = PropositionTrace::from_indices(&props);
        let delta: PowerTrace = power.into_iter().collect();
        let psm = generate_psm(&gamma, &delta, 0).unwrap();
        let joined = join(&[psm], &MergePolicy::default());
        assert_eq!(joined.state_count(), 2);
        assert!(joined.is_deterministic());
        let sim = PsmSimulator::new(&joined).unwrap();
        // A longer alternating workload than training: the loop tracks it.
        let o = obs(&[0, 0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1, 0, 0]);
        let outcome = sim.run(&o, &vec![0; o.len()]);
        assert_eq!(outcome.sync_loss_instants, 0);
        assert!((outcome.estimate[0] - 3.0).abs() < 0.1);
        assert!((outcome.estimate[2] - 9.0).abs() < 0.1);
        assert!((outcome.estimate[13] - 3.0).abs() < 0.1);
    }

    #[test]
    fn nondeterministic_model_rejected() {
        let psm = fig3_psm();
        let mut ndet = psm.clone();
        ndet.add_transition(StateId(0), StateId(2), PropositionId::from_index(1));
        assert!(matches!(
            PsmSimulator::new(&ndet),
            Err(CoreError::NonDeterministic { .. })
        ));
    }

    #[test]
    fn classify_trace_maps_unknowns() {
        use psm_mining::{Miner, MiningConfig};
        use psm_trace::{Bits, Direction, SignalSet};
        let mut signals = SignalSet::new();
        signals.push("x", 1, Direction::Input).unwrap();
        signals.push("y", 1, Direction::Input).unwrap();
        let mut phi = FunctionalTrace::new(signals.clone());
        for (x, y) in [(0u64, 1u64), (0, 1), (1, 0), (1, 0)] {
            phi.push_cycle(vec![Bits::from_u64(x, 1), Bits::from_u64(y, 1)])
                .unwrap();
        }
        let mined = Miner::new(MiningConfig::default()).mine(&[&phi]).unwrap();
        let obs = classify_trace(&mined.table, &phi);
        assert!(obs.iter().all(Option::is_some));
        // A cycle with x=y=1 was never seen.
        let mut unseen = FunctionalTrace::new(signals);
        unseen
            .push_cycle(vec![Bits::from_u64(1, 1), Bits::from_u64(1, 1)])
            .unwrap();
        let obs2 = classify_trace(&mined.table, &unseen);
        assert_eq!(obs2, vec![None]);
    }
}

#[cfg(test)]
mod outcome_tests {
    use super::*;

    #[test]
    fn sync_loss_rate_edge_cases() {
        let empty = EstimationOutcome {
            estimate: PowerTrace::new(),
            sync_loss_instants: 0,
        };
        assert_eq!(empty.sync_loss_rate(), 0.0);
        let half = EstimationOutcome {
            estimate: PowerTrace::from_samples(vec![1.0, 2.0]),
            sync_loss_instants: 1,
        };
        assert!((half.sync_loss_rate() - 0.5).abs() < 1e-12);
    }
}
