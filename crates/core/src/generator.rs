//! `PSMGenerator` (paper Fig. 4): proposition + power trace → chain PSM.

use crate::attrs::PowerAttributes;
use crate::psm::{ChainAssertion, PowerState, Psm, SourceWindow};
use crate::xu::mine_xu_assertions;
use crate::CoreError;
use psm_mining::PropositionTrace;
use psm_trace::PowerTrace;

/// Generates a power state machine from one proposition trace Γ and its
/// reference power trace Δ — the paper's `PSMGenerator(Γ, Δ, PSM)`.
///
/// For every temporal assertion recognised by the XU automaton:
///
/// 1. `getPowerAttributes` collects ⟨μ, σ, n⟩ over the assertion's interval
///    of Δ;
/// 2. `createPowerState`/`addState` appends a state whose output function
///    is the constant μ;
/// 3. `createTransition`/`addTransition` links the previous state to the
///    new one, guarded by the previous assertion's exit proposition.
///
/// The result is a chain of states; the first state is marked initial.
/// `trace_index` records which training trace the windows refer to (needed
/// later by the calibration step).
///
/// # Errors
///
/// * [`CoreError::TraceLengthMismatch`] when Γ and Δ differ in length;
/// * [`CoreError::NoBehaviours`] when the trace exposes no temporal
///   pattern (fewer than two distinct-proposition instants).
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn generate_psm(
    gamma: &PropositionTrace,
    delta: &PowerTrace,
    trace_index: usize,
) -> Result<Psm, CoreError> {
    if gamma.len() != delta.len() {
        return Err(CoreError::TraceLengthMismatch {
            propositions: gamma.len(),
            power: delta.len(),
        });
    }
    let mined = mine_xu_assertions(gamma);
    if mined.is_empty() {
        return Err(CoreError::NoBehaviours);
    }

    let mut psm = Psm::new();
    let mut prev = None;
    for m in mined {
        let attrs = PowerAttributes::from_window(delta, m.start, m.stop);
        let state = PowerState::new(
            ChainAssertion::single(m.assertion),
            SourceWindow {
                trace: trace_index,
                start: m.start,
                stop: m.stop,
            },
            attrs,
        );
        let id = psm.add_state(state);
        if let Some(prev_id) = prev {
            // The enabling function is the proposition observed when the
            // previous pattern completed — its exit proposition, which is
            // also the entry proposition of the new state.
            let guard = psm.state(prev_id).chains()[0].exit_proposition();
            psm.add_transition(prev_id, id, guard);
        }
        prev = Some(id);
    }
    psm.add_initial(crate::psm::StateId(0));
    Ok(psm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psm::{OutputFunction, StateId};
    use psm_mining::PropositionId;

    fn fig3_inputs() -> (PropositionTrace, PowerTrace) {
        let gamma = PropositionTrace::from_indices(&[0, 0, 0, 1, 1, 1, 2, 3]);
        let delta: PowerTrace = [3.349, 3.339, 3.353, 1.902, 1.906, 1.944, 3.350, 3.343]
            .into_iter()
            .collect();
        (gamma, delta)
    }

    #[test]
    fn fig5_psm_structure() {
        let (gamma, delta) = fig3_inputs();
        let psm = generate_psm(&gamma, &delta, 0).unwrap();
        assert_eq!(psm.state_count(), 3);
        assert_eq!(psm.transition_count(), 2);
        assert_eq!(psm.initials(), &[(StateId(0), 1)]);
        assert!(psm.is_deterministic());

        // Guards: s0 →(p_b)→ s1 →(p_c)→ s2, as in the paper's Fig. 5.
        let t: Vec<_> = psm.transitions().to_vec();
        assert_eq!(t[0].guard, PropositionId::from_index(1));
        assert_eq!(t[1].guard, PropositionId::from_index(2));
    }

    #[test]
    fn fig5_power_attributes() {
        let (gamma, delta) = fig3_inputs();
        let psm = generate_psm(&gamma, &delta, 0).unwrap();
        let s0 = psm.state(StateId(0));
        assert_eq!(s0.attrs().n(), 3);
        assert!((s0.attrs().mu() - (3.349 + 3.339 + 3.353) / 3.0).abs() < 1e-12);
        let s1 = psm.state(StateId(1));
        assert_eq!(s1.attrs().n(), 3);
        assert!((s1.attrs().mu() - (1.902 + 1.906 + 1.944) / 3.0).abs() < 1e-12);
        let s2 = psm.state(StateId(2));
        assert_eq!(s2.attrs().n(), 1);
        assert_eq!(s2.attrs().mu(), 3.350);
        assert!(s2.is_next_state());
    }

    #[test]
    fn output_defaults_to_constant_mu() {
        let (gamma, delta) = fig3_inputs();
        let psm = generate_psm(&gamma, &delta, 0).unwrap();
        for (_, s) in psm.states() {
            match s.output() {
                OutputFunction::Constant(mu) => assert_eq!(mu, s.attrs().mu()),
                other => panic!("expected constant output, got {other:?}"),
            }
        }
    }

    #[test]
    fn windows_record_trace_index() {
        let (gamma, delta) = fig3_inputs();
        let psm = generate_psm(&gamma, &delta, 7).unwrap();
        for (_, s) in psm.states() {
            assert!(s.windows().iter().all(|w| w.trace == 7));
        }
        assert_eq!(psm.state(StateId(1)).windows()[0].start, 3);
        assert_eq!(psm.state(StateId(1)).windows()[0].stop, 5);
    }

    #[test]
    fn length_mismatch_rejected() {
        let gamma = PropositionTrace::from_indices(&[0, 1]);
        let delta: PowerTrace = [1.0].into_iter().collect();
        assert!(matches!(
            generate_psm(&gamma, &delta, 0),
            Err(CoreError::TraceLengthMismatch {
                propositions: 2,
                power: 1
            })
        ));
    }

    #[test]
    fn featureless_trace_rejected() {
        let gamma = PropositionTrace::from_indices(&[5, 5, 5]);
        let delta: PowerTrace = [1.0, 1.0, 1.0].into_iter().collect();
        assert!(matches!(
            generate_psm(&gamma, &delta, 0),
            Err(CoreError::NoBehaviours)
        ));
    }

    #[test]
    fn chain_property_every_state_one_successor() {
        let (gamma, delta) = fig3_inputs();
        let psm = generate_psm(&gamma, &delta, 0).unwrap();
        for (id, _) in psm.states() {
            let succ = psm.successors(id).count();
            if id.index() + 1 == psm.state_count() {
                assert_eq!(succ, 0, "last state has no successor");
            } else {
                assert_eq!(succ, 1, "chain states have a unique successor");
            }
        }
    }
}
