//! The `simplify` procedure (paper §IV, Fig. 6a): shortening chain PSMs by
//! merging adjacent mergeable states into sequence-states.

use crate::merge::MergePolicy;
use crate::psm::Psm;

/// Iteratively merges adjacent mergeable states of a chain PSM.
///
/// Two *adjacent* states sᵢ → sᵢ₊₁ merge when their power attributes are
/// indistinguishable under `policy`; the merged state is characterised by
/// the assertion sequence `{pᵢ; pᵢ₊₁}` and by attributes recomputed over
/// the union of both training windows. The procedure repeats until no
/// adjacent pair qualifies, exactly like the paper's fixpoint iteration.
///
/// Only chain-shaped states qualify (a unique successor that has a unique
/// predecessor, both characterised by a single chain) — which is the shape
/// `PSMGenerator` produces. `simplify` is a no-op on already-joined graphs.
///
/// Returns the number of merges performed.
///
/// # Examples
///
/// ```
/// use psm_core::{generate_psm, simplify, MergePolicy};
/// use psm_mining::PropositionTrace;
/// use psm_trace::PowerTrace;
///
/// // Three behaviours at practically the same power level.
/// let gamma = PropositionTrace::from_indices(&[0, 0, 1, 1, 2, 2, 3]);
/// let delta: PowerTrace = [3.0, 3.01, 2.99, 3.0, 3.01, 3.0, 9.0]
///     .into_iter()
///     .collect();
/// let mut psm = generate_psm(&gamma, &delta, 0)?;
/// assert_eq!(psm.state_count(), 3);
/// let merges = simplify(&mut psm, &MergePolicy::default());
/// assert_eq!(merges, 2);
/// assert_eq!(psm.state_count(), 1);
/// assert_eq!(psm.state(psm.initials()[0].0).chains()[0].len(), 3);
/// # Ok::<(), psm_core::CoreError>(())
/// ```
pub fn simplify(psm: &mut Psm, policy: &MergePolicy) -> usize {
    let mut merges = 0;
    loop {
        let Some((keep, remove)) = find_adjacent_pair(psm, policy) else {
            return merges;
        };
        psm.merge_states(keep, remove, true);
        merges += 1;
    }
}

fn find_adjacent_pair(
    psm: &Psm,
    policy: &MergePolicy,
) -> Option<(crate::psm::StateId, crate::psm::StateId)> {
    for (id, state) in psm.states() {
        if state.chains().len() != 1 {
            continue;
        }
        // Unique successor…
        let mut succ = psm.successors(id);
        let (Some(t), None) = (succ.next(), succ.next()) else {
            continue;
        };
        let next = t.to;
        if next == id {
            continue;
        }
        // …whose unique predecessor is this state…
        if psm.transitions().iter().filter(|t| t.to == next).count() != 1 {
            continue;
        }
        let next_state = psm.state(next);
        if next_state.chains().len() != 1 {
            continue;
        }
        // …and power-indistinguishable from it.
        if policy.mergeable(state.attrs(), next_state.attrs()) {
            return Some((id, next));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_psm;
    use crate::psm::StateId;
    use psm_mining::{PropositionId, PropositionTrace};
    use psm_trace::PowerTrace;

    fn build(levels: &[(u32, f64, usize)]) -> Psm {
        let mut props = Vec::new();
        let mut power = Vec::new();
        for &(id, mw, len) in levels {
            for k in 0..len {
                props.push(id);
                power.push(mw + 0.002 * (k % 3) as f64);
            }
        }
        let gamma = PropositionTrace::from_indices(&props);
        let delta: PowerTrace = power.into_iter().collect();
        generate_psm(&gamma, &delta, 0).unwrap()
    }

    #[test]
    fn merges_adjacent_similar_states() {
        // Two 3 mW behaviours followed by a 9 mW one, then a 1mW tail so
        // the 9 mW state is recognised.
        let mut psm = build(&[(0, 3.0, 6), (1, 3.0, 6), (2, 9.0, 6), (3, 1.0, 2)]);
        assert_eq!(psm.state_count(), 3);
        let merges = simplify(&mut psm, &MergePolicy::default());
        assert_eq!(merges, 1);
        assert_eq!(psm.state_count(), 2);
        let merged = psm.state(StateId(0));
        assert_eq!(merged.chains().len(), 1);
        assert_eq!(merged.chains()[0].len(), 2);
        assert_eq!(merged.attrs().n(), 12);
        // Entry of the sequence is p0, exit is p2 (into the 9 mW state).
        assert_eq!(
            merged.chains()[0].entry_proposition(),
            PropositionId::from_index(0)
        );
        assert_eq!(
            merged.chains()[0].exit_proposition(),
            PropositionId::from_index(2)
        );
        // One transition remains: merged → 9 mW state, guarded by p2.
        assert_eq!(psm.transition_count(), 1);
        assert_eq!(psm.transitions()[0].guard, PropositionId::from_index(2));
    }

    #[test]
    fn distinct_levels_untouched() {
        let mut psm = build(&[(0, 1.0, 5), (1, 5.0, 5), (2, 9.0, 5), (3, 0.2, 2)]);
        let merges = simplify(&mut psm, &MergePolicy::default());
        assert_eq!(merges, 0);
        assert_eq!(psm.state_count(), 3);
    }

    #[test]
    fn cascading_merges_collapse_whole_plateau() {
        let mut psm = build(&[
            (0, 3.0, 4),
            (1, 3.0, 4),
            (2, 3.0, 4),
            (3, 3.0, 4),
            (4, 8.0, 2),
        ]);
        assert_eq!(psm.state_count(), 4);
        let merges = simplify(&mut psm, &MergePolicy::default());
        assert_eq!(merges, 3);
        assert_eq!(psm.state_count(), 1);
        assert_eq!(psm.state(StateId(0)).chains()[0].len(), 4);
    }

    #[test]
    fn preserves_power_semantics_of_attributes() {
        let mut psm = build(&[(0, 2.0, 5), (1, 2.0, 5), (2, 7.0, 3), (3, 0.5, 2)]);
        let total_before: f64 = psm
            .states()
            .map(|(_, s)| s.attrs().mu() * s.attrs().n() as f64)
            .sum();
        simplify(&mut psm, &MergePolicy::default());
        let total_after: f64 = psm
            .states()
            .map(|(_, s)| s.attrs().mu() * s.attrs().n() as f64)
            .sum();
        assert!((total_before - total_after).abs() < 1e-9);
    }
}
