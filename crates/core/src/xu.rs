//! The XU automaton (paper Fig. 5): recognising `next`/`until` temporal
//! patterns in a proposition trace.

use psm_mining::{PropositionTrace, TemporalAssertion, TemporalPattern};

/// One recognised temporal assertion with the inclusive interval of the
/// trace it was mined from — the paper's triplet ⟨p, start, stop⟩.
///
/// `start..=stop` are the instants *characterised* by the state this
/// assertion will become (the instants whose power samples feed its
/// attributes). For an `until` assertion the interval is the whole run of
/// the left proposition; for a `next` assertion it is the single instant of
/// the left proposition (so that `n = 1`, as required by the paper's
/// mergeability case 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinedAssertion {
    /// The recognised temporal assertion.
    pub assertion: TemporalAssertion,
    /// First characterised instant.
    pub start: usize,
    /// Last characterised instant (inclusive).
    pub stop: usize,
}

/// Walks a proposition trace with the XU automaton, returning the mined
/// assertions in trace order.
///
/// The automaton keeps a two-slot FIFO `f` over consecutive instants:
///
/// * in state **X**, `f[1] = f[0]` starts an `until` run (move to **U**);
///   `f[1] ≠ f[0]` immediately recognises `f[0] X f[1]`;
/// * in state **U**, `f[1] = f[0]` extends the run; `f[1] ≠ f[0]` exits and
///   recognises `f[0] U f[1]` over the run's interval.
///
/// A trailing pattern that never sees its exit proposition (the trace ends
/// mid-run) is dropped, mirroring the paper's `nil` termination.
///
/// # Examples
///
/// See the [crate-level example](crate), which reproduces the paper's
/// Fig. 5 walk-through.
pub fn mine_xu_assertions(gamma: &PropositionTrace) -> Vec<MinedAssertion> {
    let mut out = Vec::new();
    if gamma.len() < 2 {
        return out;
    }
    let mut start = 0usize;
    // `t` is the index of f[0]; f[1] is the proposition at t + 1.
    let mut t = 0usize;
    while let (Some(current), Some(next)) = (gamma.get(t), gamma.get(t + 1)) {
        if current == next {
            // (X or U) → U: the run continues.
            t += 1;
            continue;
        }
        // Run ends here: [start, t] is a maximal run of `current`.
        let pattern = if t > start {
            TemporalPattern::Until
        } else {
            TemporalPattern::Next
        };
        out.push(MinedAssertion {
            assertion: TemporalAssertion::new(pattern, current, next),
            start,
            stop: t,
        });
        t += 1;
        start = t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_mining::PropositionId;

    fn p(i: u32) -> PropositionId {
        PropositionId::from_index(i)
    }

    #[test]
    fn fig5_walkthrough() {
        // Γ = p_a p_a p_a p_b p_b p_b p_c p_d  (paper Fig. 3/5)
        let gamma = PropositionTrace::from_indices(&[0, 0, 0, 1, 1, 1, 2, 3]);
        let mined = mine_xu_assertions(&gamma);
        assert_eq!(mined.len(), 3);

        // ⟨p_a U p_b, 0, 2⟩
        assert_eq!(mined[0].assertion.pattern(), TemporalPattern::Until);
        assert_eq!(mined[0].assertion.left(), p(0));
        assert_eq!(mined[0].assertion.right(), p(1));
        assert_eq!((mined[0].start, mined[0].stop), (0, 2));

        // ⟨p_b U p_c, 3, 5⟩
        assert_eq!(mined[1].assertion.pattern(), TemporalPattern::Until);
        assert_eq!((mined[1].start, mined[1].stop), (3, 5));

        // ⟨p_c X p_d⟩ characterising the single instant 6.
        assert_eq!(mined[2].assertion.pattern(), TemporalPattern::Next);
        assert_eq!(mined[2].assertion.left(), p(2));
        assert_eq!(mined[2].assertion.right(), p(3));
        assert_eq!((mined[2].start, mined[2].stop), (6, 6));
    }

    #[test]
    fn all_next_patterns() {
        let gamma = PropositionTrace::from_indices(&[0, 1, 2, 3]);
        let mined = mine_xu_assertions(&gamma);
        assert_eq!(mined.len(), 3);
        for (i, m) in mined.iter().enumerate() {
            assert_eq!(m.assertion.pattern(), TemporalPattern::Next);
            assert_eq!(m.assertion.left(), p(i as u32));
            assert_eq!(m.assertion.right(), p(i as u32 + 1));
            assert_eq!((m.start, m.stop), (i, i));
        }
    }

    #[test]
    fn single_until_run_without_exit_is_dropped() {
        // The run never sees an exit proposition: nothing is recognised.
        let gamma = PropositionTrace::from_indices(&[4, 4, 4, 4]);
        assert!(mine_xu_assertions(&gamma).is_empty());
    }

    #[test]
    fn trailing_run_is_dropped() {
        // p0 p0 p1 p1: p0 U p1 over [0,1]; the trailing p1-run has no exit.
        let gamma = PropositionTrace::from_indices(&[0, 0, 1, 1]);
        let mined = mine_xu_assertions(&gamma);
        assert_eq!(mined.len(), 1);
        assert_eq!((mined[0].start, mined[0].stop), (0, 1));
        assert_eq!(mined[0].assertion.pattern(), TemporalPattern::Until);
    }

    #[test]
    fn alternating_singletons() {
        // p0 p1 p0 p1 p0 → four next assertions.
        let gamma = PropositionTrace::from_indices(&[0, 1, 0, 1, 0]);
        let mined = mine_xu_assertions(&gamma);
        assert_eq!(mined.len(), 4);
        assert!(mined.iter().all(|m| m.assertion.is_next()));
    }

    #[test]
    fn short_traces_yield_nothing() {
        assert!(mine_xu_assertions(&PropositionTrace::from_indices(&[])).is_empty());
        assert!(mine_xu_assertions(&PropositionTrace::from_indices(&[0])).is_empty());
    }

    #[test]
    fn intervals_partition_recognised_prefix() {
        // Every instant of the recognised prefix belongs to exactly one
        // assertion interval.
        let gamma = PropositionTrace::from_indices(&[0, 0, 1, 2, 2, 2, 3, 0, 0, 4]);
        let mined = mine_xu_assertions(&gamma);
        let mut covered = Vec::new();
        for m in &mined {
            for t in m.start..=m.stop {
                covered.push(t);
            }
        }
        let max_stop = mined.last().unwrap().stop;
        let expect: Vec<usize> = (0..=max_stop).collect();
        assert_eq!(covered, expect);
    }
}
