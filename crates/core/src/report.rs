//! Human-readable model reports.
//!
//! A compact textual summary of a generated PSM: one line per state with
//! its power attributes and characterising assertions, one per transition,
//! plus structural counters — the view a designer inspects before trusting
//! a model.

use crate::psm::{OutputFunction, Psm};
use psm_mining::PropositionTable;
use std::fmt::Write as _;

/// Renders a multi-line report of the PSM.
///
/// Assertions are rendered through `table` when provided (full proposition
/// formulas); otherwise with opaque `pN` identifiers.
///
/// # Examples
///
/// ```
/// use psm_core::{generate_psm, report};
/// use psm_mining::PropositionTrace;
/// use psm_trace::PowerTrace;
///
/// let gamma = PropositionTrace::from_indices(&[0, 0, 1, 1, 2]);
/// let delta: PowerTrace = [3.0, 3.0, 1.0, 1.0, 2.0].into_iter().collect();
/// let psm = generate_psm(&gamma, &delta, 0)?;
/// let text = report(&psm, None);
/// assert!(text.contains("2 states"));
/// assert!(text.contains("s0"));
/// # Ok::<(), psm_core::CoreError>(())
/// ```
pub fn report(psm: &Psm, table: Option<&PropositionTable>) -> String {
    let mut out = String::new();
    let nondet = if psm.is_deterministic() {
        "deterministic"
    } else {
        "non-deterministic"
    };
    let _ = writeln!(
        out,
        "PSM: {} states, {} transitions, {} initial, {nondet}",
        psm.state_count(),
        psm.transition_count(),
        psm.initials().len(),
    );

    for (id, state) in psm.states() {
        let output = match state.output() {
            OutputFunction::Constant(mu) => format!("const {mu:.4} mW"),
            OutputFunction::Regression { slope, intercept } => {
                format!("regr {slope:.4}·h + {intercept:.4} mW")
            }
        };
        let _ = writeln!(
            out,
            "  {id} {}  ω = {output}  [{} chain(s), {} window(s)]",
            state.attrs(),
            state.chains().len(),
            state.windows().len()
        );
        for chain in state.chains().iter().take(4) {
            let rendered = match table {
                Some(t) => chain.render(t),
                None => chain.to_string(),
            };
            let _ = writeln!(out, "      ‖ {rendered}");
        }
        if state.chains().len() > 4 {
            let _ = writeln!(out, "      ‖ … {} more", state.chains().len() - 4);
        }
    }

    for t in psm.transitions() {
        let guard = match table {
            Some(tb) => tb.render(t.guard),
            None => t.guard.to_string(),
        };
        let _ = writeln!(out, "  {} -[{guard}]-> {}", t.from, t.to);
    }
    for (s, count) in psm.initials() {
        let _ = writeln!(out, "  initial: {s} ×{count}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_psm;
    use crate::merge::{join, MergePolicy};
    use psm_mining::PropositionTrace;
    use psm_trace::PowerTrace;

    fn sample() -> Psm {
        let gamma = PropositionTrace::from_indices(&[0, 0, 0, 1, 1, 1, 2, 3]);
        let delta: PowerTrace = [3.0, 3.0, 3.0, 2.0, 2.0, 2.0, 3.4, 3.4]
            .into_iter()
            .collect();
        generate_psm(&gamma, &delta, 0).expect("generates")
    }

    #[test]
    fn report_lists_everything() {
        let psm = sample();
        let r = report(&psm, None);
        assert!(r.contains("3 states, 2 transitions"));
        assert!(r.contains("deterministic"));
        assert!(r.contains("s0") && r.contains("s1") && r.contains("s2"));
        assert!(r.contains("-[p1]->"));
        assert!(r.contains("initial: s0 ×1"));
        assert!(r.contains("const"));
    }

    #[test]
    fn long_alternative_lists_are_elided() {
        // Join many power-identical behaviours into one state.
        let mut props = Vec::new();
        let mut power = Vec::new();
        for rep in 0..8u32 {
            for _ in 0..4 {
                props.push(rep % 2);
                power.push(3.0);
            }
        }
        props.push(2);
        power.push(9.0);
        props.push(3);
        power.push(9.0);
        let gamma = PropositionTrace::from_indices(&props);
        let delta: PowerTrace = power.into_iter().collect();
        let psm = generate_psm(&gamma, &delta, 0).expect("generates");
        let joined = join(&[psm], &MergePolicy::default());
        let r = report(&joined, None);
        if joined.states().any(|(_, s)| s.chains().len() > 4) {
            assert!(r.contains("more"), "{r}");
        }
    }
}
