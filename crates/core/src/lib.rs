//! Power state machines generated from mined temporal assertions — the core
//! contribution of Danese, Pravadelli and Zandonà, *“Automatic generation of
//! power state machines through dynamic mining of temporal assertions”*
//! (DATE 2016).
//!
//! # Pipeline
//!
//! 1. [`mine_xu_assertions`] walks a proposition trace with the paper's
//!    **XU automaton** (Fig. 5), recognising LTL `next`/`until` patterns;
//! 2. [`generate_psm`] (the paper's `PSMGenerator`, Fig. 4) turns each
//!    recognised assertion into a power state annotated with power
//!    attributes ⟨μ, σ, n⟩ from the reference power trace, chained by
//!    transitions guarded with the exit propositions;
//! 3. [`simplify`] merges *adjacent* mergeable states into sequence-states
//!    `{p_i; p_{i+1}; …}` (paper §IV, Fig. 6a);
//! 4. [`join`] merges mergeable states *across* PSMs into
//!    concurrent-states `{p_i ‖ p_j ‖ …}`, producing one combined model
//!    with multiple initial states (paper §IV, Fig. 6b) — possibly
//!    non-deterministic;
//! 5. [`calibrate`] replaces the constant μ of data-dependent states (high
//!    σ, strong Hamming/power correlation) with a linear-regression output
//!    function (paper §IV);
//! 6. [`PsmSimulator`] replays a deterministic PSM against fresh
//!    observations, estimating power per instant and counting
//!    synchronisation losses (§III-C). Non-deterministic models are handled
//!    by the HMM simulator in `psm-hmm` (§V).
//!
//! Mergeability (§IV-A) is decided by [`MergePolicy`]: ε-tolerance between
//! two `next` states (case 1), Welch's t-test between two `until` states
//! (case 2) and a one-sample t-test between an `until` and a `next` state
//! (case 3).
//!
//! # Examples
//!
//! Generate the PSM of the paper's Fig. 5 walk-through:
//!
//! ```
//! use psm_core::{generate_psm, mine_xu_assertions};
//! use psm_mining::{PropositionTrace, TemporalPattern};
//! use psm_trace::PowerTrace;
//!
//! // Γ from the paper's Fig. 3: p_a p_a p_a p_b p_b p_b p_c p_d
//! let gamma = PropositionTrace::from_indices(&[0, 0, 0, 1, 1, 1, 2, 3]);
//! let delta: PowerTrace =
//!     [3.349, 3.339, 3.353, 1.902, 1.906, 1.944, 3.350, 3.343]
//!         .into_iter()
//!         .collect();
//!
//! let mined = mine_xu_assertions(&gamma);
//! assert_eq!(mined.len(), 3); // p_a U p_b, p_b U p_c, p_c X p_d
//! assert_eq!(mined[0].assertion.pattern(), TemporalPattern::Until);
//! assert_eq!(mined[2].assertion.pattern(), TemporalPattern::Next);
//!
//! let psm = generate_psm(&gamma, &delta, 0)?;
//! assert_eq!(psm.state_count(), 3);
//! assert_eq!(psm.transition_count(), 2);
//! # Ok::<(), psm_core::CoreError>(())
//! ```

#![warn(missing_docs)]

mod attrs;
mod calibrate;
mod dot;
mod generator;
mod merge;
mod psm;
mod report;
mod simplify;
mod simulate;
mod xu;

pub use attrs::PowerAttributes;
pub use calibrate::{calibrate, CalibrationConfig, CalibrationReport};
pub use dot::to_dot;
pub use generator::generate_psm;
pub use merge::{join, MergePolicy};
pub use psm::{ChainAssertion, OutputFunction, PowerState, Psm, SourceWindow, StateId, Transition};
pub use report::report;
pub use simplify::simplify;
pub use simulate::{classify_trace, EstimationOutcome, PsmSimulator};
pub use xu::{mine_xu_assertions, MinedAssertion};

use std::error::Error;
use std::fmt;

/// Errors produced by PSM generation and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// The proposition and power traces have different lengths.
    TraceLengthMismatch {
        /// Proposition-trace length.
        propositions: usize,
        /// Power-trace length.
        power: usize,
    },
    /// The trace was too short to expose any temporal pattern, so the PSM
    /// would have no states.
    NoBehaviours,
    /// A deterministic walk hit a non-deterministic choice; use the HMM
    /// simulator from `psm-hmm` instead.
    NonDeterministic {
        /// The state where the ambiguity arose.
        state: usize,
    },
    /// A state id did not belong to the PSM.
    UnknownState(usize),
    /// Calibration referenced a training trace index that was not supplied.
    MissingTrainingTrace(usize),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::TraceLengthMismatch {
                propositions,
                power,
            } => write!(
                f,
                "proposition trace has {propositions} instant(s) but power trace has {power}"
            ),
            CoreError::NoBehaviours => {
                write!(
                    f,
                    "trace exposes no temporal pattern; the PSM would be empty"
                )
            }
            CoreError::NonDeterministic { state } => write!(
                f,
                "non-deterministic choice in state s{state}; simulate through the HMM instead"
            ),
            CoreError::UnknownState(s) => write!(f, "state s{s} does not belong to this PSM"),
            CoreError::MissingTrainingTrace(i) => {
                write!(
                    f,
                    "calibration needs training trace {i}, which was not supplied"
                )
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errs = [
            CoreError::TraceLengthMismatch {
                propositions: 3,
                power: 4,
            },
            CoreError::NoBehaviours,
            CoreError::NonDeterministic { state: 2 },
            CoreError::UnknownState(9),
            CoreError::MissingTrainingTrace(1),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
