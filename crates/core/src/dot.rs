//! Graphviz export of PSMs, for inspection and documentation.

use crate::psm::Psm;
use psm_mining::PropositionTable;
use std::fmt::Write as _;

/// Renders a PSM as Graphviz `dot` text.
///
/// States show their assertions (resolved through `table` when provided)
/// and power attributes; transitions show their enabling propositions;
/// initial states are marked with an incoming arrow from a point node.
///
/// # Examples
///
/// ```
/// use psm_core::{generate_psm, to_dot};
/// use psm_mining::PropositionTrace;
/// use psm_trace::PowerTrace;
///
/// let gamma = PropositionTrace::from_indices(&[0, 0, 1, 1, 2]);
/// let delta: PowerTrace = [3.0, 3.0, 1.0, 1.0, 2.0].into_iter().collect();
/// let psm = generate_psm(&gamma, &delta, 0)?;
/// let dot = to_dot(&psm, None);
/// assert!(dot.starts_with("digraph psm {"));
/// assert!(dot.contains("s0 -> s1"));
/// # Ok::<(), psm_core::CoreError>(())
/// ```
pub fn to_dot(psm: &Psm, table: Option<&PropositionTable>) -> String {
    let mut out =
        String::from("digraph psm {\n  rankdir=LR;\n  node [shape=box, style=rounded];\n");
    for (id, state) in psm.states() {
        let chains: Vec<String> = state
            .chains()
            .iter()
            .map(|c| match table {
                Some(t) => c.render(t),
                None => c.to_string(),
            })
            .collect();
        let label = format!("{}\\n{}\\n{}", id, chains.join(" ‖ "), state.attrs());
        let _ = writeln!(out, "  {} [label=\"{}\"];", id, label.replace('"', "'"));
    }
    for (i, (s, count)) in psm.initials().iter().enumerate() {
        let _ = writeln!(out, "  init{i} [shape=point];");
        let _ = writeln!(out, "  init{i} -> {s} [label=\"×{count}\"];");
    }
    for t in psm.transitions() {
        let guard = match table {
            Some(tb) => tb.render(t.guard),
            None => t.guard.to_string(),
        };
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            t.from,
            t.to,
            guard.replace('"', "'")
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_psm;
    use psm_mining::PropositionTrace;
    use psm_trace::PowerTrace;

    #[test]
    fn dot_contains_states_transitions_and_initials() {
        let gamma = PropositionTrace::from_indices(&[0, 0, 1, 1, 2]);
        let delta: PowerTrace = [3.0, 3.0, 1.0, 1.0, 2.0].into_iter().collect();
        let psm = generate_psm(&gamma, &delta, 0).unwrap();
        let dot = to_dot(&psm, None);
        assert!(dot.contains("s0 ["));
        assert!(dot.contains("s1 ["));
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("init0 -> s0"));
        assert!(dot.contains("p0 U p1"));
        assert!(dot.ends_with("}\n"));
    }
}
