//! The power state machine data structure.

use crate::attrs::PowerAttributes;
use psm_mining::{PropositionId, PropositionTable, TemporalAssertion};
use std::fmt;

/// Identifier of a state within one [`Psm`].
///
/// Ids are dense indices; merging states (via [`simplify`](crate::simplify)
/// or [`join`](crate::join)) compacts the id space, so ids must not be held
/// across merge operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub(crate) usize);

impl StateId {
    /// Dense index of this state.
    pub fn index(self) -> usize {
        self.0
    }

    /// Builds an id from a raw index (e.g. when mapping HMM hidden states
    /// back onto PSM states). The index is validated at first use against
    /// the PSM it is applied to.
    pub fn from_index(index: usize) -> Self {
        StateId(index)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Provenance of a state's power attributes: the inclusive interval of one
/// training trace where the state's assertion held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceWindow {
    /// Index of the training trace (position in the mining input set).
    pub trace: usize,
    /// First instant of the interval.
    pub start: usize,
    /// Last instant (inclusive).
    pub stop: usize,
}

/// A *sequence* of temporal assertions `{p_i; p_{i+1}; …}` characterising a
/// state (paper §IV): produced by `simplify` merging adjacent states. A
/// freshly generated state holds a chain of length one.
///
/// # Examples
///
/// ```
/// use psm_core::ChainAssertion;
/// use psm_mining::{PropositionId, TemporalAssertion, TemporalPattern};
///
/// let p = |i| PropositionId::from_index(i);
/// let a = ChainAssertion::single(TemporalAssertion::new(TemporalPattern::Until, p(0), p(1)));
/// let b = ChainAssertion::single(TemporalAssertion::new(TemporalPattern::Until, p(1), p(2)));
/// let seq = a.concat(&b);
/// assert_eq!(seq.len(), 2);
/// assert_eq!(seq.entry_proposition(), p(0));
/// assert_eq!(seq.exit_proposition(), p(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChainAssertion {
    parts: Vec<TemporalAssertion>,
}

impl ChainAssertion {
    /// A chain of one assertion.
    pub fn single(assertion: TemporalAssertion) -> Self {
        ChainAssertion {
            parts: vec![assertion],
        }
    }

    /// Concatenates two chains: first all of `self`, then all of `other`.
    pub fn concat(&self, other: &ChainAssertion) -> Self {
        let mut parts = self.parts.clone();
        parts.extend(other.parts.iter().copied());
        ChainAssertion { parts }
    }

    /// The assertions in cascade order.
    pub fn parts(&self) -> &[TemporalAssertion] {
        &self.parts
    }

    /// Number of cascaded assertions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// A chain is never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The proposition observed when the state is entered.
    pub fn entry_proposition(&self) -> PropositionId {
        self.parts[0].left()
    }

    /// The proposition whose appearance exits the state (labels the
    /// outgoing transition).
    pub fn exit_proposition(&self) -> PropositionId {
        self.parts[self.parts.len() - 1].right()
    }

    /// Renders with full proposition formulas, e.g.
    /// `{(…) U (…); (…) X (…)}`.
    pub fn render(&self, table: &PropositionTable) -> String {
        let parts: Vec<String> = self.parts.iter().map(|a| a.render(table)).collect();
        if parts.len() == 1 {
            parts.into_iter().next().expect("chains are non-empty")
        } else {
            format!("{{{}}}", parts.join("; "))
        }
    }
}

impl fmt::Display for ChainAssertion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.parts.len() == 1 {
            write!(f, "{}", self.parts[0])
        } else {
            let parts: Vec<String> = self.parts.iter().map(|a| a.to_string()).collect();
            write!(f, "{{{}}}", parts.join("; "))
        }
    }
}

/// The power output function ω of a state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutputFunction {
    /// The constant μ of the state's power attributes (the paper's default).
    Constant(f64),
    /// Data-dependent calibration (paper §IV): power predicted from the
    /// Hamming distance of consecutive input values,
    /// `power = slope · hamming + intercept`.
    Regression {
        /// mW per toggling input bit.
        slope: f64,
        /// mW at zero input activity.
        intercept: f64,
    },
}

impl OutputFunction {
    /// Evaluates the function for one instant; `input_hamming` is the
    /// Hamming distance between this instant's and the previous instant's
    /// primary-input values (ignored by [`OutputFunction::Constant`]).
    pub fn evaluate(&self, input_hamming: f64) -> f64 {
        match self {
            OutputFunction::Constant(mu) => *mu,
            OutputFunction::Regression { slope, intercept } => slope * input_hamming + intercept,
        }
    }

    /// `true` when this is a regression (calibrated) output.
    pub fn is_regression(&self) -> bool {
        matches!(self, OutputFunction::Regression { .. })
    }
}

/// One power state: its characterising assertions, the training windows
/// backing it, its power attributes and its output function.
///
/// A state generated by `PSMGenerator` has exactly one chain of length one;
/// `simplify` lengthens chains, `join` adds *alternative* chains
/// (`{p_i ‖ p_j ‖ …}`).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerState {
    chains: Vec<ChainAssertion>,
    windows: Vec<SourceWindow>,
    attrs: PowerAttributes,
    output: OutputFunction,
}

impl PowerState {
    /// Creates a state for one assertion with its training window and power
    /// attributes — the paper's `createPowerState(p, ⟨μ, σ, n⟩)`.
    pub fn new(chain: ChainAssertion, window: SourceWindow, attrs: PowerAttributes) -> Self {
        PowerState {
            chains: vec![chain],
            windows: vec![window],
            attrs,
            output: OutputFunction::Constant(attrs.mu()),
        }
    }

    /// Alternative chains characterising this state (`‖`-composition).
    pub fn chains(&self) -> &[ChainAssertion] {
        &self.chains
    }

    /// Training windows backing the attributes.
    pub fn windows(&self) -> &[SourceWindow] {
        &self.windows
    }

    /// Power attributes ⟨μ, σ, n⟩.
    pub fn attrs(&self) -> &PowerAttributes {
        &self.attrs
    }

    /// Output function ω.
    pub fn output(&self) -> OutputFunction {
        self.output
    }

    /// Replaces the output function (used by calibration).
    pub fn set_output(&mut self, output: OutputFunction) {
        self.output = output;
    }

    /// `true` when the attributes come from a single instant — the paper's
    /// shorthand for a `next`-pattern state (mergeability case 1/3).
    pub fn is_next_state(&self) -> bool {
        self.attrs.n() == 1
    }

    /// Absorbs another state's assertions, windows and attributes, either
    /// as a *sequence* (`simplify`: other's chain is appended to this
    /// state's single chain) or as *alternatives* (`join`).
    pub(crate) fn absorb(&mut self, other: &PowerState, as_sequence: bool) {
        if as_sequence {
            debug_assert_eq!(self.chains.len(), 1, "sequence merges act on chain PSMs");
            debug_assert_eq!(other.chains.len(), 1);
            self.chains[0] = self.chains[0].concat(&other.chains[0]);
        } else {
            for c in &other.chains {
                if !self.chains.contains(c) {
                    self.chains.push(c.clone());
                } else {
                    // Identical assertion joined twice: keep the duplicate,
                    // the paper counts multiplicity in the HMM's B matrix.
                    self.chains.push(c.clone());
                }
            }
        }
        self.windows.extend_from_slice(&other.windows);
        self.attrs.merge(&other.attrs);
        // Keep a constant output in sync with the merged mean; calibrated
        // outputs are recomputed after merging anyway.
        if let OutputFunction::Constant(_) = self.output {
            self.output = OutputFunction::Constant(self.attrs.mu());
        }
    }
}

/// A transition with its enabling proposition (the guard that fires it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Destination state.
    pub to: StateId,
    /// Enabling function: the proposition whose appearance fires the
    /// transition (the exit proposition of the source state's assertion).
    pub guard: PropositionId,
}

/// A power state machine (paper Def. 3, specialised): states with power
/// attributes, proposition-guarded transitions and one or more initial
/// states with multiplicities (several training traces may start in the
/// same behaviour — the multiplicity feeds the HMM's π vector).
///
/// Generated PSMs are chains; [`join`](crate::join) folds many chains into
/// one graph-shaped, possibly non-deterministic model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Psm {
    states: Vec<PowerState>,
    transitions: Vec<Transition>,
    initials: Vec<(StateId, usize)>,
}

impl Psm {
    /// Creates an empty PSM.
    pub fn new() -> Self {
        Psm::default()
    }

    /// Adds a state — the paper's `addState`.
    pub fn add_state(&mut self, state: PowerState) -> StateId {
        self.states.push(state);
        StateId(self.states.len() - 1)
    }

    /// Adds a transition — the paper's `addTransition`. Duplicate
    /// transitions (same endpoints and guard) are kept only once.
    pub fn add_transition(&mut self, from: StateId, to: StateId, guard: PropositionId) {
        let t = Transition { from, to, guard };
        if !self.transitions.contains(&t) {
            self.transitions.push(t);
        }
    }

    /// Marks (another) training trace as starting in `state`.
    pub fn add_initial(&mut self, state: StateId) {
        if let Some(entry) = self.initials.iter_mut().find(|(s, _)| *s == state) {
            entry.1 += 1;
        } else {
            self.initials.push((state, 1));
        }
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The state behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (out of range).
    pub fn state(&self, id: StateId) -> &PowerState {
        &self.states[id.0]
    }

    /// Mutable access to a state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (out of range).
    pub fn state_mut(&mut self, id: StateId) -> &mut PowerState {
        &mut self.states[id.0]
    }

    /// Iterates over `(id, state)` pairs.
    pub fn states(&self) -> impl Iterator<Item = (StateId, &PowerState)> {
        self.states.iter().enumerate().map(|(i, s)| (StateId(i), s))
    }

    /// All transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions leaving `state`.
    pub fn successors(&self, state: StateId) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == state)
    }

    /// Initial states with their multiplicities.
    pub fn initials(&self) -> &[(StateId, usize)] {
        &self.initials
    }

    /// A PSM is deterministic when no state has two outgoing transitions
    /// with the same guard and no state has two *different* alternative
    /// chains sharing an entry proposition (identical chains joined twice
    /// only add multiplicity, not ambiguity). The paper's §IV notes `join`
    /// can break determinism; non-deterministic models need the HMM
    /// simulator.
    pub fn is_deterministic(&self) -> bool {
        for (id, state) in self.states() {
            let mut guards: Vec<_> = self.successors(id).map(|t| t.guard).collect();
            guards.sort();
            if guards.windows(2).any(|w| w[0] == w[1]) {
                return false;
            }
            let mut distinct: Vec<&ChainAssertion> = Vec::new();
            for c in state.chains() {
                if !distinct.contains(&c) {
                    distinct.push(c);
                }
            }
            let mut entries: Vec<_> = distinct.iter().map(|c| c.entry_proposition()).collect();
            entries.sort();
            if entries.windows(2).any(|w| w[0] == w[1]) {
                return false;
            }
        }
        self.initials.len() <= 1
    }

    /// Merges state `remove` into state `keep`: assertions become
    /// alternatives (or a sequence when `as_sequence`), attributes are
    /// combined, transitions and initial marks are redirected, and the id
    /// space is compacted.
    ///
    /// All previously held [`StateId`]s become stale.
    ///
    /// # Panics
    ///
    /// Panics if the ids are equal or stale.
    pub(crate) fn merge_states(&mut self, keep: StateId, remove: StateId, as_sequence: bool) {
        assert_ne!(keep, remove, "cannot merge a state with itself");
        let removed = self.states[remove.0].clone();
        self.states[keep.0].absorb(&removed, as_sequence);
        self.states.remove(remove.0);

        if as_sequence {
            // The inner transition of the collapsed sequence disappears
            // (paper Fig. 6a): the new state is entered through s_i's
            // ingoing and left through s_{i+j}'s outgoing transition.
            self.transitions.retain(|t| {
                !((t.from == keep && t.to == remove) || (t.from == remove && t.to == keep))
            });
        }

        let remap = |s: StateId| -> StateId {
            if s == remove {
                // Account for `keep` itself shifting when it sits after
                // `remove` in the vector.
                StateId(if keep.0 > remove.0 {
                    keep.0 - 1
                } else {
                    keep.0
                })
            } else if s.0 > remove.0 {
                StateId(s.0 - 1)
            } else {
                s
            }
        };

        let mut transitions = Vec::with_capacity(self.transitions.len());
        let mut seen = std::collections::HashSet::with_capacity(self.transitions.len());
        for t in self.transitions.drain(..) {
            let nt = Transition {
                from: remap(t.from),
                to: remap(t.to),
                guard: t.guard,
            };
            if seen.insert(nt) {
                transitions.push(nt);
            }
        }
        self.transitions = transitions;

        let mut initials: Vec<(StateId, usize)> = Vec::new();
        for (s, count) in self.initials.drain(..) {
            let ns = remap(s);
            if let Some(entry) = initials.iter_mut().find(|(e, _)| *e == ns) {
                entry.1 += count;
            } else {
                initials.push((ns, count));
            }
        }
        self.initials = initials;
    }

    /// Disjoint union: appends all states, transitions and initial marks of
    /// `other`, shifting its ids. Used by [`join`](crate::join).
    pub(crate) fn absorb_psm(&mut self, other: &Psm) {
        let offset = self.states.len();
        self.states.extend(other.states.iter().cloned());
        for t in &other.transitions {
            self.transitions.push(Transition {
                from: StateId(t.from.0 + offset),
                to: StateId(t.to.0 + offset),
                guard: t.guard,
            });
        }
        for (s, count) in &other.initials {
            let shifted = StateId(s.0 + offset);
            if let Some(entry) = self.initials.iter_mut().find(|(e, _)| *e == shifted) {
                entry.1 += count;
            } else {
                self.initials.push((shifted, *count));
            }
        }
    }
}

mod persist {
    //! [`Persist`] implementations for the PSM data structure. The JSON
    //! layout mirrors the in-memory structure; referential invariants
    //! (transition endpoints, initial states, chain shapes) are re-validated
    //! on load so a hand-edited document cannot produce a PSM that panics
    //! later.

    use super::*;
    use psm_persist::{JsonValue, Persist, PersistError};

    impl Persist for StateId {
        fn to_json(&self) -> JsonValue {
            JsonValue::from(self.0)
        }

        fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
            Ok(StateId(v.as_usize()?))
        }
    }

    impl Persist for SourceWindow {
        fn to_json(&self) -> JsonValue {
            JsonValue::obj([
                ("trace", JsonValue::from(self.trace)),
                ("start", JsonValue::from(self.start)),
                ("stop", JsonValue::from(self.stop)),
            ])
        }

        fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
            let w = SourceWindow {
                trace: v.usize_field("trace")?,
                start: v.usize_field("start")?,
                stop: v.usize_field("stop")?,
            };
            if w.start > w.stop {
                return Err(PersistError::schema("window start after stop"));
            }
            Ok(w)
        }
    }

    impl Persist for ChainAssertion {
        fn to_json(&self) -> JsonValue {
            self.parts.to_json()
        }

        fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
            let parts: Vec<TemporalAssertion> = Vec::from_json(v)?;
            if parts.is_empty() {
                return Err(PersistError::schema("assertion chains are never empty"));
            }
            Ok(ChainAssertion { parts })
        }
    }

    impl Persist for OutputFunction {
        fn to_json(&self) -> JsonValue {
            match self {
                OutputFunction::Constant(mu) => {
                    JsonValue::obj([("const", JsonValue::from_f64(*mu))])
                }
                OutputFunction::Regression { slope, intercept } => JsonValue::obj([
                    ("slope", JsonValue::from_f64(*slope)),
                    ("intercept", JsonValue::from_f64(*intercept)),
                ]),
            }
        }

        fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
            if let Some(mu) = v.get("const") {
                Ok(OutputFunction::Constant(mu.as_f64()?))
            } else {
                Ok(OutputFunction::Regression {
                    slope: v.f64_field("slope")?,
                    intercept: v.f64_field("intercept")?,
                })
            }
        }
    }

    impl Persist for PowerState {
        fn to_json(&self) -> JsonValue {
            JsonValue::obj([
                ("chains", self.chains.to_json()),
                ("windows", self.windows.to_json()),
                ("attrs", self.attrs.to_json()),
                ("output", self.output.to_json()),
            ])
        }

        fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
            let chains: Vec<ChainAssertion> = Vec::from_json(v.field("chains")?)?;
            if chains.is_empty() {
                return Err(PersistError::schema("a power state needs a chain"));
            }
            Ok(PowerState {
                chains,
                windows: Vec::from_json(v.field("windows")?)?,
                attrs: PowerAttributes::from_json(v.field("attrs")?)?,
                output: OutputFunction::from_json(v.field("output")?)?,
            })
        }
    }

    impl Persist for Transition {
        fn to_json(&self) -> JsonValue {
            JsonValue::obj([
                ("from", self.from.to_json()),
                ("to", self.to.to_json()),
                ("guard", self.guard.to_json()),
            ])
        }

        fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
            Ok(Transition {
                from: StateId::from_json(v.field("from")?)?,
                to: StateId::from_json(v.field("to")?)?,
                guard: PropositionId::from_json(v.field("guard")?)?,
            })
        }
    }

    impl Persist for Psm {
        fn to_json(&self) -> JsonValue {
            JsonValue::obj([
                ("states", self.states.to_json()),
                ("transitions", self.transitions.to_json()),
                (
                    "initials",
                    JsonValue::arr(self.initials.iter().map(|(s, count)| {
                        JsonValue::obj([("state", s.to_json()), ("count", JsonValue::from(*count))])
                    })),
                ),
            ])
        }

        fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
            let states: Vec<PowerState> = Vec::from_json(v.field("states")?)?;
            let transitions: Vec<Transition> = Vec::from_json(v.field("transitions")?)?;
            let n = states.len();
            for t in &transitions {
                if t.from.0 >= n || t.to.0 >= n {
                    return Err(PersistError::schema(format!(
                        "transition {}→{} references a state outside 0..{n}",
                        t.from, t.to
                    )));
                }
            }
            let mut initials: Vec<(StateId, usize)> = Vec::new();
            for item in v.arr_field("initials")? {
                let state = StateId::from_json(item.field("state")?)?;
                let count = item.usize_field("count")?;
                if state.0 >= n {
                    return Err(PersistError::schema(format!(
                        "initial state {state} outside 0..{n}"
                    )));
                }
                if count == 0 || initials.iter().any(|(s, _)| *s == state) {
                    return Err(PersistError::schema("invalid initial-state table"));
                }
                initials.push((state, count));
            }
            Ok(Psm {
                states,
                transitions,
                initials,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_mining::TemporalPattern;
    use psm_trace::PowerTrace;

    fn p(i: u32) -> PropositionId {
        PropositionId::from_index(i)
    }

    fn chain(l: u32, r: u32, until: bool) -> ChainAssertion {
        ChainAssertion::single(TemporalAssertion::new(
            if until {
                TemporalPattern::Until
            } else {
                TemporalPattern::Next
            },
            p(l),
            p(r),
        ))
    }

    fn state(l: u32, r: u32, power: &[f64]) -> PowerState {
        let delta: PowerTrace = power.iter().copied().collect();
        PowerState::new(
            chain(l, r, power.len() > 1),
            SourceWindow {
                trace: 0,
                start: 0,
                stop: power.len() - 1,
            },
            PowerAttributes::from_window(&delta, 0, power.len() - 1),
        )
    }

    fn three_state_chain() -> Psm {
        let mut psm = Psm::new();
        let s0 = psm.add_state(state(0, 1, &[3.0, 3.1, 2.9]));
        let s1 = psm.add_state(state(1, 2, &[1.5, 1.6]));
        let s2 = psm.add_state(state(2, 3, &[3.0]));
        psm.add_transition(s0, s1, p(1));
        psm.add_transition(s1, s2, p(2));
        psm.add_initial(s0);
        psm
    }

    #[test]
    fn chain_shape_accessors() {
        let psm = three_state_chain();
        assert_eq!(psm.state_count(), 3);
        assert_eq!(psm.transition_count(), 2);
        assert_eq!(psm.initials(), &[(StateId(0), 1)]);
        assert!(psm.is_deterministic());
        assert_eq!(psm.successors(StateId(0)).count(), 1);
        assert_eq!(psm.successors(StateId(2)).count(), 0);
        assert!(psm.state(StateId(2)).is_next_state());
        assert!(!psm.state(StateId(0)).is_next_state());
    }

    #[test]
    fn output_function_evaluation() {
        let c = OutputFunction::Constant(2.5);
        assert_eq!(c.evaluate(100.0), 2.5);
        assert!(!c.is_regression());
        let r = OutputFunction::Regression {
            slope: 0.5,
            intercept: 1.0,
        };
        assert_eq!(r.evaluate(4.0), 3.0);
        assert!(r.is_regression());
    }

    #[test]
    fn merge_adjacent_as_sequence() {
        let mut psm = three_state_chain();
        psm.merge_states(StateId(0), StateId(1), true);
        assert_eq!(psm.state_count(), 2);
        let merged = psm.state(StateId(0));
        assert_eq!(merged.chains().len(), 1);
        assert_eq!(merged.chains()[0].len(), 2);
        assert_eq!(merged.chains()[0].entry_proposition(), p(0));
        assert_eq!(merged.chains()[0].exit_proposition(), p(2));
        assert_eq!(merged.attrs().n(), 5);
        // The inner s0→s1 transition disappears (Fig. 6a); the outgoing
        // transition of the absorbed state survives as s0→s1 (old s1→s2).
        assert_eq!(psm.transition_count(), 1);
        assert!(psm
            .transitions()
            .iter()
            .any(|t| t.from == StateId(0) && t.to == StateId(1) && t.guard == p(2)));
        assert_eq!(psm.initials(), &[(StateId(0), 1)]);
    }

    #[test]
    fn merge_remaps_initials_and_transitions() {
        let mut psm = three_state_chain();
        // Merge s2 into s0 (a join-style alternative merge).
        psm.merge_states(StateId(0), StateId(2), false);
        assert_eq!(psm.state_count(), 2);
        let merged = psm.state(StateId(0));
        assert_eq!(merged.chains().len(), 2);
        // s1→s2 now points at s0.
        assert!(psm
            .transitions()
            .iter()
            .any(|t| t.from == StateId(1) && t.to == StateId(0)));
    }

    #[test]
    fn merge_keep_after_remove_remaps_keep() {
        let mut psm = three_state_chain();
        psm.merge_states(StateId(2), StateId(0), false);
        assert_eq!(psm.state_count(), 2);
        // Old s1 is now s0; old s2 (merged with old s0) is s1.
        assert_eq!(psm.initials(), &[(StateId(1), 1)]);
        assert!(psm
            .transitions()
            .iter()
            .any(|t| t.from == StateId(1) && t.to == StateId(0)));
    }

    #[test]
    fn absorb_psm_is_disjoint_union() {
        let mut a = three_state_chain();
        let b = three_state_chain();
        a.absorb_psm(&b);
        assert_eq!(a.state_count(), 6);
        assert_eq!(a.transition_count(), 4);
        assert_eq!(a.initials().len(), 2);
        assert!(a
            .transitions()
            .iter()
            .any(|t| t.from == StateId(3) && t.to == StateId(4)));
        // Two distinct initial states → not deterministic as a whole.
        assert!(!a.is_deterministic());
    }

    #[test]
    fn nondeterminism_via_duplicate_guards() {
        let mut psm = three_state_chain();
        // Second outgoing transition from s0 with the same guard p1.
        psm.add_transition(StateId(0), StateId(2), p(1));
        assert!(!psm.is_deterministic());
    }

    #[test]
    fn duplicate_transitions_are_deduped() {
        let mut psm = three_state_chain();
        let before = psm.transition_count();
        psm.add_transition(StateId(0), StateId(1), p(1));
        assert_eq!(psm.transition_count(), before);
    }

    #[test]
    fn psm_round_trips_through_json() {
        use psm_persist::{JsonValue, Persist};
        let mut psm = three_state_chain();
        psm.state_mut(StateId(1))
            .set_output(OutputFunction::Regression {
                slope: 0.125,
                intercept: 1.75,
            });
        let text = psm.to_json().render();
        let back = Psm::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, psm);
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn psm_load_rejects_dangling_references() {
        use psm_persist::{JsonValue, Persist};
        let psm = three_state_chain();
        let text = psm.to_json().render();
        // Point a transition at a non-existent state.
        let bad = text.replace("\"to\":2", "\"to\":9");
        assert!(Psm::from_json(&JsonValue::parse(&bad).unwrap()).is_err());
        // Duplicate initial entry.
        let bad = text.replace(
            "[{\"state\":0,\"count\":1}]",
            "[{\"state\":0,\"count\":1},{\"state\":0,\"count\":1}]",
        );
        assert!(Psm::from_json(&JsonValue::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn chain_assertion_display() {
        let c = chain(0, 1, true);
        assert_eq!(c.to_string(), "p0 U p1");
        let seq = c.concat(&chain(1, 2, false));
        assert_eq!(seq.to_string(), "{p0 U p1; p1 X p2}");
    }
}
