//! Power attributes ⟨μ, σ, n⟩ of a power state.

use psm_stats::OnlineStats;
use psm_trace::PowerTrace;
use std::fmt;

/// The power attributes of one state (paper §III-B): the number of instants
/// `n` where its assertion held, and the mean μ and standard deviation σ of
/// the reference power values over those instants.
///
/// Internally an [`OnlineStats`] accumulator, so attributes of merged states
/// (`simplify`/`join`) are combined exactly, as if recomputed over the union
/// of the source intervals.
///
/// # Examples
///
/// ```
/// use psm_core::PowerAttributes;
/// use psm_trace::PowerTrace;
///
/// let delta: PowerTrace = [3.349, 3.339, 3.353].into_iter().collect();
/// let attrs = PowerAttributes::from_window(&delta, 0, 2);
/// assert_eq!(attrs.n(), 3);
/// assert!((attrs.mu() - 3.347).abs() < 1e-9);
/// assert!(attrs.sigma() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerAttributes {
    stats: OnlineStats,
}

impl PowerAttributes {
    /// Attributes of the inclusive window `[start, stop]` of a power trace —
    /// the paper's `getPowerAttributes(Δ, start, stop)`.
    ///
    /// # Panics
    ///
    /// Panics when `start > stop` or `stop` is out of range.
    pub fn from_window(delta: &PowerTrace, start: usize, stop: usize) -> Self {
        PowerAttributes {
            stats: delta.window(start, stop).iter().copied().collect(),
        }
    }

    /// Attributes from an existing accumulator.
    pub fn from_stats(stats: OnlineStats) -> Self {
        PowerAttributes { stats }
    }

    /// Mean power μ (mW) — the state's constant output function before
    /// calibration.
    pub fn mu(&self) -> f64 {
        self.stats.mean()
    }

    /// Population standard deviation σ (mW); 0 for single-instant (`next`)
    /// states.
    pub fn sigma(&self) -> f64 {
        self.stats.population_std_dev()
    }

    /// Number of instants the state's assertion held.
    pub fn n(&self) -> u64 {
        self.stats.count()
    }

    /// The underlying accumulator (for the t-tests of §IV-A).
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Merges another state's attributes into this one; exact, equivalent
    /// to recomputing over the union of both windows.
    pub fn merge(&mut self, other: &PowerAttributes) {
        self.stats.merge(&other.stats);
    }
}

impl psm_persist::Persist for PowerAttributes {
    fn to_json(&self) -> psm_persist::JsonValue {
        psm_persist::Persist::to_json(&self.stats)
    }

    fn from_json(v: &psm_persist::JsonValue) -> Result<Self, psm_persist::PersistError> {
        Ok(PowerAttributes {
            stats: <OnlineStats as psm_persist::Persist>::from_json(v)?,
        })
    }
}

impl fmt::Display for PowerAttributes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨μ={:.4}, σ={:.4}, n={}⟩",
            self.mu(),
            self.sigma(),
            self.n()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_attributes() {
        let delta: PowerTrace = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        let a = PowerAttributes::from_window(&delta, 1, 3);
        assert_eq!(a.n(), 3);
        assert_eq!(a.mu(), 3.0);
        assert!((a.sigma() - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_instant_sigma_zero() {
        let delta: PowerTrace = [7.5].into_iter().collect();
        let a = PowerAttributes::from_window(&delta, 0, 0);
        assert_eq!(a.n(), 1);
        assert_eq!(a.sigma(), 0.0);
    }

    #[test]
    fn merge_equals_union_window() {
        let delta: PowerTrace = [1.0, 2.0, 3.0, 10.0, 11.0].into_iter().collect();
        let mut a = PowerAttributes::from_window(&delta, 0, 2);
        let b = PowerAttributes::from_window(&delta, 3, 4);
        a.merge(&b);
        let whole = PowerAttributes::from_window(&delta, 0, 4);
        assert_eq!(a.n(), whole.n());
        assert!((a.mu() - whole.mu()).abs() < 1e-12);
        assert!((a.sigma() - whole.sigma()).abs() < 1e-12);
    }

    #[test]
    fn display_shows_all_three() {
        let delta: PowerTrace = [2.0, 4.0].into_iter().collect();
        let a = PowerAttributes::from_window(&delta, 0, 1);
        let s = a.to_string();
        assert!(s.contains("μ=3.0000") && s.contains("n=2"), "{s}");
    }
}
