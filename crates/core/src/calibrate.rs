//! Regression calibration of data-dependent power states (paper §IV).
//!
//! States with a "too high" standard deviation are likely data-dependent:
//! their power is driven by the values on the IP's inputs rather than by
//! the functional behaviour alone. For those states — and only when the
//! Hamming distance of consecutive input values correlates strongly with
//! the reference power, the paper's necessary condition [11] — the constant
//! μ output is replaced by a fitted regression line.

use crate::psm::{OutputFunction, Psm, StateId};
use crate::CoreError;
use psm_stats::LinearRegression;
use psm_trace::{FunctionalTrace, PowerTrace};

/// Thresholds of the calibration step.
///
/// # Examples
///
/// ```
/// use psm_core::CalibrationConfig;
///
/// let config = CalibrationConfig::default().with_min_abs_r(0.8);
/// assert_eq!(config.min_abs_r(), 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    sigma_over_mu: f64,
    min_abs_r: f64,
    min_samples: usize,
}

impl CalibrationConfig {
    /// Relative deviation σ/μ above which a state counts as
    /// data-dependent.
    pub fn sigma_over_mu(&self) -> f64 {
        self.sigma_over_mu
    }

    /// Minimum |Pearson r| between input Hamming distance and power for
    /// the regression to be considered reliable.
    pub fn min_abs_r(&self) -> f64 {
        self.min_abs_r
    }

    /// Minimum number of training samples backing a fit.
    pub fn min_samples(&self) -> usize {
        self.min_samples
    }

    /// Sets the σ/μ threshold.
    pub fn with_sigma_over_mu(mut self, v: f64) -> Self {
        assert!(v >= 0.0, "threshold cannot be negative");
        self.sigma_over_mu = v;
        self
    }

    /// Sets the correlation threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= r <= 1`.
    pub fn with_min_abs_r(mut self, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&r), "|r| threshold must lie in [0, 1]");
        self.min_abs_r = r;
        self
    }

    /// Sets the minimum sample count.
    pub fn with_min_samples(mut self, n: usize) -> Self {
        self.min_samples = n;
        self
    }
}

impl Default for CalibrationConfig {
    /// σ/μ > 0.08, |r| ≥ 0.7, at least 48 samples.
    ///
    /// The sample floor is deliberately high: a regression fitted on a
    /// handful of instants extrapolates wildly and can poison every later
    /// estimate of the state, which is far worse than keeping the constant
    /// μ.
    fn default() -> Self {
        CalibrationConfig {
            sigma_over_mu: 0.08,
            min_abs_r: 0.7,
            min_samples: 48,
        }
    }
}

/// Per-state outcome of one calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// `(state, |r|, calibrated?)` for every state that exceeded the σ/μ
    /// threshold; states below the threshold are not listed.
    pub examined: Vec<(StateId, f64, bool)>,
}

impl CalibrationReport {
    /// Number of states whose output became a regression.
    pub fn calibrated_count(&self) -> usize {
        self.examined.iter().filter(|(_, _, c)| *c).count()
    }
}

/// Replaces the constant output of data-dependent states with a
/// Hamming-distance regression fitted on the training traces.
///
/// `training` supplies, per trace index recorded in the states' windows,
/// the functional trace (for input Hamming distances) and the reference
/// power trace (for the regressand).
///
/// # Errors
///
/// Returns [`CoreError::MissingTrainingTrace`] when a state references a
/// trace index not present in `training`.
pub fn calibrate(
    psm: &mut Psm,
    training: &[(&FunctionalTrace, &PowerTrace)],
    config: &CalibrationConfig,
) -> Result<CalibrationReport, CoreError> {
    let mut examined = Vec::new();
    let ids: Vec<StateId> = psm.states().map(|(id, _)| id).collect();
    for id in ids {
        let state = psm.state(id);
        let attrs = state.attrs();
        if attrs.mu() <= 0.0 || attrs.sigma() / attrs.mu() <= config.sigma_over_mu {
            continue;
        }
        // Collect (input hamming, power) pairs over all training windows.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for w in state.windows() {
            let (phi, delta) = training
                .get(w.trace)
                .ok_or(CoreError::MissingTrainingTrace(w.trace))?;
            for t in w.start..=w.stop.min(phi.len().saturating_sub(1)) {
                xs.push(phi.input_hamming(t) as f64);
                ys.push(delta[t]);
            }
        }
        if xs.len() < config.min_samples {
            examined.push((id, 0.0, false));
            continue;
        }
        match LinearRegression::fit(&xs, &ys) {
            Ok(fit) if fit.r().abs() >= config.min_abs_r => {
                psm.state_mut(id).set_output(OutputFunction::Regression {
                    slope: fit.slope(),
                    intercept: fit.intercept(),
                });
                examined.push((id, fit.r().abs(), true));
            }
            Ok(fit) => examined.push((id, fit.r().abs(), false)),
            // All Hamming distances identical: no linear information.
            Err(_) => examined.push((id, 0.0, false)),
        }
    }
    Ok(CalibrationReport { examined })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate_psm;
    use psm_mining::PropositionTrace;
    use psm_trace::{Bits, Direction, SignalSet};

    /// A synthetic data-dependent IP: one behaviour whose power is
    /// `0.5 * hamming + 1.0`, preceded/followed by an idle behaviour.
    fn data_dependent_setup() -> (FunctionalTrace, PowerTrace, PropositionTrace) {
        let mut signals = SignalSet::new();
        signals.push("data", 8, Direction::Input).unwrap();
        let mut phi = FunctionalTrace::new(signals);
        let mut delta = PowerTrace::new();
        let mut props = Vec::new();
        // Idle: constant input, constant 1 mW.
        for _ in 0..10 {
            phi.push_cycle(vec![Bits::from_u64(0, 8)]).unwrap();
            delta.push(1.0);
        }
        props.extend(std::iter::repeat_n(0u32, 10));
        // Busy: alternating data with varying Hamming distance.
        let pattern = [
            0x00u64, 0xFF, 0x0F, 0xFF, 0x00, 0xF0, 0xFF, 0x3C, 0xC3, 0x00,
        ];
        for (k, &v) in pattern.iter().enumerate() {
            phi.push_cycle(vec![Bits::from_u64(v, 8)]).unwrap();
            let t = 10 + k;
            let h = phi.input_hamming(t) as f64;
            delta.push(0.5 * h + 1.0);
            props.push(1);
        }
        // Tail so the busy behaviour is recognised.
        for _ in 0..3 {
            phi.push_cycle(vec![Bits::from_u64(0x55, 8)]).unwrap();
            delta.push(0.2);
        }
        props.extend(std::iter::repeat_n(2, 3));
        (phi, delta, PropositionTrace::from_indices(&props))
    }

    #[test]
    fn calibrates_data_dependent_state() {
        let (phi, delta, gamma) = data_dependent_setup();
        let mut psm = generate_psm(&gamma, &delta, 0).unwrap();
        // The synthetic trace is tiny; lower the production sample floor.
        let config = CalibrationConfig::default().with_min_samples(8);
        let report = calibrate(&mut psm, &[(&phi, &delta)], &config).unwrap();
        assert_eq!(report.calibrated_count(), 1);
        // The busy state now predicts exactly: 0.5 h + 1.0.
        let busy = psm
            .states()
            .find(|(_, s)| s.output().is_regression())
            .expect("busy state calibrated")
            .1;
        match busy.output() {
            OutputFunction::Regression { slope, intercept } => {
                assert!((slope - 0.5).abs() < 1e-9, "slope {slope}");
                assert!((intercept - 1.0).abs() < 1e-9, "intercept {intercept}");
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn idle_state_untouched() {
        let (phi, delta, gamma) = data_dependent_setup();
        let mut psm = generate_psm(&gamma, &delta, 0).unwrap();
        let config = CalibrationConfig::default().with_min_samples(8);
        calibrate(&mut psm, &[(&phi, &delta)], &config).unwrap();
        let idle = psm
            .states()
            .find(|(_, s)| (s.attrs().mu() - 1.0).abs() < 1e-9)
            .unwrap()
            .1;
        assert!(!idle.output().is_regression());
    }

    #[test]
    fn uncorrelated_noise_not_calibrated() {
        // High σ but power unrelated to input Hamming distance.
        let mut signals = SignalSet::new();
        signals.push("data", 8, Direction::Input).unwrap();
        let mut phi = FunctionalTrace::new(signals);
        let mut delta = PowerTrace::new();
        let mut props = Vec::new();
        let noise = [5.0, 1.0, 4.0, 2.0, 5.5, 0.5, 3.0, 4.5, 1.5, 2.5, 5.0, 1.0];
        for (k, &p) in noise.iter().enumerate() {
            // Constant hamming (alternate 0x00/0xFF) but noisy power.
            phi.push_cycle(vec![Bits::from_u64(if k % 2 == 0 { 0 } else { 0xFF }, 8)])
                .unwrap();
            delta.push(p);
            props.push(0u32);
        }
        for _ in 0..2 {
            phi.push_cycle(vec![Bits::from_u64(0, 8)]).unwrap();
            delta.push(0.1);
        }
        props.extend(std::iter::repeat_n(1, 2));
        let gamma = PropositionTrace::from_indices(&props);
        let mut psm = generate_psm(&gamma, &delta, 0).unwrap();
        let config = CalibrationConfig::default().with_min_samples(8);
        let report = calibrate(&mut psm, &[(&phi, &delta)], &config).unwrap();
        assert_eq!(report.calibrated_count(), 0);
        assert!(!report.examined.is_empty(), "state was examined");
    }

    #[test]
    fn missing_training_trace_is_an_error() {
        let (phi, delta, gamma) = data_dependent_setup();
        let mut psm = generate_psm(&gamma, &delta, 3).unwrap(); // index 3 unknown
        let config = CalibrationConfig::default().with_min_samples(8);
        let r = calibrate(&mut psm, &[(&phi, &delta)], &config);
        assert!(matches!(r, Err(CoreError::MissingTrainingTrace(3))));
    }

    #[test]
    fn config_builders() {
        let c = CalibrationConfig::default()
            .with_sigma_over_mu(0.2)
            .with_min_abs_r(0.9)
            .with_min_samples(16);
        assert_eq!(c.sigma_over_mu(), 0.2);
        assert_eq!(c.min_abs_r(), 0.9);
        assert_eq!(c.min_samples(), 16);
    }
}
