//! Property-based tests of PSM generation and optimisation invariants.

use proptest::prelude::*;
use psm_core::{
    generate_psm, join, mine_xu_assertions, simplify, MergePolicy, PsmSimulator,
};
use psm_mining::PropositionTrace;
use psm_trace::PowerTrace;

/// A proposition trace as run-length phases plus a matching power trace.
fn arb_phases() -> impl Strategy<Value = (PropositionTrace, PowerTrace)> {
    proptest::collection::vec((0u32..5, 0.5f64..10.0, 1usize..8), 2..12).prop_map(|phases| {
        let mut props = Vec::new();
        let mut power = Vec::new();
        for (id, mw, len) in phases {
            for k in 0..len {
                props.push(id);
                power.push(mw + 0.002 * (k % 3) as f64);
            }
        }
        (PropositionTrace::from_indices(&props), power.into_iter().collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn xu_intervals_partition_the_recognised_prefix((gamma, _) in arb_phases()) {
        let mined = mine_xu_assertions(&gamma);
        let mut expected = 0usize;
        for m in &mined {
            prop_assert_eq!(m.start, expected);
            prop_assert!(m.stop >= m.start);
            // Within the interval the left proposition holds throughout.
            for t in m.start..=m.stop {
                prop_assert_eq!(gamma.id(t), m.assertion.left());
            }
            // The right proposition is observed immediately after.
            prop_assert_eq!(gamma.get(m.stop + 1), Some(m.assertion.right()));
            expected = m.stop + 1;
        }
    }

    #[test]
    fn generation_accounts_every_recognised_instant((gamma, delta) in arb_phases()) {
        if let Ok(psm) = generate_psm(&gamma, &delta, 0) {
            let mined = mine_xu_assertions(&gamma);
            let covered: usize = mined.iter().map(|m| m.stop - m.start + 1).sum();
            let total_n: u64 = psm.states().map(|(_, s)| s.attrs().n()).sum();
            prop_assert_eq!(total_n as usize, covered);
        }
    }

    #[test]
    fn simplify_preserves_total_energy((gamma, delta) in arb_phases()) {
        if let Ok(mut psm) = generate_psm(&gamma, &delta, 0) {
            let energy = |p: &psm_core::Psm| -> f64 {
                p.states().map(|(_, s)| s.attrs().mu() * s.attrs().n() as f64).sum()
            };
            let before = energy(&psm);
            simplify(&mut psm, &MergePolicy::default());
            prop_assert!((energy(&psm) - before).abs() < 1e-6 * (1.0 + before.abs()));
        }
    }

    #[test]
    fn simplify_is_idempotent((gamma, delta) in arb_phases()) {
        if let Ok(mut psm) = generate_psm(&gamma, &delta, 0) {
            let policy = MergePolicy::default();
            simplify(&mut psm, &policy);
            let after_first = psm.clone();
            let more = simplify(&mut psm, &policy);
            prop_assert_eq!(more, 0);
            prop_assert_eq!(psm, after_first);
        }
    }

    #[test]
    fn join_preserves_instants_and_energy((gamma, delta) in arb_phases()) {
        if let Ok(psm) = generate_psm(&gamma, &delta, 0) {
            let energy = |p: &psm_core::Psm| -> f64 {
                p.states().map(|(_, s)| s.attrs().mu() * s.attrs().n() as f64).sum()
            };
            let count = |p: &psm_core::Psm| -> u64 {
                p.states().map(|(_, s)| s.attrs().n()).sum()
            };
            let (e0, n0) = (energy(&psm), count(&psm));
            let joined = join(&[psm], &MergePolicy::default());
            prop_assert_eq!(count(&joined), n0);
            prop_assert!((energy(&joined) - e0).abs() < 1e-6 * (1.0 + e0.abs()));
            // Join never increases the state count.
            prop_assert!(joined.state_count() as u64 <= n0);
        }
    }

    #[test]
    fn deterministic_replay_of_training_trace_never_desyncs_midway((gamma, delta) in arb_phases()) {
        // Replaying the exact training observations through a deterministic
        // chain PSM loses sync only in the dropped tail, never before.
        if let Ok(psm) = generate_psm(&gamma, &delta, 0) {
            if let Ok(sim) = PsmSimulator::new(&psm) {
                let obs: Vec<_> = gamma.iter().map(Some).collect();
                let hamming = vec![0u32; obs.len()];
                let outcome = sim.run(&obs, &hamming);
                let mined = mine_xu_assertions(&gamma);
                let recognised_until = mined.last().expect("non-empty").stop;
                let tail = gamma.len() - 1 - recognised_until;
                prop_assert!(
                    outcome.sync_loss_instants <= tail + 1,
                    "lost {} instants with a tail of {}",
                    outcome.sync_loss_instants,
                    tail
                );
            }
        }
    }
}
