//! Randomised property tests of PSM generation and optimisation
//! invariants, driven by the workspace PRNG so runs are deterministic and
//! offline.

use psm_core::{generate_psm, join, mine_xu_assertions, simplify, MergePolicy, PsmSimulator};
use psm_mining::PropositionTrace;
use psm_prng::Prng;
use psm_trace::PowerTrace;

const CASES: usize = 128;

/// A proposition trace as run-length phases plus a matching power trace.
fn random_phases(rng: &mut Prng) -> (PropositionTrace, PowerTrace) {
    let n = 2 + rng.range_usize(0..10);
    let mut props = Vec::new();
    let mut power = Vec::new();
    for _ in 0..n {
        let id = rng.range_u32(0..5);
        let mw = rng.f64_in(0.5, 10.0);
        let len = 1 + rng.range_usize(0..7);
        for k in 0..len {
            props.push(id);
            power.push(mw + 0.002 * (k % 3) as f64);
        }
    }
    (
        PropositionTrace::from_indices(&props),
        power.into_iter().collect(),
    )
}

#[test]
fn xu_intervals_partition_the_recognised_prefix() {
    let mut rng = Prng::seed_from_u64(0xC04E_0001);
    for _ in 0..CASES {
        let (gamma, _) = random_phases(&mut rng);
        let mined = mine_xu_assertions(&gamma);
        let mut expected = 0usize;
        for m in &mined {
            assert_eq!(m.start, expected);
            assert!(m.stop >= m.start);
            // Within the interval the left proposition holds throughout.
            for t in m.start..=m.stop {
                assert_eq!(gamma.id(t), m.assertion.left());
            }
            // The right proposition is observed immediately after.
            assert_eq!(gamma.get(m.stop + 1), Some(m.assertion.right()));
            expected = m.stop + 1;
        }
    }
}

#[test]
fn generation_accounts_every_recognised_instant() {
    let mut rng = Prng::seed_from_u64(0xC04E_0002);
    for _ in 0..CASES {
        let (gamma, delta) = random_phases(&mut rng);
        if let Ok(psm) = generate_psm(&gamma, &delta, 0) {
            let mined = mine_xu_assertions(&gamma);
            let covered: usize = mined.iter().map(|m| m.stop - m.start + 1).sum();
            let total_n: u64 = psm.states().map(|(_, s)| s.attrs().n()).sum();
            assert_eq!(total_n as usize, covered);
        }
    }
}

#[test]
fn simplify_preserves_total_energy() {
    let mut rng = Prng::seed_from_u64(0xC04E_0003);
    for _ in 0..CASES {
        let (gamma, delta) = random_phases(&mut rng);
        if let Ok(mut psm) = generate_psm(&gamma, &delta, 0) {
            let energy = |p: &psm_core::Psm| -> f64 {
                p.states()
                    .map(|(_, s)| s.attrs().mu() * s.attrs().n() as f64)
                    .sum()
            };
            let before = energy(&psm);
            simplify(&mut psm, &MergePolicy::default());
            assert!((energy(&psm) - before).abs() < 1e-6 * (1.0 + before.abs()));
        }
    }
}

#[test]
fn simplify_is_idempotent() {
    let mut rng = Prng::seed_from_u64(0xC04E_0004);
    for _ in 0..CASES {
        let (gamma, delta) = random_phases(&mut rng);
        if let Ok(mut psm) = generate_psm(&gamma, &delta, 0) {
            let policy = MergePolicy::default();
            simplify(&mut psm, &policy);
            let after_first = psm.clone();
            let more = simplify(&mut psm, &policy);
            assert_eq!(more, 0);
            assert_eq!(psm, after_first);
        }
    }
}

#[test]
fn join_preserves_instants_and_energy() {
    let mut rng = Prng::seed_from_u64(0xC04E_0005);
    for _ in 0..CASES {
        let (gamma, delta) = random_phases(&mut rng);
        if let Ok(psm) = generate_psm(&gamma, &delta, 0) {
            let energy = |p: &psm_core::Psm| -> f64 {
                p.states()
                    .map(|(_, s)| s.attrs().mu() * s.attrs().n() as f64)
                    .sum()
            };
            let count = |p: &psm_core::Psm| -> u64 { p.states().map(|(_, s)| s.attrs().n()).sum() };
            let (e0, n0) = (energy(&psm), count(&psm));
            let joined = join(&[psm], &MergePolicy::default());
            assert_eq!(count(&joined), n0);
            assert!((energy(&joined) - e0).abs() < 1e-6 * (1.0 + e0.abs()));
            // Join never increases the state count.
            assert!(joined.state_count() as u64 <= n0);
        }
    }
}

#[test]
fn deterministic_replay_of_training_trace_never_desyncs_midway() {
    let mut rng = Prng::seed_from_u64(0xC04E_0006);
    for _ in 0..CASES {
        let (gamma, delta) = random_phases(&mut rng);
        // Replaying the exact training observations through a deterministic
        // chain PSM loses sync only in the dropped tail, never before.
        if let Ok(psm) = generate_psm(&gamma, &delta, 0) {
            if let Ok(sim) = PsmSimulator::new(&psm) {
                let obs: Vec<_> = gamma.iter().map(Some).collect();
                let hamming = vec![0u32; obs.len()];
                let outcome = sim.run(&obs, &hamming);
                let mined = mine_xu_assertions(&gamma);
                let recognised_until = mined.last().expect("non-empty").stop;
                let tail = gamma.len() - 1 - recognised_until;
                assert!(
                    outcome.sync_loss_instants <= tail + 1,
                    "lost {} instants with a tail of {}",
                    outcome.sync_loss_instants,
                    tail
                );
            }
        }
    }
}
