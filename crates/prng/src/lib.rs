//! Dependency-free deterministic pseudo-random number generation.
//!
//! The psmgen workspace must build and test with **no network access**, so it
//! cannot depend on the `rand` crate. This crate provides the one generator
//! the workspace needs: a small, fast, seedable PRNG with a fixed algorithm
//! (xoshiro256++ seeded via SplitMix64) so that every stimulus, noise stream
//! and randomised test is reproducible bit-for-bit across platforms and
//! releases.
//!
//! The paper's experimental setup (Danese et al., DATE 2016) relies on
//! regenerable testbenches — the *short-TS*/*long-TS* stimuli of Table I —
//! and on a repeatable noise model for the golden power traces; determinism
//! is therefore a functional requirement here, not a convenience.
//!
//! # Examples
//!
//! ```
//! use psm_prng::Prng;
//!
//! let mut a = Prng::seed_from_u64(42);
//! let mut b = Prng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//!
//! let x = a.next_f64();
//! assert!((0.0..1.0).contains(&x));
//! ```
#![deny(missing_docs)]

use std::ops::Range;

/// A seedable xoshiro256++ generator.
///
/// Not cryptographically secure — it drives testbench stimuli, measurement
/// noise and property tests, nothing security-sensitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into the xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Prng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Equal seeds yield equal streams; nearby seeds yield uncorrelated
    /// streams (the seed is diffused through SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Prng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of [`next_u64`](Self::next_u64)).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Next 16-bit output.
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// Next 8-bit output.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Next 128-bit output (two consecutive 64-bit draws, low word first).
    pub fn next_u128(&mut self) -> u128 {
        let lo = self.next_u64() as u128;
        let hi = self.next_u64() as u128;
        lo | (hi << 64)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad interval");
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform `u64` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Multiply-shift bounds the draw into the span; the bias for the
        // spans used in this workspace (≪ 2^64) is immaterial.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn range_usize(&mut self, range: Range<usize>) -> usize {
        self.range_u64(range.start as u64..range.end as u64) as usize
    }

    /// Uniform `u32` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    pub fn range_u32(&mut self, range: Range<u32>) -> u32 {
        self.range_u64(range.start as u64..range.end as u64) as u32
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// `p` outside `[0, 1]` saturates (≤ 0 is always `false`, ≥ 1 always
    /// `true`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range_usize(0..xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn f64_bounds_and_mean() {
        let mut rng = Prng::seed_from_u64(1234);
        let mut sum = 0.0;
        const N: usize = 20_000;
        for _ in 0..N {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / N as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Prng::seed_from_u64(99);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2_000 {
            let v = rng.range_usize(3..7);
            assert!((3..7).contains(&v));
            seen_low |= v == 3;
            seen_high |= v == 6;
        }
        assert!(seen_low && seen_high, "range endpoints never drawn");
    }

    #[test]
    fn chance_saturates() {
        let mut rng = Prng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.chance(0.0));
            assert!(rng.chance(1.0));
        }
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn pick_covers_slice() {
        let mut rng = Prng::seed_from_u64(3);
        let xs = ["a", "b", "c"];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let p = rng.pick(&xs);
            seen[xs.iter().position(|x| x == p).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn known_answer_vector() {
        // Locks the algorithm: changing the generator silently would change
        // every regenerated testbench in the workspace.
        let mut rng = Prng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }
}
