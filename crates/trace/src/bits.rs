//! Arbitrary-width bit-vectors.

use crate::TraceError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A fixed-width bit-vector value, the unit of every signal sample.
///
/// Widths are arbitrary (the paper's AES benchmark has a 260-bit input
/// interface); storage is little-endian `u64` words with unused high bits of
/// the top word kept at zero, so equality, hashing and Hamming distance are
/// plain word-wise operations.
///
/// Two `Bits` of *different widths* are never equal and cannot be combined
/// with bitwise operators (the checked methods return
/// [`TraceError::WidthMismatch`]; the operator impls panic, mirroring how
/// HDL simulators treat width mismatches as elaboration errors).
///
/// # Examples
///
/// ```
/// use psm_trace::Bits;
///
/// let a = Bits::from_u64(0b1010, 4);
/// let b = Bits::from_u64(0b0110, 4);
/// assert_eq!(a.hamming_distance(&b)?, 2);
/// assert_eq!((a ^ b).count_ones(), 2);
/// # Ok::<(), psm_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bits {
    width: usize,
    words: Vec<u64>,
}

impl Bits {
    /// Creates an all-zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero; zero-width signals are not representable.
    pub fn zero(width: usize) -> Self {
        assert!(width > 0, "zero-width Bits are not representable");
        Bits {
            width,
            words: vec![0; width.div_ceil(64)],
        }
    }

    /// Creates an all-ones value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn ones(width: usize) -> Self {
        let mut b = Bits::zero(width);
        for w in &mut b.words {
            *w = u64::MAX;
        }
        b.mask_top();
        b
    }

    /// Creates a value of the given width from the low bits of `value`.
    ///
    /// Bits of `value` above `width` are discarded (truncation, matching HDL
    /// assignment semantics).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn from_u64(value: u64, width: usize) -> Self {
        let mut b = Bits::zero(width);
        b.words[0] = value;
        b.mask_top();
        b
    }

    /// Creates a single-bit value from a boolean.
    pub fn from_bool(value: bool) -> Self {
        Bits::from_u64(value as u64, 1)
    }

    /// Creates a value from little-endian 64-bit words.
    ///
    /// Words beyond the width are rejected only implicitly: excess high bits
    /// are truncated.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `words` has fewer words than the width
    /// requires.
    pub fn from_words(words: &[u64], width: usize) -> Self {
        assert!(width > 0, "zero-width Bits are not representable");
        let needed = width.div_ceil(64);
        assert!(
            words.len() >= needed,
            "need {needed} word(s) for width {width}, got {}",
            words.len()
        );
        let mut b = Bits {
            width,
            words: words[..needed].to_vec(),
        };
        b.mask_top();
        b
    }

    /// Creates a value from bytes, least-significant byte first.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `bytes` cannot cover it.
    pub fn from_le_bytes(bytes: &[u8], width: usize) -> Self {
        assert!(width > 0, "zero-width Bits are not representable");
        assert!(
            bytes.len() * 8 >= width,
            "need {} byte(s) for width {width}, got {}",
            width.div_ceil(8),
            bytes.len()
        );
        let mut b = Bits::zero(width);
        for (i, &byte) in bytes.iter().enumerate().take(width.div_ceil(8)) {
            b.words[i / 8] |= (byte as u64) << (8 * (i % 8));
        }
        b.mask_top();
        b
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The backing words, least-significant first; bits above `width` are
    /// always zero.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Reads bit `index` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    pub fn bit(&self, index: usize) -> bool {
        assert!(
            index < self.width,
            "bit {index} out of width {}",
            self.width
        );
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets bit `index` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `index >= width`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        assert!(
            index < self.width,
            "bit {index} out of width {}",
            self.width
        );
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Returns `true` if all bits are zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Hamming distance to another value of the same width.
    ///
    /// This is the `x` of the paper's §IV regression calibration: the number
    /// of toggling input bits between consecutive instants predicts the
    /// dynamic power of data-dependent states.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::WidthMismatch`] when widths differ.
    pub fn hamming_distance(&self, other: &Bits) -> Result<u32, TraceError> {
        if self.width != other.width {
            return Err(TraceError::WidthMismatch {
                left: self.width,
                right: other.width,
            });
        }
        Ok(self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum())
    }

    /// Converts to `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Overflow`] when the value is wider than 64 bits
    /// *and* any high bit is set. Values declared wider than 64 bits whose
    /// numeric value fits are converted successfully.
    pub fn to_u64(&self) -> Result<u64, TraceError> {
        if self.words[1..].iter().any(|&w| w != 0) {
            return Err(TraceError::Overflow {
                width: self.width,
                max: 64,
            });
        }
        Ok(self.words[0])
    }

    /// Little-endian bytes covering the full width.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.width.div_ceil(8));
        for i in 0..self.width.div_ceil(8) {
            out.push(((self.words[i / 8] >> (8 * (i % 8))) & 0xFF) as u8);
        }
        out
    }

    /// Extracts the bit range `[lo, lo + width)` as a new value.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds this value's width or `width` is zero.
    pub fn slice(&self, lo: usize, width: usize) -> Bits {
        assert!(width > 0, "zero-width slice");
        assert!(
            lo + width <= self.width,
            "slice [{lo}, {}) out of width {}",
            lo + width,
            self.width
        );
        let mut out = Bits::zero(width);
        for i in 0..width {
            if self.bit(lo + i) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Concatenates `high` above `self` (self occupies the low bits).
    pub fn concat(&self, high: &Bits) -> Bits {
        let mut out = Bits::zero(self.width + high.width);
        for i in 0..self.width {
            if self.bit(i) {
                out.set_bit(i, true);
            }
        }
        for i in 0..high.width {
            if high.bit(i) {
                out.set_bit(self.width + i, true);
            }
        }
        out
    }

    /// Parses a Verilog-style literal `<width>'h<hex>` as produced by this
    /// type's [`Display`](std::fmt::Display) implementation.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Parse`] (with line 0) on malformed input.
    ///
    /// # Examples
    ///
    /// ```
    /// use psm_trace::Bits;
    /// let b = Bits::from_verilog_str("8'h2a")?;
    /// assert_eq!(b.to_u64()?, 0x2a);
    /// assert_eq!(b.width(), 8);
    /// assert_eq!(Bits::from_verilog_str(&b.to_string())?, b);
    /// # Ok::<(), psm_trace::TraceError>(())
    /// ```
    pub fn from_verilog_str(text: &str) -> Result<Bits, TraceError> {
        let bad = |message: &str| TraceError::Parse {
            line: 0,
            message: message.to_owned(),
        };
        let (width_str, rest) = text
            .split_once('\'')
            .ok_or_else(|| bad("missing width separator `'`"))?;
        let width: usize = width_str.parse().map_err(|_| bad("bad width prefix"))?;
        if width == 0 {
            return Err(TraceError::ZeroWidth);
        }
        let hex = rest
            .strip_prefix('h')
            .ok_or_else(|| bad("only hex literals (`'h`) are supported"))?;
        if hex.is_empty() || hex.len() != width.div_ceil(4) {
            return Err(bad("hex digit count must match the width"));
        }
        let mut bits = Bits::zero(width);
        for (i, c) in hex.chars().rev().enumerate() {
            let nib = c.to_digit(16).ok_or_else(|| bad("invalid hex digit"))? as u64;
            for b in 0..4 {
                let idx = i * 4 + b;
                if idx < width && nib >> b & 1 == 1 {
                    bits.set_bit(idx, true);
                }
            }
        }
        Ok(bits)
    }

    /// Checked bitwise XOR.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::WidthMismatch`] when widths differ.
    pub fn checked_xor(&self, other: &Bits) -> Result<Bits, TraceError> {
        self.zip_words(other, |a, b| a ^ b)
    }

    /// Checked bitwise AND.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::WidthMismatch`] when widths differ.
    pub fn checked_and(&self, other: &Bits) -> Result<Bits, TraceError> {
        self.zip_words(other, |a, b| a & b)
    }

    /// Checked bitwise OR.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::WidthMismatch`] when widths differ.
    pub fn checked_or(&self, other: &Bits) -> Result<Bits, TraceError> {
        self.zip_words(other, |a, b| a | b)
    }

    fn zip_words(&self, other: &Bits, f: impl Fn(u64, u64) -> u64) -> Result<Bits, TraceError> {
        if self.width != other.width {
            return Err(TraceError::WidthMismatch {
                left: self.width,
                right: other.width,
            });
        }
        let mut out = self.clone();
        for (w, &o) in out.words.iter_mut().zip(&other.words) {
            *w = f(*w, o);
        }
        out.mask_top();
        Ok(out)
    }

    /// Numeric comparison of two values of the same width.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::WidthMismatch`] when widths differ.
    pub fn compare(&self, other: &Bits) -> Result<Ordering, TraceError> {
        if self.width != other.width {
            return Err(TraceError::WidthMismatch {
                left: self.width,
                right: other.width,
            });
        }
        for (a, b) in self.words.iter().rev().zip(other.words.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return Ok(ord),
            }
        }
        Ok(Ordering::Equal)
    }

    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }
}

impl fmt::Display for Bits {
    /// Formats as `<width>'h<hex>` in Verilog literal style.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h", self.width)?;
        let nibbles = self.width.div_ceil(4);
        for i in (0..nibbles).rev() {
            let mut nib = 0u8;
            for b in 0..4 {
                let idx = i * 4 + b;
                if idx < self.width && self.bit(idx) {
                    nib |= 1 << b;
                }
            }
            write!(f, "{nib:x}")?;
        }
        Ok(())
    }
}

impl BitXor for Bits {
    type Output = Bits;
    /// # Panics
    ///
    /// Panics when widths differ; use [`Bits::checked_xor`] to recover.
    fn bitxor(self, rhs: Bits) -> Bits {
        self.checked_xor(&rhs).expect("width mismatch in `^`")
    }
}

impl BitAnd for Bits {
    type Output = Bits;
    /// # Panics
    ///
    /// Panics when widths differ; use [`Bits::checked_and`] to recover.
    fn bitand(self, rhs: Bits) -> Bits {
        self.checked_and(&rhs).expect("width mismatch in `&`")
    }
}

impl BitOr for Bits {
    type Output = Bits;
    /// # Panics
    ///
    /// Panics when widths differ; use [`Bits::checked_or`] to recover.
    fn bitor(self, rhs: Bits) -> Bits {
        self.checked_or(&rhs).expect("width mismatch in `|`")
    }
}

impl Not for Bits {
    type Output = Bits;
    fn not(mut self) -> Bits {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_top();
        self
    }
}

impl From<bool> for Bits {
    fn from(b: bool) -> Self {
        Bits::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_truncation() {
        let b = Bits::from_u64(0xFF, 4);
        assert_eq!(b.to_u64().unwrap(), 0xF);
        assert_eq!(b.width(), 4);
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn wide_values_round_trip_bytes() {
        let bytes: Vec<u8> = (0u8..32).collect(); // 256 bits
        let b = Bits::from_le_bytes(&bytes, 256);
        assert_eq!(b.to_le_bytes(), bytes);
        assert_eq!(b.width(), 256);
    }

    #[test]
    fn bit_get_set() {
        let mut b = Bits::zero(130);
        b.set_bit(0, true);
        b.set_bit(129, true);
        assert!(b.bit(0));
        assert!(b.bit(129));
        assert!(!b.bit(64));
        assert_eq!(b.count_ones(), 2);
        b.set_bit(129, false);
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn hamming_distance_matches_xor_popcount() {
        let a = Bits::from_u64(0b1100_1010, 8);
        let b = Bits::from_u64(0b0110_0110, 8);
        let d = a.hamming_distance(&b).unwrap();
        assert_eq!(d, a.checked_xor(&b).unwrap().count_ones());
        assert_eq!(d, 4);
    }

    #[test]
    fn hamming_rejects_width_mismatch() {
        let a = Bits::zero(4);
        let b = Bits::zero(5);
        assert!(matches!(
            a.hamming_distance(&b),
            Err(TraceError::WidthMismatch { left: 4, right: 5 })
        ));
    }

    #[test]
    fn to_u64_overflow_only_when_high_bits_set() {
        let ok = Bits::from_u64(7, 100);
        assert_eq!(ok.to_u64().unwrap(), 7);
        let mut wide = Bits::zero(100);
        wide.set_bit(80, true);
        assert!(matches!(wide.to_u64(), Err(TraceError::Overflow { .. })));
    }

    #[test]
    fn ones_respects_width() {
        let b = Bits::ones(7);
        assert_eq!(b.to_u64().unwrap(), 0x7F);
        assert_eq!(b.count_ones(), 7);
        let b = Bits::ones(64);
        assert_eq!(b.to_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn not_respects_width() {
        let b = !Bits::zero(5);
        assert_eq!(b.to_u64().unwrap(), 0b11111);
    }

    #[test]
    fn slice_and_concat_round_trip() {
        let b = Bits::from_u64(0xABCD, 16);
        let lo = b.slice(0, 8);
        let hi = b.slice(8, 8);
        assert_eq!(lo.to_u64().unwrap(), 0xCD);
        assert_eq!(hi.to_u64().unwrap(), 0xAB);
        assert_eq!(lo.concat(&hi), b);
    }

    #[test]
    fn numeric_compare() {
        let a = Bits::from_u64(3, 70);
        let mut b = Bits::from_u64(3, 70);
        assert_eq!(a.compare(&b).unwrap(), Ordering::Equal);
        b.set_bit(65, true);
        assert_eq!(a.compare(&b).unwrap(), Ordering::Less);
        assert_eq!(b.compare(&a).unwrap(), Ordering::Greater);
    }

    #[test]
    fn display_verilog_style() {
        assert_eq!(Bits::from_u64(0x2A, 8).to_string(), "8'h2a");
        assert_eq!(Bits::from_u64(1, 1).to_string(), "1'h1");
        assert_eq!(Bits::from_u64(0x5, 3).to_string(), "3'h5");
    }

    #[test]
    fn different_widths_never_equal() {
        assert_ne!(Bits::from_u64(1, 2), Bits::from_u64(1, 3));
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn zero_width_panics() {
        let _ = Bits::zero(0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn xor_operator_panics_on_mismatch() {
        let _ = Bits::zero(3) ^ Bits::zero(4);
    }
}
