//! Signal declarations: the PI/PO interface of a model.

use crate::TraceError;
use std::fmt;

/// Direction of a primary signal as seen from the IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// A primary input (PI).
    Input,
    /// A primary output (PO).
    Output,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Input => f.write_str("input"),
            Direction::Output => f.write_str("output"),
        }
    }
}

/// Opaque, cheap handle identifying a signal within one [`SignalSet`].
///
/// IDs are dense indices assigned in declaration order, so they can index
/// per-cycle value vectors directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) usize);

impl SignalId {
    /// The dense index of this signal in declaration order.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Declaration of one primary signal: name, bit width and direction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignalDecl {
    name: String,
    width: usize,
    direction: Direction,
}

impl SignalDecl {
    pub(crate) fn new(name: String, width: usize, direction: Direction) -> Self {
        SignalDecl {
            name,
            width,
            direction,
        }
    }

    /// Signal name (unique within its [`SignalSet`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Input or output.
    pub fn direction(&self) -> Direction {
        self.direction
    }
}

impl fmt::Display for SignalDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}:0] {}", self.direction, self.width - 1, self.name)
    }
}

/// The ordered set of primary inputs and outputs of a model.
///
/// This is the `V` of the paper's Def. 2: the variables over which atomic
/// propositions predicate. Declaration order is preserved and defines the
/// column order of a [`FunctionalTrace`](crate::FunctionalTrace).
///
/// # Examples
///
/// ```
/// use psm_trace::{Direction, SignalSet};
///
/// let mut set = SignalSet::new();
/// let clk_en = set.push("clk_en", 1, Direction::Input)?;
/// let data = set.push("data", 32, Direction::Output)?;
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.decl(clk_en).name(), "clk_en");
/// assert_eq!(set.by_name("data"), Some(data));
/// assert_eq!(set.input_width(), 1);
/// assert_eq!(set.output_width(), 32);
/// # Ok::<(), psm_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SignalSet {
    decls: Vec<SignalDecl>,
}

impl SignalSet {
    /// Creates an empty signal set.
    pub fn new() -> Self {
        SignalSet::default()
    }

    /// Declares a signal and returns its handle.
    ///
    /// # Errors
    ///
    /// * [`TraceError::DuplicateSignal`] when `name` is already declared;
    /// * [`TraceError::ZeroWidth`] when `width` is zero.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        width: usize,
        direction: Direction,
    ) -> Result<SignalId, TraceError> {
        let name = name.into();
        if width == 0 {
            return Err(TraceError::ZeroWidth);
        }
        if self.decls.iter().any(|d| d.name == name) {
            return Err(TraceError::DuplicateSignal(name));
        }
        self.decls.push(SignalDecl {
            name,
            width,
            direction,
        });
        Ok(SignalId(self.decls.len() - 1))
    }

    /// Number of declared signals.
    pub fn len(&self) -> usize {
        self.decls.len()
    }

    /// Returns `true` when no signal is declared.
    pub fn is_empty(&self) -> bool {
        self.decls.is_empty()
    }

    /// Declaration of a signal.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this set.
    pub fn decl(&self, id: SignalId) -> &SignalDecl {
        &self.decls[id.0]
    }

    /// Looks a signal up by name.
    pub fn by_name(&self, name: &str) -> Option<SignalId> {
        self.decls.iter().position(|d| d.name == name).map(SignalId)
    }

    /// Iterates over `(id, declaration)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (SignalId, &SignalDecl)> {
        self.decls.iter().enumerate().map(|(i, d)| (SignalId(i), d))
    }

    /// IDs of all inputs, in declaration order.
    pub fn inputs(&self) -> Vec<SignalId> {
        self.of_direction(Direction::Input)
    }

    /// IDs of all outputs, in declaration order.
    pub fn outputs(&self) -> Vec<SignalId> {
        self.of_direction(Direction::Output)
    }

    fn of_direction(&self, dir: Direction) -> Vec<SignalId> {
        self.iter()
            .filter(|(_, d)| d.direction() == dir)
            .map(|(id, _)| id)
            .collect()
    }

    /// Total bit width of all inputs (paper Table I, column *PIs*).
    pub fn input_width(&self) -> usize {
        self.width_of(Direction::Input)
    }

    /// Total bit width of all outputs (paper Table I, column *POs*).
    pub fn output_width(&self) -> usize {
        self.width_of(Direction::Output)
    }

    fn width_of(&self, dir: Direction) -> usize {
        self.decls
            .iter()
            .filter(|d| d.direction == dir)
            .map(|d| d.width)
            .sum()
    }
}

impl<'a> IntoIterator for &'a SignalSet {
    type Item = (SignalId, &'a SignalDecl);
    type IntoIter = Box<dyn Iterator<Item = (SignalId, &'a SignalDecl)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_signals() -> (SignalSet, SignalId, SignalId, SignalId) {
        let mut s = SignalSet::new();
        let a = s.push("a", 1, Direction::Input).unwrap();
        let b = s.push("b", 8, Direction::Input).unwrap();
        let c = s.push("c", 16, Direction::Output).unwrap();
        (s, a, b, c)
    }

    #[test]
    fn declaration_order_is_preserved() {
        let (s, a, b, c) = three_signals();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.index(), 2);
        let names: Vec<&str> = s.iter().map(|(_, d)| d.name()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut s = SignalSet::new();
        s.push("x", 1, Direction::Input).unwrap();
        assert!(matches!(
            s.push("x", 2, Direction::Output),
            Err(TraceError::DuplicateSignal(_))
        ));
    }

    #[test]
    fn zero_width_rejected() {
        let mut s = SignalSet::new();
        assert!(matches!(
            s.push("x", 0, Direction::Input),
            Err(TraceError::ZeroWidth)
        ));
    }

    #[test]
    fn direction_partition_and_widths() {
        let (s, a, b, c) = three_signals();
        assert_eq!(s.inputs(), vec![a, b]);
        assert_eq!(s.outputs(), vec![c]);
        assert_eq!(s.input_width(), 9);
        assert_eq!(s.output_width(), 16);
    }

    #[test]
    fn lookup_by_name() {
        let (s, _, b, _) = three_signals();
        assert_eq!(s.by_name("b"), Some(b));
        assert_eq!(s.by_name("nope"), None);
    }

    #[test]
    fn display_formats() {
        let (s, a, _, c) = three_signals();
        assert_eq!(s.decl(a).to_string(), "input [0:0] a");
        assert_eq!(s.decl(c).to_string(), "output [15:0] c");
        assert_eq!(a.to_string(), "s0");
    }
}
