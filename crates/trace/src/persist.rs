//! [`Persist`] implementations for the trace substrate.
//!
//! These are the leaf encodings of the facade's `TrainedModel` JSON format:
//! bit-vectors and signal declarations. `Bits` words are `u64` and must
//! round-trip exactly, which is why the document model distinguishes
//! integers from floats.

use crate::{Bits, Direction, FunctionalTrace, SignalDecl, SignalId, SignalSet};
use psm_persist::{JsonValue, Persist, PersistError};

impl Persist for Bits {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("width", JsonValue::from(self.width())),
            (
                "words",
                JsonValue::arr(self.as_words().iter().map(|&w| JsonValue::from(w))),
            ),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        let width = v.usize_field("width")?;
        if width == 0 {
            return Err(PersistError::schema("Bits width must be non-zero"));
        }
        let words: Vec<u64> = v
            .arr_field("words")?
            .iter()
            .map(JsonValue::as_u64)
            .collect::<Result<_, _>>()?;
        if words.len() != width.div_ceil(64) {
            return Err(PersistError::schema(format!(
                "Bits of width {width} needs {} word(s), found {}",
                width.div_ceil(64),
                words.len()
            )));
        }
        let bits = Bits::from_words(&words, width);
        if bits.as_words() != words {
            return Err(PersistError::schema(
                "Bits words have bits set above the declared width",
            ));
        }
        Ok(bits)
    }
}

impl Persist for Direction {
    fn to_json(&self) -> JsonValue {
        JsonValue::from(match self {
            Direction::Input => "in",
            Direction::Output => "out",
        })
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        match v.as_str()? {
            "in" => Ok(Direction::Input),
            "out" => Ok(Direction::Output),
            other => Err(PersistError::schema(format!(
                "unknown signal direction {other:?}"
            ))),
        }
    }
}

impl Persist for SignalId {
    fn to_json(&self) -> JsonValue {
        JsonValue::from(self.index())
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        Ok(SignalId(v.as_usize()?))
    }
}

impl Persist for SignalDecl {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("name", JsonValue::from(self.name())),
            ("width", JsonValue::from(self.width())),
            ("dir", self.direction().to_json()),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        // Validation (non-zero width) happens when the decl is pushed into a
        // SignalSet; a bare decl only checks its own fields.
        let width = v.usize_field("width")?;
        if width == 0 {
            return Err(PersistError::schema("signal width must be non-zero"));
        }
        Ok(SignalDecl::new(
            v.str_field("name")?.to_owned(),
            width,
            Direction::from_json(v.field("dir")?)?,
        ))
    }
}

impl Persist for SignalSet {
    fn to_json(&self) -> JsonValue {
        JsonValue::arr(self.iter().map(|(_, d)| d.to_json()))
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        let mut set = SignalSet::new();
        for item in v.as_arr()? {
            let decl = SignalDecl::from_json(item)?;
            set.push(decl.name().to_owned(), decl.width(), decl.direction())
                .map_err(|e| PersistError::schema(format!("invalid signal set: {e}")))?;
        }
        Ok(set)
    }
}

impl Persist for FunctionalTrace {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("signals", self.signals().to_json()),
            (
                "cycles",
                JsonValue::arr(
                    self.iter()
                        .map(|cycle| JsonValue::arr(cycle.iter().map(Persist::to_json))),
                ),
            ),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        let signals = SignalSet::from_json(v.field("signals")?)?;
        let mut trace = FunctionalTrace::new(signals);
        for (t, cycle) in v.arr_field("cycles")?.iter().enumerate() {
            let values: Vec<Bits> = cycle
                .as_arr()?
                .iter()
                .map(Bits::from_json)
                .collect::<Result<_, _>>()?;
            trace
                .push_cycle(values)
                .map_err(|e| PersistError::schema(format!("invalid cycle {t}: {e}")))?;
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(value: &T) {
        let text = value.to_json().render();
        let back = T::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(&back, value, "round trip through {text}");
    }

    #[test]
    fn bits_round_trip() {
        round_trip(&Bits::from_bool(true));
        round_trip(&Bits::from_u64(0xDEAD_BEEF, 37));
        round_trip(&Bits::from_words(&[u64::MAX, u64::MAX, 0x3], 130));
    }

    #[test]
    fn bits_reject_overwide_words() {
        let doc = JsonValue::parse(r#"{"width":4,"words":[255]}"#).unwrap();
        assert!(Bits::from_json(&doc).is_err());
        let doc = JsonValue::parse(r#"{"width":4,"words":[1,2]}"#).unwrap();
        assert!(Bits::from_json(&doc).is_err());
        let doc = JsonValue::parse(r#"{"width":0,"words":[]}"#).unwrap();
        assert!(Bits::from_json(&doc).is_err());
    }

    #[test]
    fn signal_set_round_trip() {
        let mut set = SignalSet::new();
        set.push("clk_en", 1, Direction::Input).unwrap();
        set.push("data", 32, Direction::Output).unwrap();
        round_trip(&set);
    }

    #[test]
    fn signal_set_rejects_duplicates() {
        let doc = JsonValue::parse(
            r#"[{"name":"a","width":1,"dir":"in"},{"name":"a","width":2,"dir":"out"}]"#,
        )
        .unwrap();
        assert!(SignalSet::from_json(&doc).is_err());
    }

    #[test]
    fn direction_rejects_unknown() {
        let doc = JsonValue::parse(r#""sideways""#).unwrap();
        assert!(Direction::from_json(&doc).is_err());
    }

    #[test]
    fn functional_trace_round_trip() {
        let mut set = SignalSet::new();
        set.push("en", 1, Direction::Input).unwrap();
        set.push("q", 8, Direction::Output).unwrap();
        let mut trace = FunctionalTrace::new(set);
        trace
            .push_cycle(vec![Bits::from_bool(true), Bits::from_u64(0x10, 8)])
            .unwrap();
        trace
            .push_cycle(vec![Bits::from_bool(false), Bits::from_u64(0x13, 8)])
            .unwrap();
        round_trip(&trace);
    }

    #[test]
    fn functional_trace_rejects_malformed_cycles() {
        // Cycle 1 has the wrong arity.
        let doc = JsonValue::parse(
            r#"{"signals":[{"name":"a","width":1,"dir":"in"}],
                "cycles":[[{"width":1,"words":[1]}],[]]}"#,
        )
        .unwrap();
        let err = FunctionalTrace::from_json(&doc).unwrap_err();
        assert!(err.to_string().contains("cycle 1"), "{err}");
    }
}
