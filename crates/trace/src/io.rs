//! Trace serialisation: CSV for functional/power traces, VCD for waveform
//! viewers.
//!
//! The formats are intentionally simple — they exist so the examples and
//! benchmark binaries can dump their training traces for inspection with
//! standard EDA tooling (GTKWave reads the VCD output) and spreadsheets.

use crate::{FunctionalTrace, PowerTrace, TraceError};
use std::io::{BufRead, Write};

/// Writes a functional trace as CSV: a header of `time,<signal>…` followed
/// by one row per instant with hex-formatted values.
///
/// # Errors
///
/// Propagates I/O failures as [`TraceError::Io`].
///
/// # Examples
///
/// ```
/// use psm_trace::{Bits, Direction, FunctionalTrace, SignalSet, write_functional_csv};
///
/// let mut s = SignalSet::new();
/// s.push("en", 1, Direction::Input)?;
/// let mut t = FunctionalTrace::new(s);
/// t.push_cycle(vec![Bits::from_bool(true)])?;
///
/// let mut out = Vec::new();
/// write_functional_csv(&t, &mut out)?;
/// let text = String::from_utf8(out).expect("csv is utf-8");
/// assert_eq!(text, "time,en\n0,1'h1\n");
/// # Ok::<(), psm_trace::TraceError>(())
/// ```
pub fn write_functional_csv<W: Write>(
    trace: &FunctionalTrace,
    writer: &mut W,
) -> Result<(), TraceError> {
    write!(writer, "time")?;
    for (_, decl) in trace.signals().iter() {
        write!(writer, ",{}", decl.name())?;
    }
    writeln!(writer)?;
    for (t, cycle) in trace.iter().enumerate() {
        write!(writer, "{t}")?;
        for value in cycle {
            write!(writer, ",{value}")?;
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Reads a functional trace previously written by
/// [`write_functional_csv`]; `signals` must describe the expected
/// interface (names are checked against the header).
///
/// # Errors
///
/// * [`TraceError::Io`] on read failure;
/// * [`TraceError::Parse`] when the header or a record is malformed.
///
/// # Examples
///
/// ```
/// use psm_trace::{read_functional_csv, write_functional_csv};
/// use psm_trace::{Bits, Direction, FunctionalTrace, SignalSet};
///
/// let mut s = SignalSet::new();
/// s.push("en", 1, Direction::Input)?;
/// let mut t = FunctionalTrace::new(s.clone());
/// t.push_cycle(vec![Bits::from_bool(true)])?;
/// let mut csv = Vec::new();
/// write_functional_csv(&t, &mut csv)?;
/// let back = read_functional_csv(s, csv.as_slice())?;
/// assert_eq!(back, t);
/// # Ok::<(), psm_trace::TraceError>(())
/// ```
pub fn read_functional_csv<R: BufRead>(
    signals: crate::SignalSet,
    reader: R,
) -> Result<FunctionalTrace, TraceError> {
    let mut trace = FunctionalTrace::new(signals);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 {
            let mut fields = line.split(',');
            if fields.next() != Some("time") {
                return Err(TraceError::Parse {
                    line: 1,
                    message: "expected a `time` column first".into(),
                });
            }
            let names: Vec<&str> = fields.collect();
            let expected: Vec<&str> = trace.signals().iter().map(|(_, d)| d.name()).collect();
            if names != expected {
                return Err(TraceError::Parse {
                    line: 1,
                    message: format!("header {names:?} does not match interface {expected:?}"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let _time = fields.next();
        let mut cycle = Vec::new();
        for field in fields {
            cycle.push(crate::Bits::from_verilog_str(field.trim()).map_err(|e| {
                TraceError::Parse {
                    line: i + 1,
                    message: e.to_string(),
                }
            })?);
        }
        trace.push_cycle(cycle)?;
    }
    Ok(trace)
}

/// Writes a power trace as CSV with a `time,power_mw` header.
///
/// # Errors
///
/// Propagates I/O failures as [`TraceError::Io`].
pub fn write_power_csv<W: Write>(trace: &PowerTrace, writer: &mut W) -> Result<(), TraceError> {
    writeln!(writer, "time,power_mw")?;
    for (t, p) in trace.iter().enumerate() {
        writeln!(writer, "{t},{p}")?;
    }
    Ok(())
}

/// Reads a power trace previously written by [`write_power_csv`].
///
/// # Errors
///
/// * [`TraceError::Io`] on read failure;
/// * [`TraceError::Parse`] when a record is malformed.
pub fn read_power_csv<R: BufRead>(reader: R) -> Result<PowerTrace, TraceError> {
    let mut trace = PowerTrace::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 {
            if line.trim() != "time,power_mw" {
                return Err(TraceError::Parse {
                    line: 1,
                    message: format!("expected header `time,power_mw`, got `{line}`"),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let _time = fields.next();
        let power = fields.next().ok_or_else(|| TraceError::Parse {
            line: i + 1,
            message: "missing power field".into(),
        })?;
        let value: f64 = power.trim().parse().map_err(|e| TraceError::Parse {
            line: i + 1,
            message: format!("bad power value `{power}`: {e}"),
        })?;
        trace.push(value);
    }
    Ok(trace)
}

/// Writes a functional trace as a minimal IEEE 1364 VCD file (one clock tick
/// per instant), loadable in GTKWave and friends.
///
/// # Errors
///
/// Propagates I/O failures as [`TraceError::Io`].
pub fn write_vcd<W: Write>(
    module: &str,
    trace: &FunctionalTrace,
    writer: &mut W,
) -> Result<(), TraceError> {
    writeln!(writer, "$date psmgen trace export $end")?;
    writeln!(writer, "$timescale 1ns $end")?;
    writeln!(writer, "$scope module {module} $end")?;
    // VCD identifier codes: printable ASCII starting at '!'.
    let code = |i: usize| -> String {
        let mut i = i;
        let mut s = String::new();
        loop {
            s.push((b'!' + (i % 94) as u8) as char);
            i /= 94;
            if i == 0 {
                break;
            }
        }
        s
    };
    for (id, decl) in trace.signals().iter() {
        writeln!(
            writer,
            "$var wire {} {} {} $end",
            decl.width(),
            code(id.index()),
            decl.name()
        )?;
    }
    writeln!(writer, "$upscope $end")?;
    writeln!(writer, "$enddefinitions $end")?;
    let mut prev: Option<&[crate::Bits]> = None;
    for (t, cycle) in trace.iter().enumerate() {
        writeln!(writer, "#{t}")?;
        for (i, value) in cycle.iter().enumerate() {
            let changed = prev.is_none_or(|p| &p[i] != value);
            if !changed {
                continue;
            }
            if value.width() == 1 {
                writeln!(writer, "{}{}", if value.bit(0) { 1 } else { 0 }, code(i))?;
            } else {
                write!(writer, "b")?;
                for b in (0..value.width()).rev() {
                    write!(writer, "{}", if value.bit(b) { 1 } else { 0 })?;
                }
                writeln!(writer, " {}", code(i))?;
            }
        }
        prev = Some(cycle);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bits, Direction, SignalSet};

    fn sample_trace() -> FunctionalTrace {
        let mut s = SignalSet::new();
        s.push("en", 1, Direction::Input).unwrap();
        s.push("data", 4, Direction::Output).unwrap();
        let mut t = FunctionalTrace::new(s);
        t.push_cycle(vec![Bits::from_bool(true), Bits::from_u64(0xA, 4)])
            .unwrap();
        t.push_cycle(vec![Bits::from_bool(true), Bits::from_u64(0x3, 4)])
            .unwrap();
        t
    }

    #[test]
    fn functional_csv_shape() {
        let mut out = Vec::new();
        write_functional_csv(&sample_trace(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time,en,data");
        assert_eq!(lines[1], "0,1'h1,4'ha");
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn power_csv_round_trip() {
        let t = PowerTrace::from_samples(vec![1.25, 3.5, 0.0]);
        let mut out = Vec::new();
        write_power_csv(&t, &mut out).unwrap();
        let read = read_power_csv(out.as_slice()).unwrap();
        assert_eq!(read, t);
    }

    #[test]
    fn power_csv_rejects_bad_header() {
        let r = read_power_csv("nope\n1,2\n".as_bytes());
        assert!(matches!(r, Err(TraceError::Parse { line: 1, .. })));
    }

    #[test]
    fn power_csv_rejects_bad_value() {
        let r = read_power_csv("time,power_mw\n0,abc\n".as_bytes());
        assert!(matches!(r, Err(TraceError::Parse { line: 2, .. })));
    }

    #[test]
    fn vcd_contains_declarations_and_changes() {
        let mut out = Vec::new();
        write_vcd("dut", &sample_trace(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("$var wire 1 ! en $end"));
        assert!(text.contains("$var wire 4 \" data $end"));
        assert!(text.contains("#0"));
        assert!(text.contains("b1010 \""));
        // `en` does not change at t=1, so no second `1!` entry after #1.
        let after_t1 = text.split("#1").nth(1).unwrap();
        assert!(!after_t1.contains("1!"));
        assert!(after_t1.contains("b0011 \""));
    }
}
