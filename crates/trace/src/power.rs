//! Power traces: per-instant dynamic energy consumption.

use std::ops::Index;

/// A dynamic power trace Δ = ⟨δ₁, …, δₙ⟩ (paper Def. 2): one power sample
/// per simulation instant, in milliwatts.
///
/// Each δᵢ follows the classic dynamic-power formula
/// `δᵢ = ½ · V²dd · f · C · α(tᵢ)` — in this workspace the values are
/// produced by the gate-level estimator in `psm-rtl`, which plays the role
/// of the paper's Synopsys PrimeTime PX.
///
/// # Examples
///
/// ```
/// use psm_trace::PowerTrace;
///
/// let trace: PowerTrace = [3.349, 3.339, 3.353, 1.902].into_iter().collect();
/// assert_eq!(trace.len(), 4);
/// assert_eq!(trace[3], 1.902);
/// let window = trace.window(0, 2);
/// assert_eq!(window.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerTrace {
    samples: Vec<f64>,
}

impl PowerTrace {
    /// Creates an empty power trace.
    pub fn new() -> Self {
        PowerTrace::default()
    }

    /// Creates an empty trace with room for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        PowerTrace {
            samples: Vec::with_capacity(capacity),
        }
    }

    /// Wraps an existing sample vector.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        PowerTrace { samples }
    }

    /// Appends one sample (mW).
    pub fn push(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample at instant `t`, if present.
    pub fn get(&self, t: usize) -> Option<f64> {
        self.samples.get(t).copied()
    }

    /// All samples as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.samples
    }

    /// The inclusive window `[start, stop]` of samples — the interval shape
    /// used by the paper's `getPowerAttributes(Δ, start, stop)`.
    ///
    /// # Panics
    ///
    /// Panics when `start > stop` or `stop` is out of range.
    pub fn window(&self, start: usize, stop: usize) -> &[f64] {
        assert!(start <= stop, "window start {start} > stop {stop}");
        &self.samples[start..=stop]
    }

    /// Iterates over samples in time order.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().copied()
    }

    /// Arithmetic mean over the whole trace (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Total energy: the sum of all samples (sample value × one time unit).
    pub fn total_energy(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Splits the trace into windows of at most `window` samples, mirroring
    /// [`FunctionalTrace::split_windows`](crate::FunctionalTrace::split_windows).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn split_windows(&self, window: usize) -> Vec<PowerTrace> {
        assert!(window > 0, "window must be positive");
        self.samples
            .chunks(window)
            .map(|c| PowerTrace {
                samples: c.to_vec(),
            })
            .collect()
    }
}

impl Index<usize> for PowerTrace {
    type Output = f64;
    fn index(&self, t: usize) -> &f64 {
        &self.samples[t]
    }
}

impl FromIterator<f64> for PowerTrace {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        PowerTrace {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for PowerTrace {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl From<Vec<f64>> for PowerTrace {
    fn from(samples: Vec<f64>) -> Self {
        PowerTrace { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_index() {
        let mut t = PowerTrace::new();
        t.push(1.5);
        t.push(2.5);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], 1.5);
        assert_eq!(t.get(1), Some(2.5));
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn inclusive_window() {
        let t = PowerTrace::from_samples(vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.window(1, 3), &[1.0, 2.0, 3.0]);
        assert_eq!(t.window(2, 2), &[2.0]);
    }

    #[test]
    #[should_panic(expected = "window start")]
    fn inverted_window_panics() {
        let t = PowerTrace::from_samples(vec![0.0, 1.0]);
        let _ = t.window(1, 0);
    }

    #[test]
    fn mean_and_energy() {
        let t = PowerTrace::from_samples(vec![1.0, 2.0, 3.0]);
        assert_eq!(t.mean(), 2.0);
        assert_eq!(t.total_energy(), 6.0);
        assert_eq!(PowerTrace::new().mean(), 0.0);
    }

    #[test]
    fn split_windows() {
        let t: PowerTrace = (0..5).map(|i| i as f64).collect();
        let parts = t.split_windows(2);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[2].as_slice(), &[4.0]);
    }
}
