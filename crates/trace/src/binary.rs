//! Compact little-endian binary encoding of functional traces.
//!
//! The `psmd/v2` wire protocol replaces JSON with this codec for bulk
//! numeric data: a trace travels as an interned-signal **dictionary
//! frame** (tag [`TAG_DICT`]) followed by one or more **cycles frames**
//! (tag [`TAG_CYCLES`]) carrying raw little-endian signal words. The two
//! frame kinds are independently encodable so a streaming session can
//! send its dictionary once at `STREAM_OPEN` and ship cycles-only chunks
//! afterwards.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header       := "PSTB" version:u8
//! dict frame   := 0x01 count:u32 { dir:u8 width:u32 name_len:u16 name }*
//! cycles frame := 0x02 count:u32 { cycle }*          (one entry per cycle)
//! cycle        := per declared signal, width.div_ceil(64) words of u64
//! ```
//!
//! Decoding is strict: every length is bounds-checked before any
//! allocation sized from it, unknown tags and malformed names are
//! structured errors (never panics), and [`decode_trace`] rejects
//! trailing bytes.
//!
//! # Examples
//!
//! ```
//! use psm_trace::binary::{decode_trace, encode_trace};
//! use psm_trace::{Bits, Direction, FunctionalTrace, SignalSet};
//!
//! let mut signals = SignalSet::new();
//! signals.push("a", 8, Direction::Input)?;
//! signals.push("y", 16, Direction::Output)?;
//! let mut trace = FunctionalTrace::new(signals);
//! trace.push_cycle(vec![Bits::from_u64(0x5a, 8), Bits::from_u64(0x1234, 16)])?;
//!
//! let bytes = encode_trace(&trace);
//! let back = decode_trace(&bytes).unwrap();
//! assert_eq!(back.len(), 1);
//! assert_eq!(back.cycle(0), trace.cycle(0));
//! # Ok::<(), psm_trace::TraceError>(())
//! ```

use crate::{Bits, Direction, FunctionalTrace, SignalSet, TraceError};
use std::error::Error;
use std::fmt;

/// Magic bytes opening every binary trace payload ("PSm Trace Binary").
pub const MAGIC: [u8; 4] = *b"PSTB";
/// Current codec version, written after [`MAGIC`].
pub const VERSION: u8 = 1;
/// Frame tag of the interned-signal dictionary.
pub const TAG_DICT: u8 = 0x01;
/// Frame tag of a block of raw cycle words.
pub const TAG_CYCLES: u8 = 0x02;

/// Upper bound on declared signals per dictionary (sanity limit).
pub const MAX_SIGNALS: u32 = 1 << 16;
/// Upper bound on a single signal's width in bits (sanity limit).
pub const MAX_SIGNAL_WIDTH: u32 = 1 << 20;

/// Structured decoding failures: what was malformed and where.
#[derive(Debug)]
#[non_exhaustive]
pub enum BinCodecError {
    /// The payload did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The payload's codec version is newer than this decoder.
    UnsupportedVersion(u8),
    /// A frame opened with an unknown or out-of-place tag.
    UnexpectedTag {
        /// Tag the decoder was positioned to read.
        expected: u8,
        /// Tag actually found.
        found: u8,
    },
    /// The payload ended before a declared length was satisfied.
    Truncated {
        /// Byte offset at which more input was needed.
        offset: usize,
        /// Bytes the decoder needed at that offset.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// A declared count exceeded a codec sanity limit.
    Limit {
        /// Which quantity overflowed.
        what: &'static str,
        /// Declared value.
        value: u64,
        /// Maximum the codec accepts.
        max: u64,
    },
    /// A signal name was not valid UTF-8.
    BadName {
        /// Byte offset of the offending name.
        offset: usize,
    },
    /// A direction byte was neither 0 (input) nor 1 (output).
    BadDirection(u8),
    /// Bytes remained after the final expected frame.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        offset: usize,
    },
    /// The decoded declarations violated trace invariants
    /// (duplicate name, zero width, …).
    Trace(TraceError),
}

impl fmt::Display for BinCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinCodecError::BadMagic(m) => {
                write!(f, "binary trace payload does not start with PSTB (got {m:02x?})")
            }
            BinCodecError::UnsupportedVersion(v) => {
                write!(f, "binary trace codec version {v} is not supported (max {VERSION})")
            }
            BinCodecError::UnexpectedTag { expected, found } => {
                write!(f, "expected frame tag {expected:#04x}, found {found:#04x}")
            }
            BinCodecError::Truncated { offset, need, have } => write!(
                f,
                "binary trace payload truncated at byte {offset}: need {need} more byte(s), have {have}"
            ),
            BinCodecError::Limit { what, value, max } => {
                write!(f, "{what} {value} exceeds the codec limit of {max}")
            }
            BinCodecError::BadName { offset } => {
                write!(f, "signal name at byte {offset} is not valid UTF-8")
            }
            BinCodecError::BadDirection(d) => {
                write!(f, "direction byte {d} is neither 0 (input) nor 1 (output)")
            }
            BinCodecError::TrailingBytes { offset } => {
                write!(f, "unexpected trailing bytes after offset {offset}")
            }
            BinCodecError::Trace(e) => write!(f, "decoded trace is invalid: {e}"),
        }
    }
}

impl Error for BinCodecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BinCodecError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for BinCodecError {
    fn from(e: TraceError) -> Self {
        BinCodecError::Trace(e)
    }
}

/// Bounds-checked little-endian cursor over a binary payload.
///
/// Shared with the wire protocol so frame parsers report the same
/// structured [`BinCodecError::Truncated`] offsets the codec does.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Positions a cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset from the start of the payload.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Consumes exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], BinCodecError> {
        if self.remaining() < n {
            return Err(BinCodecError::Truncated {
                offset: self.pos,
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Consumes one byte.
    pub fn u8(&mut self) -> Result<u8, BinCodecError> {
        Ok(self.bytes(1)?[0])
    }

    /// Consumes a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, BinCodecError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Consumes a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, BinCodecError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consumes a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, BinCodecError> {
        let b = self.bytes(8)?;
        let mut w = [0u8; 8];
        w.copy_from_slice(b);
        Ok(u64::from_le_bytes(w))
    }
}

/// Appends the codec header ([`MAGIC`] + [`VERSION`]) to `out`.
pub fn write_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
}

/// Consumes and validates the codec header.
pub fn read_header(r: &mut Reader<'_>) -> Result<(), BinCodecError> {
    let m = r.bytes(4)?;
    if m != MAGIC {
        return Err(BinCodecError::BadMagic([m[0], m[1], m[2], m[3]]));
    }
    let v = r.u8()?;
    if v == 0 || v > VERSION {
        return Err(BinCodecError::UnsupportedVersion(v));
    }
    Ok(())
}

/// Appends a dictionary frame describing `signals` to `out`.
pub fn write_dict(signals: &SignalSet, out: &mut Vec<u8>) {
    out.push(TAG_DICT);
    out.extend_from_slice(&(signals.len() as u32).to_le_bytes());
    for (_, decl) in signals.iter() {
        out.push(match decl.direction() {
            Direction::Input => 0,
            Direction::Output => 1,
        });
        out.extend_from_slice(&(decl.width() as u32).to_le_bytes());
        let name = decl.name().as_bytes();
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
    }
}

/// Consumes a dictionary frame, rebuilding its [`SignalSet`].
///
/// Declaration-level invariants (unique names, non-zero widths) are
/// enforced by [`SignalSet::push`] and surface as
/// [`BinCodecError::Trace`].
pub fn read_dict(r: &mut Reader<'_>) -> Result<SignalSet, BinCodecError> {
    let tag = r.u8()?;
    if tag != TAG_DICT {
        return Err(BinCodecError::UnexpectedTag {
            expected: TAG_DICT,
            found: tag,
        });
    }
    let count = r.u32()?;
    if count > MAX_SIGNALS {
        return Err(BinCodecError::Limit {
            what: "signal count",
            value: count as u64,
            max: MAX_SIGNALS as u64,
        });
    }
    let mut signals = SignalSet::new();
    for _ in 0..count {
        let dir = match r.u8()? {
            0 => Direction::Input,
            1 => Direction::Output,
            other => return Err(BinCodecError::BadDirection(other)),
        };
        let width = r.u32()?;
        if width > MAX_SIGNAL_WIDTH {
            return Err(BinCodecError::Limit {
                what: "signal width",
                value: width as u64,
                max: MAX_SIGNAL_WIDTH as u64,
            });
        }
        let name_len = r.u16()? as usize;
        let name_offset = r.offset();
        let raw = r.bytes(name_len)?;
        let name = std::str::from_utf8(raw).map_err(|_| BinCodecError::BadName {
            offset: name_offset,
        })?;
        signals.push(name, width as usize, dir)?;
    }
    Ok(signals)
}

/// Words each cycle of `signals` occupies on the wire.
fn words_per_cycle(signals: &SignalSet) -> usize {
    signals.iter().map(|(_, d)| d.width().div_ceil(64)).sum()
}

/// Appends a cycles frame carrying every cycle of `trace` to `out`.
pub fn write_cycles(trace: &FunctionalTrace, out: &mut Vec<u8>) {
    out.push(TAG_CYCLES);
    out.extend_from_slice(&(trace.len() as u32).to_le_bytes());
    for t in 0..trace.len() {
        for bits in trace.cycle(t) {
            for w in bits.as_words() {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
    }
}

/// Consumes one cycles frame, appending its cycles to `trace` (whose
/// signal set defines the expected word layout). Returns the number of
/// cycles appended.
///
/// The whole frame's size is validated against the remaining input
/// before any cycle is materialised, so a hostile cycle count cannot
/// trigger oversized allocations.
pub fn read_cycles_into(
    r: &mut Reader<'_>,
    trace: &mut FunctionalTrace,
) -> Result<usize, BinCodecError> {
    let tag = r.u8()?;
    if tag != TAG_CYCLES {
        return Err(BinCodecError::UnexpectedTag {
            expected: TAG_CYCLES,
            found: tag,
        });
    }
    let count = r.u32()? as usize;
    let wpc = words_per_cycle(trace.signals());
    // A zero-signal dictionary makes every cycle free on the wire, so
    // the byte-budget check below would accept any count; a hostile
    // frame could then demand billions of (empty, but heap-allocated)
    // cycles. Cycles against an empty dictionary carry no information —
    // reject them outright.
    if wpc == 0 && count > 0 {
        return Err(BinCodecError::Limit {
            what: "cycle count for an empty signal dictionary",
            value: count as u64,
            max: 0,
        });
    }
    let need = (count as u64).saturating_mul(wpc as u64).saturating_mul(8);
    if need > r.remaining() as u64 {
        return Err(BinCodecError::Truncated {
            offset: r.offset(),
            need: need as usize,
            have: r.remaining(),
        });
    }
    let widths: Vec<usize> = trace.signals().iter().map(|(_, d)| d.width()).collect();
    for _ in 0..count {
        let mut cycle = Vec::with_capacity(widths.len());
        for &width in &widths {
            let nwords = width.div_ceil(64);
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(r.u64()?);
            }
            cycle.push(Bits::from_words(&words, width));
        }
        trace.push_cycle(cycle)?;
    }
    Ok(count)
}

/// Encodes a complete trace: header, dictionary, one cycles frame.
pub fn encode_trace(trace: &FunctionalTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        MAGIC.len() + 1 + 16 + trace.len() * words_per_cycle(trace.signals()) * 8,
    );
    write_header(&mut out);
    write_dict(trace.signals(), &mut out);
    write_cycles(trace, &mut out);
    out
}

/// Decodes a payload produced by [`encode_trace`], rejecting trailing
/// bytes.
pub fn decode_trace(buf: &[u8]) -> Result<FunctionalTrace, BinCodecError> {
    let mut r = Reader::new(buf);
    read_header(&mut r)?;
    let signals = read_dict(&mut r)?;
    let mut trace = FunctionalTrace::new(signals);
    while !r.is_empty() {
        read_cycles_into(&mut r, &mut trace)?;
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace(cycles: usize) -> FunctionalTrace {
        let mut signals = SignalSet::new();
        signals.push("a", 8, Direction::Input).unwrap();
        signals.push("wide", 130, Direction::Input).unwrap();
        signals.push("y", 16, Direction::Output).unwrap();
        let mut trace = FunctionalTrace::new(signals);
        for t in 0..cycles {
            let mut wide = Bits::zero(130);
            wide.set_bit(t % 130, true);
            wide.set_bit(129, t % 2 == 0);
            trace
                .push_cycle(vec![
                    Bits::from_u64((t as u64).wrapping_mul(37) & 0xff, 8),
                    wide,
                    Bits::from_u64((t as u64).wrapping_mul(101) & 0xffff, 16),
                ])
                .unwrap();
        }
        trace
    }

    #[test]
    fn round_trip_preserves_every_cycle_and_declaration() {
        let trace = sample_trace(17);
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back.len(), trace.len());
        for (i, ((_, a), (_, b))) in back
            .signals()
            .iter()
            .zip(trace.signals().iter())
            .enumerate()
        {
            assert_eq!(a.name(), b.name(), "signal {i}");
            assert_eq!(a.width(), b.width(), "signal {i}");
            assert_eq!(a.direction(), b.direction(), "signal {i}");
        }
        for t in 0..trace.len() {
            assert_eq!(back.cycle(t), trace.cycle(t), "cycle {t}");
        }
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = sample_trace(0);
        let back = decode_trace(&encode_trace(&trace)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.signals().len(), 3);
    }

    #[test]
    fn dict_and_cycles_encode_independently() {
        let trace = sample_trace(5);
        // Session-style: dictionary once, then two cycles-only chunks.
        let mut dict = Vec::new();
        write_dict(trace.signals(), &mut dict);
        let mut r = Reader::new(&dict);
        let signals = read_dict(&mut r).unwrap();
        let mut rebuilt = FunctionalTrace::new(signals);

        let halves = [sample_trace(2), {
            let mut t = FunctionalTrace::new(trace.signals().clone());
            for i in 2..5 {
                t.push_cycle(trace.cycle(i).to_vec()).unwrap();
            }
            t
        }];
        for half in &halves {
            let mut chunk = Vec::new();
            write_cycles(half, &mut chunk);
            let mut r = Reader::new(&chunk);
            read_cycles_into(&mut r, &mut rebuilt).unwrap();
            assert!(r.is_empty());
        }
        assert_eq!(rebuilt.len(), 5);
        for t in 0..5 {
            assert_eq!(rebuilt.cycle(t), trace.cycle(t));
        }
    }

    #[test]
    fn truncation_at_every_prefix_is_a_structured_error() {
        let bytes = encode_trace(&sample_trace(3));
        for cut in 0..bytes.len() {
            // Any prefix must either fail loudly or — when the cut lands
            // exactly on a frame boundary — decode to a shorter trace;
            // it must never panic or produce all three cycles.
            match decode_trace(&bytes[..cut]) {
                Ok(partial) => assert!(partial.len() < 3, "cut at {cut}"),
                Err(e) => assert!(!e.to_string().is_empty(), "cut at {cut}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = encode_trace(&sample_trace(1));
        bytes[0] = b'X';
        assert!(matches!(
            decode_trace(&bytes).unwrap_err(),
            BinCodecError::BadMagic(_)
        ));
        let mut bytes = encode_trace(&sample_trace(1));
        bytes[4] = 200;
        assert!(matches!(
            decode_trace(&bytes).unwrap_err(),
            BinCodecError::UnsupportedVersion(200)
        ));
    }

    #[test]
    fn unknown_tags_and_hostile_counts_are_rejected() {
        let mut bytes = Vec::new();
        write_header(&mut bytes);
        bytes.push(0x7f); // not a dict tag
        assert!(matches!(
            decode_trace(&bytes).unwrap_err(),
            BinCodecError::UnexpectedTag { found: 0x7f, .. }
        ));

        // A dictionary declaring 2^31 signals must fail on the limit,
        // not attempt the allocation.
        let mut bytes = Vec::new();
        write_header(&mut bytes);
        bytes.push(TAG_DICT);
        bytes.extend_from_slice(&(1u32 << 31).to_le_bytes());
        assert!(matches!(
            decode_trace(&bytes).unwrap_err(),
            BinCodecError::Limit {
                what: "signal count",
                ..
            }
        ));

        // A cycles frame claiming 2^31 cycles with a near-empty body
        // must fail the up-front size check.
        let trace = sample_trace(1);
        let mut bytes = Vec::new();
        write_header(&mut bytes);
        write_dict(trace.signals(), &mut bytes);
        bytes.push(TAG_CYCLES);
        bytes.extend_from_slice(&(1u32 << 31).to_le_bytes());
        assert!(matches!(
            decode_trace(&bytes).unwrap_err(),
            BinCodecError::Truncated { .. }
        ));

        // A zero-signal dictionary must not let a cycles frame smuggle
        // an arbitrary count past the byte-budget check (each cycle
        // would be free on the wire but allocated on the heap).
        let mut bytes = Vec::new();
        write_header(&mut bytes);
        write_dict(&SignalSet::new(), &mut bytes);
        bytes.push(TAG_CYCLES);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_trace(&bytes).unwrap_err(),
            BinCodecError::Limit {
                what: "cycle count for an empty signal dictionary",
                ..
            }
        ));

        // A zero-count frame against the empty dictionary stays legal.
        let mut bytes = Vec::new();
        write_header(&mut bytes);
        write_dict(&SignalSet::new(), &mut bytes);
        bytes.push(TAG_CYCLES);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        assert!(decode_trace(&bytes).unwrap().is_empty());
    }

    #[test]
    fn invalid_declarations_surface_trace_errors() {
        // Duplicate signal name.
        let mut bytes = Vec::new();
        write_header(&mut bytes);
        bytes.push(TAG_DICT);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        for _ in 0..2 {
            bytes.push(0);
            bytes.extend_from_slice(&8u32.to_le_bytes());
            bytes.extend_from_slice(&3u16.to_le_bytes());
            bytes.extend_from_slice(b"clk");
        }
        assert!(matches!(
            decode_trace(&bytes).unwrap_err(),
            BinCodecError::Trace(TraceError::DuplicateSignal(_))
        ));

        // Invalid UTF-8 name.
        let mut bytes = Vec::new();
        write_header(&mut bytes);
        bytes.push(TAG_DICT);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            decode_trace(&bytes).unwrap_err(),
            BinCodecError::BadName { .. }
        ));

        // Bad direction byte.
        let mut bytes = Vec::new();
        write_header(&mut bytes);
        bytes.push(TAG_DICT);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(9);
        assert!(matches!(
            decode_trace(&bytes).unwrap_err(),
            BinCodecError::BadDirection(9)
        ));
    }

    #[test]
    fn binary_is_denser_than_json() {
        let trace = sample_trace(64);
        let bin = encode_trace(&trace).len();
        let json = {
            use psm_persist::Persist;
            trace.to_json().render().len()
        };
        assert!(
            bin * 2 < json,
            "binary ({bin} B) should be well under half of JSON ({json} B)"
        );
    }
}
