//! Signal-activity statistics over functional traces.
//!
//! Trace-level activity profiling answers the questions a power engineer
//! asks before modelling: which signals toggle, how often, and with what
//! duty cycle. The mining configuration (support thresholds, domain
//! bounds) is usually chosen after a look at exactly these numbers.

use crate::functional::FunctionalTrace;
use crate::signal::SignalId;

/// Activity profile of one signal over a functional trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalActivity {
    /// The profiled signal.
    pub signal: SignalId,
    /// Total bit toggles across consecutive instants.
    pub toggles: u64,
    /// Mean toggling bits per instant (the signal's activity factor × width).
    pub toggles_per_cycle: f64,
    /// Fraction of instants where at least one bit of the signal is high.
    pub nonzero_duty: f64,
    /// Number of distinct values observed (saturates at `distinct_cap`).
    pub distinct_values: usize,
}

/// Profiles every signal of a trace.
///
/// `distinct_cap` bounds the per-signal distinct-value tracking (wide data
/// buses would otherwise accumulate one entry per instant); profiling stops
/// counting a signal's distinct values once the cap is hit, reporting the
/// cap itself.
///
/// # Examples
///
/// ```
/// use psm_trace::{activity_profile, Bits, Direction, FunctionalTrace, SignalSet};
///
/// let mut signals = SignalSet::new();
/// let en = signals.push("en", 1, Direction::Input)?;
/// let mut t = FunctionalTrace::new(signals);
/// for k in 0..8u64 {
///     t.push_cycle(vec![Bits::from_u64(k % 2, 1)])?;
/// }
/// let profile = activity_profile(&t, 16);
/// assert_eq!(profile[0].signal, en);
/// assert_eq!(profile[0].toggles, 7);        // alternates every cycle
/// assert_eq!(profile[0].distinct_values, 2);
/// assert!((profile[0].nonzero_duty - 0.5).abs() < 1e-12);
/// # Ok::<(), psm_trace::TraceError>(())
/// ```
pub fn activity_profile(trace: &FunctionalTrace, distinct_cap: usize) -> Vec<SignalActivity> {
    let n = trace.len();
    trace
        .signals()
        .iter()
        .map(|(id, _)| {
            let mut toggles = 0u64;
            let mut nonzero = 0usize;
            let mut distinct: std::collections::HashSet<&crate::Bits> =
                std::collections::HashSet::new();
            let mut capped = false;
            for t in 0..n {
                let v = trace.value(id, t);
                if !v.is_zero() {
                    nonzero += 1;
                }
                if !capped {
                    distinct.insert(v);
                    if distinct.len() >= distinct_cap {
                        capped = true;
                    }
                }
                if t > 0 {
                    toggles += u64::from(
                        trace
                            .value(id, t - 1)
                            .hamming_distance(v)
                            .expect("one signal's values share a width"),
                    );
                }
            }
            SignalActivity {
                signal: id,
                toggles,
                toggles_per_cycle: if n > 1 {
                    toggles as f64 / (n - 1) as f64
                } else {
                    0.0
                },
                nonzero_duty: if n > 0 {
                    nonzero as f64 / n as f64
                } else {
                    0.0
                },
                distinct_values: distinct.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bits, Direction, SignalSet};

    fn trace() -> FunctionalTrace {
        let mut signals = SignalSet::new();
        signals.push("ctl", 1, Direction::Input).expect("unique");
        signals.push("bus", 8, Direction::Output).expect("unique");
        let mut t = FunctionalTrace::new(signals);
        for k in 0..10u64 {
            t.push_cycle(vec![
                Bits::from_u64(u64::from(k >= 5), 1),
                Bits::from_u64(k * 37 % 256, 8),
            ])
            .expect("well-formed");
        }
        t
    }

    #[test]
    fn control_signal_profile() {
        let p = activity_profile(&trace(), 64);
        let ctl = &p[0];
        assert_eq!(ctl.toggles, 1, "one rising edge");
        assert_eq!(ctl.distinct_values, 2);
        assert!((ctl.nonzero_duty - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bus_signal_profile() {
        let p = activity_profile(&trace(), 64);
        let bus = &p[1];
        assert!(bus.toggles > 10, "data bus toggles a lot");
        assert_eq!(bus.distinct_values, 10);
        assert!(bus.toggles_per_cycle > 1.0);
    }

    #[test]
    fn distinct_cap_saturates() {
        let p = activity_profile(&trace(), 3);
        assert_eq!(p[1].distinct_values, 3);
    }

    #[test]
    fn empty_trace_profile() {
        let mut signals = SignalSet::new();
        signals.push("x", 1, Direction::Input).expect("unique");
        let t = FunctionalTrace::new(signals);
        let p = activity_profile(&t, 8);
        assert_eq!(p[0].toggles, 0);
        assert_eq!(p[0].nonzero_duty, 0.0);
    }
}
