//! Trace substrate for the `psmgen` workspace.
//!
//! The PSM-generation methodology of Danese et al. (DATE 2016) consumes two
//! kinds of *training traces* (paper Def. 2):
//!
//! * a **functional trace** Φ = ⟨φ₁, …, φₙ⟩ — the evaluation of an IP's
//!   primary inputs (PIs) and primary outputs (POs) at each simulation
//!   instant, modelled here by [`FunctionalTrace`];
//! * a **power trace** Δ = ⟨δ₁, …, δₙ⟩ — the IP's dynamic energy consumption
//!   per instant, modelled by [`PowerTrace`].
//!
//! Signal values are arbitrary-width bit-vectors ([`Bits`]) because the
//! paper's benchmarks have interfaces up to 262 bits wide (Camellia).
//! [`SignalSet`] describes an IP's PI/PO interface; Hamming-distance helpers
//! support the paper's §IV regression calibration of data-dependent states.
//!
//! # Examples
//!
//! Build the start of the 8-instant functional trace of the paper's Fig. 3:
//!
//! ```
//! use psm_trace::{Bits, Direction, FunctionalTrace, SignalSet};
//!
//! let mut signals = SignalSet::new();
//! let v1 = signals.push("v1", 1, Direction::Input)?;
//! let v2 = signals.push("v2", 1, Direction::Input)?;
//! let v3 = signals.push("v3", 4, Direction::Output)?;
//! let v4 = signals.push("v4", 4, Direction::Output)?;
//!
//! let mut trace = FunctionalTrace::new(signals);
//! trace.push_cycle(vec![
//!     Bits::from_u64(1, 1),
//!     Bits::from_u64(0, 1),
//!     Bits::from_u64(3, 4),
//!     Bits::from_u64(1, 4),
//! ])?;
//! assert_eq!(trace.len(), 1);
//! assert_eq!(trace.value(v3, 0).to_u64()?, 3);
//! # let _ = (v1, v2, v4);
//! # Ok::<(), psm_trace::TraceError>(())
//! ```
#![deny(missing_docs)]

mod activity;
pub mod binary;
mod bits;
mod functional;
mod io;
mod persist;
mod power;
mod signal;

pub use activity::{activity_profile, SignalActivity};
pub use bits::Bits;
pub use functional::FunctionalTrace;
pub use io::{
    read_functional_csv, read_power_csv, write_functional_csv, write_power_csv, write_vcd,
};
pub use power::PowerTrace;
pub use signal::{Direction, SignalDecl, SignalId, SignalSet};

use std::error::Error;
use std::fmt;

/// Errors produced by trace construction and I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// A bit-vector operation mixed operands of different widths.
    WidthMismatch {
        /// Width of the left operand.
        left: usize,
        /// Width of the right operand.
        right: usize,
    },
    /// A value was too wide for the requested conversion.
    Overflow {
        /// Width of the value in bits.
        width: usize,
        /// Maximum width supported by the conversion.
        max: usize,
    },
    /// A signal name was declared twice in the same [`SignalSet`].
    DuplicateSignal(String),
    /// A pushed cycle did not match the trace's signal interface.
    CycleShapeMismatch {
        /// Number of values expected (one per declared signal).
        expected: usize,
        /// Number of values provided.
        actual: usize,
    },
    /// A pushed value's width did not match its signal declaration.
    SignalWidthMismatch {
        /// Name of the offending signal.
        signal: String,
        /// Declared width.
        expected: usize,
        /// Width of the provided value.
        actual: usize,
    },
    /// Zero-width signals are not representable.
    ZeroWidth,
    /// Underlying I/O failure during trace serialisation.
    Io(std::io::Error),
    /// A serialised trace file could not be parsed.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::WidthMismatch { left, right } => {
                write!(f, "bit-vector width mismatch ({left} vs {right})")
            }
            TraceError::Overflow { width, max } => {
                write!(f, "value of width {width} exceeds the maximum of {max}")
            }
            TraceError::DuplicateSignal(name) => {
                write!(f, "signal `{name}` declared twice")
            }
            TraceError::CycleShapeMismatch { expected, actual } => {
                write!(f, "cycle has {actual} value(s), interface has {expected}")
            }
            TraceError::SignalWidthMismatch {
                signal,
                expected,
                actual,
            } => write!(
                f,
                "signal `{signal}` declared {expected} bit(s) wide, got a {actual}-bit value"
            ),
            TraceError::ZeroWidth => write!(f, "zero-width signals are not representable"),
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errs: Vec<TraceError> = vec![
            TraceError::WidthMismatch { left: 3, right: 4 },
            TraceError::Overflow { width: 80, max: 64 },
            TraceError::DuplicateSignal("clk".into()),
            TraceError::CycleShapeMismatch {
                expected: 2,
                actual: 3,
            },
            TraceError::SignalWidthMismatch {
                signal: "a".into(),
                expected: 8,
                actual: 4,
            },
            TraceError::ZeroWidth,
            TraceError::Parse {
                line: 7,
                message: "bad float".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
