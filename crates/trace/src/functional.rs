//! Functional traces: evaluations of PIs/POs over simulation instants.

use crate::bits::Bits;
use crate::signal::{SignalId, SignalSet};
use crate::TraceError;

/// A functional trace Φ = ⟨φ₁, …, φₙ⟩ (paper Def. 2): for every simulation
/// instant, the value of every primary input and output of the model.
///
/// Storage is time-major (one `Vec<Bits>` per cycle, indexed by
/// [`SignalId`]), matching how a simulator produces it and how the miner
/// consumes it.
///
/// # Examples
///
/// ```
/// use psm_trace::{Bits, Direction, FunctionalTrace, SignalSet};
///
/// let mut signals = SignalSet::new();
/// let en = signals.push("en", 1, Direction::Input)?;
/// let q = signals.push("q", 8, Direction::Output)?;
/// let mut trace = FunctionalTrace::new(signals);
/// trace.push_cycle(vec![Bits::from_bool(true), Bits::from_u64(0x10, 8)])?;
/// trace.push_cycle(vec![Bits::from_bool(false), Bits::from_u64(0x13, 8)])?;
///
/// assert_eq!(trace.len(), 2);
/// assert!(trace.value(en, 0).bit(0));
/// // 0x10 ^ 0x13 = 0x03 → two toggling output bits between instants 0 and 1.
/// assert_eq!(trace.value(q, 0).hamming_distance(trace.value(q, 1))?, 2);
/// # Ok::<(), psm_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalTrace {
    signals: SignalSet,
    cycles: Vec<Vec<Bits>>,
}

impl FunctionalTrace {
    /// Creates an empty trace over the given interface.
    pub fn new(signals: SignalSet) -> Self {
        FunctionalTrace {
            signals,
            cycles: Vec::new(),
        }
    }

    /// Creates an empty trace with room for `capacity` cycles.
    pub fn with_capacity(signals: SignalSet, capacity: usize) -> Self {
        FunctionalTrace {
            signals,
            cycles: Vec::with_capacity(capacity),
        }
    }

    /// The PI/PO interface this trace samples.
    pub fn signals(&self) -> &SignalSet {
        &self.signals
    }

    /// Appends one simulation instant.
    ///
    /// `values` must contain exactly one [`Bits`] per declared signal, in
    /// declaration order, each with the declared width.
    ///
    /// # Errors
    ///
    /// * [`TraceError::CycleShapeMismatch`] when the count is wrong;
    /// * [`TraceError::SignalWidthMismatch`] when a value's width differs
    ///   from its declaration.
    pub fn push_cycle(&mut self, values: Vec<Bits>) -> Result<(), TraceError> {
        if values.len() != self.signals.len() {
            return Err(TraceError::CycleShapeMismatch {
                expected: self.signals.len(),
                actual: values.len(),
            });
        }
        for ((_, decl), value) in self.signals.iter().zip(&values) {
            if decl.width() != value.width() {
                return Err(TraceError::SignalWidthMismatch {
                    signal: decl.name().to_owned(),
                    expected: decl.width(),
                    actual: value.width(),
                });
            }
        }
        self.cycles.push(values);
        Ok(())
    }

    /// Number of simulation instants recorded.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// Returns `true` when no instant has been recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Value of `signal` at instant `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range or `signal` does not belong to this
    /// trace's interface.
    pub fn value(&self, signal: SignalId, t: usize) -> &Bits {
        &self.cycles[t][signal.index()]
    }

    /// All signal values at instant `t`, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    pub fn cycle(&self, t: usize) -> &[Bits] {
        &self.cycles[t]
    }

    /// Iterates over instants in time order.
    pub fn iter(&self) -> impl Iterator<Item = &[Bits]> {
        self.cycles.iter().map(|c| c.as_slice())
    }

    /// Concatenation of all *input* values at instant `t` (declaration
    /// order, earlier declarations in lower bits).
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range or the interface has no inputs.
    pub fn input_word(&self, t: usize) -> Bits {
        self.direction_word(t, true)
    }

    /// Concatenation of all *output* values at instant `t`.
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range or the interface has no outputs.
    pub fn output_word(&self, t: usize) -> Bits {
        self.direction_word(t, false)
    }

    fn direction_word(&self, t: usize, inputs: bool) -> Bits {
        let ids = if inputs {
            self.signals.inputs()
        } else {
            self.signals.outputs()
        };
        assert!(
            !ids.is_empty(),
            "interface has no signals of that direction"
        );
        let mut word = self.value(ids[0], t).clone();
        for id in &ids[1..] {
            word = word.concat(self.value(*id, t));
        }
        word
    }

    /// Hamming distance of the primary-input values between consecutive
    /// instants `t-1` and `t` (equivalently: of the concatenated input
    /// words, computed per signal to avoid building them).
    ///
    /// This sequence (for t = 1..n) is the predictor used by the paper's §IV
    /// linear-regression calibration of data-dependent power states. By
    /// convention the distance at `t = 0` is 0 (no prior instant).
    ///
    /// # Panics
    ///
    /// Panics when `t` is out of range.
    pub fn input_hamming(&self, t: usize) -> u32 {
        if t == 0 {
            return 0;
        }
        self.signals
            .inputs()
            .into_iter()
            .map(|id| {
                self.value(id, t - 1)
                    .hamming_distance(self.value(id, t))
                    .expect("one signal's values share a width")
            })
            .sum()
    }

    /// The full input-Hamming-distance series, one entry per instant.
    pub fn input_hamming_series(&self) -> Vec<u32> {
        let inputs = self.signals.inputs();
        let mut out = Vec::with_capacity(self.len());
        if !self.is_empty() {
            out.push(0);
        }
        for t in 1..self.len() {
            out.push(
                inputs
                    .iter()
                    .map(|id| {
                        self.value(*id, t - 1)
                            .hamming_distance(self.value(*id, t))
                            .expect("one signal's values share a width")
                    })
                    .sum(),
            );
        }
        out
    }

    /// Hamming distance of the input signals between an externally held
    /// previous cycle and instant `t` of this trace.
    ///
    /// `prev` holds one value per declared signal in declaration order —
    /// the shape [`cycle`](FunctionalTrace::cycle) returns. Streaming
    /// estimation uses this to stitch the Hamming series across chunk
    /// boundaries: when `prev` is the cycle immediately preceding this
    /// chunk in the full trace, the result equals the corresponding entry
    /// of [`input_hamming_series`](FunctionalTrace::input_hamming_series)
    /// on the concatenated trace.
    pub fn input_hamming_vs(&self, prev: &[Bits], t: usize) -> Result<u32, TraceError> {
        if prev.len() != self.signals.len() {
            return Err(TraceError::CycleShapeMismatch {
                expected: self.signals.len(),
                actual: prev.len(),
            });
        }
        let mut total = 0u32;
        for id in self.signals.inputs() {
            total += prev[id.index()].hamming_distance(self.value(id, t))?;
        }
        Ok(total)
    }

    /// Splits the trace into windows of at most `window` instants each
    /// (the last window may be shorter). Useful for turning one long
    /// testbench run into the paper's "set of functional traces".
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn split_windows(&self, window: usize) -> Vec<FunctionalTrace> {
        assert!(window > 0, "window must be positive");
        self.cycles
            .chunks(window)
            .map(|chunk| FunctionalTrace {
                signals: self.signals.clone(),
                cycles: chunk.to_vec(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Direction;

    fn simple_trace() -> (FunctionalTrace, SignalId, SignalId) {
        let mut s = SignalSet::new();
        let a = s.push("a", 4, Direction::Input).unwrap();
        let b = s.push("b", 4, Direction::Output).unwrap();
        let mut t = FunctionalTrace::new(s);
        for (x, y) in [(0u64, 1u64), (3, 1), (15, 2)] {
            t.push_cycle(vec![Bits::from_u64(x, 4), Bits::from_u64(y, 4)])
                .unwrap();
        }
        (t, a, b)
    }

    #[test]
    fn push_and_read_back() {
        let (t, a, b) = simple_trace();
        assert_eq!(t.len(), 3);
        assert_eq!(t.value(a, 1).to_u64().unwrap(), 3);
        assert_eq!(t.value(b, 2).to_u64().unwrap(), 2);
        assert_eq!(t.cycle(0).len(), 2);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (mut t, _, _) = simple_trace();
        assert!(matches!(
            t.push_cycle(vec![Bits::zero(4)]),
            Err(TraceError::CycleShapeMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }

    #[test]
    fn width_mismatch_rejected() {
        let (mut t, _, _) = simple_trace();
        let r = t.push_cycle(vec![Bits::zero(5), Bits::zero(4)]);
        assert!(matches!(
            r,
            Err(TraceError::SignalWidthMismatch {
                expected: 4,
                actual: 5,
                ..
            })
        ));
    }

    #[test]
    fn input_hamming_series() {
        let (t, _, _) = simple_trace();
        // inputs: 0 → 3 (2 bits) → 15 (2 bits)
        assert_eq!(t.input_hamming_series(), vec![0, 2, 2]);
    }

    #[test]
    fn input_output_words() {
        let (t, _, _) = simple_trace();
        assert_eq!(t.input_word(1).to_u64().unwrap(), 3);
        assert_eq!(t.output_word(2).to_u64().unwrap(), 2);
        assert_eq!(t.input_word(0).width(), 4);
    }

    #[test]
    fn split_windows_covers_everything() {
        let (t, a, _) = simple_trace();
        let parts = t.split_windows(2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1].len(), 1);
        assert_eq!(parts[1].value(a, 0).to_u64().unwrap(), 15);
    }

    #[test]
    fn iter_visits_all_cycles() {
        let (t, _, _) = simple_trace();
        assert_eq!(t.iter().count(), 3);
    }
}
