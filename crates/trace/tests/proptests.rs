//! Randomised property tests of the trace substrate's core invariants,
//! driven by the workspace PRNG so runs are deterministic and offline.

use psm_prng::Prng;
use psm_trace::Bits;

const CASES: usize = 256;

fn random_bytes(rng: &mut Prng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.next_u8()).collect()
}

fn random_bits(rng: &mut Prng, max_width: usize) -> Bits {
    let w = 1 + rng.range_usize(0..max_width);
    let bytes = random_bytes(rng, max_width.div_ceil(8));
    Bits::from_le_bytes(&bytes, w)
}

#[test]
fn le_bytes_round_trip() {
    let mut rng = Prng::seed_from_u64(0x7A5E_0001);
    for _ in 0..CASES {
        let bits = random_bits(&mut rng, 200);
        let again = Bits::from_le_bytes(&bits.to_le_bytes(), bits.width());
        assert_eq!(again, bits);
    }
}

#[test]
fn u64_round_trip() {
    let mut rng = Prng::seed_from_u64(0x7A5E_0002);
    for _ in 0..CASES {
        let v = rng.next_u64();
        let w = 1 + rng.range_usize(0..64);
        let masked = if w == 64 { v } else { v & ((1u64 << w) - 1) };
        let bits = Bits::from_u64(v, w);
        assert_eq!(bits.to_u64().expect("fits"), masked);
        assert_eq!(bits.count_ones(), masked.count_ones());
    }
}

#[test]
fn hamming_is_a_metric() {
    let mut rng = Prng::seed_from_u64(0x7A5E_0003);
    for _ in 0..CASES {
        let w = 1 + rng.range_usize(0..150);
        let x = Bits::from_le_bytes(&random_bytes(&mut rng, 19), w);
        let y = Bits::from_le_bytes(&random_bytes(&mut rng, 19), w);
        let z = Bits::from_le_bytes(&random_bytes(&mut rng, 19), w);
        let d = |p: &Bits, q: &Bits| p.hamming_distance(q).expect("same width");
        assert_eq!(d(&x, &x), 0);
        assert_eq!(d(&x, &y), d(&y, &x));
        assert!(d(&x, &z) <= d(&x, &y) + d(&y, &z));
        // Hamming distance equals xor popcount.
        assert_eq!(
            d(&x, &y),
            x.checked_xor(&y).expect("same width").count_ones()
        );
    }
}

#[test]
fn slice_concat_inverse() {
    let mut rng = Prng::seed_from_u64(0x7A5E_0004);
    for _ in 0..CASES {
        let bits = random_bits(&mut rng, 190);
        if bits.width() < 2 {
            continue;
        }
        let split = 1 + rng.range_usize(0..bits.width() - 1);
        let lo = bits.slice(0, split);
        let hi = bits.slice(split, bits.width() - split);
        assert_eq!(lo.concat(&hi), bits);
    }
}

#[test]
fn compare_matches_u64() {
    let mut rng = Prng::seed_from_u64(0x7A5E_0005);
    for _ in 0..CASES {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let w = 1 + rng.range_usize(0..64);
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let (am, bm) = (a & mask, b & mask);
        let x = Bits::from_u64(a, w);
        let y = Bits::from_u64(b, w);
        assert_eq!(x.compare(&y).expect("same width"), am.cmp(&bm));
    }
}

#[test]
fn not_is_involution() {
    let mut rng = Prng::seed_from_u64(0x7A5E_0006);
    for _ in 0..CASES {
        let bits = random_bits(&mut rng, 130);
        let double = !!bits.clone();
        assert_eq!(double, bits);
    }
}

#[test]
fn xor_with_self_is_zero() {
    let mut rng = Prng::seed_from_u64(0x7A5E_0007);
    for _ in 0..CASES {
        let bits = random_bits(&mut rng, 130);
        assert!(bits.checked_xor(&bits).expect("same width").is_zero());
    }
}
