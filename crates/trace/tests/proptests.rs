//! Property-based tests of the trace substrate's core invariants.

use proptest::prelude::*;
use psm_trace::Bits;

fn arb_bits(max_width: usize) -> impl Strategy<Value = Bits> {
    (1..=max_width, proptest::collection::vec(any::<u8>(), max_width.div_ceil(8)))
        .prop_map(|(w, bytes)| Bits::from_le_bytes(&bytes, w))
}

proptest! {
    #[test]
    fn le_bytes_round_trip(bits in arb_bits(200)) {
        let again = Bits::from_le_bytes(&bits.to_le_bytes(), bits.width());
        prop_assert_eq!(again, bits);
    }

    #[test]
    fn u64_round_trip(v in any::<u64>(), w in 1usize..=64) {
        let masked = if w == 64 { v } else { v & ((1u64 << w) - 1) };
        let bits = Bits::from_u64(v, w);
        prop_assert_eq!(bits.to_u64().expect("fits"), masked);
        prop_assert_eq!(bits.count_ones(), masked.count_ones());
    }

    #[test]
    fn hamming_is_a_metric(w in 1usize..=150,
                           a in proptest::collection::vec(any::<u8>(), 19),
                           b in proptest::collection::vec(any::<u8>(), 19),
                           c in proptest::collection::vec(any::<u8>(), 19)) {
        let x = Bits::from_le_bytes(&a, w);
        let y = Bits::from_le_bytes(&b, w);
        let z = Bits::from_le_bytes(&c, w);
        let d = |p: &Bits, q: &Bits| p.hamming_distance(q).expect("same width");
        prop_assert_eq!(d(&x, &x), 0);
        prop_assert_eq!(d(&x, &y), d(&y, &x));
        prop_assert!(d(&x, &z) <= d(&x, &y) + d(&y, &z));
        // Hamming distance equals xor popcount.
        prop_assert_eq!(d(&x, &y), x.checked_xor(&y).expect("same width").count_ones());
    }

    #[test]
    fn slice_concat_inverse(bits in arb_bits(190), split in 1usize..189) {
        prop_assume!(split < bits.width());
        let lo = bits.slice(0, split);
        let hi = bits.slice(split, bits.width() - split);
        prop_assert_eq!(lo.concat(&hi), bits);
    }

    #[test]
    fn compare_matches_u64(a in any::<u64>(), b in any::<u64>(), w in 1usize..=64) {
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let (am, bm) = (a & mask, b & mask);
        let x = Bits::from_u64(a, w);
        let y = Bits::from_u64(b, w);
        prop_assert_eq!(x.compare(&y).expect("same width"), am.cmp(&bm));
    }

    #[test]
    fn not_is_involution(bits in arb_bits(130)) {
        let double = !!bits.clone();
        prop_assert_eq!(double, bits);
    }

    #[test]
    fn xor_with_self_is_zero(bits in arb_bits(130)) {
        prop_assert!(bits.checked_xor(&bits).expect("same width").is_zero());
    }
}
