//! Table-driven compiled PSM+HMM serving runtime.
//!
//! Training (mining → PSM generation → HMM calibration) produces a model
//! built for *introspection*: states own boxed chain vectors, the HMM keeps
//! row-of-rows matrices, and the assertion-driven walker of `psm-hmm`
//! allocates a fresh alternative set at every instant. Serving is the
//! opposite workload — the same small model executed millions of instants —
//! so this crate **compiles** a trained `(PropositionTable, Psm, Hmm)`
//! triple into a [`CompiledModel`]: one contiguous bundle of flat,
//! index-addressed tables plus an allocation-free resumable forward pass
//! ([`CompiledForwardState`]).
//!
//! The compiled form is behaviour-preserving to the bit: every estimate,
//! wrong-state-prediction count and unknown-instant count equals the
//! interpreted `HmmSimulator`/`ForwardPass` result exactly, one-shot and
//! under any chunking of the same trace (the workspace's `tests/compile.rs`
//! asserts this on all four paper benchmarks). See `DESIGN.md` § *Compiled
//! serving runtime* for the table layout and the bit-identity argument.
//!
//! # Examples
//!
//! Compile a hand-built model and run the compiled walker:
//!
//! ```
//! use psm_compile::CompiledModel;
//! use psm_core::{generate_psm, join, MergePolicy};
//! use psm_hmm::{build_hmm, HmmSimulator};
//! use psm_mining::{PropositionId, PropositionTrace};
//! use psm_trace::PowerTrace;
//!
//! let props = [0u32, 0, 0, 1, 1, 0, 0, 0, 1, 1, 0, 0];
//! let power: PowerTrace = props.iter().map(|&p| if p == 0 { 3.0 } else { 9.0 }).collect();
//! let psm = generate_psm(&PropositionTrace::from_indices(&props), &power, 0)?;
//! let joined = join(&[psm], &MergePolicy::default());
//! let hmm = build_hmm(&joined, 2);
//!
//! let compiled = CompiledModel::compile(&joined, &hmm)?;
//! let obs: Vec<_> = [0u32, 0, 1, 1, 0, 0]
//!     .iter()
//!     .map(|&i| Some(PropositionId::from_index(i)))
//!     .collect();
//! let out = compiled.run(&obs, &[0; 6]);
//!
//! // Bit-identical to the interpreted walker.
//! let interp = HmmSimulator::new(&joined, hmm).run(&obs, &[0; 6]);
//! assert_eq!(out, interp);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![deny(missing_docs)]

mod model;
mod pass;
mod persist;

pub use model::{CompileError, CompiledModel};
pub use pass::CompiledForwardState;
