//! JSON persistence of a [`CompiledModel`] — the `"compiled"` section of a
//! `psmgen-artifact/v3`.
//!
//! Only the *linear* tables are serialised. The log tables and the
//! alternative-buffer capacity are derived state, recomputed on load by the
//! same transforms compilation applies — a serialised artifact cannot carry
//! log values that diverge from its linear probabilities.
//!
//! Loading performs full structural validation and returns a structured
//! [`PersistError::Schema`](psm_persist::PersistError) (never a panic, never
//! a silent fallback) when any table length disagrees with the declared
//! state/symbol/proposition counts, when an offset table is non-monotonic,
//! when an index is out of range, or when the entry dictionary does not
//! match the chain table it accelerates.

use psm_persist::{JsonValue, Persist, PersistError};

use crate::model::{derive_logs, CompiledModel};

fn u32s_to_json(values: &[u32]) -> JsonValue {
    JsonValue::Arr(
        values
            .iter()
            .map(|&v| JsonValue::UInt(u64::from(v)))
            .collect(),
    )
}

fn bools_to_json(values: &[bool]) -> JsonValue {
    JsonValue::Arr(values.iter().map(|&v| JsonValue::Bool(v)).collect())
}

fn u32s_field(v: &JsonValue, name: &str) -> Result<Vec<u32>, PersistError> {
    v.arr_field(name)?
        .iter()
        .map(|x| {
            let raw = x.as_u64()?;
            u32::try_from(raw).map_err(|_| {
                PersistError::schema(format!("compiled field '{name}' holds {raw}, beyond u32"))
            })
        })
        .collect()
}

fn bools_field(v: &JsonValue, name: &str) -> Result<Vec<bool>, PersistError> {
    v.arr_field(name)?.iter().map(|x| x.as_bool()).collect()
}

fn f64s_field(v: &JsonValue, name: &str) -> Result<Vec<f64>, PersistError> {
    v.arr_field(name)?.iter().map(|x| x.as_f64()).collect()
}

fn expect_len(name: &str, len: usize, want: usize) -> Result<(), PersistError> {
    if len == want {
        Ok(())
    } else {
        Err(PersistError::schema(format!(
            "compiled table '{name}' has {len} entries, expected {want} from the declared counts"
        )))
    }
}

/// An offset table: `len` entries expected, starts at zero, monotone
/// non-decreasing (strictly increasing when `strict`), ending at `total`.
fn expect_offsets(
    name: &str,
    off: &[u32],
    len: usize,
    strict: bool,
    total: usize,
) -> Result<(), PersistError> {
    expect_len(name, off.len(), len)?;
    if off.first() != Some(&0) {
        return Err(PersistError::schema(format!(
            "compiled offset table '{name}' must start at 0"
        )));
    }
    for w in off.windows(2) {
        if w[1] < w[0] || (strict && w[1] == w[0]) {
            return Err(PersistError::schema(format!(
                "compiled offset table '{name}' is not {} (…{}, {}…)",
                if strict {
                    "strictly increasing"
                } else {
                    "monotone"
                },
                w[0],
                w[1]
            )));
        }
    }
    if *off.last().expect("len >= 1 checked") as usize != total {
        return Err(PersistError::schema(format!(
            "compiled offset table '{name}' ends at {} but the indexed table has {total} entries",
            off.last().expect("len >= 1 checked")
        )));
    }
    Ok(())
}

fn expect_in_range(name: &str, values: &[u32], bound: usize) -> Result<(), PersistError> {
    if let Some(&v) = values.iter().find(|&&v| v as usize >= bound) {
        return Err(PersistError::schema(format!(
            "compiled table '{name}' references index {v}, but only {bound} are declared"
        )));
    }
    Ok(())
}

/// The stochastic-row predicate `Hmm`'s own persistence enforces.
fn is_distribution(row: impl Iterator<Item = f64> + Clone) -> bool {
    let sum: f64 = row.clone().sum();
    row.clone().all(|p| (0.0..=1.0).contains(&p)) && (sum - 1.0).abs() < 1e-6
}

impl Persist for CompiledModel {
    fn to_json(&self) -> JsonValue {
        JsonValue::obj([
            ("states", JsonValue::UInt(self.m as u64)),
            ("symbols", JsonValue::UInt(self.k as u64)),
            ("props", JsonValue::UInt(self.props as u64)),
            ("row_words", JsonValue::UInt(self.row_words as u64)),
            ("at", self.at.to_json()),
            ("bt", self.bt.to_json()),
            ("pi", self.pi.to_json()),
            ("emission", self.emission.to_json()),
            ("emission_ok", bools_to_json(&self.emission_ok)),
            ("chain_off", u32s_to_json(&self.chain_off)),
            ("part_off", u32s_to_json(&self.part_off)),
            ("part_left", u32s_to_json(&self.part_left)),
            ("part_right", u32s_to_json(&self.part_right)),
            ("part_next", bools_to_json(&self.part_next)),
            ("entry_off", u32s_to_json(&self.entry_off)),
            ("entry_state", u32s_to_json(&self.entry_state)),
            ("entry_chain", u32s_to_json(&self.entry_chain)),
            ("trans_off", u32s_to_json(&self.trans_off)),
            ("trans_to", u32s_to_json(&self.trans_to)),
            ("trans_guard", u32s_to_json(&self.trans_guard)),
            (
                "out_kind",
                JsonValue::Arr(
                    self.out_kind
                        .iter()
                        .map(|&v| JsonValue::UInt(u64::from(v)))
                        .collect(),
                ),
            ),
            ("out_slope", self.out_slope.to_json()),
            ("out_offset", self.out_offset.to_json()),
            ("attr_mu", self.attr_mu.to_json()),
            ("attr_sigma", self.attr_sigma.to_json()),
            ("attr_n", self.attr_n.to_json()),
            ("initial", JsonValue::UInt(u64::from(self.initial_state))),
            ("dict_rows", self.dict_rows.to_json()),
            ("dict_codes", u32s_to_json(&self.dict_codes)),
        ])
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        let m = v.usize_field("states")?;
        let k = v.usize_field("symbols")?;
        let props = v.usize_field("props")?;
        let row_words = v.usize_field("row_words")?;
        if m == 0 {
            return Err(PersistError::schema("compiled model declares zero states"));
        }
        if k == 0 {
            return Err(PersistError::schema("compiled model declares zero symbols"));
        }

        let at = f64s_field(v, "at")?;
        let bt = f64s_field(v, "bt")?;
        let pi = f64s_field(v, "pi")?;
        let emission = f64s_field(v, "emission")?;
        let emission_ok = bools_field(v, "emission_ok")?;
        expect_len("at", at.len(), m * m)?;
        expect_len("bt", bt.len(), k * m)?;
        expect_len("pi", pi.len(), m)?;
        expect_len("emission", emission.len(), k * m)?;
        expect_len("emission_ok", emission_ok.len(), k)?;

        // The same stochastic-row checks Hmm's persistence applies to the
        // untransposed matrices.
        for i in 0..m {
            if !is_distribution((0..m).map(|j| at[j * m + i])) {
                return Err(PersistError::schema(format!(
                    "compiled transition row {i} is not a probability distribution"
                )));
            }
        }
        for j in 0..m {
            if !is_distribution((0..k).map(|s| bt[s * m + j])) {
                return Err(PersistError::schema(format!(
                    "compiled emission row {j} is not a probability distribution"
                )));
            }
        }
        if !is_distribution(pi.iter().copied()) {
            return Err(PersistError::schema(
                "compiled initial distribution does not sum to 1",
            ));
        }
        for s in 0..k {
            let row = &emission[s * m..(s + 1) * m];
            if emission_ok[s] {
                if !is_distribution(row.iter().copied()) {
                    return Err(PersistError::schema(format!(
                        "compiled resync belief for symbol {s} is not a probability distribution"
                    )));
                }
            } else if row.iter().any(|&p| p != 0.0) {
                return Err(PersistError::schema(format!(
                    "compiled resync belief for symbol {s} is flagged invalid but non-zero"
                )));
            }
        }

        let chain_off = u32s_field(v, "chain_off")?;
        let part_off = u32s_field(v, "part_off")?;
        let part_left = u32s_field(v, "part_left")?;
        let part_right = u32s_field(v, "part_right")?;
        let part_next = bools_field(v, "part_next")?;
        if chain_off.len() != m + 1 {
            return Err(PersistError::schema(format!(
                "compiled chain offsets have {} entries for {m} declared states (want {})",
                chain_off.len(),
                m + 1
            )));
        }
        let chains = *chain_off.last().expect("length checked") as usize;
        expect_offsets("chain_off", &chain_off, m + 1, true, chains)?;
        let parts = part_left.len();
        expect_offsets("part_off", &part_off, chains + 1, true, parts)?;
        expect_len("part_right", part_right.len(), parts)?;
        expect_len("part_next", part_next.len(), parts)?;

        let entry_off = u32s_field(v, "entry_off")?;
        let entry_state = u32s_field(v, "entry_state")?;
        let entry_chain = u32s_field(v, "entry_chain")?;
        expect_offsets("entry_off", &entry_off, props + 1, false, entry_state.len())?;
        expect_len("entry_chain", entry_chain.len(), entry_state.len())?;
        expect_in_range("entry_state", &entry_state, m)?;
        expect_in_range("entry_chain", &entry_chain, chains)?;
        // The entry dictionary is an acceleration of the chain table; it
        // must equal the one compilation derives, or resynchronisation
        // would silently diverge from the interpreted walker.
        {
            let mut want_off: Vec<u32> = Vec::with_capacity(props + 1);
            let mut want_state: Vec<u32> = Vec::with_capacity(chains);
            let mut want_chain: Vec<u32> = Vec::with_capacity(chains);
            let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); props];
            for s in 0..m {
                for c in chain_off[s]..chain_off[s + 1] {
                    let entry = part_left[part_off[c as usize] as usize] as usize;
                    if entry >= props {
                        return Err(PersistError::schema(format!(
                            "chain {c} enters on proposition {entry}, outside the declared {props}"
                        )));
                    }
                    buckets[entry].push((s as u32, c));
                }
            }
            want_off.push(0);
            for bucket in &buckets {
                for &(s, c) in bucket {
                    want_state.push(s);
                    want_chain.push(c);
                }
                want_off.push(want_state.len() as u32);
            }
            if entry_off != want_off || entry_state != want_state || entry_chain != want_chain {
                return Err(PersistError::schema(
                    "compiled entry dictionary is inconsistent with the chain table",
                ));
            }
        }

        let trans_off = u32s_field(v, "trans_off")?;
        let trans_to = u32s_field(v, "trans_to")?;
        let trans_guard = u32s_field(v, "trans_guard")?;
        expect_offsets("trans_off", &trans_off, m + 1, false, trans_to.len())?;
        expect_len("trans_guard", trans_guard.len(), trans_to.len())?;
        expect_in_range("trans_to", &trans_to, m)?;

        let out_kind_raw = u32s_field(v, "out_kind")?;
        expect_len("out_kind", out_kind_raw.len(), m)?;
        let out_kind: Vec<u8> = out_kind_raw
            .iter()
            .map(|&x| {
                if x <= 1 {
                    Ok(x as u8)
                } else {
                    Err(PersistError::schema(format!(
                        "compiled output kind {x} is neither constant (0) nor regression (1)"
                    )))
                }
            })
            .collect::<Result<_, _>>()?;
        let out_slope = f64s_field(v, "out_slope")?;
        let out_offset = f64s_field(v, "out_offset")?;
        let attr_mu = f64s_field(v, "attr_mu")?;
        let attr_sigma = f64s_field(v, "attr_sigma")?;
        let attr_n = Vec::<u64>::from_json(v.field("attr_n")?)?;
        expect_len("out_slope", out_slope.len(), m)?;
        expect_len("out_offset", out_offset.len(), m)?;
        expect_len("attr_mu", attr_mu.len(), m)?;
        expect_len("attr_sigma", attr_sigma.len(), m)?;
        expect_len("attr_n", attr_n.len(), m)?;

        let initial = v.usize_field("initial")?;
        if initial >= m {
            return Err(PersistError::schema(format!(
                "compiled initial state {initial} out of range ({m} states)"
            )));
        }

        let dict_rows = Vec::<u64>::from_json(v.field("dict_rows")?)?;
        let dict_codes = u32s_field(v, "dict_codes")?;
        if row_words == 0 {
            if !dict_rows.is_empty() || !dict_codes.is_empty() {
                return Err(PersistError::schema(
                    "compiled dictionary has rows but declares zero words per row",
                ));
            }
        } else {
            expect_len("dict_rows", dict_rows.len(), dict_codes.len() * row_words)?;
            for i in 1..dict_codes.len() {
                let prev = &dict_rows[(i - 1) * row_words..i * row_words];
                let cur = &dict_rows[i * row_words..(i + 1) * row_words];
                if prev >= cur {
                    return Err(PersistError::schema(format!(
                        "compiled dictionary rows are not strictly sorted at slot {i}"
                    )));
                }
            }
        }

        let (log_at, log_bt, log_pi) = derive_logs(&at, &bt, &pi);
        let max_chains = (0..m)
            .map(|s| (chain_off[s + 1] - chain_off[s]) as usize)
            .max()
            .unwrap_or(0);
        Ok(CompiledModel {
            m,
            k,
            at,
            bt,
            pi,
            emission,
            emission_ok,
            log_at,
            log_bt,
            log_pi,
            props,
            chain_off,
            part_off,
            part_left,
            part_right,
            part_next,
            entry_off,
            entry_state,
            entry_chain,
            trans_off,
            trans_to,
            trans_guard,
            out_kind,
            out_slope,
            out_offset,
            attr_mu,
            attr_sigma,
            attr_n,
            initial_state: initial as u32,
            max_chains,
            row_words,
            dict_rows,
            dict_codes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_core::{generate_psm, join, MergePolicy, Psm};
    use psm_hmm::{build_hmm, Hmm, HmmSimulator};
    use psm_mining::{PropositionId, PropositionTrace};
    use psm_trace::PowerTrace;

    fn trained_pair() -> (Psm, Hmm) {
        let props = [0u32, 0, 0, 1, 1, 2, 0, 0, 0, 1, 1, 2, 0, 0];
        let power: PowerTrace = props.iter().map(|&p| 2.0 + 3.0 * p as f64).collect();
        let psm = generate_psm(&PropositionTrace::from_indices(&props), &power, 0)
            .expect("training trace generates a PSM");
        let joined = join(&[psm], &MergePolicy::default());
        let hmm = build_hmm(&joined, 3);
        (joined, hmm)
    }

    fn obs(seq: &[u32]) -> Vec<Option<PropositionId>> {
        seq.iter()
            .map(|&i| Some(PropositionId::from_index(i)))
            .collect()
    }

    #[test]
    fn compiled_model_round_trips_bit_identically() {
        let (psm, hmm) = trained_pair();
        let compiled = CompiledModel::compile(&psm, &hmm).unwrap();
        let text = compiled.to_json().render();
        let back = CompiledModel::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json().render(), text, "canonical form is stable");

        let o = obs(&[0, 0, 1, 1, 2, 0, 0, 1, 2, 0]);
        let h = vec![1u32; o.len()];
        let a = compiled.run(&o, &h);
        let b = back.run(&o, &h);
        assert_eq!(a, b, "reloaded model behaves identically");
        let interp = HmmSimulator::new(&psm, hmm).run(&o, &h);
        for (x, y) in a.estimate.iter().zip(interp.estimate.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "compiled matches interpreted");
        }
    }

    #[test]
    fn length_lies_are_schema_errors_not_panics() {
        let (psm, hmm) = trained_pair();
        let compiled = CompiledModel::compile(&psm, &hmm).unwrap();

        // Truncate one probability from the transition table.
        let mut v = compiled.to_json();
        if let JsonValue::Obj(fields) = &mut v {
            for (name, value) in fields.iter_mut() {
                if name == "at" {
                    if let JsonValue::Arr(items) = value {
                        items.pop();
                    }
                }
            }
        }
        let err = CompiledModel::from_json(&v).unwrap_err();
        assert!(
            matches!(&err, PersistError::Schema(msg) if msg.contains("'at'")),
            "truncated table reports a structured schema error, got: {err}"
        );

        // Lie about the state count: every per-state table length disagrees.
        let mut v = compiled.to_json();
        if let JsonValue::Obj(fields) = &mut v {
            for (name, value) in fields.iter_mut() {
                if name == "states" {
                    *value = JsonValue::UInt(compiled.num_states() as u64 + 1);
                }
            }
        }
        assert!(
            matches!(
                CompiledModel::from_json(&v).unwrap_err(),
                PersistError::Schema(_)
            ),
            "declared/actual state-count mismatch is a schema error"
        );
    }

    #[test]
    fn corrupted_entry_dictionary_is_rejected() {
        let (psm, hmm) = trained_pair();
        let compiled = CompiledModel::compile(&psm, &hmm).unwrap();
        let mut v = compiled.to_json();
        if let JsonValue::Obj(fields) = &mut v {
            for (name, value) in fields.iter_mut() {
                if name == "entry_state" {
                    if let JsonValue::Arr(items) = value {
                        items.reverse();
                    }
                }
            }
        }
        let err = CompiledModel::from_json(&v).unwrap_err();
        assert!(
            matches!(&err, PersistError::Schema(msg) if msg.contains("entry dictionary")),
            "swapped resync slots are caught, got: {err}"
        );
    }

    #[test]
    fn unsorted_dictionary_rows_are_rejected() {
        let (psm, hmm) = trained_pair();
        let compiled = CompiledModel::compile(&psm, &hmm).unwrap();
        let mut v = compiled.to_json();
        if let JsonValue::Obj(fields) = &mut v {
            for (name, value) in fields.iter_mut() {
                match name.as_str() {
                    "row_words" => *value = JsonValue::UInt(1),
                    "dict_rows" => {
                        *value = JsonValue::Arr(vec![JsonValue::UInt(5), JsonValue::UInt(3)])
                    }
                    "dict_codes" => {
                        *value = JsonValue::Arr(vec![JsonValue::UInt(0), JsonValue::UInt(1)])
                    }
                    _ => {}
                }
            }
        }
        let err = CompiledModel::from_json(&v).unwrap_err();
        assert!(
            matches!(&err, PersistError::Schema(msg) if msg.contains("sorted")),
            "unsorted dictionary rows are caught, got: {err}"
        );
    }

    #[test]
    fn decode_matches_interpreted_viterbi() {
        let (psm, hmm) = trained_pair();
        let compiled = CompiledModel::compile(&psm, &hmm).unwrap();
        let seq = [0usize, 0, 1, 1, 2, 0, 0, 1, 1, 2, 0];
        let a = compiled.decode(&seq).unwrap();
        let b = hmm.viterbi(&seq).unwrap();
        assert_eq!(a, b, "compiled Viterbi path matches the interpreter");
        assert!(
            compiled.decode(&[99]).is_err(),
            "unknown symbols are errors"
        );
    }
}
