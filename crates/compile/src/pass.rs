//! The compiled forward pass: the assertion-driven walker of
//! `psm_hmm::ForwardPass` executed over the flat tables of a
//! [`CompiledModel`], with every per-instant allocation hoisted into a
//! reusable [`CompiledForwardState`].

use psm_hmm::HmmOutcome;
use psm_mining::PropositionId;
use psm_trace::PowerTrace;

use crate::model::CompiledModel;

/// One live alternative chain: global chain id, global part index, and
/// whether a `next` part already consumed its single left-instant.
#[derive(Debug, Clone, Copy)]
struct CompiledAlt {
    chain: u32,
    part: u32,
    next_consumed: bool,
}

/// Resumable state of a compiled estimation run — the compiled twin of
/// `psm_hmm::ForwardState`.
///
/// All buffers (belief, filter scratch, the two alternative sets) are
/// allocated once by [`CompiledModel::begin`] with capacity for the widest
/// state, so [`CompiledModel::resume`] performs **zero allocations** per
/// chunk regardless of chunk size (the caller-owned output trace is the
/// only growing buffer, exactly as in the interpreted pass).
#[derive(Debug, Clone)]
pub struct CompiledForwardState {
    pub(crate) belief: Vec<f64>,
    pub(crate) scratch: Vec<f64>,
    /// Live alternatives of the current cursor; meaningful only when
    /// `has_cursor`.
    alts: Vec<CompiledAlt>,
    /// Double buffer the per-instant step writes surviving alternatives
    /// into before swapping.
    next_alts: Vec<CompiledAlt>,
    has_cursor: bool,
    /// Cursor state index; meaningful only when `has_cursor`.
    cur_state: u32,
    last_state: u32,
    wrong: usize,
    unknown: usize,
    instants: usize,
}

impl CompiledForwardState {
    /// Wrong-state predictions accumulated over every resumed chunk.
    pub fn wrong_state_predictions(&self) -> usize {
        self.wrong
    }

    /// Unknown instants accumulated over every resumed chunk.
    pub fn unknown_instants(&self) -> usize {
        self.unknown
    }

    /// Total instants fed through this state so far.
    pub fn instants(&self) -> usize {
        self.instants
    }

    /// The state currently holding the power estimate.
    pub fn last_state(&self) -> usize {
        self.last_state as usize
    }
}

impl CompiledModel {
    /// A fresh [`CompiledForwardState`] positioned before the first
    /// instant — uniform belief, no cursor, the initial state as holder —
    /// with every scratch buffer pre-sized so subsequent
    /// [`resume`](CompiledModel::resume) calls never allocate.
    pub fn begin(&self) -> CompiledForwardState {
        let m = self.m;
        CompiledForwardState {
            belief: vec![1.0 / m as f64; m],
            scratch: vec![0.0; m],
            alts: Vec::with_capacity(self.max_chains),
            next_alts: Vec::with_capacity(self.max_chains),
            has_cursor: false,
            cur_state: 0,
            last_state: self.initial_state,
            wrong: 0,
            unknown: 0,
            instants: 0,
        }
    }

    /// Feeds one chunk of observations through `state`, appending one power
    /// estimate per instant to `estimate` — bit-identical to
    /// `psm_hmm::ForwardPass::resume` on the model this was compiled from,
    /// for any chunking of the same trace.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn resume(
        &self,
        state: &mut CompiledForwardState,
        observations: &[Option<PropositionId>],
        input_hamming: &[u32],
        estimate: &mut PowerTrace,
    ) {
        assert_eq!(
            observations.len(),
            input_hamming.len(),
            "observations and hamming series must align"
        );
        let m = self.m;
        for (t, obs) in observations.iter().enumerate() {
            match obs {
                None => {
                    state.unknown += 1;
                    state.has_cursor = false;
                }
                Some(o) => {
                    let sym = o.index();
                    // Belief update: the exact filter_step_cached loops,
                    // with the emission fallback copied (not reallocated)
                    // when the transition-constrained update collapses.
                    if sym < self.k {
                        let like = self.filter_step(&mut state.belief, sym, &mut state.scratch);
                        if like <= 0.0 && self.emission_ok[sym] {
                            state
                                .belief
                                .copy_from_slice(&self.emission[sym * m..(sym + 1) * m]);
                        }
                    }

                    let code = sym as u32;
                    if state.has_cursor {
                        match self.advance_step(state, code) {
                            StepOutcome::Stay => {
                                std::mem::swap(&mut state.alts, &mut state.next_alts);
                                state.last_state = state.cur_state;
                            }
                            StepOutcome::Enter(next) => {
                                self.fill_entry_alts(next, code, &mut state.alts);
                                state.cur_state = next;
                                state.last_state = next;
                            }
                            StepOutcome::Fail => match self.resync_state(code, &state.belief) {
                                Some(next) => {
                                    state.wrong += 1;
                                    self.fill_entry_alts(next, code, &mut state.alts);
                                    state.cur_state = next;
                                    state.last_state = next;
                                }
                                None => {
                                    state.unknown += 1;
                                    state.has_cursor = false;
                                }
                            },
                        }
                    } else if let Some(next) = self.resync_state(code, &state.belief) {
                        self.fill_entry_alts(next, code, &mut state.alts);
                        state.cur_state = next;
                        state.last_state = next;
                        state.has_cursor = true;
                    } else {
                        state.unknown += 1;
                    }
                }
            }
            let s = state.last_state as usize;
            let value = if self.out_kind[s] == 0 {
                self.out_offset[s]
            } else {
                self.out_slope[s] * input_hamming[t] as f64 + self.out_offset[s]
            };
            estimate.push(value);
        }
        state.instants += observations.len();
    }

    /// One-shot convenience: begin, resume over the whole trace, package an
    /// [`HmmOutcome`] — the compiled twin of `HmmSimulator::run`.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn run(&self, observations: &[Option<PropositionId>], input_hamming: &[u32]) -> HmmOutcome {
        let mut state = self.begin();
        let mut estimate = PowerTrace::with_capacity(observations.len());
        self.resume(&mut state, observations, input_hamming, &mut estimate);
        HmmOutcome {
            estimate,
            wrong_state_predictions: state.wrong,
            unknown_instants: state.unknown,
        }
    }

    /// The exact arithmetic of `Hmm::filter_step_cached` (same i-order inner
    /// product, same sum, same division), minus the error paths the walker
    /// already rules out. Updates `belief` in place when the likelihood is
    /// positive; returns the pre-normalisation likelihood.
    fn filter_step(&self, belief: &mut [f64], symbol: usize, scratch: &mut [f64]) -> f64 {
        let m = self.m;
        let bcol = &self.bt[symbol * m..(symbol + 1) * m];
        for (j, nj) in scratch.iter_mut().enumerate() {
            let col = &self.at[j * m..(j + 1) * m];
            let mut acc = 0.0;
            for i in 0..m {
                acc += belief[i] * col[i];
            }
            *nj = acc * bcol[j];
        }
        let likelihood: f64 = scratch.iter().sum();
        if likelihood > 0.0 {
            for (dst, src) in belief.iter_mut().zip(scratch.iter()) {
                *dst = src / likelihood;
            }
        }
        likelihood
    }

    /// Advances the live alternatives of `state.cur_state` on observation
    /// `o`, writing survivors into `state.next_alts`. Mirrors
    /// `ForwardPass::advance` including its tie resolution: staying beats
    /// exiting unless the belief strictly prefers the exit target.
    fn advance_step(&self, state: &mut CompiledForwardState, o: u32) -> StepOutcome {
        state.next_alts.clear();
        let mut wants_exit = false;
        for alt in &state.alts {
            let part = alt.part as usize;
            // An `until` part repeats on its left proposition…
            if o == self.part_left[part] && !alt.next_consumed && !self.part_next[part] {
                state.next_alts.push(*alt);
                continue;
            }
            // …and cascades or exits on its right one.
            if o == self.part_right[part] {
                if alt.part + 1 < self.part_off[alt.chain as usize + 1] {
                    state.next_alts.push(CompiledAlt {
                        chain: alt.chain,
                        part: alt.part + 1,
                        next_consumed: self.part_next[part + 1],
                    });
                } else {
                    wants_exit = true;
                }
            }
        }
        let exit_target = if wants_exit {
            self.best_exit_state(state.cur_state, o, &state.belief)
        } else {
            None
        };
        match (state.next_alts.is_empty(), exit_target) {
            (false, None) => StepOutcome::Stay,
            (true, Some(next)) => StepOutcome::Enter(next),
            (false, Some(next)) => {
                if state.belief[next as usize] > state.belief[state.cur_state as usize] {
                    StepOutcome::Enter(next)
                } else {
                    StepOutcome::Stay
                }
            }
            (true, None) => StepOutcome::Fail,
        }
    }

    /// Whether `state` has at least one chain entered by `o` — the
    /// compiled `enter(state, o).is_some()`.
    fn state_accepts(&self, state: u32, o: u32) -> bool {
        let lo = self.chain_off[state as usize] as usize;
        let hi = self.chain_off[state as usize + 1] as usize;
        (lo..hi).any(|c| self.part_left[self.part_off[c] as usize] == o)
    }

    /// Rebuilds the alternative set `enter(state, o)` produces, into a
    /// pre-sized buffer: one alternative per chain whose entry proposition
    /// is `o`, in chain order.
    fn fill_entry_alts(&self, state: u32, o: u32, buf: &mut Vec<CompiledAlt>) {
        buf.clear();
        let lo = self.chain_off[state as usize] as usize;
        let hi = self.chain_off[state as usize + 1] as usize;
        for c in lo..hi {
            let first = self.part_off[c] as usize;
            if self.part_left[first] == o {
                buf.push(CompiledAlt {
                    chain: c as u32,
                    part: first as u32,
                    next_consumed: self.part_next[first],
                });
            }
        }
    }

    /// The belief-preferred exit of `from` through a transition guarded by
    /// `o`. Transition order matches the source declaration order, and ties
    /// break on strict `>`, exactly as `ForwardPass::best_exit`.
    fn best_exit_state(&self, from: u32, o: u32, belief: &[f64]) -> Option<u32> {
        let mut best: Option<(f64, u32)> = None;
        let lo = self.trans_off[from as usize] as usize;
        let hi = self.trans_off[from as usize + 1] as usize;
        for t in lo..hi {
            if self.trans_guard[t] != o {
                continue;
            }
            let to = self.trans_to[t];
            if !self.state_accepts(to, o) {
                continue;
            }
            let score = belief[to as usize];
            if best.is_none_or(|(s, _)| score > s) {
                best = Some((score, to));
            }
        }
        best.map(|(_, s)| s)
    }

    /// The best state accepting `o` as an entry, ranked by belief with
    /// strict-`>` ties — the compiled `ForwardPass::resync`. Scans the
    /// per-symbol entry dictionary, whose slots are state-ascending like the
    /// interpreter's full state scan (duplicate slots of one state carry an
    /// equal score and thus never change the winner).
    fn resync_state(&self, o: u32, belief: &[f64]) -> Option<u32> {
        if o as usize >= self.props {
            return None;
        }
        let lo = self.entry_off[o as usize] as usize;
        let hi = self.entry_off[o as usize + 1] as usize;
        let mut best: Option<(f64, u32)> = None;
        for e in lo..hi {
            let s = self.entry_state[e];
            let score = belief[s as usize];
            if best.is_none_or(|(b, _)| score > b) {
                best = Some((score, s));
            }
        }
        best.map(|(_, s)| s)
    }
}

/// Resolution of one cursor step.
enum StepOutcome {
    /// At least one alternative survives in the current state.
    Stay,
    /// Exit into (or resynchronise onto) the given state.
    Enter(u32),
    /// No alternative accepts the observation.
    Fail,
}
