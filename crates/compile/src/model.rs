//! The compiled model: flat, index-addressed tables lowered from a trained
//! `(PropositionTable, Psm, Hmm)` triple.

use std::error::Error;
use std::fmt;

use psm_core::{OutputFunction, Psm, StateId};
use psm_hmm::Hmm;
use psm_mining::{PropositionId, PropositionTable, TemporalPattern};

/// Failures while compiling or executing a compiled model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The PSM and the HMM disagree on the number of states, so the belief
    /// vector cannot index PSM states.
    StateSpaceMismatch {
        /// States in the PSM.
        psm_states: usize,
        /// States in the HMM.
        hmm_states: usize,
    },
    /// The model has no states at all; there is nothing to compile.
    EmptyModel,
    /// A decode request used an observation code outside the emission
    /// alphabet (mirrors `HmmError::UnknownSymbol`).
    UnknownSymbol {
        /// The offending code.
        symbol: usize,
        /// The alphabet size.
        known: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::StateSpaceMismatch {
                psm_states,
                hmm_states,
            } => write!(
                f,
                "PSM has {psm_states} states but HMM has {hmm_states}; the models are not a pair"
            ),
            CompileError::EmptyModel => write!(f, "cannot compile a model with zero states"),
            CompileError::UnknownSymbol { symbol, known } => {
                write!(
                    f,
                    "observation symbol {symbol} out of range ({known} known)"
                )
            }
        }
    }
}

impl Error for CompileError {}

/// A trained PSM+HMM lowered to flat tables for serving.
///
/// Every probability, guard, chain part and output coefficient of the source
/// model is re-laid-out into contiguous `Vec`s addressed by dense integer
/// ids — no boxed state objects, no hash lookups, no per-instant allocation.
/// The numeric tables hold exactly the same `f64` values the interpreter
/// reads (no reassociation, no renormalisation), which is why the compiled
/// forward pass is bit-identical to `psm_hmm::ForwardPass`.
///
/// Construction: [`CompiledModel::compile`] (no observation dictionary, for
/// callers that already hold `PropositionId`s) or
/// [`CompiledModel::compile_with_dictionary`] (also interns the proposition
/// table rows into a sorted-slice dictionary so raw trace cycles can be
/// classified without the training-side hash map).
#[derive(Debug, Clone)]
pub struct CompiledModel {
    // ---- HMM tables (verbatim ForwardCache layout) ----
    /// Number of states.
    pub(crate) m: usize,
    /// Number of emission symbols.
    pub(crate) k: usize,
    /// Transposed transition matrix: `at[j*m + i] = A[i][j]` (column-major,
    /// so the forward inner product walks one contiguous column).
    pub(crate) at: Vec<f64>,
    /// Transposed emission matrix: `bt[s*m + j] = B[j][s]` (symbol-major).
    pub(crate) bt: Vec<f64>,
    /// Initial distribution π.
    pub(crate) pi: Vec<f64>,
    /// Resynchronisation fallback beliefs: row `s` (length `m`, at offset
    /// `s*m`) is `Hmm::emission_belief(s)`, or all zeros when that symbol
    /// has no normalisable emission column.
    pub(crate) emission: Vec<f64>,
    /// Whether `emission` row `s` is a valid distribution.
    pub(crate) emission_ok: Vec<bool>,
    // ---- derived log tables (never persisted; recomputed at load) ----
    /// `log_at[j*m + i] = ln(A[i][j])`, `-inf` for zero entries.
    pub(crate) log_at: Vec<f64>,
    /// `log_bt[s*m + j] = ln(B[j][s])`, `-inf` for zero entries.
    pub(crate) log_bt: Vec<f64>,
    /// `log_pi[i] = ln(π_i)`, `-inf` for zero entries.
    pub(crate) log_pi: Vec<f64>,
    // ---- PSM structure ----
    /// Width of the entry dictionary: one past the largest proposition id
    /// that opens any chain.
    pub(crate) props: usize,
    /// CSR offsets into the global chain id space: state `s` owns chains
    /// `chain_off[s]..chain_off[s+1]`, in the source enumeration order.
    pub(crate) chain_off: Vec<u32>,
    /// CSR offsets into the part arrays: chain `c` spans parts
    /// `part_off[c]..part_off[c+1]` (chains are never empty).
    pub(crate) part_off: Vec<u32>,
    /// Left proposition of each chain part (`p` in `p U q` / `p X q`).
    pub(crate) part_left: Vec<u32>,
    /// Right proposition of each chain part.
    pub(crate) part_right: Vec<u32>,
    /// `true` when the part's pattern is `Next` (`false` ⇔ `Until`; the
    /// temporal alphabet has exactly those two patterns).
    pub(crate) part_next: Vec<bool>,
    /// CSR offsets per observation code: symbol `o` opens the chains listed
    /// at `entry_off[o]..entry_off[o+1]` of `entry_state`/`entry_chain`.
    pub(crate) entry_off: Vec<u32>,
    /// Owning state of each entry-table slot, ascending per symbol — the
    /// resynchronisation scan order of the interpreter.
    pub(crate) entry_state: Vec<u32>,
    /// Global chain id of each entry-table slot, ascending within a state.
    pub(crate) entry_chain: Vec<u32>,
    /// CSR offsets: state `s` has outgoing transitions
    /// `trans_off[s]..trans_off[s+1]`, preserving source declaration order.
    pub(crate) trans_off: Vec<u32>,
    /// Target state of each transition.
    pub(crate) trans_to: Vec<u32>,
    /// Guard proposition of each transition.
    pub(crate) trans_guard: Vec<u32>,
    /// Output-function kind per state: 0 = constant, 1 = regression. Kept
    /// as an explicit discriminant — lowering a constant to a slope-0
    /// regression is not bit-safe (`0.0 * h + μ` rewrites `μ = -0.0` to
    /// `+0.0`), and the interpreter evaluates constants without arithmetic.
    pub(crate) out_kind: Vec<u8>,
    /// Regression slope per state (unused slots are 0).
    pub(crate) out_slope: Vec<f64>,
    /// Constant μ or regression intercept per state.
    pub(crate) out_offset: Vec<f64>,
    /// Mean power per state (diagnostic attribute).
    pub(crate) attr_mu: Vec<f64>,
    /// Power standard deviation per state.
    pub(crate) attr_sigma: Vec<f64>,
    /// Training-sample count per state.
    pub(crate) attr_n: Vec<u64>,
    /// Walker start state: first initial state, or state 0.
    pub(crate) initial_state: u32,
    /// Largest per-state chain count — the alternative-buffer capacity that
    /// makes the compiled resume allocation-free (derived, not persisted).
    pub(crate) max_chains: usize,
    // ---- observation dictionary (sorted-slice interning) ----
    /// Words per dictionary row (0 when compiled without a dictionary).
    pub(crate) row_words: usize,
    /// Flattened proposition bit-rows, lexicographically sorted, stride
    /// `row_words`.
    pub(crate) dict_rows: Vec<u64>,
    /// Observation code (`PropositionId` index) of each sorted row.
    pub(crate) dict_codes: Vec<u32>,
}

impl CompiledModel {
    /// Compiles a PSM/HMM pair without an observation dictionary. Suitable
    /// when observations are already `PropositionId`s (e.g. replayed
    /// proposition traces); [`CompiledModel::classify_row`] will return
    /// `None` for every cycle.
    ///
    /// # Errors
    ///
    /// [`CompileError::StateSpaceMismatch`] when the PSM and HMM disagree on
    /// the state count, [`CompileError::EmptyModel`] for zero-state models.
    pub fn compile(psm: &Psm, hmm: &Hmm) -> Result<Self, CompileError> {
        Self::build(None, psm, hmm)
    }

    /// Compiles a full trained triple, interning the proposition table into
    /// a sorted-slice dictionary so raw cycles can be classified to dense
    /// observation codes at serve time.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledModel::compile`].
    pub fn compile_with_dictionary(
        table: &PropositionTable,
        psm: &Psm,
        hmm: &Hmm,
    ) -> Result<Self, CompileError> {
        Self::build(Some(table), psm, hmm)
    }

    fn build(table: Option<&PropositionTable>, psm: &Psm, hmm: &Hmm) -> Result<Self, CompileError> {
        let m = psm.state_count();
        if m != hmm.num_states() {
            return Err(CompileError::StateSpaceMismatch {
                psm_states: m,
                hmm_states: hmm.num_states(),
            });
        }
        if m == 0 {
            return Err(CompileError::EmptyModel);
        }
        let k = hmm.num_symbols();

        // HMM tables — the exact loops of Hmm::forward_cache, so the flat
        // layout holds bit-for-bit the interpreter's values.
        let a = hmm.a();
        let b = hmm.b();
        let mut at = vec![0.0f64; m * m];
        for (i, row) in a.iter().enumerate() {
            for (j, &aij) in row.iter().enumerate() {
                at[j * m + i] = aij;
            }
        }
        let mut bt = vec![0.0f64; k * m];
        for (j, row) in b.iter().enumerate() {
            for (s, &bjs) in row.iter().enumerate() {
                bt[s * m + j] = bjs;
            }
        }
        let pi = hmm.pi().to_vec();

        // Resync fallback beliefs, computed by the interpreter's own
        // emission_belief (same sum order, same division).
        let mut emission = vec![0.0f64; k * m];
        let mut emission_ok = vec![false; k];
        for s in 0..k {
            if let Some(alpha) = hmm.emission_belief(s) {
                emission[s * m..(s + 1) * m].copy_from_slice(&alpha);
                emission_ok[s] = true;
            }
        }

        // PSM structure, flattened in source enumeration order (states
        // ascending, chains in declaration order) so every tie-break of the
        // interpreted walker is reproduced.
        let mut chain_off: Vec<u32> = Vec::with_capacity(m + 1);
        chain_off.push(0);
        let mut part_off: Vec<u32> = vec![0];
        let mut part_left: Vec<u32> = Vec::new();
        let mut part_right: Vec<u32> = Vec::new();
        let mut part_next: Vec<bool> = Vec::new();
        let mut chain_entry: Vec<u32> = Vec::new();
        let mut chain_owner: Vec<u32> = Vec::new();
        let mut out_kind: Vec<u8> = Vec::with_capacity(m);
        let mut out_slope: Vec<f64> = Vec::with_capacity(m);
        let mut out_offset: Vec<f64> = Vec::with_capacity(m);
        let mut attr_mu: Vec<f64> = Vec::with_capacity(m);
        let mut attr_sigma: Vec<f64> = Vec::with_capacity(m);
        let mut attr_n: Vec<u64> = Vec::with_capacity(m);
        for (id, state) in psm.states() {
            for chain in state.chains() {
                chain_entry.push(chain.entry_proposition().index() as u32);
                chain_owner.push(id.index() as u32);
                for part in chain.parts() {
                    part_left.push(part.left().index() as u32);
                    part_right.push(part.right().index() as u32);
                    part_next.push(part.pattern() == TemporalPattern::Next);
                }
                part_off.push(part_left.len() as u32);
            }
            chain_off.push(chain_entry.len() as u32);
            match state.output() {
                OutputFunction::Constant(mu) => {
                    out_kind.push(0);
                    out_slope.push(0.0);
                    out_offset.push(mu);
                }
                OutputFunction::Regression { slope, intercept } => {
                    out_kind.push(1);
                    out_slope.push(slope);
                    out_offset.push(intercept);
                }
            }
            let attrs = state.attrs();
            attr_mu.push(attrs.mu());
            attr_sigma.push(attrs.sigma());
            attr_n.push(attrs.n());
        }

        // Per-symbol entry dictionary. Bucketing the global (already
        // state-ascending, chain-ascending) chain sequence keeps each
        // symbol's slot order identical to the interpreter's resync scan.
        let props = chain_entry
            .iter()
            .map(|&p| p as usize + 1)
            .max()
            .unwrap_or(0);
        let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); props];
        for (c, &p) in chain_entry.iter().enumerate() {
            buckets[p as usize].push((chain_owner[c], c as u32));
        }
        let mut entry_off: Vec<u32> = Vec::with_capacity(props + 1);
        entry_off.push(0);
        let mut entry_state: Vec<u32> = Vec::with_capacity(chain_entry.len());
        let mut entry_chain: Vec<u32> = Vec::with_capacity(chain_entry.len());
        for bucket in &buckets {
            for &(s, c) in bucket {
                entry_state.push(s);
                entry_chain.push(c);
            }
            entry_off.push(entry_state.len() as u32);
        }

        // Transitions grouped by source state; `successors` filters the
        // global declaration-ordered vector, so relative order per source
        // is preserved and best-exit ties break exactly as interpreted.
        let mut trans_off: Vec<u32> = Vec::with_capacity(m + 1);
        trans_off.push(0);
        let mut trans_to: Vec<u32> = Vec::new();
        let mut trans_guard: Vec<u32> = Vec::new();
        for s in 0..m {
            for t in psm.successors(StateId::from_index(s)) {
                trans_to.push(t.to.index() as u32);
                trans_guard.push(t.guard.index() as u32);
            }
            trans_off.push(trans_to.len() as u32);
        }

        let initial_state = psm.initials().first().map_or(0, |(s, _)| s.index()) as u32;

        // Sorted-slice observation dictionary: proposition bit-rows in
        // lexicographic order, looked up by binary search. Exact-match
        // lookup over distinct interned rows is equivalent to the training
        // hash map.
        let (row_words, dict_rows, dict_codes) = match table {
            Some(t) => {
                let w = t.vocabulary().len().div_ceil(64).max(1);
                let mut order: Vec<u32> = (0..t.len() as u32).collect();
                order.sort_by(|&x, &y| {
                    t.get(PropositionId::from_index(x))
                        .row()
                        .cmp(t.get(PropositionId::from_index(y)).row())
                });
                let mut rows: Vec<u64> = Vec::with_capacity(t.len() * w);
                for &c in &order {
                    rows.extend_from_slice(t.get(PropositionId::from_index(c)).row());
                }
                (w, rows, order)
            }
            None => (0, Vec::new(), Vec::new()),
        };

        let (log_at, log_bt, log_pi) = derive_logs(&at, &bt, &pi);
        let max_chains = (0..m)
            .map(|s| (chain_off[s + 1] - chain_off[s]) as usize)
            .max()
            .unwrap_or(0);

        Ok(CompiledModel {
            m,
            k,
            at,
            bt,
            pi,
            emission,
            emission_ok,
            log_at,
            log_bt,
            log_pi,
            props,
            chain_off,
            part_off,
            part_left,
            part_right,
            part_next,
            entry_off,
            entry_state,
            entry_chain,
            trans_off,
            trans_to,
            trans_guard,
            out_kind,
            out_slope,
            out_offset,
            attr_mu,
            attr_sigma,
            attr_n,
            initial_state,
            max_chains,
            row_words,
            dict_rows,
            dict_codes,
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.m
    }

    /// Number of emission symbols.
    pub fn num_symbols(&self) -> usize {
        self.k
    }

    /// Width of the chain-entry dictionary (one past the largest
    /// proposition id that opens a chain).
    pub fn prop_count(&self) -> usize {
        self.props
    }

    /// Number of interned observation rows in the dictionary (0 when
    /// compiled without one).
    pub fn dictionary_len(&self) -> usize {
        self.dict_codes.len()
    }

    /// The walker's start state index.
    pub fn initial_state(&self) -> usize {
        self.initial_state as usize
    }

    /// Mean power attribute of a state.
    pub fn state_mu(&self, state: usize) -> f64 {
        self.attr_mu[state]
    }

    /// Power standard deviation attribute of a state.
    pub fn state_sigma(&self, state: usize) -> f64 {
        self.attr_sigma[state]
    }

    /// Training-sample count attribute of a state.
    pub fn state_samples(&self, state: usize) -> u64 {
        self.attr_n[state]
    }

    /// Total bytes held by the compiled tables (diagnostic; excludes the
    /// struct header).
    pub fn footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.at.len() + self.bt.len() + self.pi.len() + self.emission.len()) * size_of::<f64>()
            + (self.log_at.len() + self.log_bt.len() + self.log_pi.len()) * size_of::<f64>()
            + (self.out_slope.len() + self.out_offset.len()) * size_of::<f64>()
            + (self.attr_mu.len() + self.attr_sigma.len()) * size_of::<f64>()
            + self.attr_n.len() * size_of::<u64>()
            + self.dict_rows.len() * size_of::<u64>()
            + (self.chain_off.len()
                + self.part_off.len()
                + self.part_left.len()
                + self.part_right.len()
                + self.entry_off.len()
                + self.entry_state.len()
                + self.entry_chain.len()
                + self.trans_off.len()
                + self.trans_to.len()
                + self.trans_guard.len()
                + self.dict_codes.len())
                * size_of::<u32>()
            + self.part_next.len()
            + self.emission_ok.len()
            + self.out_kind.len()
    }

    /// Looks up a proposition bit-row in the compiled dictionary, returning
    /// its dense observation code. `None` for unseen rows, width mismatches,
    /// or models compiled without a dictionary — exactly the cases where the
    /// training-side table's `classify` also fails.
    pub fn classify_row(&self, row: &[u64]) -> Option<PropositionId> {
        if self.row_words == 0 || row.len() != self.row_words {
            return None;
        }
        let w = self.row_words;
        let mut lo = 0usize;
        let mut hi = self.dict_codes.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.dict_rows[mid * w..(mid + 1) * w].cmp(row) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    return Some(PropositionId::from_index(self.dict_codes[mid]));
                }
            }
        }
        None
    }

    /// Most likely hidden-state sequence under the compiled model —
    /// `Hmm::viterbi` over the precomputed log tables. Each log entry is
    /// produced by the same single `ln` the interpreter applies, so scores,
    /// ties and paths are bit-identical.
    ///
    /// # Errors
    ///
    /// [`CompileError::UnknownSymbol`] for out-of-range observation codes.
    pub fn decode(&self, observations: &[usize]) -> Result<Option<Vec<usize>>, CompileError> {
        if observations.is_empty() {
            return Ok(Some(Vec::new()));
        }
        let m = self.m;
        for &o in observations {
            if o >= self.k {
                return Err(CompileError::UnknownSymbol {
                    symbol: o,
                    known: self.k,
                });
            }
        }
        let mut delta: Vec<f64> = (0..m)
            .map(|i| self.log_pi[i] + self.log_bt[observations[0] * m + i])
            .collect();
        let mut next = vec![f64::NEG_INFINITY; m];
        let mut back: Vec<Vec<usize>> = Vec::with_capacity(observations.len());
        for &o in &observations[1..] {
            let mut arg = vec![0usize; m];
            let log_b_col = &self.log_bt[o * m..(o + 1) * m];
            for j in 0..m {
                let col = &self.log_at[j * m..(j + 1) * m];
                let mut best = f64::NEG_INFINITY;
                for i in 0..m {
                    let cand = delta[i] + col[i];
                    if cand > best {
                        best = cand;
                        arg[j] = i;
                    }
                }
                next[j] = best + log_b_col[j];
            }
            back.push(arg);
            std::mem::swap(&mut delta, &mut next);
        }
        let (mut best, score) = delta
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i, v))
            .expect("m > 0 by construction");
        if score == f64::NEG_INFINITY {
            return Ok(None);
        }
        let mut path = vec![best; observations.len()];
        for (t, arg) in back.iter().enumerate().rev() {
            best = arg[best];
            path[t] = best;
        }
        Ok(Some(path))
    }
}

/// Log-space tables derived from the linear ones: the identical single-`ln`
/// transform `Hmm::viterbi` applies per element (zero ↦ `-inf`), hoisted to
/// compile time. Derived, never persisted — reloading a v3 artifact
/// recomputes them from the linear tables, so a serialised model cannot
/// smuggle in divergent log values.
pub(crate) fn derive_logs(at: &[f64], bt: &[f64], pi: &[f64]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let log = |x: &f64| if *x > 0.0 { x.ln() } else { f64::NEG_INFINITY };
    (
        at.iter().map(log).collect(),
        bt.iter().map(log).collect(),
        pi.iter().map(log).collect(),
    )
}
