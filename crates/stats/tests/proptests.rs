//! Randomised property tests of the statistics substrate, driven by the
//! workspace PRNG so runs are deterministic and offline.

use psm_prng::Prng;
use psm_stats::{
    mean_relative_error, one_sample_t_test, pearson_r, welch_t_test, LinearRegression, OnlineStats,
    StudentsT,
};

const CASES: usize = 256;

fn finite_vec(rng: &mut Prng, lo: usize, hi: usize) -> Vec<f64> {
    let n = lo + rng.range_usize(0..hi - lo);
    (0..n).map(|_| rng.f64_in(-1e6, 1e6)).collect()
}

#[test]
fn welford_merge_equals_sequential() {
    let mut rng = Prng::seed_from_u64(0x57A7_0001);
    for _ in 0..CASES {
        let xs = finite_vec(&mut rng, 2, 60);
        let split = 1 + rng.range_usize(0..xs.len() - 1);
        let (l, r) = xs.split_at(split);
        let merged = OnlineStats::from_slice(l).merged(&OnlineStats::from_slice(r));
        let all = OnlineStats::from_slice(&xs);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() <= 1e-6 * (1.0 + all.mean().abs()));
        let (mv, av) = (merged.population_variance(), all.population_variance());
        assert!((mv - av).abs() <= 1e-6 * (1.0 + av.abs()));
    }
}

#[test]
fn welch_is_symmetric() {
    let mut rng = Prng::seed_from_u64(0x57A7_0002);
    for _ in 0..CASES {
        let a = finite_vec(&mut rng, 2, 20);
        let b = finite_vec(&mut rng, 2, 20);
        let sa = OnlineStats::from_slice(&a);
        let sb = OnlineStats::from_slice(&b);
        let ab = welch_t_test(&sa, &sb).expect("n >= 2");
        let ba = welch_t_test(&sb, &sa).expect("n >= 2");
        assert!((ab.statistic + ba.statistic).abs() < 1e-9 * (1.0 + ab.statistic.abs()));
        assert!((ab.p_value - ba.p_value).abs() < 1e-9);
    }
}

#[test]
fn t_cdf_is_monotone_and_bounded() {
    let mut rng = Prng::seed_from_u64(0x57A7_0003);
    for _ in 0..CASES {
        let df = rng.f64_in(0.5, 200.0);
        let a = rng.f64_in(-50.0, 50.0);
        let b = rng.f64_in(-50.0, 50.0);
        let t = StudentsT::new(df).expect("positive df");
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (cl, ch) = (t.cdf(lo), t.cdf(hi));
        assert!((0.0..=1.0).contains(&cl));
        assert!((0.0..=1.0).contains(&ch));
        assert!(cl <= ch + 1e-12);
    }
}

#[test]
fn one_sample_detects_its_own_mean() {
    let mut rng = Prng::seed_from_u64(0x57A7_0004);
    for _ in 0..CASES {
        let xs = finite_vec(&mut rng, 3, 40);
        let s = OnlineStats::from_slice(&xs);
        let t = one_sample_t_test(&s, s.mean()).expect("n >= 2");
        assert!(
            t.p_value > 0.99,
            "testing the sample mean itself: p = {}",
            t.p_value
        );
    }
}

#[test]
fn regression_interpolates_affine_data() {
    let mut rng = Prng::seed_from_u64(0x57A7_0005);
    let mut done = 0;
    while done < CASES {
        let slope = rng.f64_in(-100.0, 100.0);
        let intercept = rng.f64_in(-100.0, 100.0);
        let n = 2 + rng.range_usize(0..38);
        let xs: Vec<f64> = (0..n).map(|_| rng.f64_in(-1e3, 1e3)).collect();
        if !xs.iter().any(|&x| (x - xs[0]).abs() > 1e-9) {
            continue;
        }
        done += 1;
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let lr = LinearRegression::fit(&xs, &ys).expect("x varies");
        assert!((lr.slope() - slope).abs() < 1e-5 * (1.0 + slope.abs()));
        assert!((lr.intercept() - intercept).abs() < 1e-4 * (1.0 + intercept.abs()));
    }
}

#[test]
fn pearson_is_bounded_and_scale_invariant() {
    let mut rng = Prng::seed_from_u64(0x57A7_0006);
    for _ in 0..CASES {
        let n = 3 + rng.range_usize(0..27);
        let xs: Vec<f64> = (0..n).map(|_| rng.f64_in(-1e3, 1e3)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.f64_in(-1e3, 1e3)).collect();
        let scale = rng.f64_in(0.1, 100.0);
        let r = pearson_r(&xs, &ys).expect("same length");
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        let scaled: Vec<f64> = ys.iter().map(|y| y * scale).collect();
        let rs = pearson_r(&xs, &scaled).expect("same length");
        assert!((r - rs).abs() < 1e-6);
    }
}

#[test]
fn mre_of_scaled_estimate() {
    let mut rng = Prng::seed_from_u64(0x57A7_0007);
    for _ in 0..CASES {
        let n = 1 + rng.range_usize(0..39);
        let reference: Vec<f64> = (0..n).map(|_| rng.f64_in(0.1, 1e3)).collect();
        let factor = rng.f64_in(0.5, 2.0);
        let estimate: Vec<f64> = reference.iter().map(|r| r * factor).collect();
        let mre = mean_relative_error(&estimate, &reference).expect("non-empty");
        assert!((mre - (factor - 1.0).abs()).abs() < 1e-9);
    }
}
