//! Property-based tests of the statistics substrate.

use proptest::prelude::*;
use psm_stats::{
    mean_relative_error, one_sample_t_test, pearson_r, welch_t_test, LinearRegression,
    OnlineStats, StudentsT,
};

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    #[test]
    fn welford_merge_equals_sequential(xs in finite_vec(2..60), split in 1usize..59) {
        prop_assume!(split < xs.len());
        let (l, r) = xs.split_at(split);
        let merged = OnlineStats::from_slice(l).merged(&OnlineStats::from_slice(r));
        let all = OnlineStats::from_slice(&xs);
        prop_assert_eq!(merged.count(), all.count());
        prop_assert!((merged.mean() - all.mean()).abs() <= 1e-6 * (1.0 + all.mean().abs()));
        let (mv, av) = (merged.population_variance(), all.population_variance());
        prop_assert!((mv - av).abs() <= 1e-6 * (1.0 + av.abs()));
    }

    #[test]
    fn welch_is_symmetric(a in finite_vec(2..20), b in finite_vec(2..20)) {
        let sa = OnlineStats::from_slice(&a);
        let sb = OnlineStats::from_slice(&b);
        let ab = welch_t_test(&sa, &sb).expect("n >= 2");
        let ba = welch_t_test(&sb, &sa).expect("n >= 2");
        prop_assert!((ab.statistic + ba.statistic).abs() < 1e-9 * (1.0 + ab.statistic.abs()));
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
    }

    #[test]
    fn t_cdf_is_monotone_and_bounded(df in 0.5f64..200.0, a in -50.0f64..50.0, b in -50.0f64..50.0) {
        let t = StudentsT::new(df).expect("positive df");
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (cl, ch) = (t.cdf(lo), t.cdf(hi));
        prop_assert!((0.0..=1.0).contains(&cl));
        prop_assert!((0.0..=1.0).contains(&ch));
        prop_assert!(cl <= ch + 1e-12);
    }

    #[test]
    fn one_sample_detects_its_own_mean(xs in finite_vec(3..40)) {
        let s = OnlineStats::from_slice(&xs);
        let t = one_sample_t_test(&s, s.mean()).expect("n >= 2");
        prop_assert!(t.p_value > 0.99, "testing the sample mean itself: p = {}", t.p_value);
    }

    #[test]
    fn regression_interpolates_affine_data(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        xs in proptest::collection::vec(-1e3f64..1e3, 2..40),
    ) {
        let distinct = xs.iter().any(|&x| (x - xs[0]).abs() > 1e-9);
        prop_assume!(distinct);
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let lr = LinearRegression::fit(&xs, &ys).expect("x varies");
        prop_assert!((lr.slope() - slope).abs() < 1e-5 * (1.0 + slope.abs()));
        prop_assert!((lr.intercept() - intercept).abs() < 1e-4 * (1.0 + intercept.abs()));
    }

    #[test]
    fn pearson_is_bounded_and_scale_invariant(
        pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..30),
        scale in 0.1f64..100.0,
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let r = pearson_r(&xs, &ys).expect("same length");
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        let scaled: Vec<f64> = ys.iter().map(|y| y * scale).collect();
        let rs = pearson_r(&xs, &scaled).expect("same length");
        prop_assert!((r - rs).abs() < 1e-6);
    }

    #[test]
    fn mre_of_scaled_estimate(reference in proptest::collection::vec(0.1f64..1e3, 1..40),
                              factor in 0.5f64..2.0) {
        let estimate: Vec<f64> = reference.iter().map(|r| r * factor).collect();
        let mre = mean_relative_error(&estimate, &reference).expect("non-empty");
        prop_assert!((mre - (factor - 1.0).abs()).abs() < 1e-9);
    }
}
