//! Quantiles and distribution summaries of error samples.
//!
//! MRE is a mean; reviewers of power models also want the tails ("what is
//! the 95th-percentile relative error?"). This module provides linear-
//! interpolation quantiles and a five-number summary over error series.

use crate::StatsError;

/// Linear-interpolation quantile (type 7, the R/NumPy default) of a
/// sample; `q` in `[0, 1]`.
///
/// # Errors
///
/// * [`StatsError::InsufficientData`] for an empty sample;
/// * [`StatsError::InvalidParameter`] when `q` is outside `[0, 1]` or the
///   sample contains NaN.
///
/// # Examples
///
/// ```
/// use psm_stats::quantile;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&xs, 0.0)?, 1.0);
/// assert_eq!(quantile(&xs, 1.0)?, 4.0);
/// assert_eq!(quantile(&xs, 0.5)?, 2.5);
/// # Ok::<(), psm_stats::StatsError>(())
/// ```
pub fn quantile(sample: &[f64], q: f64) -> Result<f64, StatsError> {
    if sample.is_empty() {
        return Err(StatsError::InsufficientData {
            required: 1,
            actual: 0,
        });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter("quantile must lie in [0, 1]"));
    }
    if sample.iter().any(|x| x.is_nan()) {
        return Err(StatsError::InvalidParameter("sample contains NaN"));
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Ok(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

/// Five-number summary plus mean of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Summarises a sample.
    ///
    /// # Errors
    ///
    /// Same conditions as [`quantile`].
    pub fn of(sample: &[f64]) -> Result<Self, StatsError> {
        Ok(Summary {
            min: quantile(sample, 0.0)?,
            q1: quantile(sample, 0.25)?,
            median: quantile(sample, 0.5)?,
            q3: quantile(sample, 0.75)?,
            max: quantile(sample, 1.0)?,
            mean: sample.iter().sum::<f64>() / sample.len() as f64,
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:.4} | q1 {:.4} | med {:.4} | q3 {:.4} | max {:.4} | mean {:.4}",
            self.min, self.q1, self.median, self.q3, self.max, self.mean
        )
    }
}

/// Per-instant relative-error series between an estimate and a reference —
/// the raw data behind [`mean_relative_error`](crate::mean_relative_error),
/// exposed so tails can be summarised with [`Summary::of`]. Instants with a
/// zero reference are skipped.
///
/// # Errors
///
/// Returns [`StatsError::LengthMismatch`] when the sequences differ in
/// length.
pub fn relative_errors(estimate: &[f64], reference: &[f64]) -> Result<Vec<f64>, StatsError> {
    if estimate.len() != reference.len() {
        return Err(StatsError::LengthMismatch {
            left: estimate.len(),
            right: reference.len(),
        });
    }
    Ok(estimate
        .iter()
        .zip(reference)
        .filter(|(_, &r)| r != 0.0)
        .map(|(&e, &r)| ((e - r) / r).abs())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_matches_known_values() {
        let xs = [7.0, 1.0, 3.0, 5.0, 9.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 5.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 9.0);
        assert_eq!(quantile(&xs, 0.25).unwrap(), 3.0);
        // Interpolated point.
        assert!((quantile(&xs, 0.1).unwrap() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn quantile_rejects_bad_inputs() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[f64::NAN], 0.5).is_err());
    }

    #[test]
    fn summary_of_uniform_ramp() {
        let xs: Vec<f64> = (0..=100).map(f64::from).collect();
        let s = Summary::of(&xs).unwrap();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.median, 50.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.mean, 50.0);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn relative_errors_skip_zero_reference() {
        let errs = relative_errors(&[2.0, 5.0, 1.0], &[1.0, 0.0, 2.0]).unwrap();
        assert_eq!(errs.len(), 2);
        assert!((errs[0] - 1.0).abs() < 1e-12);
        assert!((errs[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tails_exceed_the_mean_for_skewed_errors() {
        let reference = vec![1.0; 100];
        let mut estimate = vec![1.0; 100];
        estimate[0] = 3.0; // one bad instant
        let errs = relative_errors(&estimate, &reference).unwrap();
        let s = Summary::of(&errs).unwrap();
        assert_eq!(s.median, 0.0);
        assert_eq!(s.max, 2.0);
        assert!(s.mean > 0.0 && s.mean < 0.05);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn quantiles_are_monotone_in_q() {
        let xs = [0.3, 9.1, 4.4, 2.2, 7.7, 5.0, 1.1];
        let mut last = f64::NEG_INFINITY;
        for k in 0..=20 {
            let q = k as f64 / 20.0;
            let v = quantile(&xs, q).unwrap();
            assert!(v >= last, "q={q}");
            last = v;
        }
    }

    #[test]
    fn single_element_sample() {
        assert_eq!(quantile(&[42.0], 0.0).unwrap(), 42.0);
        assert_eq!(quantile(&[42.0], 0.5).unwrap(), 42.0);
        assert_eq!(quantile(&[42.0], 1.0).unwrap(), 42.0);
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.min, s.max);
        assert_eq!(s.mean, 42.0);
    }

    #[test]
    fn relative_errors_length_mismatch() {
        assert!(relative_errors(&[1.0], &[1.0, 2.0]).is_err());
    }
}
