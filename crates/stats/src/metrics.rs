//! Accuracy metrics used in the paper's evaluation (Tables II and III).

use crate::StatsError;

/// Mean relative error between an estimate and a reference sequence.
///
/// `MRE = mean(|est_i - ref_i| / |ref_i|)` over all instants where the
/// reference is non-zero; instants with a zero reference are skipped (their
/// relative error is undefined). This is the paper's Column *MRE*.
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] when the sequences differ in length;
/// * [`StatsError::InsufficientData`] when no instant has a non-zero
///   reference value.
///
/// # Examples
///
/// ```
/// use psm_stats::mean_relative_error;
///
/// let mre = mean_relative_error(&[11.0, 9.0], &[10.0, 10.0])?;
/// assert!((mre - 0.1).abs() < 1e-12);
/// # Ok::<(), psm_stats::StatsError>(())
/// ```
pub fn mean_relative_error(estimate: &[f64], reference: &[f64]) -> Result<f64, StatsError> {
    if estimate.len() != reference.len() {
        return Err(StatsError::LengthMismatch {
            left: estimate.len(),
            right: reference.len(),
        });
    }
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&e, &r) in estimate.iter().zip(reference) {
        if r != 0.0 {
            sum += ((e - r) / r).abs();
            n += 1;
        }
    }
    if n == 0 {
        return Err(StatsError::InsufficientData {
            required: 1,
            actual: 0,
        });
    }
    Ok(sum / n as f64)
}

/// Root-mean-square error between an estimate and a reference sequence.
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] when the sequences differ in length;
/// * [`StatsError::InsufficientData`] when both sequences are empty.
pub fn rmse(estimate: &[f64], reference: &[f64]) -> Result<f64, StatsError> {
    if estimate.len() != reference.len() {
        return Err(StatsError::LengthMismatch {
            left: estimate.len(),
            right: reference.len(),
        });
    }
    if estimate.is_empty() {
        return Err(StatsError::InsufficientData {
            required: 1,
            actual: 0,
        });
    }
    let sum: f64 = estimate
        .iter()
        .zip(reference)
        .map(|(&e, &r)| (e - r) * (e - r))
        .sum();
    Ok((sum / estimate.len() as f64).sqrt())
}

/// Mean absolute error between an estimate and a reference sequence.
///
/// # Errors
///
/// Same conditions as [`rmse`].
pub fn mean_absolute_error(estimate: &[f64], reference: &[f64]) -> Result<f64, StatsError> {
    if estimate.len() != reference.len() {
        return Err(StatsError::LengthMismatch {
            left: estimate.len(),
            right: reference.len(),
        });
    }
    if estimate.is_empty() {
        return Err(StatsError::InsufficientData {
            required: 1,
            actual: 0,
        });
    }
    let sum: f64 = estimate
        .iter()
        .zip(reference)
        .map(|(&e, &r)| (e - r).abs())
        .sum();
    Ok(sum / estimate.len() as f64)
}

/// Largest absolute pointwise error between an estimate and a reference.
///
/// # Errors
///
/// Same conditions as [`rmse`].
pub fn max_absolute_error(estimate: &[f64], reference: &[f64]) -> Result<f64, StatsError> {
    if estimate.len() != reference.len() {
        return Err(StatsError::LengthMismatch {
            left: estimate.len(),
            right: reference.len(),
        });
    }
    if estimate.is_empty() {
        return Err(StatsError::InsufficientData {
            required: 1,
            actual: 0,
        });
    }
    Ok(estimate
        .iter()
        .zip(reference)
        .map(|(&e, &r)| (e - r).abs())
        .fold(0.0, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimate_has_zero_error() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(mean_relative_error(&x, &x).unwrap(), 0.0);
        assert_eq!(rmse(&x, &x).unwrap(), 0.0);
        assert_eq!(mean_absolute_error(&x, &x).unwrap(), 0.0);
        assert_eq!(max_absolute_error(&x, &x).unwrap(), 0.0);
    }

    #[test]
    fn mre_skips_zero_reference() {
        let mre = mean_relative_error(&[5.0, 11.0], &[0.0, 10.0]).unwrap();
        assert!((mre - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mre_all_zero_reference_is_error() {
        assert!(mean_relative_error(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn rmse_known_value() {
        // errors: 1, -1 → rmse = 1
        let r = rmse(&[2.0, 2.0], &[1.0, 3.0]).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mae_and_max_err() {
        let mae = mean_absolute_error(&[1.0, 5.0], &[2.0, 2.0]).unwrap();
        assert!((mae - 2.0).abs() < 1e-12);
        let mx = max_absolute_error(&[1.0, 5.0], &[2.0, 2.0]).unwrap();
        assert!((mx - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mismatch_errors() {
        assert!(mean_relative_error(&[1.0], &[1.0, 2.0]).is_err());
        assert!(rmse(&[1.0], &[]).is_err());
        assert!(rmse(&[], &[]).is_err());
    }
}
