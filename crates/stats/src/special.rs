//! Special functions: log-gamma and the regularised incomplete beta function.
//!
//! These are the numerical workhorses behind the Student-t CDF used by the
//! paper's mergeability tests (§IV-A). Implemented from scratch (Lanczos
//! approximation and Lentz's continued-fraction method) so the crate carries
//! no numerical dependencies.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9 coefficients), accurate to
/// roughly 15 significant digits over the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0` (the routine is only needed for positive arguments
/// here; reflection is intentionally not implemented).
///
/// # Examples
///
/// ```
/// use psm_stats::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The regularised incomplete beta function `I_x(a, b)`.
///
/// Computed with the continued-fraction expansion (Lentz's method) plus the
/// symmetry relation `I_x(a,b) = 1 - I_{1-x}(b,a)` for fast convergence.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0` or `x` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use psm_stats::regularized_incomplete_beta;
/// // I_0.5(2, 2) = 0.5 by symmetry.
/// assert!((regularized_incomplete_beta(2.0, 2.0, 0.5) - 0.5).abs() < 1e-12);
/// ```
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    assert!((0.0..=1.0).contains(&x), "x must lie in [0, 1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

/// Continued-fraction for the incomplete beta (Numerical Recipes `betacf`).
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-16;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, &f) in facts.iter().enumerate() {
            let n = (i + 1) as f64;
            assert!((ln_gamma(n) - f.ln()).abs() < 1e-10, "ln_gamma({n})");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
        // Γ(3/2) = sqrt(pi)/2
        assert!((ln_gamma(1.5) - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x)
        for &x in &[0.3, 1.7, 4.2, 11.5, 99.9] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "recurrence at {x}");
        }
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_uniform() {
        // I_x(1, 1) = x (uniform distribution CDF).
        for &x in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            assert!((regularized_incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_symmetry() {
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.2), (10.0, 3.0, 0.8)] {
            let lhs = regularized_incomplete_beta(a, b, x);
            let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-10, "symmetry at ({a},{b},{x})");
        }
    }

    #[test]
    fn incomplete_beta_known_value() {
        // I_0.5(2, 3): Beta(2,3) CDF at 0.5 = 11/16 = 0.6875
        // F(x) = 6x^2 - 8x^3 + 3x^4 → F(0.5) = 1.5 - 1.0 + 0.1875 = 0.6875
        let v = regularized_incomplete_beta(2.0, 3.0, 0.5);
        assert!((v - 0.6875).abs() < 1e-12, "got {v}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }
}
