//! Welch's two-sample t-test and the one-sample "new observation" t-test.
//!
//! These implement the statistical machinery of the paper's §IV-A
//! (*Quantifying the mergeability of power states*):
//!
//! * **Case 2** (until/until, both n > 1): [`welch_t_test`] on the two
//!   states' power attributes;
//! * **Case 3** (until/next, one n = 1): [`one_sample_t_test`] asking whether
//!   a single observation is consistent with the larger sample.

use crate::descriptive::OnlineStats;
use crate::student::StudentsT;
use crate::StatsError;

/// Outcome of a t-test: statistic, degrees of freedom and two-sided p-value.
///
/// # Examples
///
/// ```
/// use psm_stats::{OnlineStats, welch_t_test};
///
/// let a = OnlineStats::from_slice(&[5.0, 5.1, 4.9, 5.0]);
/// let b = OnlineStats::from_slice(&[5.05, 4.95, 5.0, 5.02]);
/// let t = welch_t_test(&a, &b)?;
/// assert!(t.is_same_population(0.05), "nearly identical samples merge");
/// # Ok::<(), psm_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTest {
    /// The t statistic.
    pub statistic: f64,
    /// Degrees of freedom (fractional for Welch's test).
    pub df: f64,
    /// Two-sided p-value, `P(|T| >= |statistic|)`.
    pub p_value: f64,
}

impl TTest {
    /// Returns `true` when the test *fails to reject* the null hypothesis of
    /// equal means at significance level `alpha` — i.e. when the two power
    /// states are statistically indistinguishable and therefore mergeable.
    pub fn is_same_population(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Welch's unequal-variances t-test for two summarised samples.
///
/// Operates directly on power attributes ⟨μ, σ, n⟩ (as [`OnlineStats`]), so
/// the raw power trace need not be retained. Degrees of freedom follow the
/// Welch–Satterthwaite equation.
///
/// A degenerate case arises with power traces: both samples may have zero
/// variance (perfectly constant power). The test then degenerates to an
/// exact comparison of the means — equal means yield `p = 1`, different
/// means `p = 0`.
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] unless both samples contain at
/// least two observations.
pub fn welch_t_test(a: &OnlineStats, b: &OnlineStats) -> Result<TTest, StatsError> {
    for s in [a, b] {
        if s.count() < 2 {
            return Err(StatsError::InsufficientData {
                required: 2,
                actual: s.count() as usize,
            });
        }
    }
    let (na, nb) = (a.count() as f64, b.count() as f64);
    let (va, vb) = (a.sample_variance()?, b.sample_variance()?);
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        let same = a.mean() == b.mean();
        return Ok(TTest {
            statistic: if same { 0.0 } else { f64::INFINITY },
            df: na + nb - 2.0,
            p_value: if same { 1.0 } else { 0.0 },
        });
    }
    let t = (a.mean() - b.mean()) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let dist = StudentsT::new(df)?;
    Ok(TTest {
        statistic: t,
        df,
        p_value: dist.two_sided_p_value(t),
    })
}

/// One-sample t-test: is the single observation `x` consistent with the
/// population summarised by `sample`?
///
/// Uses the prediction-interval form `t = (x - x̄) / (s · sqrt(1 + 1/n))`
/// with `n - 1` degrees of freedom, which is the textbook test for whether a
/// *new* observation belongs to the population that produced an existing
/// sample. This is the paper's mergeability **Case 3** (until-state vs
/// next-state).
///
/// When the sample variance is zero the test degenerates to an exact
/// comparison, mirroring [`welch_t_test`].
///
/// # Errors
///
/// Returns [`StatsError::InsufficientData`] unless `sample` contains at
/// least two observations.
///
/// # Examples
///
/// ```
/// use psm_stats::{OnlineStats, one_sample_t_test};
///
/// let until_state = OnlineStats::from_slice(&[3.3, 3.35, 3.34, 3.36, 3.31]);
/// let inside = one_sample_t_test(&until_state, 3.33)?;
/// let outside = one_sample_t_test(&until_state, 9.0)?;
/// assert!(inside.p_value > outside.p_value);
/// # Ok::<(), psm_stats::StatsError>(())
/// ```
pub fn one_sample_t_test(sample: &OnlineStats, x: f64) -> Result<TTest, StatsError> {
    if sample.count() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            actual: sample.count() as usize,
        });
    }
    let n = sample.count() as f64;
    let s = sample.sample_std_dev()?;
    let df = n - 1.0;
    if s == 0.0 {
        let same = x == sample.mean();
        return Ok(TTest {
            statistic: if same { 0.0 } else { f64::INFINITY },
            df,
            p_value: if same { 1.0 } else { 0.0 },
        });
    }
    let t = (x - sample.mean()) / (s * (1.0 + 1.0 / n).sqrt());
    let dist = StudentsT::new(df)?;
    Ok(TTest {
        statistic: t,
        df,
        p_value: dist.two_sided_p_value(t),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welch_identical_samples() {
        let a = OnlineStats::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let t = welch_t_test(&a, &a).unwrap();
        assert_eq!(t.statistic, 0.0);
        assert!((t.p_value - 1.0).abs() < 1e-12);
        assert!(t.is_same_population(0.05));
    }

    #[test]
    fn welch_clearly_different() {
        let a = OnlineStats::from_slice(&[1.0, 1.1, 0.9, 1.05, 0.95]);
        let b = OnlineStats::from_slice(&[10.0, 10.1, 9.9, 10.05, 9.95]);
        let t = welch_t_test(&a, &b).unwrap();
        assert!(t.p_value < 1e-6);
        assert!(!t.is_same_population(0.05));
    }

    #[test]
    fn welch_reference_value() {
        // Statistic and df cross-checked against an independent hand
        // computation of the Welch formulas: t = -2.835264, df = 27.713626.
        // p bracketed from standard t-tables (df ~ 28: t_{.005} = 2.763,
        // t_{.0025} ~ 3.0), so 0.005 < p/2 < 0.01.
        let a = OnlineStats::from_slice(&[
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ]);
        let b = OnlineStats::from_slice(&[
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0,
            23.9,
        ]);
        let t = welch_t_test(&a, &b).unwrap();
        assert!(
            (t.statistic - (-2.835264)).abs() < 1e-5,
            "t = {}",
            t.statistic
        );
        assert!((t.df - 27.713626).abs() < 1e-5, "df = {}", t.df);
        assert!(
            t.p_value > 0.005 && t.p_value < 0.01,
            "p = {} outside the table bracket",
            t.p_value
        );
    }

    #[test]
    fn welch_zero_variance_same_mean() {
        let a = OnlineStats::from_slice(&[5.0, 5.0, 5.0]);
        let b = OnlineStats::from_slice(&[5.0, 5.0]);
        let t = welch_t_test(&a, &b).unwrap();
        assert_eq!(t.p_value, 1.0);
    }

    #[test]
    fn welch_zero_variance_different_mean() {
        let a = OnlineStats::from_slice(&[5.0, 5.0, 5.0]);
        let b = OnlineStats::from_slice(&[6.0, 6.0]);
        let t = welch_t_test(&a, &b).unwrap();
        assert_eq!(t.p_value, 0.0);
        assert!(!t.is_same_population(0.05));
    }

    #[test]
    fn welch_requires_two_observations() {
        let a = OnlineStats::from_slice(&[5.0]);
        let b = OnlineStats::from_slice(&[5.0, 6.0]);
        assert!(welch_t_test(&a, &b).is_err());
        assert!(welch_t_test(&b, &a).is_err());
    }

    #[test]
    fn one_sample_inside_and_outside() {
        let s = OnlineStats::from_slice(&[10.0, 10.5, 9.5, 10.2, 9.8, 10.1]);
        let inside = one_sample_t_test(&s, 10.05).unwrap();
        assert!(inside.is_same_population(0.05));
        let outside = one_sample_t_test(&s, 25.0).unwrap();
        assert!(!outside.is_same_population(0.05));
    }

    #[test]
    fn one_sample_zero_variance() {
        let s = OnlineStats::from_slice(&[4.0, 4.0, 4.0]);
        assert_eq!(one_sample_t_test(&s, 4.0).unwrap().p_value, 1.0);
        assert_eq!(one_sample_t_test(&s, 4.5).unwrap().p_value, 0.0);
    }

    #[test]
    fn one_sample_symmetric_in_direction() {
        let s = OnlineStats::from_slice(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let above = one_sample_t_test(&s, 5.0).unwrap();
        let below = one_sample_t_test(&s, -1.0).unwrap();
        assert!((above.p_value - below.p_value).abs() < 1e-12);
        assert!((above.statistic + below.statistic).abs() < 1e-12);
    }
}
