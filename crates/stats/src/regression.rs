//! Ordinary least-squares linear regression and Pearson correlation.
//!
//! The paper calibrates *data-dependent* power states (§IV): when a state's
//! σ is high and the Hamming distance of consecutive input values correlates
//! strongly with the power trace, the constant μ output function is replaced
//! by a regression line `power = slope · hamming + intercept`.

use crate::StatsError;

/// A fitted simple linear regression `y = slope · x + intercept`.
///
/// # Examples
///
/// ```
/// use psm_stats::LinearRegression;
///
/// let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
/// let ys = [1.0, 3.0, 5.0, 7.0, 9.0];
/// let lr = LinearRegression::fit(&xs, &ys)?;
/// assert!((lr.slope() - 2.0).abs() < 1e-12);
/// assert!((lr.intercept() - 1.0).abs() < 1e-12);
/// assert!((lr.r() - 1.0).abs() < 1e-12);
/// assert!((lr.predict(10.0) - 21.0).abs() < 1e-12);
/// # Ok::<(), psm_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRegression {
    slope: f64,
    intercept: f64,
    r: f64,
    n: usize,
}

impl LinearRegression {
    /// Fits an OLS line through paired observations.
    ///
    /// # Errors
    ///
    /// * [`StatsError::LengthMismatch`] when `xs` and `ys` differ in length;
    /// * [`StatsError::InsufficientData`] with fewer than two pairs;
    /// * [`StatsError::InvalidParameter`] when all `x` values are identical
    ///   (the slope is undefined).
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, StatsError> {
        if xs.len() != ys.len() {
            return Err(StatsError::LengthMismatch {
                left: xs.len(),
                right: ys.len(),
            });
        }
        if xs.len() < 2 {
            return Err(StatsError::InsufficientData {
                required: 2,
                actual: xs.len(),
            });
        }
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut syy = 0.0;
        let mut sxy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            syy += dy * dy;
            sxy += dx * dy;
        }
        if sxx == 0.0 {
            return Err(StatsError::InvalidParameter(
                "all x values identical; slope undefined",
            ));
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r = if syy == 0.0 {
            // A perfectly flat response is perfectly predicted by any line
            // through it; report zero correlation (no linear *information*).
            0.0
        } else {
            sxy / (sxx.sqrt() * syy.sqrt())
        };
        Ok(LinearRegression {
            slope,
            intercept,
            r,
            n: xs.len(),
        })
    }

    /// Fitted slope.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Pearson correlation coefficient of the fitted data.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Coefficient of determination, `r²`.
    pub fn r_squared(&self) -> f64 {
        self.r * self.r
    }

    /// Number of pairs used in the fit.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Pearson correlation coefficient of two paired sequences.
///
/// Returns 0.0 when either sequence is constant (no linear relationship can
/// be measured) — this is the "necessary condition" check the paper applies
/// before replacing a state's constant power with a regression function.
///
/// # Errors
///
/// * [`StatsError::LengthMismatch`] when the sequences differ in length;
/// * [`StatsError::InsufficientData`] with fewer than two pairs.
///
/// # Examples
///
/// ```
/// use psm_stats::pearson_r;
///
/// let r = pearson_r(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0])?;
/// assert!((r - (-1.0)).abs() < 1e-12);
/// # Ok::<(), psm_stats::StatsError>(())
/// ```
pub fn pearson_r(xs: &[f64], ys: &[f64]) -> Result<f64, StatsError> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::InsufficientData {
            required: 2,
            actual: xs.len(),
        });
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        sxx += dx * dx;
        syy += dy * dy;
        sxy += dx * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Ok(0.0);
    }
    Ok(sxy / (sxx.sqrt() * syy.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 4.0).collect();
        let lr = LinearRegression::fit(&xs, &ys).unwrap();
        assert!((lr.slope() - 3.0).abs() < 1e-12);
        assert!((lr.intercept() + 4.0).abs() < 1e-12);
        assert!((lr.r_squared() - 1.0).abs() < 1e-12);
        assert_eq!(lr.n(), 10);
    }

    #[test]
    fn noisy_line_recovers_slope() {
        // Deterministic "noise" via a fixed pattern.
        let noise = [0.05, -0.03, 0.02, -0.04, 0.01, 0.03, -0.02, -0.01];
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .zip(noise)
            .map(|(x, e)| 2.0 * x + 1.0 + e)
            .collect();
        let lr = LinearRegression::fit(&xs, &ys).unwrap();
        assert!((lr.slope() - 2.0).abs() < 0.02);
        assert!(lr.r() > 0.999);
    }

    #[test]
    fn rejects_mismatched_lengths() {
        assert_eq!(
            LinearRegression::fit(&[1.0, 2.0], &[1.0]),
            Err(StatsError::LengthMismatch { left: 2, right: 1 })
        );
    }

    #[test]
    fn rejects_constant_x() {
        let e = LinearRegression::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(matches!(e, Err(StatsError::InvalidParameter(_))));
    }

    #[test]
    fn constant_y_has_zero_r() {
        let lr = LinearRegression::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(lr.slope(), 0.0);
        assert_eq!(lr.intercept(), 5.0);
        assert_eq!(lr.r(), 0.0);
    }

    #[test]
    fn pearson_bounds_and_signs() {
        let up = pearson_r(&[1.0, 2.0, 3.0, 4.0], &[2.0, 4.0, 5.0, 9.0]).unwrap();
        assert!(up > 0.9 && up <= 1.0);
        let down = pearson_r(&[1.0, 2.0, 3.0, 4.0], &[9.0, 5.0, 4.0, 2.0]).unwrap();
        assert!((-1.0..-0.9).contains(&down));
    }

    #[test]
    fn pearson_constant_input_is_zero() {
        assert_eq!(pearson_r(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
        assert_eq!(pearson_r(&[1.0, 2.0, 3.0], &[7.0, 7.0, 7.0]).unwrap(), 0.0);
    }

    #[test]
    fn regression_matches_pearson() {
        let xs = [1.0, 3.0, 4.0, 7.0, 9.0, 10.0];
        let ys = [2.1, 5.9, 8.2, 13.8, 18.1, 19.7];
        let lr = LinearRegression::fit(&xs, &ys).unwrap();
        let r = pearson_r(&xs, &ys).unwrap();
        assert!((lr.r() - r).abs() < 1e-12);
    }
}
