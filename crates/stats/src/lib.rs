//! Statistics substrate for the `psmgen` workspace.
//!
//! The PSM-generation flow of Danese et al. (DATE 2016) leans on a handful of
//! classical statistics that have no stable, dependency-free home in the Rust
//! ecosystem, so this crate provides them from scratch:
//!
//! * [`OnlineStats`] — Welford's numerically stable streaming mean/variance
//!   accumulator, the carrier of the paper's power attributes ⟨μ, σ, n⟩;
//! * [`StudentsT`] — the Student-t distribution (CDF via the regularised
//!   incomplete beta function), needed by the mergeability tests;
//! * [`welch_t_test`] / [`one_sample_t_test`] — paper §IV-A cases 2 and 3;
//! * [`LinearRegression`] / [`pearson_r`] — paper §IV's Hamming-distance
//!   power calibration for data-dependent states;
//! * [`mean_relative_error`] and friends — the accuracy metrics of Tables
//!   II/III.
//!
//! # Examples
//!
//! ```
//! use psm_stats::{OnlineStats, welch_t_test};
//!
//! let a: OnlineStats = [10.0, 10.2, 9.9, 10.1].into_iter().collect();
//! let b: OnlineStats = [15.0, 15.3, 14.8, 15.1].into_iter().collect();
//! let test = welch_t_test(&a, &b).expect("both samples have n >= 2");
//! assert!(test.p_value < 0.01, "clearly different populations");
//! ```
#![deny(missing_docs)]

mod descriptive;
mod metrics;
mod quantile;
mod regression;
mod special;
mod student;
mod ttest;

pub use descriptive::OnlineStats;
pub use metrics::{max_absolute_error, mean_absolute_error, mean_relative_error, rmse};
pub use quantile::{quantile, relative_errors, Summary};
pub use regression::{pearson_r, LinearRegression};
pub use special::{ln_gamma, regularized_incomplete_beta};
pub use student::StudentsT;
pub use ttest::{one_sample_t_test, welch_t_test, TTest};

use std::error::Error;
use std::fmt;

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// The input sample was too small for the requested statistic
    /// (e.g. a variance of a single observation).
    InsufficientData {
        /// Minimum number of observations required.
        required: usize,
        /// Number of observations actually provided.
        actual: usize,
    },
    /// A parameter was outside its mathematical domain
    /// (e.g. non-positive degrees of freedom).
    InvalidParameter(&'static str),
    /// Input sequences that must be paired had different lengths.
    LengthMismatch {
        /// Length of the first sequence.
        left: usize,
        /// Length of the second sequence.
        right: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InsufficientData { required, actual } => write!(
                f,
                "insufficient data: {actual} observation(s) provided, {required} required"
            ),
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired sequences differ in length ({left} vs {right})")
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errs = [
            StatsError::InsufficientData {
                required: 2,
                actual: 1,
            },
            StatsError::InvalidParameter("df must be positive"),
            StatsError::LengthMismatch { left: 3, right: 4 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
