//! Streaming descriptive statistics (Welford's algorithm).

use crate::StatsError;

/// A numerically stable streaming accumulator for count, mean and variance.
///
/// This is the carrier of the paper's *power attributes* ⟨μ, σ, n⟩: every
/// power state of a PSM stores one `OnlineStats` over the reference power
/// values observed while the state's assertion held.
///
/// Uses Welford's algorithm, so it is safe for long traces (500 000 instants
/// in the paper's *long-TS* testsets) where the naive sum-of-squares method
/// loses precision.
///
/// # Examples
///
/// ```
/// use psm_stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice in one call.
    ///
    /// ```
    /// use psm_stats::OnlineStats;
    /// let s = OnlineStats::from_slice(&[1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean(), 2.0);
    /// ```
    pub fn from_slice(values: &[f64]) -> Self {
        values.iter().copied().collect()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    ///
    /// The result is identical (up to floating-point rounding) to having
    /// pushed all observations into a single accumulator. This is what the
    /// paper's `simplify`/`join` procedures use to recompute μ and σ of a
    /// merged power state from its constituents.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Returns the merged accumulator without mutating either input.
    pub fn merged(mut self, other: &OnlineStats) -> OnlineStats {
        self.merge(other);
        self
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` if no observation has been pushed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean (0.0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest observation, or `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Unbiased sample variance (divisor `n - 1`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] when fewer than two
    /// observations were pushed.
    pub fn sample_variance(&self) -> Result<f64, StatsError> {
        if self.count < 2 {
            return Err(StatsError::InsufficientData {
                required: 2,
                actual: self.count as usize,
            });
        }
        Ok(self.m2 / (self.count as f64 - 1.0))
    }

    /// Unbiased sample standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] when fewer than two
    /// observations were pushed.
    pub fn sample_std_dev(&self) -> Result<f64, StatsError> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Population variance (divisor `n`); 0.0 for a single observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation; 0.0 for a single observation.
    ///
    /// This is the σ stored in a power state's attributes: the paper treats
    /// a *next*-pattern state (n = 1) as having σ = 0.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Standard error of the mean, `s / sqrt(n)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InsufficientData`] when fewer than two
    /// observations were pushed.
    pub fn standard_error(&self) -> Result<f64, StatsError> {
        Ok(self.sample_std_dev()? / (self.count as f64).sqrt())
    }

    /// Total of all observations (`mean * n`).
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

impl psm_persist::Persist for OnlineStats {
    fn to_json(&self) -> psm_persist::JsonValue {
        use psm_persist::JsonValue;
        JsonValue::obj([
            ("count", JsonValue::from(self.count)),
            ("mean", JsonValue::from_f64(self.mean)),
            ("m2", JsonValue::from_f64(self.m2)),
            ("min", JsonValue::from_f64(self.min)),
            ("max", JsonValue::from_f64(self.max)),
        ])
    }

    fn from_json(v: &psm_persist::JsonValue) -> Result<Self, psm_persist::PersistError> {
        Ok(OnlineStats {
            count: v.u64_field("count")?,
            mean: v.f64_field("mean")?,
            m2: v.f64_field("m2")?,
            min: v.f64_field("min")?,
            max: v.f64_field("max")?,
        })
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert!(s.sample_variance().is_err());
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.population_std_dev(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(
            s.sample_variance(),
            Err(StatsError::InsufficientData {
                required: 2,
                actual: 1
            })
        );
    }

    #[test]
    fn matches_naive_formulas() {
        let xs = [1.5, 2.5, 2.5, 2.75, 3.25, 4.75];
        let s = OnlineStats::from_slice(&xs);
        let (mean, var) = naive_mean_var(&xs);
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance().unwrap() - var).abs() < 1e-12);
        assert_eq!(s.min(), 1.5);
        assert_eq!(s.max(), 4.75);
        assert!((s.sum() - xs.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let (left, right) = xs.split_at(3);
        let mut a = OnlineStats::from_slice(left);
        let b = OnlineStats::from_slice(right);
        a.merge(&b);
        let all = OnlineStats::from_slice(&xs);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        assert!((a.sample_variance().unwrap() - all.sample_variance().unwrap()).abs() < 1e-12);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let a = OnlineStats::from_slice(&[1.0, 2.0]);
        let merged = a.merged(&OnlineStats::new());
        assert_eq!(merged, a);
        let merged = OnlineStats::new().merged(&a);
        assert_eq!(merged, a);
    }

    #[test]
    fn numerical_stability_large_offset() {
        // Classic catastrophic-cancellation case for the naive algorithm.
        let offset = 1e9;
        let s: OnlineStats = [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0]
            .into_iter()
            .collect();
        assert!((s.sample_variance().unwrap() - 30.0).abs() < 1e-3);
    }
}
