//! Student's t distribution.

use crate::special::regularized_incomplete_beta;
use crate::StatsError;

/// Student's t distribution with (possibly fractional) degrees of freedom.
///
/// Welch's t-test produces fractional degrees of freedom through the
/// Welch–Satterthwaite equation, so `df` is an `f64`.
///
/// # Examples
///
/// ```
/// use psm_stats::StudentsT;
///
/// let t = StudentsT::new(10.0)?;
/// // The distribution is symmetric around zero.
/// assert!((t.cdf(0.0) - 0.5).abs() < 1e-12);
/// assert!((t.cdf(1.5) + t.cdf(-1.5) - 1.0).abs() < 1e-12);
/// # Ok::<(), psm_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentsT {
    df: f64,
}

impl StudentsT {
    /// Creates a t distribution with `df` degrees of freedom.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] if `df` is not a positive,
    /// finite number.
    pub fn new(df: f64) -> Result<Self, StatsError> {
        if !(df.is_finite() && df > 0.0) {
            return Err(StatsError::InvalidParameter(
                "degrees of freedom must be positive and finite",
            ));
        }
        Ok(StudentsT { df })
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Cumulative distribution function `P(T <= t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t.is_nan() {
            return f64::NAN;
        }
        if t.is_infinite() {
            return if t > 0.0 { 1.0 } else { 0.0 };
        }
        let x = self.df / (self.df + t * t);
        let p = 0.5 * regularized_incomplete_beta(0.5 * self.df, 0.5, x);
        if t > 0.0 {
            1.0 - p
        } else {
            p
        }
    }

    /// Survival function `P(T > t)`.
    pub fn sf(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// Two-sided p-value for an observed statistic, `P(|T| >= |t|)`.
    ///
    /// This is the quantity the paper's mergeability tests compare against
    /// the designer-chosen significance level.
    pub fn two_sided_p_value(&self, t: f64) -> f64 {
        let x = self.df / (self.df + t * t);
        regularized_incomplete_beta(0.5 * self.df, 0.5, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_df() {
        assert!(StudentsT::new(0.0).is_err());
        assert!(StudentsT::new(-3.0).is_err());
        assert!(StudentsT::new(f64::NAN).is_err());
        assert!(StudentsT::new(f64::INFINITY).is_err());
    }

    #[test]
    fn symmetric_cdf() {
        let t = StudentsT::new(7.0).unwrap();
        for &x in &[0.0, 0.5, 1.0, 2.5, 10.0] {
            assert!((t.cdf(x) + t.cdf(-x) - 1.0).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn known_critical_values() {
        // Standard t-table entries: P(T <= t_crit) = 0.975.
        let cases = [
            (1.0, 12.706),
            (2.0, 4.303),
            (5.0, 2.571),
            (10.0, 2.228),
            (30.0, 2.042),
            (120.0, 1.980),
        ];
        for (df, crit) in cases {
            let t = StudentsT::new(df).unwrap();
            assert!(
                (t.cdf(crit) - 0.975).abs() < 5e-4,
                "df = {df}: cdf({crit}) = {}",
                t.cdf(crit)
            );
        }
    }

    #[test]
    fn df_one_is_cauchy() {
        // t with df = 1 is the Cauchy distribution: CDF = 1/2 + atan(x)/pi.
        let t = StudentsT::new(1.0).unwrap();
        for &x in &[-3.0f64, -0.7, 0.0, 0.4, 2.0] {
            let cauchy = 0.5 + x.atan() / std::f64::consts::PI;
            assert!((t.cdf(x) - cauchy).abs() < 1e-10, "x = {x}");
        }
    }

    #[test]
    fn large_df_approaches_normal() {
        // At df = 10_000 the t CDF at 1.96 is essentially the normal 0.975.
        let t = StudentsT::new(10_000.0).unwrap();
        assert!((t.cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn two_sided_p_value_matches_cdf() {
        let t = StudentsT::new(12.0).unwrap();
        for &x in &[0.3, 1.1, 2.7] {
            let p = t.two_sided_p_value(x);
            let via_cdf = 2.0 * (1.0 - t.cdf(x));
            assert!((p - via_cdf).abs() < 1e-12, "x = {x}");
            // p-value must be sign-invariant.
            assert!((p - t.two_sided_p_value(-x)).abs() < 1e-15);
        }
    }

    #[test]
    fn infinite_statistic() {
        let t = StudentsT::new(4.0).unwrap();
        assert_eq!(t.cdf(f64::INFINITY), 1.0);
        assert_eq!(t.cdf(f64::NEG_INFINITY), 0.0);
        assert!(t.cdf(f64::NAN).is_nan());
    }
}
