//! A multiplier-accumulator ("MultSum"), modelled after the Synopsys
//! DesignWare MAC (`DW02_mac`) the paper benchmarks.
//!
//! Interface:
//!
//! | port    | dir | width | role                                |
//! |---------|-----|-------|-------------------------------------|
//! | `a`     | in  | 16    | multiplicand                        |
//! | `b`     | in  | 16    | multiplier                          |
//! | `en`    | in  | 1     | accumulate `a × b` this cycle       |
//! | `clear` | in  | 1     | synchronous clear of the accumulator|
//! | `sum`   | out | 32    | accumulator value                   |
//!
//! Like `DW02_mac`, the multiply-add is combinational: the product of the
//! *current* operands accumulates at the closing clock edge of an enabled
//! cycle and is visible on `sum` one cycle later. The multiplier array's
//! switching tracks how the operands change — the data dependence behind
//! the paper's MultSum accuracy discussion (its residual power variation
//! correlates with operand values over a window wider than the one-cycle
//! Hamming distance the calibration regression sees).

use crate::traits::Ip;
use psm_rtl::{Netlist, NetlistBuilder, RtlError};
use psm_trace::{Bits, Direction, SignalSet};

/// Behavioural model of the MAC; see the module docs above.
#[derive(Debug, Clone, Default)]
pub struct MultSum {
    acc: u32,
}

impl MultSum {
    /// A cleared MAC.
    pub fn new() -> Self {
        MultSum::default()
    }
}

impl Ip for MultSum {
    fn name(&self) -> &'static str {
        "MultSum"
    }

    fn signals(&self) -> SignalSet {
        let mut s = SignalSet::new();
        s.push("a", 16, Direction::Input).expect("unique");
        s.push("b", 16, Direction::Input).expect("unique");
        s.push("en", 1, Direction::Input).expect("unique");
        s.push("clear", 1, Direction::Input).expect("unique");
        s.push("sum", 32, Direction::Output).expect("unique");
        s
    }

    fn netlist(&self) -> Result<Netlist, RtlError> {
        let mut b = NetlistBuilder::new("multsum");
        let a_in = b.input("a", 16);
        let b_in = b.input("b", 16);
        let en = b.input("en", 1).bit(0);
        let clear = b.input("clear", 1).bit(0);

        let acc = b.register("acc", 32);
        let product = b.mul(&a_in, &b_in);
        debug_assert_eq!(product.width(), 32);
        let acc_q = acc.q();
        let summed = b.add(&acc_q, &product).sum;
        let held = acc.q();
        let next = b.mux_word(en, &held, &summed);
        let zero = b.const_word(0, 32);
        let cleared = b.mux_word(clear, &next, &zero);
        b.connect_register(&acc, &cleared);
        b.output("sum", &acc.q());
        b.finish()
    }

    fn reset(&mut self) {
        self.acc = 0;
    }

    fn step(&mut self, inputs: &[Bits]) -> Vec<Bits> {
        assert_eq!(inputs.len(), 4, "MultSum takes 4 input ports");
        let a = inputs[0].to_u64().expect("16-bit a") as u32;
        let bv = inputs[1].to_u64().expect("16-bit b") as u32;
        let en = inputs[2].bit(0);
        let clear = inputs[3].bit(0);

        let visible = self.acc;

        // Clock edge: the combinational product of this cycle's operands
        // accumulates now.
        if clear {
            self.acc = 0;
        } else if en {
            self.acc = self.acc.wrapping_add(a.wrapping_mul(bv));
        }

        vec![Bits::from_u64(visible as u64, 32)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(m: &mut MultSum, a: u64, b: u64, en: bool, clear: bool) -> u64 {
        m.step(&[
            Bits::from_u64(a, 16),
            Bits::from_u64(b, 16),
            Bits::from_bool(en),
            Bits::from_bool(clear),
        ])[0]
            .to_u64()
            .unwrap()
    }

    #[test]
    fn accumulates_products_with_one_cycle_latency() {
        let mut m = MultSum::new();
        drive(&mut m, 3, 4, true, false); // 3*4 accumulates at this edge
        let v = drive(&mut m, 5, 6, true, false);
        assert_eq!(v, 12);
        let v = drive(&mut m, 0, 0, false, false);
        assert_eq!(v, 42);
        let v = drive(&mut m, 9, 9, false, false);
        assert_eq!(v, 42, "disabled cycles hold");
    }

    #[test]
    fn clear_wins_over_enable() {
        let mut m = MultSum::new();
        drive(&mut m, 100, 100, true, false);
        drive(&mut m, 7, 7, true, true); // clear dominates
        let v = drive(&mut m, 0, 0, false, false);
        assert_eq!(v, 0);
    }

    #[test]
    fn accumulator_wraps_at_32_bits() {
        let mut m = MultSum::new();
        // 0xFFFF * 0xFFFF = 0xFFFE0001; twice overflows 32 bits.
        drive(&mut m, 0xFFFF, 0xFFFF, true, false);
        drive(&mut m, 0xFFFF, 0xFFFF, true, false);
        let v = drive(&mut m, 0, 0, false, false);
        assert_eq!(v, 0xFFFE_0001u64.wrapping_mul(2) & 0xFFFF_FFFF);
    }

    #[test]
    fn reset_clears_state() {
        let mut m = MultSum::new();
        drive(&mut m, 9, 9, true, false);
        m.reset();
        let v = drive(&mut m, 0, 0, false, false);
        assert_eq!(v, 0);
    }

    #[test]
    fn interface_shape() {
        let s = MultSum::new().signals();
        assert_eq!(s.input_width(), 34);
        assert_eq!(s.output_width(), 32);
    }

    #[test]
    fn netlist_flop_count() {
        let n = MultSum::new().netlist().unwrap();
        assert_eq!(n.stats().memory_elements, 32); // the accumulator
        assert!(n.stats().combinational > 1000, "a real multiplier array");
    }
}
