//! Round-iterative AES-128 encryption/decryption (FIPS-197) with a
//! key-agile interface.
// Index loops in the key schedule and MixColumns keep the FIPS-197
// pseudocode's w[i]/round indexing; iterator rewrites hide the spec shape.
#![allow(clippy::needless_range_loop)]
//!
//! Interface — 260 PI bits and 129 PO bits, matching the paper's Table I
//! AES row:
//!
//! | port       | dir | width | role                                       |
//! |------------|-----|-------|--------------------------------------------|
//! | `key`      | in  | 128   | cipher key (sampled by `load_key`)         |
//! | `data`     | in  | 128   | plaintext / ciphertext (sampled by `start`)|
//! | `start`    | in  | 1     | process one block with the loaded key      |
//! | `load_key` | in  | 1     | expand and store the key schedule          |
//! | `decrypt`  | in  | 1     | 0 = encrypt, 1 = decrypt                   |
//! | `ce`       | in  | 1     | chip enable (gates `start`/`load_key`)     |
//! | `out`      | out | 128   | result of the last completed block         |
//! | `ready`    | out | 1     | high while idle; drops during processing   |
//!
//! Micro-architecture (identical in the behavioural model and the
//! netlist):
//!
//! * `load_key` starts a 10-cycle key-expansion phase that stores the 11
//!   round keys;
//! * `start` starts an 11-cycle block phase (initial AddRoundKey plus 10
//!   rounds) against the stored schedule; the result lands in a dedicated
//!   output register, so `out` never exposes mid-round state.
//!
//! Separating key expansion from block processing keeps each busy phase
//! power-homogeneous — the property that gives AES its low MRE in the
//! paper despite being a multi-round design.
//!
//! Bytes map to bits little-endian: block byte *k* occupies bits
//! `[8k, 8k+8)` of the 128-bit ports.

use crate::traits::Ip;
use psm_rtl::{Netlist, NetlistBuilder, RtlError, Word};
use psm_trace::{Bits, Direction, SignalSet};

/// AES S-box.
pub(crate) const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (if b & 0x80 != 0 { 0x1b } else { 0 })
}

fn gmul(a: u8, mut b: u8) -> u8 {
    let mut a = a;
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

/// One key-schedule step: round key i → round key i+1.
fn next_round_key(prev: &[u8; 16], round: usize) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut temp = [prev[13], prev[14], prev[15], prev[12]]; // RotWord(col3)
    for t in &mut temp {
        *t = SBOX[*t as usize];
    }
    temp[0] ^= RCON[round - 1];
    for j in 0..4 {
        for k in 0..4 {
            let idx = 4 * j + k;
            let left = if j == 0 { temp[k] } else { out[idx - 4] };
            out[idx] = prev[idx] ^ left;
        }
    }
    out
}

fn shift_rows(s: &[u8; 16]) -> [u8; 16] {
    // Byte index = row + 4·col; row r rotates left by r.
    let mut out = [0u8; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
    out
}

fn inv_shift_rows(s: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for r in 0..4 {
        for c in 0..4 {
            out[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
        }
    }
    out
}

fn mix_columns(s: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for c in 0..4 {
        let col = &s[4 * c..4 * c + 4];
        out[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        out[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        out[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        out[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
    out
}

fn inv_mix_columns(s: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for c in 0..4 {
        let col = &s[4 * c..4 * c + 4];
        out[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        out[4 * c + 1] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        out[4 * c + 2] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        out[4 * c + 3] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
    out
}

fn xor16(a: &[u8; 16], b: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    for i in 0..16 {
        out[i] = a[i] ^ b[i];
    }
    out
}

/// Single-shot AES-128 block encryption — the pure reference function the
/// cycle-accurate core and the netlist are tested against.
///
/// # Examples
///
/// ```
/// use psm_ips::aes_encrypt_block;
/// let key = [0u8; 16];
/// let ct = aes_encrypt_block(&key, &[0u8; 16]);
/// assert_ne!(ct, [0u8; 16]);
/// ```
pub fn encrypt_block(key: &[u8; 16], block: &[u8; 16]) -> [u8; 16] {
    let mut rk = [[0u8; 16]; 11];
    rk[0] = *key;
    for i in 1..11 {
        rk[i] = next_round_key(&rk[i - 1], i);
    }
    let mut st = xor16(block, &rk[0]);
    for r in 1..=10 {
        let mut sb = st;
        for b in &mut sb {
            *b = SBOX[*b as usize];
        }
        let sr = shift_rows(&sb);
        let mc = if r < 10 { mix_columns(&sr) } else { sr };
        st = xor16(&mc, &rk[r]);
    }
    st
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    KeyExp,
    Rounds,
}

/// Behavioural model of the key-agile iterative AES core; see the
/// module docs above.
#[derive(Debug, Clone)]
pub struct Aes128 {
    phase: Phase,
    cnt: usize,
    st: [u8; 16],
    out: [u8; 16],
    dec: bool,
    rk: [[u8; 16]; 11],
    inv_sbox: [u8; 256],
}

impl Aes128 {
    /// An idle AES core with an all-zero key schedule.
    pub fn new() -> Self {
        Aes128 {
            phase: Phase::Idle,
            cnt: 0,
            st: [0; 16],
            out: [0; 16],
            dec: false,
            rk: [[0; 16]; 11],
            inv_sbox: inv_sbox(),
        }
    }
}

impl Default for Aes128 {
    fn default() -> Self {
        Aes128::new()
    }
}

impl Ip for Aes128 {
    fn name(&self) -> &'static str {
        "AES"
    }

    fn signals(&self) -> SignalSet {
        let mut s = SignalSet::new();
        s.push("key", 128, Direction::Input).expect("unique");
        s.push("data", 128, Direction::Input).expect("unique");
        s.push("start", 1, Direction::Input).expect("unique");
        s.push("load_key", 1, Direction::Input).expect("unique");
        s.push("decrypt", 1, Direction::Input).expect("unique");
        s.push("ce", 1, Direction::Input).expect("unique");
        s.push("out", 128, Direction::Output).expect("unique");
        s.push("ready", 1, Direction::Output).expect("unique");
        s
    }

    fn netlist(&self) -> Result<Netlist, RtlError> {
        build_aes_netlist()
    }

    fn reset(&mut self) {
        self.phase = Phase::Idle;
        self.cnt = 0;
        self.st = [0; 16];
        self.out = [0; 16];
        self.dec = false;
        self.rk = [[0; 16]; 11];
    }

    fn step(&mut self, inputs: &[Bits]) -> Vec<Bits> {
        assert_eq!(inputs.len(), 6, "AES takes 6 input ports");
        let key_bits = &inputs[0];
        let data_bits = &inputs[1];
        let ce = inputs[5].bit(0);
        let start = inputs[2].bit(0) && ce;
        let load_key = inputs[3].bit(0) && ce;
        let decrypt = inputs[4].bit(0);

        // Outputs visible during this cycle.
        let out = Bits::from_le_bytes(&self.out, 128);
        let ready = Bits::from_bool(self.phase == Phase::Idle);

        // Clock edge.
        match self.phase {
            Phase::Idle => {
                if load_key {
                    let mut key = [0u8; 16];
                    key.copy_from_slice(&key_bits.to_le_bytes());
                    self.rk[0] = key;
                    self.cnt = 1;
                    self.phase = Phase::KeyExp;
                } else if start {
                    let mut data = [0u8; 16];
                    data.copy_from_slice(&data_bits.to_le_bytes());
                    self.dec = decrypt;
                    // Initial AddRoundKey happens at capture.
                    let k = if decrypt { &self.rk[10] } else { &self.rk[0] };
                    self.st = xor16(&data, k);
                    self.cnt = 1;
                    self.phase = Phase::Rounds;
                }
            }
            Phase::KeyExp => {
                self.rk[self.cnt] = next_round_key(&self.rk[self.cnt - 1], self.cnt);
                if self.cnt == 10 {
                    self.phase = Phase::Idle;
                } else {
                    self.cnt += 1;
                }
            }
            Phase::Rounds => {
                let r = self.cnt;
                let prev_st = self.st;
                if self.dec {
                    let isr = inv_shift_rows(&self.st);
                    let mut isb = isr;
                    for b in &mut isb {
                        *b = self.inv_sbox[*b as usize];
                    }
                    let ark = xor16(&isb, &self.rk[10 - r]);
                    self.st = if r < 10 { inv_mix_columns(&ark) } else { ark };
                } else {
                    let mut sb = self.st;
                    for b in &mut sb {
                        *b = SBOX[*b as usize];
                    }
                    let sr = shift_rows(&sb);
                    let mc = if r < 10 { mix_columns(&sr) } else { sr };
                    self.st = xor16(&mc, &self.rk[r]);
                }
                if r == 10 {
                    // Operand isolation: the final result goes to the
                    // output register only; `st` holds its pre-final value
                    // so the round cone stays quiet while idle.
                    self.out = self.st;
                    self.st = prev_st;
                    self.phase = Phase::Idle;
                } else {
                    self.cnt = r + 1;
                }
            }
        }

        vec![out, ready]
    }
}

// ---------------------------------------------------------------------
// Structural twin
// ---------------------------------------------------------------------

/// 16 bytes of a 128-bit word as builder sub-words, byte k = bits 8k…
fn bytes_of(w: &Word) -> Vec<Word> {
    (0..16).map(|k| w.slice(8 * k, 8)).collect()
}

fn word_of_bytes(bytes: &[Word]) -> Word {
    let mut w = bytes[0].clone();
    for b in &bytes[1..] {
        w = w.concat(b);
    }
    w
}

/// xtime in gates: shift + conditional 0x1b.
fn xtime_gates(b: &mut NetlistBuilder, x: &Word) -> Word {
    let shifted = b.shl_const(x, 1);
    let msb = x.bit(7);
    // 0x1b = bits 0, 1, 3, 4.
    let mut nets = Vec::with_capacity(8);
    for i in 0..8 {
        if matches!(i, 0 | 1 | 3 | 4) {
            nets.push(b.xor(shifted.bit(i), msb));
        } else {
            nets.push(shifted.bit(i));
        }
    }
    Word::from_nets(nets)
}

fn mix_columns_gates(b: &mut NetlistBuilder, bytes: &[Word], inverse: bool) -> Vec<Word> {
    let mut out = Vec::with_capacity(16);
    let x2: Vec<Word> = bytes.iter().map(|x| xtime_gates(b, x)).collect();
    if !inverse {
        for c in 0..4 {
            let col: Vec<usize> = (0..4).map(|r| 4 * c + r).collect();
            for r in 0..4 {
                let coef = [2u8, 3, 1, 1];
                let mut acc: Option<Word> = None;
                for k in 0..4 {
                    let idx = col[(r + k) % 4];
                    let term = match coef[k] {
                        1 => bytes[idx].clone(),
                        2 => x2[idx].clone(),
                        3 => b.xor_word(&x2[idx], &bytes[idx]),
                        _ => unreachable!(),
                    };
                    acc = Some(match acc {
                        None => term,
                        Some(a) => b.xor_word(&a, &term),
                    });
                }
                out.push(acc.expect("four terms"));
            }
        }
    } else {
        let x4: Vec<Word> = x2.iter().map(|x| xtime_gates(b, x)).collect();
        let x8: Vec<Word> = x4.iter().map(|x| xtime_gates(b, x)).collect();
        for c in 0..4 {
            let col: Vec<usize> = (0..4).map(|r| 4 * c + r).collect();
            for r in 0..4 {
                let coef = [14u8, 11, 13, 9];
                let mut acc: Option<Word> = None;
                for k in 0..4 {
                    let idx = col[(r + k) % 4];
                    let term = match coef[k] {
                        9 => b.xor_word(&x8[idx], &bytes[idx]),
                        11 => {
                            let t = b.xor_word(&x8[idx], &x2[idx]);
                            b.xor_word(&t, &bytes[idx])
                        }
                        13 => {
                            let t = b.xor_word(&x8[idx], &x4[idx]);
                            b.xor_word(&t, &bytes[idx])
                        }
                        14 => {
                            let t = b.xor_word(&x8[idx], &x4[idx]);
                            b.xor_word(&t, &x2[idx])
                        }
                        _ => unreachable!(),
                    };
                    acc = Some(match acc {
                        None => term,
                        Some(a) => b.xor_word(&a, &term),
                    });
                }
                out.push(acc.expect("four terms"));
            }
        }
    }
    out
}

fn build_aes_netlist() -> Result<Netlist, RtlError> {
    let mut b = NetlistBuilder::new("aes128");
    let key = b.input("key", 128);
    let data = b.input("data", 128);
    let start_in = b.input("start", 1).bit(0);
    let load_key_in = b.input("load_key", 1).bit(0);
    let decrypt = b.input("decrypt", 1).bit(0);
    let ce = b.input("ce", 1).bit(0);
    let start = b.and(start_in, ce);
    let load_key = b.and(load_key_in, ce);

    let inv = inv_sbox();

    // ---- registers -----------------------------------------------------
    let phase = b.register("phase", 2); // 0 idle, 1 keyexp, 2 rounds
    let cnt = b.register("cnt", 4);
    let st = b.register("st", 128);
    let out_reg = b.register("out_q", 128);
    let dec = b.register("dec", 1);
    let rks: Vec<_> = (0..11).map(|i| b.register(format!("rk{i}"), 128)).collect();

    let phase_q = phase.q();
    let cnt_q = cnt.q();
    let st_q = st.q();
    let dec_q = dec.q().bit(0);

    let in_idle = b.eq_const(&phase_q, 0);
    let in_keyexp = b.eq_const(&phase_q, 1);
    let in_rounds = b.eq_const(&phase_q, 2);

    let load_fire = b.and(in_idle, load_key);
    let nstart = b.not(load_key);
    let start_gated = b.and(start, nstart); // load_key wins ties
    let start_fire = b.and(in_idle, start_gated);

    // ---- key schedule block ---------------------------------------------
    let one4 = b.const_word(1, 4);
    let cnt_m1 = b.sub(&cnt_q, &one4).sum;
    let rk_words: Vec<Word> = rks.iter().map(|r| r.q()).collect();
    let mut opts = rk_words.clone();
    while opts.len() < 16 {
        opts.push(rk_words[10].clone());
    }
    let rk_prev = b.mux_tree(&cnt_m1, &opts);
    let prev_bytes = bytes_of(&rk_prev);
    let rot = [13usize, 14, 15, 12];
    let subbed: Vec<Word> = rot
        .iter()
        .map(|&i| b.sbox8(&prev_bytes[i], &SBOX))
        .collect();
    let rcon_table: Vec<u64> = (0..16)
        .map(|i| {
            if (1..=10).contains(&i) {
                RCON[i - 1] as u64
            } else {
                0
            }
        })
        .collect();
    let rcon = b.rom(&cnt_q, &rcon_table, 8);
    let temp0 = b.xor_word(&subbed[0], &rcon);
    let temp = [
        temp0,
        subbed[1].clone(),
        subbed[2].clone(),
        subbed[3].clone(),
    ];
    let mut nk_bytes: Vec<Word> = Vec::with_capacity(16);
    for j in 0..4 {
        for k in 0..4 {
            let left = if j == 0 {
                temp[k].clone()
            } else {
                nk_bytes[4 * (j - 1) + k].clone()
            };
            let v = b.xor_word(&prev_bytes[4 * j + k], &left);
            nk_bytes.push(v);
        }
    }
    let next_key = word_of_bytes(&nk_bytes);

    b.connect_register_en(&rks[0], load_fire, &key);
    for i in 1..11 {
        let is_i = b.eq_const(&cnt_q, i as u64);
        let en = b.and(in_keyexp, is_i);
        b.connect_register_en(&rks[i], en, &next_key);
    }

    // ---- round datapath ---------------------------------------------------
    let st_bytes = bytes_of(&st_q);

    // Round-key selection: enc uses rk[cnt], dec uses rk[10 − cnt].
    let ten = b.const_word(10, 4);
    let ten_m_cnt = b.sub(&ten, &cnt_q).sum;
    let sel_idx = b.mux_word(dec_q, &cnt_q, &ten_m_cnt);
    let rk_sel = b.mux_tree(&sel_idx, &opts);

    // Encrypt path.
    let sb: Vec<Word> = st_bytes.iter().map(|byte| b.sbox8(byte, &SBOX)).collect();
    let sr: Vec<Word> = (0..16)
        .map(|i| {
            let r = i % 4;
            let c = i / 4;
            sb[r + 4 * ((c + r) % 4)].clone()
        })
        .collect();
    let mc = mix_columns_gates(&mut b, &sr, false);
    let is_last = b.eq_const(&cnt_q, 10);
    let enc_pre: Vec<Word> = (0..16)
        .map(|i| b.mux_word(is_last, &mc[i], &sr[i]))
        .collect();
    let enc_pre_w = word_of_bytes(&enc_pre);
    let enc_next = b.xor_word(&enc_pre_w, &rk_sel);

    // Decrypt path.
    let isr: Vec<Word> = (0..16)
        .map(|i| {
            let r = i % 4;
            let c = i / 4;
            st_bytes[r + 4 * ((c + 4 - r) % 4)].clone()
        })
        .collect();
    let isb: Vec<Word> = isr.iter().map(|byte| b.sbox8(byte, &inv)).collect();
    let isb_w = word_of_bytes(&isb);
    let ark = b.xor_word(&isb_w, &rk_sel);
    let ark_bytes = bytes_of(&ark);
    let imc = mix_columns_gates(&mut b, &ark_bytes, true);
    let dec_next: Vec<Word> = (0..16)
        .map(|i| b.mux_word(is_last, &imc[i], &ark_bytes[i]))
        .collect();
    let dec_next_w = word_of_bytes(&dec_next);

    let round_next = b.mux_word(dec_q, &enc_next, &dec_next_w);

    // Initial AddRoundKey at capture: data ^ rk0 (enc) / data ^ rk10 (dec).
    let rk10_q = rks[10].q();
    let rk0_q = rks[0].q();
    let ark0_key = b.mux_word(decrypt, &rk0_q, &rk10_q);
    let data_ark = b.xor_word(&data, &ark0_key);

    // ---- state register update -------------------------------------------
    // Operand isolation: at the final round `st` holds (the result lands
    // only in the output register), keeping the round cone quiet while
    // the core is idle.
    let rounds_advance = {
        let not_last = b.not(is_last);
        b.and(in_rounds, not_last)
    };
    let st_after_rounds = b.mux_word(rounds_advance, &st_q, &round_next);
    let st_next = b.mux_word(start_fire, &st_after_rounds, &data_ark);
    b.connect_register(&st, &st_next);

    let dec_w = Word::from_nets(vec![decrypt]);
    b.connect_register_en(&dec, start_fire, &dec_w);

    // Output register: captures the last round's result.
    let finish = b.and(in_rounds, is_last);
    b.connect_register_en(&out_reg, finish, &round_next);

    // ---- controller ---------------------------------------------------------
    let cnt_p1 = b.inc(&cnt_q).sum;
    let zero4 = b.const_word(0, 4);
    let keyexp_done = {
        let is_10 = b.eq_const(&cnt_q, 10);
        b.and(in_keyexp, is_10)
    };
    let busy = b.or(in_keyexp, in_rounds);
    let begin = b.or(start_fire, load_fire);
    let ending = b.or(keyexp_done, finish);
    // The counter *holds* once a phase ends: resetting it while idle would
    // ripple the round-key mux trees every time the core goes quiet,
    // polluting the idle power level. `begin` restarts it at 1.
    let _ = &zero4;
    let mut cnt_next = b.mux_word(busy, &cnt_q, &cnt_p1);
    cnt_next = b.mux_word(ending, &cnt_next, &cnt_q);
    let one4b = b.const_word(1, 4);
    cnt_next = b.mux_word(begin, &cnt_next, &one4b);
    b.connect_register(&cnt, &cnt_next);

    let p_idle = b.const_word(0, 2);
    let p_keyexp = b.const_word(1, 2);
    let p_rounds = b.const_word(2, 2);
    let mut phase_next = phase_q.clone();
    phase_next = b.mux_word(ending, &phase_next, &p_idle);
    phase_next = b.mux_word(load_fire, &phase_next, &p_keyexp);
    phase_next = b.mux_word(start_fire, &phase_next, &p_rounds);
    b.connect_register(&phase, &phase_next);

    // ---- outputs -----------------------------------------------------------
    b.output("out", &out_reg.q());
    b.output("ready", &Word::from_nets(vec![in_idle]));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix B vector.
    const FIPS_KEY: [u8; 16] = [
        0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f,
        0x3c,
    ];
    const FIPS_PT: [u8; 16] = [
        0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07,
        0x34,
    ];
    const FIPS_CT: [u8; 16] = [
        0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b,
        0x32,
    ];

    #[test]
    fn reference_function_matches_fips197() {
        assert_eq!(encrypt_block(&FIPS_KEY, &FIPS_PT), FIPS_CT);
    }

    #[test]
    fn key_schedule_first_and_last_round_keys() {
        let rk1 = next_round_key(&FIPS_KEY, 1);
        assert_eq!(rk1[..4], [0xa0, 0xfa, 0xfe, 0x17]);
        let mut rk = FIPS_KEY;
        for i in 1..11 {
            rk = next_round_key(&rk, i);
        }
        assert_eq!(rk[..4], [0xd0, 0x14, 0xf9, 0xa8]);
        assert_eq!(rk[12..], [0xb6, 0x63, 0x0c, 0xa6]);
    }

    fn cycle(
        key: &[u8; 16],
        data: &[u8; 16],
        start: bool,
        load_key: bool,
        decrypt: bool,
    ) -> Vec<Bits> {
        vec![
            Bits::from_le_bytes(key, 128),
            Bits::from_le_bytes(data, 128),
            Bits::from_bool(start),
            Bits::from_bool(load_key),
            Bits::from_bool(decrypt),
            Bits::from_bool(true),
        ]
    }

    /// Loads the key, waits for ready, then runs one block.
    fn load_and_run(
        core: &mut Aes128,
        key: &[u8; 16],
        data: &[u8; 16],
        decrypt: bool,
    ) -> ([u8; 16], usize, usize) {
        core.step(&cycle(key, data, false, true, decrypt));
        let mut key_latency = 0;
        for t in 1..=30 {
            let outs = core.step(&cycle(key, data, false, false, decrypt));
            if outs[1].bit(0) {
                key_latency = t;
                break;
            }
        }
        core.step(&cycle(key, data, true, false, decrypt));
        for t in 1..=30 {
            let outs = core.step(&cycle(key, data, false, false, decrypt));
            if outs[1].bit(0) {
                let mut result = [0u8; 16];
                result.copy_from_slice(&outs[0].to_le_bytes());
                return (result, key_latency, t);
            }
        }
        panic!("ready never rose after start");
    }

    #[test]
    fn behavioural_encrypts_fips_vector() {
        let mut core = Aes128::new();
        let (ct, key_lat, blk_lat) = load_and_run(&mut core, &FIPS_KEY, &FIPS_PT, false);
        assert_eq!(ct, FIPS_CT);
        assert_eq!(key_lat, 11, "key expansion latency (pulse to ready)");
        assert_eq!(blk_lat, 11, "block latency");
    }

    #[test]
    fn behavioural_decrypts_fips_vector() {
        let mut core = Aes128::new();
        let (pt, _, _) = load_and_run(&mut core, &FIPS_KEY, &FIPS_CT, true);
        assert_eq!(pt, FIPS_PT);
    }

    #[test]
    fn key_persists_across_blocks() {
        let mut core = Aes128::new();
        let (ct1, _, _) = load_and_run(&mut core, &FIPS_KEY, &FIPS_PT, false);
        // Second block without reloading the key.
        core.step(&cycle(&FIPS_KEY, &ct1, true, false, true));
        let mut back = None;
        for _ in 1..=30 {
            let outs = core.step(&cycle(&FIPS_KEY, &ct1, false, false, true));
            if outs[1].bit(0) {
                let mut r = [0u8; 16];
                r.copy_from_slice(&outs[0].to_le_bytes());
                back = Some(r);
                break;
            }
        }
        assert_eq!(back, Some(FIPS_PT));
    }

    #[test]
    fn chip_enable_gates_commands() {
        let mut core = Aes128::new();
        let mut c = cycle(&FIPS_KEY, &FIPS_PT, true, true, false);
        c[5] = Bits::from_bool(false); // ce low
        core.step(&c);
        let outs = core.step(&cycle(&FIPS_KEY, &FIPS_PT, false, false, false));
        assert!(outs[1].bit(0), "still idle: commands were gated");
    }

    #[test]
    fn out_is_stable_while_busy() {
        let mut core = Aes128::new();
        let (ct1, _, _) = load_and_run(&mut core, &FIPS_KEY, &FIPS_PT, false);
        // Start another block; `out` must keep showing ct1 while busy.
        core.step(&cycle(&FIPS_KEY, &FIPS_PT, true, false, false));
        for _ in 0..5 {
            let outs = core.step(&cycle(&FIPS_KEY, &FIPS_PT, false, false, false));
            let mut visible = [0u8; 16];
            visible.copy_from_slice(&outs[0].to_le_bytes());
            assert_eq!(visible, ct1);
            assert!(!outs[1].bit(0));
        }
    }

    #[test]
    fn interface_shape_matches_paper() {
        let s = Aes128::new().signals();
        assert_eq!(s.input_width(), 260); // paper Table I: PIs 260
        assert_eq!(s.output_width(), 129); // paper Table I: POs 129
    }

    #[test]
    fn netlist_builds_and_validates() {
        let n = Aes128::new().netlist().unwrap();
        let stats = n.stats();
        assert!(stats.memory_elements > 1500);
        assert!(stats.combinational > 3000);
        assert_eq!(stats.input_bits, 260);
        assert_eq!(stats.output_bits, 129);
    }
}
