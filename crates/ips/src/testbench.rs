//! Stimulus generators: the paper's *short-TS* and *long-TS* testsets.
//!
//! *short-TS* mimics the testbenches used for functional verification —
//! directed phases (resets, walking addresses, corner operands) followed by
//! constrained-random bursts — and is assumed to cover most IP behaviours.
//! *long-TS* re-stimulates the same functionality many more times with
//! fresh random data, up to a caller-chosen cycle budget (the paper uses
//! 500 000 instants).
//!
//! All generators are deterministic in their seed.

use psm_prng::Prng;
use psm_rtl::Stimulus;
use psm_trace::Bits;

/// Builds the short (verification-style) testset for a Table I benchmark.
///
/// Returns `None` for unknown names.
///
/// # Examples
///
/// ```
/// use psm_ips::testbench::short_ts;
/// let stim = short_ts("RAM", 1).expect("RAM is a benchmark");
/// assert!(stim.len() > 1000);
/// ```
pub fn short_ts(ip_name: &str, seed: u64) -> Option<Stimulus> {
    match ip_name {
        "RAM" => Some(ram_short_ts(seed)),
        "MultSum" => Some(multsum_short_ts(seed)),
        "AES" => Some(aes_short_ts(seed)),
        "Camellia" => Some(camellia_short_ts(seed)),
        _ => None,
    }
}

/// Builds a long randomised testset of roughly `target_cycles` cycles.
///
/// Returns `None` for unknown names.
pub fn long_ts(ip_name: &str, seed: u64, target_cycles: usize) -> Option<Stimulus> {
    match ip_name {
        "RAM" => Some(ram_long_ts(seed, target_cycles)),
        "MultSum" => Some(multsum_long_ts(seed, target_cycles)),
        "AES" => Some(aes_long_ts(seed, target_cycles)),
        "Camellia" => Some(camellia_long_ts(seed, target_cycles)),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// RAM
// ---------------------------------------------------------------------

fn ram_cycle(addr: u64, wdata: u64, we: bool, re: bool, ce: bool, clr: bool) -> Vec<Bits> {
    vec![
        Bits::from_u64(addr, 8),
        Bits::from_u64(wdata, 32),
        Bits::from_bool(we),
        Bits::from_bool(re),
        Bits::from_bool(ce),
        Bits::from_bool(clr),
    ]
}

fn ram_idle(stim: &mut Stimulus, cycles: usize) {
    for _ in 0..cycles {
        stim.push_cycle(ram_cycle(0, 0, false, false, false, false));
    }
}

fn ram_random_phases(stim: &mut Stimulus, rng: &mut Prng, bursts: usize) {
    for _ in 0..bursts {
        let writes = rng.range_usize(8..32);
        for _ in 0..writes {
            stim.push_cycle(ram_cycle(
                rng.range_u64(0..256),
                rng.next_u32() as u64,
                true,
                false,
                true,
                false,
            ));
        }
        let reads = rng.range_usize(8..32);
        for _ in 0..reads {
            stim.push_cycle(ram_cycle(
                rng.range_u64(0..256),
                0,
                false,
                true,
                true,
                false,
            ));
        }
        if rng.chance(0.1) {
            stim.push_cycle(ram_cycle(0, 0, false, false, true, true)); // clr
        }
        ram_idle(stim, rng.range_usize(5..20));
    }
}

/// Verification-style testset for the RAM.
pub fn ram_short_ts(seed: u64) -> Stimulus {
    let mut rng = Prng::seed_from_u64(seed);
    let mut stim = Stimulus::new();
    ram_idle(&mut stim, 50);
    // Walking writes covering the whole array with a data pattern.
    for a in 0..256u64 {
        stim.push_cycle(ram_cycle(a, a * 0x0101_0101, true, false, true, false));
    }
    ram_idle(&mut stim, 20);
    // Walking read-back.
    for a in 0..256u64 {
        stim.push_cycle(ram_cycle(a, 0, false, true, true, false));
    }
    ram_idle(&mut stim, 20);
    // Corner data values.
    for &d in &[0u64, 0xFFFF_FFFF, 0xAAAA_AAAA, 0x5555_5555] {
        for a in [0u64, 255] {
            stim.push_cycle(ram_cycle(a, d, true, true, true, false));
        }
    }
    ram_idle(&mut stim, 10);
    // Constrained-random bursts.
    ram_random_phases(&mut stim, &mut rng, 60);
    stim
}

/// Long randomised re-stimulation for the RAM.
pub fn ram_long_ts(seed: u64, target_cycles: usize) -> Stimulus {
    let mut rng = Prng::seed_from_u64(seed ^ 0x4A11_5EED_0001u64);
    let mut stim = Stimulus::new();
    ram_idle(&mut stim, 30);
    while stim.len() < target_cycles {
        ram_random_phases(&mut stim, &mut rng, 4);
    }
    stim
}

// ---------------------------------------------------------------------
// MultSum
// ---------------------------------------------------------------------

fn mac_cycle(a: u64, b: u64, en: bool, clear: bool) -> Vec<Bits> {
    vec![
        Bits::from_u64(a, 16),
        Bits::from_u64(b, 16),
        Bits::from_bool(en),
        Bits::from_bool(clear),
    ]
}

fn mac_idle(stim: &mut Stimulus, cycles: usize) {
    for _ in 0..cycles {
        stim.push_cycle(mac_cycle(0, 0, false, false));
    }
}

fn mac_random_phases(stim: &mut Stimulus, rng: &mut Prng, bursts: usize) {
    let mut last = (0u64, 0u64);
    for _ in 0..bursts {
        // Occasional clear between jobs, operands held (quiet buses).
        if rng.chance(0.25) {
            stim.push_cycle(mac_cycle(last.0, last.1, false, true));
            stim.push_cycle(mac_cycle(last.0, last.1, false, false));
        }
        let len = rng.range_usize(16..48);
        for _ in 0..len {
            last = (rng.next_u16() as u64, rng.next_u16() as u64);
            stim.push_cycle(mac_cycle(last.0, last.1, true, false));
        }
        // Idle gaps hold the last operands (no pointless bus toggling).
        for _ in 0..rng.range_usize(5..20) {
            stim.push_cycle(mac_cycle(last.0, last.1, false, false));
        }
    }
}

/// Verification-style testset for the MAC.
pub fn multsum_short_ts(seed: u64) -> Stimulus {
    let mut rng = Prng::seed_from_u64(seed);
    let mut stim = Stimulus::new();
    mac_idle(&mut stim, 40);
    // Directed corner operands.
    for &(a, b) in &[
        (0u64, 0u64),
        (1, 1),
        (0xFFFF, 0xFFFF),
        (0xFFFF, 1),
        (0x8000, 2),
        (0x5555, 0xAAAA),
    ] {
        stim.push_cycle(mac_cycle(a, b, true, false));
    }
    mac_idle(&mut stim, 10);
    mac_random_phases(&mut stim, &mut rng, 60);
    stim
}

/// Long randomised re-stimulation for the MAC.
pub fn multsum_long_ts(seed: u64, target_cycles: usize) -> Stimulus {
    let mut rng = Prng::seed_from_u64(seed ^ 0x4A11_5EED_0002u64);
    let mut stim = Stimulus::new();
    mac_idle(&mut stim, 25);
    while stim.len() < target_cycles {
        mac_random_phases(&mut stim, &mut rng, 4);
    }
    stim
}

// ---------------------------------------------------------------------
// Block ciphers (AES / Camellia share the interface)
// ---------------------------------------------------------------------

fn cipher_cycle(key: u128, data: u128, start: bool, load_key: bool, decrypt: bool) -> Vec<Bits> {
    vec![
        Bits::from_le_bytes(&key.to_le_bytes(), 128),
        Bits::from_le_bytes(&data.to_le_bytes(), 128),
        Bits::from_bool(start),
        Bits::from_bool(load_key),
        Bits::from_bool(decrypt),
        Bits::from_bool(true), // ce
    ]
}

/// Loads a key: `load_key` pulse plus the key-schedule latency.
fn cipher_load_key(stim: &mut Stimulus, key_latency: usize, key: u128) {
    stim.push_cycle(cipher_cycle(key, 0, false, true, false));
    for _ in 0..key_latency {
        stim.push_cycle(cipher_cycle(key, 0, false, false, false));
    }
}

/// One block operation: `start` pulse, fixed-latency wait, idle gap.
fn cipher_op(
    stim: &mut Stimulus,
    latency: usize,
    key: u128,
    data: u128,
    decrypt: bool,
    idle_gap: usize,
) {
    stim.push_cycle(cipher_cycle(key, data, true, false, decrypt));
    for _ in 0..latency {
        stim.push_cycle(cipher_cycle(key, data, false, false, decrypt));
    }
    for _ in 0..idle_gap {
        stim.push_cycle(cipher_cycle(key, data, false, false, decrypt));
    }
}

/// `key_latency`/`block_latency`: cycles from pulse to `ready`;
/// `blocks_per_key`: how many blocks reuse one loaded key on average.
fn cipher_ts(
    seed: u64,
    key_latency: usize,
    block_latency: usize,
    ops: usize,
    directed: bool,
) -> Stimulus {
    let mut rng = Prng::seed_from_u64(seed);
    let mut stim = Stimulus::new();
    // Initial idle.
    for _ in 0..15 {
        stim.push_cycle(cipher_cycle(0, 0, false, false, false));
    }
    if directed {
        // Corner keys/blocks first, encrypt and decrypt.
        for &(k, d) in &[
            (0u128, 0u128),
            (u128::MAX, u128::MAX),
            (0, u128::MAX),
            (0x0123_4567_89ab_cdef_fedc_ba98_7654_3210, 0),
        ] {
            cipher_load_key(&mut stim, key_latency, k);
            cipher_op(&mut stim, block_latency, k, d, false, 8);
            cipher_op(&mut stim, block_latency, k, d, true, 8);
        }
    }
    let mut key: u128 = rng.next_u128();
    cipher_load_key(&mut stim, key_latency, key);
    for i in 0..ops {
        // Re-key every ~12 blocks on average (key-agile usage).
        if rng.chance(1.0 / 12.0) {
            key = rng.next_u128();
            cipher_load_key(&mut stim, key_latency, key);
        }
        let data: u128 = rng.next_u128();
        let decrypt = i % 3 == 2 || rng.chance(0.2);
        let gap = rng.range_usize(3..18);
        cipher_op(&mut stim, block_latency, key, data, decrypt, gap);
    }
    stim
}

/// Verification-style testset for the AES core (11-cycle key schedule,
/// 11-cycle block (pulse to ready)).
pub fn aes_short_ts(seed: u64) -> Stimulus {
    cipher_ts(seed, 11, 11, 220, true)
}

/// Long randomised re-stimulation for the AES core.
pub fn aes_long_ts(seed: u64, target_cycles: usize) -> Stimulus {
    let ops = target_cycles / 23 + 1;
    cipher_ts(seed ^ 0xAE5_5EEDu64, 11, 11, ops, false)
}

/// Verification-style testset for the Camellia core (5-cycle key schedule,
/// 21-cycle block, pulse to ready).
pub fn camellia_short_ts(seed: u64) -> Stimulus {
    cipher_ts(seed, 5, 23, 170, true)
}

/// Long randomised re-stimulation for the Camellia core.
pub fn camellia_long_ts(seed: u64, target_cycles: usize) -> Stimulus {
    let ops = target_cycles / 34 + 1;
    cipher_ts(seed ^ 0xCA3E_117Au64, 5, 23, ops, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_ts_for_all_benchmarks() {
        for name in crate::BENCHMARK_NAMES {
            let stim = short_ts(name, 7).unwrap();
            assert!(stim.len() > 1000, "{name}: {} cycles", stim.len());
        }
        assert!(short_ts("nope", 7).is_none());
    }

    #[test]
    fn long_ts_meets_target() {
        for name in crate::BENCHMARK_NAMES {
            let stim = long_ts(name, 7, 5_000).unwrap();
            assert!(
                stim.len() >= 5_000 && stim.len() < 8_000,
                "{name}: {} cycles",
                stim.len()
            );
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for name in crate::BENCHMARK_NAMES {
            assert_eq!(short_ts(name, 3), short_ts(name, 3), "{name}");
            assert_ne!(short_ts(name, 3), short_ts(name, 4), "{name}");
        }
    }

    #[test]
    fn cipher_ops_pulse_start_once() {
        let stim = aes_short_ts(1);
        let mut prev_start = false;
        let mut max_run = 0;
        let mut run = 0;
        for cycle in stim.iter() {
            let start = cycle[2].bit(0);
            if start && prev_start {
                run += 1;
            } else {
                run = usize::from(start);
            }
            max_run = max_run.max(run);
            prev_start = start;
        }
        assert!(max_run <= 1, "start is a single-cycle pulse");
    }
}
