//! Round-iterative Camellia-128 encryption/decryption (RFC 3713) with a
//! key-agile interface.
//!
//! Interface (same shape as [`Aes128`](crate::Aes128) — 260 PI bits, 129
//! PO bits; the paper's Camellia has 262 PI bits, two extra control bits):
//!
//! | port       | dir | width | role                                       |
//! |------------|-----|-------|--------------------------------------------|
//! | `key`      | in  | 128   | cipher key (sampled by `load_key`)         |
//! | `data`     | in  | 128   | plaintext / ciphertext (sampled by `start`)|
//! | `start`    | in  | 1     | process one block                          |
//! | `load_key` | in  | 1     | derive and store KA                        |
//! | `decrypt`  | in  | 1     | 0 = encrypt, 1 = decrypt                   |
//! | `ce`       | in  | 1     | chip enable                                |
//! | `out`      | out | 128   | result of the last completed block         |
//! | `ready`    | out | 1     | high while idle                            |
//!
//! Micro-architecture: `load_key` runs the 4-cycle KA derivation (one
//! Feistel F-application per cycle); `start` runs 22 processing cycles —
//! 18 Feistel rounds plus the two FL/FL⁻¹ layers (cycles 6 and 13) — with
//! pre-whitening folded into the capture edge and post-whitening into the
//! final cycle.
//!
//! Camellia is the paper's *hard* benchmark: within one externally
//! indistinguishable "processing" behaviour, heavy 8-S-box F rounds
//! alternate with nearly-free FL cycles, and only half the state is
//! reworked per round — subcomponent activity poorly correlated with the
//! interface, which is exactly why its PSM misestimates power (the ~32%
//! MRE row of Tables II/III).
//!
//! The 128-bit block maps to ports numerically: bit 127 of the RFC's big
//! number is bit 127 of the `Bits` value.

use crate::traits::Ip;
use psm_rtl::{Netlist, NetlistBuilder, RtlError, Word};
use psm_trace::{Bits, Direction, SignalSet};

/// Camellia s1 S-box (RFC 3713 §2.4.4); s2–s4 are derived rotations.
const SBOX1: [u8; 256] = [
    112, 130, 44, 236, 179, 39, 192, 229, 228, 133, 87, 53, 234, 12, 174, 65, 35, 239, 107, 147,
    69, 25, 165, 33, 237, 14, 79, 78, 29, 101, 146, 189, 134, 184, 175, 143, 124, 235, 31, 206, 62,
    48, 220, 95, 94, 197, 11, 26, 166, 225, 57, 202, 213, 71, 93, 61, 217, 1, 90, 214, 81, 86, 108,
    77, 139, 13, 154, 102, 251, 204, 176, 45, 116, 18, 43, 32, 240, 177, 132, 153, 223, 76, 203,
    194, 52, 126, 118, 5, 109, 183, 169, 49, 209, 23, 4, 215, 20, 88, 58, 97, 222, 27, 17, 28, 50,
    15, 156, 22, 83, 24, 242, 34, 254, 68, 207, 178, 195, 181, 122, 145, 36, 8, 232, 168, 96, 252,
    105, 80, 170, 208, 160, 125, 161, 137, 98, 151, 84, 91, 30, 149, 224, 255, 100, 210, 16, 196,
    0, 72, 163, 247, 117, 219, 138, 3, 230, 218, 9, 63, 221, 148, 135, 92, 131, 2, 205, 74, 144,
    51, 115, 103, 246, 243, 157, 127, 191, 226, 82, 155, 216, 38, 200, 55, 198, 59, 129, 150, 111,
    75, 19, 190, 99, 46, 233, 121, 167, 140, 159, 110, 188, 142, 41, 245, 249, 182, 47, 253, 180,
    89, 120, 152, 6, 106, 231, 70, 113, 186, 212, 37, 171, 66, 136, 162, 141, 250, 114, 7, 185, 85,
    248, 238, 172, 10, 54, 73, 42, 104, 60, 56, 241, 164, 64, 40, 211, 123, 187, 201, 67, 193, 21,
    227, 173, 244, 119, 199, 128, 158,
];

fn sbox2() -> [u8; 256] {
    core::array::from_fn(|i| SBOX1[i].rotate_left(1))
}

fn sbox3() -> [u8; 256] {
    core::array::from_fn(|i| SBOX1[i].rotate_left(7))
}

fn sbox4() -> [u8; 256] {
    core::array::from_fn(|i| SBOX1[(i as u8).rotate_left(1) as usize])
}

const SIGMA: [u64; 4] = [
    0xA09E_667F_3BCC_908B,
    0xB67A_E858_4CAA_73B2,
    0xC6EF_372F_E94F_82BE,
    0x54FF_53A5_F1D3_6F1C,
];

/// The Feistel F-function: `P(S(x ^ k))`.
fn f(x: u64, k: u64) -> u64 {
    let x = x ^ k;
    let s2 = sbox2();
    let s3 = sbox3();
    let s4 = sbox4();
    let t: [u8; 8] = [
        SBOX1[(x >> 56) as u8 as usize],
        s2[(x >> 48) as u8 as usize],
        s3[(x >> 40) as u8 as usize],
        s4[(x >> 32) as u8 as usize],
        s2[(x >> 24) as u8 as usize],
        s3[(x >> 16) as u8 as usize],
        s4[(x >> 8) as u8 as usize],
        SBOX1[x as u8 as usize],
    ];
    let (t1, t2, t3, t4, t5, t6, t7, t8) = (t[0], t[1], t[2], t[3], t[4], t[5], t[6], t[7]);
    let y1 = t1 ^ t3 ^ t4 ^ t6 ^ t7 ^ t8;
    let y2 = t1 ^ t2 ^ t4 ^ t5 ^ t7 ^ t8;
    let y3 = t1 ^ t2 ^ t3 ^ t5 ^ t6 ^ t8;
    let y4 = t2 ^ t3 ^ t4 ^ t5 ^ t6 ^ t7;
    let y5 = t1 ^ t2 ^ t6 ^ t7 ^ t8;
    let y6 = t2 ^ t3 ^ t5 ^ t7 ^ t8;
    let y7 = t3 ^ t4 ^ t5 ^ t6 ^ t8;
    let y8 = t1 ^ t4 ^ t5 ^ t6 ^ t7;
    u64::from_be_bytes([y1, y2, y3, y4, y5, y6, y7, y8])
}

fn fl(x: u64, ke: u64) -> u64 {
    let (mut x1, mut x2) = ((x >> 32) as u32, x as u32);
    let (k1, k2) = ((ke >> 32) as u32, ke as u32);
    x2 ^= (x1 & k1).rotate_left(1);
    x1 ^= x2 | k2;
    (u64::from(x1) << 32) | u64::from(x2)
}

fn fl_inv(y: u64, ke: u64) -> u64 {
    let (mut y1, mut y2) = ((y >> 32) as u32, y as u32);
    let (k1, k2) = ((ke >> 32) as u32, ke as u32);
    y1 ^= y2 | k2;
    y2 ^= (y1 & k1).rotate_left(1);
    (u64::from(y1) << 32) | u64::from(y2)
}

fn rotl128(v: u128, n: u32) -> u128 {
    v.rotate_left(n)
}

/// All subkeys for one key, in RFC order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Subkeys {
    kw: [u64; 4],
    k: [u64; 18],
    ke: [u64; 4],
}

fn derive_ka(kl: u128) -> u128 {
    let mut d1 = (kl >> 64) as u64;
    let mut d2 = kl as u64;
    d2 ^= f(d1, SIGMA[0]);
    d1 ^= f(d2, SIGMA[1]);
    d1 ^= (kl >> 64) as u64;
    d2 ^= kl as u64;
    d2 ^= f(d1, SIGMA[2]);
    d1 ^= f(d2, SIGMA[3]);
    (u128::from(d1) << 64) | u128::from(d2)
}

/// Subkeys from already-derived KL/KA (the registers of the core).
fn subkeys_from(kl: u128, ka: u128) -> Subkeys {
    let hi = |v: u128| (v >> 64) as u64;
    let lo = |v: u128| v as u64;
    Subkeys {
        kw: [hi(kl), lo(kl), hi(rotl128(ka, 111)), lo(rotl128(ka, 111))],
        k: [
            hi(ka),
            lo(ka),
            hi(rotl128(kl, 15)),
            lo(rotl128(kl, 15)),
            hi(rotl128(ka, 15)),
            lo(rotl128(ka, 15)),
            hi(rotl128(kl, 45)),
            lo(rotl128(kl, 45)),
            hi(rotl128(ka, 45)),
            lo(rotl128(kl, 60)),
            hi(rotl128(ka, 60)),
            lo(rotl128(ka, 60)),
            hi(rotl128(kl, 94)),
            lo(rotl128(kl, 94)),
            hi(rotl128(ka, 94)),
            lo(rotl128(ka, 94)),
            hi(rotl128(kl, 111)),
            lo(rotl128(kl, 111)),
        ],
        ke: [
            hi(rotl128(ka, 30)),
            lo(rotl128(ka, 30)),
            hi(rotl128(kl, 77)),
            lo(rotl128(kl, 77)),
        ],
    }
}

fn reversed_subkeys(sk: &Subkeys) -> Subkeys {
    let mut k_rev = sk.k;
    k_rev.reverse();
    Subkeys {
        kw: [sk.kw[2], sk.kw[3], sk.kw[0], sk.kw[1]],
        k: k_rev,
        ke: [sk.ke[3], sk.ke[2], sk.ke[1], sk.ke[0]],
    }
}

/// Single-shot Camellia-128 block operation — the pure reference function
/// the cycle-accurate core and the netlist are tested against.
///
/// # Examples
///
/// ```
/// use psm_ips::camellia_process_block;
/// let ct = camellia_process_block(1, 2, false);
/// assert_eq!(camellia_process_block(1, ct, true), 2);
/// ```
pub fn process_block(key: u128, block: u128, decrypt: bool) -> u128 {
    let sk = subkeys_from(key, derive_ka(key));
    let sk = if decrypt { reversed_subkeys(&sk) } else { sk };
    let mut d1 = (block >> 64) as u64 ^ sk.kw[0];
    let mut d2 = block as u64 ^ sk.kw[1];
    for (i, &ki) in sk.k.iter().enumerate() {
        if i == 6 {
            d1 = fl(d1, sk.ke[0]);
            d2 = fl_inv(d2, sk.ke[1]);
        } else if i == 12 {
            d1 = fl(d1, sk.ke[2]);
            d2 = fl_inv(d2, sk.ke[3]);
        }
        if i % 2 == 0 {
            d2 ^= f(d1, ki);
        } else {
            d1 ^= f(d2, ki);
        }
    }
    let c_hi = d2 ^ sk.kw[2];
    let c_lo = d1 ^ sk.kw[3];
    (u128::from(c_hi) << 64) | u128::from(c_lo)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    KeyGen,
    Rounds,
}

/// Behavioural model of the key-agile iterative Camellia core; see the
/// module docs above.
#[derive(Debug, Clone)]
pub struct Camellia128 {
    phase: Phase,
    cnt: usize,
    d1: u64,
    d2: u64,
    kl: u128,
    ka: u128,
    dec: bool,
    out: u128,
}

impl Camellia128 {
    /// An idle Camellia core with a zero key.
    pub fn new() -> Self {
        Camellia128 {
            phase: Phase::Idle,
            cnt: 0,
            d1: 0,
            d2: 0,
            kl: 0,
            ka: 0,
            dec: false,
            out: 0,
        }
    }

    fn sk(&self) -> Subkeys {
        let sk = subkeys_from(self.kl, self.ka);
        if self.dec {
            reversed_subkeys(&sk)
        } else {
            sk
        }
    }
}

impl Default for Camellia128 {
    fn default() -> Self {
        Camellia128::new()
    }
}

impl Ip for Camellia128 {
    fn name(&self) -> &'static str {
        "Camellia"
    }

    fn signals(&self) -> SignalSet {
        let mut s = SignalSet::new();
        s.push("key", 128, Direction::Input).expect("unique");
        s.push("data", 128, Direction::Input).expect("unique");
        s.push("start", 1, Direction::Input).expect("unique");
        s.push("load_key", 1, Direction::Input).expect("unique");
        s.push("decrypt", 1, Direction::Input).expect("unique");
        s.push("ce", 1, Direction::Input).expect("unique");
        s.push("out", 128, Direction::Output).expect("unique");
        s.push("ready", 1, Direction::Output).expect("unique");
        s
    }

    fn netlist(&self) -> Result<Netlist, RtlError> {
        build_camellia_netlist(false)
    }

    fn reset(&mut self) {
        *self = Camellia128::new();
    }

    fn step(&mut self, inputs: &[Bits]) -> Vec<Bits> {
        assert_eq!(inputs.len(), 6, "Camellia takes 6 input ports");
        let key = u128_of(&inputs[0]);
        let data = u128_of(&inputs[1]);
        let ce = inputs[5].bit(0);
        let start = inputs[2].bit(0) && ce;
        let load_key = inputs[3].bit(0) && ce;
        let decrypt = inputs[4].bit(0);

        let out_bits = bits_of_u128(self.out);
        let ready = Bits::from_bool(self.phase == Phase::Idle);

        match self.phase {
            Phase::Idle => {
                if load_key {
                    self.kl = key;
                    self.d1 = (key >> 64) as u64;
                    self.d2 = key as u64;
                    self.cnt = 0;
                    self.phase = Phase::KeyGen;
                } else if start {
                    self.dec = decrypt;
                    // Pre-whitening at capture (kw1/kw2 or kw3/kw4).
                    let sk = subkeys_from(self.kl, self.ka);
                    let (pa, pb) = if decrypt {
                        (sk.kw[2], sk.kw[3])
                    } else {
                        (sk.kw[0], sk.kw[1])
                    };
                    self.d1 = (data >> 64) as u64 ^ pa;
                    self.d2 = data as u64 ^ pb;
                    self.cnt = 0;
                    self.phase = Phase::Rounds;
                }
            }
            Phase::KeyGen => {
                match self.cnt {
                    0 => self.d2 ^= f(self.d1, SIGMA[0]),
                    1 => self.d1 ^= f(self.d2, SIGMA[1]),
                    2 => {
                        self.d1 ^= (self.kl >> 64) as u64;
                        self.d2 ^= self.kl as u64;
                        self.d2 ^= f(self.d1, SIGMA[2]);
                    }
                    3 => self.d1 ^= f(self.d2, SIGMA[3]),
                    _ => unreachable!("keygen lasts 4 cycles"),
                }
                if self.cnt == 3 {
                    self.ka = (u128::from(self.d1) << 64) | u128::from(self.d2);
                    self.phase = Phase::Idle;
                } else {
                    self.cnt += 1;
                }
            }
            Phase::Rounds => {
                let sk = self.sk();
                let c = self.cnt;
                let (prev_d1, prev_d2) = (self.d1, self.d2);
                // One shared FL unit: each FL layer takes two cycles
                // (FL on D1, then FL⁻¹ on D2).
                match c {
                    6 => self.d1 = fl(self.d1, sk.ke[0]),
                    7 => self.d2 = fl_inv(self.d2, sk.ke[1]),
                    14 => self.d1 = fl(self.d1, sk.ke[2]),
                    15 => self.d2 = fl_inv(self.d2, sk.ke[3]),
                    _ => {
                        let i = c - 2 * usize::from(c > 7) - 2 * usize::from(c > 15);
                        if i.is_multiple_of(2) {
                            self.d2 ^= f(self.d1, sk.k[i]);
                        } else {
                            self.d1 ^= f(self.d2, sk.k[i]);
                        }
                    }
                }
                if c == 21 {
                    let c_hi = self.d2 ^ sk.kw[2];
                    let c_lo = self.d1 ^ sk.kw[3];
                    self.out = (u128::from(c_hi) << 64) | u128::from(c_lo);
                    // Operand isolation: d1/d2 hold their pre-final values
                    // so the F cone stays quiet while idle.
                    self.d1 = prev_d1;
                    self.d2 = prev_d2;
                    self.phase = Phase::Idle;
                } else {
                    self.cnt = c + 1;
                }
            }
        }

        vec![out_bits, ready]
    }
}

fn u128_of(b: &Bits) -> u128 {
    let bytes = b.to_le_bytes();
    let mut arr = [0u8; 16];
    arr[..bytes.len().min(16)].copy_from_slice(&bytes[..bytes.len().min(16)]);
    u128::from_le_bytes(arr)
}

fn bits_of_u128(v: u128) -> Bits {
    Bits::from_le_bytes(&v.to_le_bytes(), 128)
}

// ---------------------------------------------------------------------
// Structural twin
// ---------------------------------------------------------------------

/// Numeric byte views of a 64-bit word: index 0 = RFC's t1 (MSB byte).
fn be_bytes(w: &Word) -> Vec<Word> {
    (0..8).map(|k| w.slice(8 * (7 - k), 8)).collect()
}

/// The F-function in gates: 8 S-box LUT banks plus the P xor network.
fn f_gates(b: &mut NetlistBuilder, x: &Word, k: &Word, tables: &[[u8; 256]; 4]) -> Word {
    let xk = b.xor_word(x, k);
    let tb = be_bytes(&xk);
    let pick = [0usize, 1, 2, 3, 1, 2, 3, 0]; // s1 s2 s3 s4 s2 s3 s4 s1
    let t: Vec<Word> = tb
        .iter()
        .zip(pick)
        .map(|(byte, s)| b.sbox8(byte, &tables[s]))
        .collect();
    let terms: [&[usize]; 8] = [
        &[1, 3, 4, 6, 7, 8],
        &[1, 2, 4, 5, 7, 8],
        &[1, 2, 3, 5, 6, 8],
        &[2, 3, 4, 5, 6, 7],
        &[1, 2, 6, 7, 8],
        &[2, 3, 5, 7, 8],
        &[3, 4, 5, 6, 8],
        &[1, 4, 5, 6, 7],
    ];
    let ys: Vec<Word> = terms
        .iter()
        .map(|idxs| {
            let mut acc = t[idxs[0] - 1].clone();
            for &i in &idxs[1..] {
                acc = b.xor_word(&acc, &t[i - 1]);
            }
            acc
        })
        .collect();
    // Reassemble: y1 is the MSB byte.
    let mut w = ys[7].clone();
    for y in ys[..7].iter().rev() {
        w = w.concat(y);
    }
    w
}

fn fl_gates(b: &mut NetlistBuilder, x: &Word, ke: &Word) -> Word {
    let x1 = x.slice(32, 32);
    let x2 = x.slice(0, 32);
    let k1 = ke.slice(32, 32);
    let k2 = ke.slice(0, 32);
    let a = b.and_word(&x1, &k1);
    let rot = a.rotate_left(1);
    let x2n = b.xor_word(&x2, &rot);
    let o = b.or_word(&x2n, &k2);
    let x1n = b.xor_word(&x1, &o);
    x2n.concat(&x1n)
}

fn fl_inv_gates(b: &mut NetlistBuilder, y: &Word, ke: &Word) -> Word {
    let y1 = y.slice(32, 32);
    let y2 = y.slice(0, 32);
    let k1 = ke.slice(32, 32);
    let k2 = ke.slice(0, 32);
    let o = b.or_word(&y2, &k2);
    let y1n = b.xor_word(&y1, &o);
    let a = b.and_word(&y1n, &k1);
    let rot = a.rotate_left(1);
    let y2n = b.xor_word(&y2, &rot);
    y2n.concat(&y1n)
}

fn build_camellia_netlist(whitebox: bool) -> Result<Netlist, RtlError> {
    let mut b = NetlistBuilder::new("camellia128");
    let key = b.input("key", 128);
    let data = b.input("data", 128);
    let start_in = b.input("start", 1).bit(0);
    let load_key_in = b.input("load_key", 1).bit(0);
    let decrypt = b.input("decrypt", 1).bit(0);
    let ce = b.input("ce", 1).bit(0);
    let start = b.and(start_in, ce);
    let load_key = b.and(load_key_in, ce);

    let tables = [SBOX1, sbox2(), sbox3(), sbox4()];

    // Registers. The key material lives in the key-schedule domain; the
    // data halves and control in the core domain.
    let phase = b.register("phase", 2); // 0 idle, 1 keygen, 2 rounds
    let cnt = b.register("cnt", 5);
    let d1 = b.register("d1", 64);
    let d2 = b.register("d2", 64);
    b.domain("key_sched");
    let kl = b.register("kl", 128);
    let ka = b.register("ka", 128);
    b.domain("core");
    let dec = b.register("dec", 1);
    let out = b.register("o", 128);

    let phase_q = phase.q();
    let cnt_q = cnt.q();
    let d1_q = d1.q();
    let d2_q = d2.q();
    let kl_q = kl.q();
    let ka_q = ka.q();
    let dec_q = dec.q().bit(0);

    let in_idle = b.eq_const(&phase_q, 0);
    let in_keygen = b.eq_const(&phase_q, 1);
    let in_rounds = b.eq_const(&phase_q, 2);
    let load_fire = b.and(in_idle, load_key);
    let nlk = b.not(load_key);
    let start_gated = b.and(start, nlk);
    let start_fire = b.and(in_idle, start_gated);

    // ---- subkey wires (rotations are free rewiring) ----------------------
    let hi = |w: &Word| w.slice(64, 64);
    let lo = |w: &Word| w.slice(0, 64);
    let kw12 = [hi(&kl_q), lo(&kl_q)];
    let ka_111 = ka_q.rotate_left(111);
    let kw34 = [hi(&ka_111), lo(&ka_111)];
    let k_list: Vec<Word> = {
        let kl15 = kl_q.rotate_left(15);
        let ka15 = ka_q.rotate_left(15);
        let kl45 = kl_q.rotate_left(45);
        let ka45 = ka_q.rotate_left(45);
        let kl60 = kl_q.rotate_left(60);
        let ka60 = ka_q.rotate_left(60);
        let kl94 = kl_q.rotate_left(94);
        let ka94 = ka_q.rotate_left(94);
        let kl111 = kl_q.rotate_left(111);
        vec![
            hi(&ka_q),
            lo(&ka_q),
            hi(&kl15),
            lo(&kl15),
            hi(&ka15),
            lo(&ka15),
            hi(&kl45),
            lo(&kl45),
            hi(&ka45),
            lo(&kl60),
            hi(&ka60),
            lo(&ka60),
            hi(&kl94),
            lo(&kl94),
            hi(&ka94),
            lo(&ka94),
            hi(&kl111),
            lo(&kl111),
        ]
    };
    let ke_list: Vec<Word> = {
        let ka30 = ka_q.rotate_left(30);
        let kl77 = kl_q.rotate_left(77);
        vec![hi(&ka30), lo(&ka30), hi(&kl77), lo(&kl77)]
    };

    // ---- per-cycle key selection ------------------------------------------
    // Cycles 6/7 and 14/15 are the (two-cycle) FL layers.
    let is_fl_cycle = |c: usize| matches!(c, 6 | 7 | 14 | 15);
    let f_index = |c: usize| c - 2 * usize::from(c > 7) - 2 * usize::from(c > 15);
    let mut enc_opts = Vec::with_capacity(32);
    let mut dec_opts = Vec::with_capacity(32);
    for c in 0..32 {
        if c >= 22 || is_fl_cycle(c) {
            enc_opts.push(k_list[0].clone()); // don't-care
            dec_opts.push(k_list[0].clone());
        } else {
            let i = f_index(c);
            enc_opts.push(k_list[i].clone());
            dec_opts.push(k_list[17 - i].clone());
        }
    }
    // The subkey-selection trees are part of the key-schedule
    // subcomponent: their selector is held during FL cycles (whose subkeys
    // come from the small dedicated ke muxes below), so the whole unit is
    // quiet there.
    b.domain("key_sched");
    let is_c6_pre = b.eq_const(&cnt_q, 6);
    let is_c7_pre = b.eq_const(&cnt_q, 7);
    let is_c14_pre = b.eq_const(&cnt_q, 14);
    let is_c15_pre = b.eq_const(&cnt_q, 15);
    let fl_first = b.or(is_c6_pre, is_c7_pre);
    let fl_second = b.or(is_c14_pre, is_c15_pre);
    let is_fl_pre = b.or(fl_first, fl_second);
    let kh_cnt = b.register("kh_cnt", 5);
    let not_fl_pre = b.not(is_fl_pre);
    b.connect_register_en(&kh_cnt, not_fl_pre, &cnt_q);
    let kh_q = kh_cnt.q();
    let sel_cnt = b.mux_word(is_fl_pre, &cnt_q, &kh_q);
    let k_enc = b.mux_tree(&sel_cnt, &enc_opts);
    let k_dec = b.mux_tree(&sel_cnt, &dec_opts);
    let k_round = b.mux_word(dec_q, &k_enc, &k_dec);
    b.domain("core");

    b.domain("fl_unit");
    let ke_a_enc = b.mux_word(fl_first, &ke_list[2], &ke_list[0]);
    let ke_b_enc = b.mux_word(fl_first, &ke_list[3], &ke_list[1]);
    let ke_a_dec = b.mux_word(fl_first, &ke_list[1], &ke_list[3]);
    let ke_b_dec = b.mux_word(fl_first, &ke_list[0], &ke_list[2]);
    let ke_a = b.mux_word(dec_q, &ke_a_enc, &ke_a_dec);
    let ke_b = b.mux_word(dec_q, &ke_b_enc, &ke_b_dec);
    b.domain("core");

    // ---- keygen datapath ----------------------------------------------------
    let sigma_opts: Vec<Word> = SIGMA
        .iter()
        .map(|s| b.const_bits(&Bits::from_le_bytes(&s.to_le_bytes(), 64)))
        .collect();
    let cnt2 = cnt_q.slice(0, 2);
    let sigma = b.mux_tree(&cnt2, &sigma_opts);
    let is_kg2 = b.eq_const(&cnt_q, 2);
    let d1_klx = b.xor_word(&d1_q, &hi(&kl_q));
    let d2_klx = b.xor_word(&d2_q, &lo(&kl_q));
    let d1_in = b.mux_word(is_kg2, &d1_q, &d1_klx);
    let d2_in = b.mux_word(is_kg2, &d2_q, &d2_klx);
    let odd_cycle = cnt_q.bit(0); // keygen cycles 1 and 3 update D1
    let f_src_kg = b.mux_word(odd_cycle, &d1_in, &d2_in);

    let is_kg3 = b.eq_const(&cnt_q, 3);
    let kg_done = b.and(in_keygen, is_kg3);

    // Pre-whitening at `start` capture.
    let prew_a = b.mux_word(decrypt, &kw12[0], &kw34[0]);
    let prew_b = b.mux_word(decrypt, &kw12[1], &kw34[1]);
    let d1_prew = b.xor_word(&hi(&data), &prew_a);
    let d2_prew = b.xor_word(&lo(&data), &prew_b);

    // ---- rounds datapath ------------------------------------------------------
    let odd_f = {
        let mut tbl = vec![0u64; 32];
        for (c, e) in tbl.iter_mut().enumerate().take(22) {
            if !is_fl_cycle(c) && f_index(c) % 2 == 1 {
                *e = 1;
            }
        }
        b.rom(&cnt_q, &tbl, 1).bit(0)
    };
    let f_src = b.mux_word(odd_f, &d1_q, &d2_q);
    let is_fl = is_fl_pre;

    // One shared F unit serves both the key schedule and the data path
    // (cores do not duplicate eight S-box banks). Its operands go through
    // isolation latches that *hold* during the FL cycles, so the F
    // subcomponent is completely quiet while the FL subcomponent works —
    // the externally invisible subcomponent alternation behind Camellia's
    // poor PSM accuracy in the paper.
    b.domain("f_unit");
    let live_src = b.mux_word(in_keygen, &f_src, &f_src_kg);
    let live_key = b.mux_word(in_keygen, &k_round, &sigma);
    let fh_src = b.register("fh_src", 64);
    let fh_key = b.register("fh_key", 64);
    let not_fl = b.not(is_fl);
    b.connect_register_en(&fh_src, not_fl, &live_src);
    b.connect_register_en(&fh_key, not_fl, &live_key);
    let fh_src_q = fh_src.q();
    let fh_key_q = fh_key.q();
    let cone_src = b.mux_word(is_fl, &live_src, &fh_src_q);
    let cone_key = b.mux_word(is_fl, &live_key, &fh_key_q);
    let f_out = f_gates(&mut b, &cone_src, &cone_key, &tables);
    b.domain("core");

    // Key-schedule updates from the shared cone.
    let d2_kg = b.xor_word(&d2_in, &f_out);
    let d1_kg = b.xor_word(&d1_in, &f_out);
    let d1_kg_next = b.mux_word(odd_cycle, &d1_in, &d1_kg);
    let d2_kg_next = b.mux_word(odd_cycle, &d2_kg, &d2_in);

    // Data-path round updates from the shared cone.
    let d2_f = b.xor_word(&d2_q, &f_out);
    let d1_f = b.xor_word(&d1_q, &f_out);
    let d1_round = b.mux_word(odd_f, &d1_q, &d1_f);
    let d2_round = b.mux_word(odd_f, &d2_f, &d2_q);

    let ka_next = d2_kg_next.concat(&d1_kg_next);
    b.connect_register_en(&ka, kg_done, &ka_next);

    b.domain("fl_unit");
    let d1_fl_raw = fl_gates(&mut b, &d1_q, &ke_a);
    let d2_fl_raw = fl_inv_gates(&mut b, &d2_q, &ke_b);
    b.domain("core");
    // First FL cycle (even cnt) updates D1; the second (odd cnt) D2.
    let fl_odd = cnt_q.bit(0);
    let d1_fl = b.mux_word(fl_odd, &d1_fl_raw, &d1_q);
    let d2_fl = b.mux_word(fl_odd, &d2_q, &d2_fl_raw);
    let d1_rounds = b.mux_word(is_fl, &d1_round, &d1_fl);
    let d2_rounds = b.mux_word(is_fl, &d2_round, &d2_fl);

    // ---- register updates -----------------------------------------------------
    let is_c21 = b.eq_const(&cnt_q, 21);
    let finish = b.and(in_rounds, is_c21);
    let mut d1_next = d1_q.clone();
    let mut d2_next = d2_q.clone();
    d1_next = b.mux_word(in_keygen, &d1_next, &d1_kg_next);
    d2_next = b.mux_word(in_keygen, &d2_next, &d2_kg_next);
    // Operand isolation: at the final round d1/d2 hold (the post-whitened
    // result lands only in the output register).
    let rounds_advance = {
        let not_last = b.not(is_c21);
        b.and(in_rounds, not_last)
    };
    d1_next = b.mux_word(rounds_advance, &d1_next, &d1_rounds);
    d2_next = b.mux_word(rounds_advance, &d2_next, &d2_rounds);
    d1_next = b.mux_word(start_fire, &d1_next, &d1_prew);
    d2_next = b.mux_word(start_fire, &d2_next, &d2_prew);
    d1_next = b.mux_word(load_fire, &d1_next, &hi(&key));
    d2_next = b.mux_word(load_fire, &d2_next, &lo(&key));
    b.connect_register(&d1, &d1_next);
    b.connect_register(&d2, &d2_next);

    b.connect_register_en(&kl, load_fire, &key);
    let dec_w = Word::from_nets(vec![decrypt]);
    b.connect_register_en(&dec, start_fire, &dec_w);

    // Output register: post-whitening at the last round (cnt 19).
    let post_a = b.mux_word(dec_q, &kw34[0], &kw12[0]); // kw3 role
    let post_b = b.mux_word(dec_q, &kw34[1], &kw12[1]); // kw4 role
    let c_hi = b.xor_word(&d2_rounds, &post_a);
    let c_lo = b.xor_word(&d1_rounds, &post_b);
    let result = c_lo.concat(&c_hi);
    b.connect_register_en(&out, finish, &result);
    b.output("out", &out.q());
    b.output("ready", &Word::from_nets(vec![in_idle]));
    if whitebox {
        // The white-box probe of the hierarchical extension: which
        // subcomponent (F unit vs FL unit) is active this cycle.
        let fl_active = b.and(in_rounds, is_fl);
        b.output("fl_active", &Word::from_nets(vec![fl_active]));
    }

    // ---- controller --------------------------------------------------------------
    let cnt_p1 = b.inc(&cnt_q).sum;
    let zero5 = b.const_word(0, 5);
    let busy = b.or(in_keygen, in_rounds);
    let begin = b.or(start_fire, load_fire);
    let ending = b.or(kg_done, finish);
    // Hold the counter when a phase ends (see the AES core): a reset would
    // ripple the subkey mux trees into the idle cycles.
    let mut cnt_next = b.mux_word(busy, &cnt_q, &cnt_p1);
    cnt_next = b.mux_word(ending, &cnt_next, &cnt_q);
    cnt_next = b.mux_word(begin, &cnt_next, &zero5);
    b.connect_register(&cnt, &cnt_next);

    let p_idle = b.const_word(0, 2);
    let p_keygen = b.const_word(1, 2);
    let p_rounds = b.const_word(2, 2);
    let mut phase_next = phase_q.clone();
    phase_next = b.mux_word(ending, &phase_next, &p_idle);
    phase_next = b.mux_word(load_fire, &phase_next, &p_keygen);
    phase_next = b.mux_word(start_fire, &phase_next, &p_rounds);
    b.connect_register(&phase, &phase_next);

    b.finish()
}

/// The white-box variant of [`Camellia128`] used by the hierarchical-PSM
/// extension (the paper's future work): identical core, plus one probe
/// output `fl_active` that tells the observer which subcomponent (the F
/// unit or the FL unit) is working this cycle.
///
/// With this single bit exposed, the miner can distinguish the F and FL
/// phases inside the otherwise uniform "processing" behaviour, and the
/// flat ~30 % MRE collapses — see `extension_hierarchy` in `psm-bench`.
#[derive(Debug, Clone, Default)]
pub struct Camellia128Whitebox {
    inner: Camellia128,
}

impl Camellia128Whitebox {
    /// An idle white-box Camellia core.
    pub fn new() -> Self {
        Camellia128Whitebox {
            inner: Camellia128::new(),
        }
    }
}

impl Ip for Camellia128Whitebox {
    fn name(&self) -> &'static str {
        "Camellia-whitebox"
    }

    fn signals(&self) -> SignalSet {
        let mut s = self.inner.signals();
        s.push("fl_active", 1, Direction::Output).expect("unique");
        s
    }

    fn netlist(&self) -> Result<Netlist, RtlError> {
        build_camellia_netlist(true)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }

    fn step(&mut self, inputs: &[Bits]) -> Vec<Bits> {
        let fl_active =
            self.inner.phase == Phase::Rounds && matches!(self.inner.cnt, 6 | 7 | 14 | 15);
        let mut outs = self.inner.step(inputs);
        outs.push(Bits::from_bool(fl_active));
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 3713 §A test vector.
    const K: u128 = 0x0123456789abcdeffedcba9876543210;
    const P: u128 = 0x0123456789abcdeffedcba9876543210;
    const C: u128 = 0x67673138549669730857065648eabe43;

    #[test]
    fn reference_encrypts_rfc_vector() {
        assert_eq!(process_block(K, P, false), C);
    }

    #[test]
    fn reference_decrypts_rfc_vector() {
        assert_eq!(process_block(K, C, true), P);
    }

    #[test]
    fn reference_roundtrip_random_blocks() {
        let mut x: u128 = 0x1234_5678_9abc_def0_0fed_cba9_8765_4321;
        for i in 0..20u128 {
            let key = x.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i;
            let pt = x.rotate_left(17) ^ (i << 64);
            let ct = process_block(key, pt, false);
            assert_eq!(process_block(key, ct, true), pt, "block {i}");
            x = x.wrapping_add(0x0101_0101_0101_0101_1111_2222_3333_4444);
        }
    }

    fn cycle(key: u128, data: u128, start: bool, load_key: bool, decrypt: bool) -> Vec<Bits> {
        vec![
            bits_of_u128(key),
            bits_of_u128(data),
            Bits::from_bool(start),
            Bits::from_bool(load_key),
            Bits::from_bool(decrypt),
            Bits::from_bool(true),
        ]
    }

    fn load_and_run(
        core: &mut Camellia128,
        key: u128,
        data: u128,
        decrypt: bool,
    ) -> (u128, usize, usize) {
        core.step(&cycle(key, data, false, true, decrypt));
        let mut key_latency = 0;
        for t in 1..=30 {
            let outs = core.step(&cycle(key, data, false, false, decrypt));
            if outs[1].bit(0) {
                key_latency = t;
                break;
            }
        }
        core.step(&cycle(key, data, true, false, decrypt));
        for t in 1..=40 {
            let outs = core.step(&cycle(key, data, false, false, decrypt));
            if outs[1].bit(0) {
                return (u128_of(&outs[0]), key_latency, t);
            }
        }
        panic!("ready never rose after start");
    }

    #[test]
    fn behavioural_encrypts_rfc_vector() {
        let mut core = Camellia128::new();
        let (c, key_lat, blk_lat) = load_and_run(&mut core, K, P, false);
        assert_eq!(c, C);
        assert_eq!(key_lat, 5, "KA derivation latency (pulse to ready)");
        assert_eq!(blk_lat, 23, "block latency (pulse to ready)");
    }

    #[test]
    fn behavioural_decrypts_rfc_vector() {
        let mut core = Camellia128::new();
        let (p, _, _) = load_and_run(&mut core, K, C, true);
        assert_eq!(p, P);
    }

    #[test]
    fn key_persists_across_blocks() {
        let mut core = Camellia128::new();
        let (c1, _, _) = load_and_run(&mut core, K, P, false);
        core.step(&cycle(K, c1, true, false, true));
        for _ in 1..=40 {
            let outs = core.step(&cycle(K, c1, false, false, true));
            if outs[1].bit(0) {
                assert_eq!(u128_of(&outs[0]), P);
                return;
            }
        }
        panic!("second op never completed");
    }

    #[test]
    fn fl_and_flinv_are_inverses() {
        let ke = 0xdead_beef_0bad_f00du64;
        for x in [0u64, 1, u64::MAX, 0x0123_4567_89ab_cdef] {
            assert_eq!(fl_inv(fl(x, ke), ke), x);
        }
    }

    #[test]
    fn chip_enable_gates_commands() {
        let mut core = Camellia128::new();
        let mut c = cycle(K, P, true, true, false);
        c[5] = Bits::from_bool(false);
        core.step(&c);
        let outs = core.step(&cycle(K, P, false, false, false));
        assert!(outs[1].bit(0), "still idle: commands were gated");
    }

    #[test]
    fn interface_shape() {
        let s = Camellia128::new().signals();
        assert_eq!(s.input_width(), 260); // paper: 262
        assert_eq!(s.output_width(), 129); // paper: 129
    }

    #[test]
    fn netlist_builds_and_validates() {
        let n = Camellia128::new().netlist().unwrap();
        let stats = n.stats();
        assert_eq!(stats.input_bits, 260);
        assert_eq!(stats.output_bits, 129);
        assert!(stats.memory_elements > 500);
    }
}

#[cfg(test)]
mod whitebox_tests {
    use super::*;

    #[test]
    fn probe_rises_exactly_in_fl_cycles() {
        let mut core = Camellia128Whitebox::new();
        let cycle = |start: bool, load: bool| {
            vec![
                bits_of_u128(5),
                bits_of_u128(9),
                Bits::from_bool(start),
                Bits::from_bool(load),
                Bits::from_bool(false),
                Bits::from_bool(true),
            ]
        };
        core.step(&cycle(false, true));
        for _ in 0..5 {
            core.step(&cycle(false, false));
        }
        core.step(&cycle(true, false));
        let mut fl_cycles = Vec::new();
        for t in 1..=23 {
            let outs = core.step(&cycle(false, false));
            if outs[2].bit(0) {
                fl_cycles.push(t);
            }
        }
        // Rounds run at offsets 1..=22 after the start pulse; the FL
        // layers occupy round-counter values 6/7 and 14/15, i.e. the
        // 7th/8th and 15th/16th processing cycles.
        assert_eq!(fl_cycles, vec![7, 8, 15, 16]);
    }

    #[test]
    fn whitebox_results_match_blackbox() {
        let key = 0xfeed_f00d_dead_beef_0123_4567_89ab_cdefu128;
        let data = 0x1111_2222_3333_4444_5555_6666_7777_8888u128;
        let expected = process_block(key, data, false);

        let mut wb = Camellia128Whitebox::new();
        let cycle = |start: bool, load: bool| {
            vec![
                bits_of_u128(key),
                bits_of_u128(data),
                Bits::from_bool(start),
                Bits::from_bool(load),
                Bits::from_bool(false),
                Bits::from_bool(true),
            ]
        };
        wb.step(&cycle(false, true));
        for _ in 0..5 {
            wb.step(&cycle(false, false));
        }
        wb.step(&cycle(true, false));
        for _ in 0..40 {
            let outs = wb.step(&cycle(false, false));
            if outs[1].bit(0) {
                assert_eq!(u128_of(&outs[0]), expected);
                return;
            }
        }
        panic!("ready never rose");
    }

    #[test]
    fn camellia_netlist_has_four_domains() {
        let n = Camellia128::new().netlist().unwrap();
        let mut names: Vec<&str> = n.domains().iter().map(String::as_str).collect();
        names.sort_unstable();
        assert_eq!(names, ["core", "f_unit", "fl_unit", "key_sched"]);
        let stats = n.domain_stats();
        let f_unit = stats.iter().find(|(n, ..)| n == "f_unit").unwrap();
        assert!(f_unit.1 > 500, "the F unit carries the S-box banks");
        let ks = stats.iter().find(|(n, ..)| n == "key_sched").unwrap();
        assert_eq!(ks.2, 256 + 5, "KL + KA + the held selector");
    }
}
