//! The benchmark-IP abstraction.

use psm_rtl::{Netlist, RtlError};
use psm_trace::{Bits, SignalSet};

/// A benchmark IP with a behavioural model and a structural (gate-level)
/// twin.
///
/// The contract between the two:
///
/// * [`Ip::signals`] matches the port list of [`Ip::netlist`] exactly
///   (names, widths, directions, declaration order);
/// * one call to [`Ip::step`] corresponds to one clock cycle of the
///   structural simulation: given the inputs applied in cycle *t* and the
///   architectural state left by cycle *t − 1*, it returns the output
///   values visible *during* cycle *t* and commits the state the clock
///   edge captures.
///
/// The cross-model equivalence is enforced by randomised tests in the
/// workspace's integration suite.
pub trait Ip {
    /// Short benchmark name (Table I row label).
    fn name(&self) -> &'static str;

    /// The PI/PO interface, in declaration order (PIs first).
    fn signals(&self) -> SignalSet;

    /// Builds the structural twin.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction failures; for the shipped IPs this
    /// cannot fail and mostly exists so implementors can use `?`.
    fn netlist(&self) -> Result<Netlist, RtlError>;

    /// Returns the behavioural model to its post-reset state.
    fn reset(&mut self);

    /// Executes one clock cycle; `inputs` in PI declaration order, returns
    /// POs in PO declaration order.
    ///
    /// # Panics
    ///
    /// Implementations panic on malformed input vectors (wrong count or
    /// widths) — such stimuli are programming errors, matching how an HDL
    /// simulator would fail elaboration.
    fn step(&mut self, inputs: &[Bits]) -> Vec<Bits>;
}
