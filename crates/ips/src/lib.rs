//! Benchmark IPs for the `psmgen` workspace — Rust re-implementations of
//! the four designs evaluated in Danese et al. (DATE 2016), Table I:
//!
//! * [`Ram1k`] — a 1 KB (256 × 32) synchronous RAM;
//! * [`MultSum`] — a multiplier-accumulator (the paper's DesignWare MAC);
//! * [`Aes128`] — round-iterative AES-128 encryption/decryption;
//! * [`Camellia128`] — round-iterative Camellia-128 encryption/decryption
//!   (RFC 3713).
//!
//! Every IP exists twice, kept bit- and cycle-equivalent by construction
//! and by the equivalence tests in `tests/`:
//!
//! * a **behavioural model** (the [`Ip`] trait's `step`), playing the role
//!   of the paper's SystemC functional model — fast, used for functional
//!   traces and the Table III `IP sim.` column;
//! * a **structural twin** (`netlist()`), a gate-level netlist built with
//!   `psm-rtl`'s synthesis builder, playing the role of the
//!   DesignCompiler output on which PrimeTime PX estimates power — slow
//!   and golden, used for reference power traces.
//!
//! [`testbench`] generates the paper's two stimulus families: *short-TS*
//! (verification-style directed sequences) and *long-TS* (long randomised
//! re-stimulation).
//!
//! # Examples
//!
//! ```
//! use psm_ips::{Ip, Ram1k};
//! use psm_trace::Bits;
//!
//! let mut ram = Ram1k::new();
//! // write 0xDEAD at address 7: addr, wdata, we, re, ce, clr
//! ram.step(&[
//!     Bits::from_u64(7, 8),
//!     Bits::from_u64(0xDEAD, 32),
//!     Bits::from_bool(true),
//!     Bits::from_bool(false),
//!     Bits::from_bool(true),
//!     Bits::from_bool(false),
//! ]);
//! // read it back: the read loads the output register at the clock edge,
//! // so the value is visible on the following cycle
//! let read_cycle = [
//!     Bits::from_u64(7, 8),
//!     Bits::from_u64(0, 32),
//!     Bits::from_bool(false),
//!     Bits::from_bool(true),
//!     Bits::from_bool(true),
//!     Bits::from_bool(false),
//! ];
//! ram.step(&read_cycle);
//! let outs = ram.step(&read_cycle);
//! assert_eq!(outs[0].to_u64()?, 0xDEAD);
//! # Ok::<(), psm_trace::TraceError>(())
//! ```
#![deny(missing_docs)]

mod aes;
mod camellia;
mod harness;
mod multsum;
mod ram;
pub mod testbench;
mod traits;

pub use aes::{encrypt_block as aes_encrypt_block, Aes128};
pub use camellia::{process_block as camellia_process_block, Camellia128, Camellia128Whitebox};
pub use harness::{behavioural_trace, ip_by_name, BENCHMARK_NAMES};
pub use multsum::MultSum;
pub use ram::Ram1k;
pub use traits::Ip;
