//! Helpers bridging IPs with the trace substrate.

use crate::traits::Ip;
use crate::{Aes128, Camellia128, MultSum, Ram1k};
use psm_rtl::Stimulus;
use psm_trace::{FunctionalTrace, TraceError};

/// The Table I benchmark names, in paper order.
pub const BENCHMARK_NAMES: [&str; 4] = ["RAM", "MultSum", "AES", "Camellia"];

/// Instantiates a benchmark IP by its Table I name.
///
/// # Examples
///
/// ```
/// use psm_ips::ip_by_name;
/// assert!(ip_by_name("AES").is_some());
/// assert!(ip_by_name("nonsense").is_none());
/// ```
pub fn ip_by_name(name: &str) -> Option<Box<dyn Ip>> {
    match name {
        "RAM" => Some(Box::new(Ram1k::new())),
        "MultSum" => Some(Box::new(MultSum::new())),
        "AES" => Some(Box::new(Aes128::new())),
        "Camellia" => Some(Box::new(Camellia128::new())),
        _ => None,
    }
}

/// Runs the *behavioural* model under a stimulus, recording the functional
/// trace of all ports — the paper's fast "IP sim." path (Table III).
///
/// The IP is reset first, so the trace always starts from the post-reset
/// state (matching the structural capture in `psm-rtl`).
///
/// # Errors
///
/// Propagates [`TraceError`] when a stimulus cycle does not fit the IP's
/// interface.
pub fn behavioural_trace(
    ip: &mut dyn Ip,
    stimulus: &Stimulus,
) -> Result<FunctionalTrace, TraceError> {
    ip.reset();
    let signals = ip.signals();
    let mut trace = FunctionalTrace::with_capacity(signals, stimulus.len());
    for cycle_inputs in stimulus.iter() {
        let outputs = ip.step(cycle_inputs);
        let mut row = cycle_inputs.to_vec();
        row.extend(outputs);
        trace.push_cycle(row)?;
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psm_trace::Bits;

    #[test]
    fn behavioural_trace_covers_all_ports() {
        let mut ram = Ram1k::new();
        let mut stim = Stimulus::new();
        for i in 0..5u64 {
            stim.push_cycle(vec![
                Bits::from_u64(i, 8),
                Bits::from_u64(i * 3, 32),
                Bits::from_bool(true),
                Bits::from_bool(false),
                Bits::from_bool(true),
                Bits::from_bool(false),
            ]);
        }
        let trace = behavioural_trace(&mut ram, &stim).unwrap();
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.signals().len(), 7); // 6 PIs + rdata
    }

    #[test]
    fn all_benchmarks_instantiable() {
        for name in BENCHMARK_NAMES {
            let ip = ip_by_name(name).unwrap();
            assert_eq!(ip.name(), name);
            assert!(!ip.signals().is_empty());
        }
    }
}
