//! A 1 KB (256 words × 32 bits) synchronous single-port RAM.
//!
//! The paper's RAM benchmark: 44 PI bits, 32 PO bits, 8192 memory
//! elements. Interface:
//!
//! | port   | dir | width | role                                   |
//! |--------|-----|-------|----------------------------------------|
//! | `addr` | in  | 8     | word address                           |
//! | `wdata`| in  | 32    | write data                             |
//! | `we`   | in  | 1     | write enable                           |
//! | `re`   | in  | 1     | read enable (loads the output register)|
//! | `ce`   | in  | 1     | chip enable (gates both)               |
//! | `clr`  | in  | 1     | synchronous clear of the output register|
//! | `rdata`| out | 32    | registered read data                   |
//!
//! Writes are data-dependent from the energy point of view: the switched
//! capacitance of a write tracks how many cell bits actually flip — the
//! behaviour the paper's regression calibration targets.

use crate::traits::Ip;
use psm_rtl::{Netlist, NetlistBuilder, RtlError};
use psm_trace::{Bits, Direction, SignalSet};

const WORDS: usize = 256;

/// Behavioural model of the RAM; see the module docs above for the
/// interface and the [crate example](crate) for usage.
#[derive(Debug, Clone)]
pub struct Ram1k {
    mem: Vec<u32>,
    rdata: u32,
}

impl Ram1k {
    /// A zero-initialised RAM.
    pub fn new() -> Self {
        Ram1k {
            mem: vec![0; WORDS],
            rdata: 0,
        }
    }

    /// Direct backdoor read (testing aid; not part of the interface).
    pub fn peek(&self, addr: usize) -> u32 {
        self.mem[addr]
    }
}

impl Default for Ram1k {
    fn default() -> Self {
        Ram1k::new()
    }
}

impl Ip for Ram1k {
    fn name(&self) -> &'static str {
        "RAM"
    }

    fn signals(&self) -> SignalSet {
        let mut s = SignalSet::new();
        s.push("addr", 8, Direction::Input).expect("unique");
        s.push("wdata", 32, Direction::Input).expect("unique");
        s.push("we", 1, Direction::Input).expect("unique");
        s.push("re", 1, Direction::Input).expect("unique");
        s.push("ce", 1, Direction::Input).expect("unique");
        s.push("clr", 1, Direction::Input).expect("unique");
        s.push("rdata", 32, Direction::Output).expect("unique");
        s
    }

    fn netlist(&self) -> Result<Netlist, RtlError> {
        let mut b = NetlistBuilder::new("ram1k");
        let addr = b.input("addr", 8);
        let wdata = b.input("wdata", 32);
        let we = b.input("we", 1).bit(0);
        let re = b.input("re", 1).bit(0);
        let ce = b.input("ce", 1).bit(0);
        let clr = b.input("clr", 1).bit(0);

        // The storage array is an SRAM macro (synthesis flows never lower
        // RAMs to flip-flops); chip-enable gating happens outside it.
        let we_g = b.and(we, ce);
        let re_g = b.and(re, ce);
        let rdata = b.memory(&addr, &wdata, we_g, re_g, clr);
        b.output("rdata", &rdata);
        b.finish()
    }

    fn reset(&mut self) {
        self.mem.iter_mut().for_each(|w| *w = 0);
        self.rdata = 0;
    }

    fn step(&mut self, inputs: &[Bits]) -> Vec<Bits> {
        assert_eq!(inputs.len(), 6, "RAM takes 6 input ports");
        let addr = inputs[0].to_u64().expect("8-bit addr") as usize;
        let wdata = inputs[1].to_u64().expect("32-bit wdata") as u32;
        let we = inputs[2].bit(0);
        let re = inputs[3].bit(0);
        let ce = inputs[4].bit(0);
        let clr = inputs[5].bit(0);

        // Outputs visible during this cycle: the current output register.
        let visible = self.rdata;

        // Clock edge: the write lands, then the output register updates
        // (read-before-write order matches the netlist, whose read mux
        // sees the *old* cell values during the cycle).
        let read_now = self.mem[addr];
        if ce && we {
            self.mem[addr] = wdata;
        }
        if clr {
            self.rdata = 0;
        } else if ce && re {
            self.rdata = read_now;
        }

        vec![Bits::from_u64(visible as u64, 32)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(
        ram: &mut Ram1k,
        addr: u64,
        wdata: u64,
        we: bool,
        re: bool,
        ce: bool,
        clr: bool,
    ) -> u64 {
        let outs = ram.step(&[
            Bits::from_u64(addr, 8),
            Bits::from_u64(wdata, 32),
            Bits::from_bool(we),
            Bits::from_bool(re),
            Bits::from_bool(ce),
            Bits::from_bool(clr),
        ]);
        outs[0].to_u64().unwrap()
    }

    #[test]
    fn write_then_read() {
        let mut ram = Ram1k::new();
        drive(&mut ram, 42, 0xCAFEBABE, true, false, true, false);
        drive(&mut ram, 42, 0, false, true, true, false);
        // The registered read appears one cycle later.
        let v = drive(&mut ram, 0, 0, false, false, true, false);
        assert_eq!(v, 0xCAFEBABE);
        assert_eq!(ram.peek(42), 0xCAFEBABE);
    }

    #[test]
    fn chip_enable_gates_everything() {
        let mut ram = Ram1k::new();
        drive(&mut ram, 5, 0x123, true, false, false, false); // ce low
        assert_eq!(ram.peek(5), 0);
        drive(&mut ram, 5, 0x456, true, false, true, false);
        drive(&mut ram, 5, 0, false, true, false, false); // read gated
        let v = drive(&mut ram, 0, 0, false, false, true, false);
        assert_eq!(v, 0, "gated read must not load the output register");
    }

    #[test]
    fn clear_resets_output_register() {
        let mut ram = Ram1k::new();
        drive(&mut ram, 1, 77, true, false, true, false);
        drive(&mut ram, 1, 0, false, true, true, false);
        drive(&mut ram, 0, 0, false, false, true, true); // clr
        let v = drive(&mut ram, 0, 0, false, false, true, false);
        assert_eq!(v, 0);
    }

    #[test]
    fn simultaneous_read_write_returns_old_value() {
        let mut ram = Ram1k::new();
        drive(&mut ram, 9, 0xAAAA, true, false, true, false);
        // Read and write the same address in one cycle.
        drive(&mut ram, 9, 0x5555, true, true, true, false);
        let v = drive(&mut ram, 0, 0, false, false, true, false);
        assert_eq!(v, 0xAAAA, "read-before-write semantics");
        assert_eq!(ram.peek(9), 0x5555);
    }

    #[test]
    fn reset_clears_state() {
        let mut ram = Ram1k::new();
        drive(&mut ram, 3, 99, true, true, true, false);
        ram.reset();
        assert_eq!(ram.peek(3), 0);
        let v = drive(&mut ram, 0, 0, false, false, true, false);
        assert_eq!(v, 0);
    }

    #[test]
    fn interface_shape_matches_paper() {
        let ram = Ram1k::new();
        let s = ram.signals();
        assert_eq!(s.input_width(), 44); // paper Table I: PIs 44
        assert_eq!(s.output_width(), 32); // paper Table I: POs 32
    }

    #[test]
    fn netlist_has_8192_memory_bits() {
        let n = Ram1k::new().netlist().unwrap();
        let stats = n.stats();
        // 256 × 32 macro bits — the paper's Table I value.
        assert_eq!(stats.memory_elements, 8192);
        assert_eq!(stats.input_bits, 44);
        assert_eq!(stats.output_bits, 32);
        assert_eq!(n.memories().len(), 1);
        assert_eq!(n.memories()[0].bits(), 8192);
    }
}
