//! Dependency-free JSON serialization substrate for model persistence.
//!
//! The psmgen workspace must build with **no network access**, so trained
//! models cannot be persisted through `serde`/`serde_json`. This crate
//! provides the minimal replacement: an explicit [`JsonValue`] document
//! model, a strict parser, a deterministic compact writer, and the
//! [`Persist`] trait that every persistable model type implements by hand.
//!
//! Determinism is load-bearing: the facade's parallel training engine
//! promises a **byte-identical** serialized `TrainedModel` regardless of
//! worker count, which requires object keys in fixed order and a canonical
//! number syntax. [`JsonValue`] therefore keeps object fields in insertion
//! order (no hash maps) and renders floats through Rust's shortest
//! round-trip `Display`.
//!
//! # Examples
//!
//! ```
//! use psm_persist::JsonValue;
//!
//! let doc = JsonValue::obj([
//!     ("name", JsonValue::from("ram1k")),
//!     ("states", JsonValue::from(4u64)),
//!     ("mre", JsonValue::from_f64(0.062)),
//! ]);
//! let text = doc.render();
//! assert_eq!(text, r#"{"name":"ram1k","states":4,"mre":0.062}"#);
//! let back = JsonValue::parse(&text).unwrap();
//! assert_eq!(back.field("states").unwrap().as_u64().unwrap(), 4);
//! ```
#![deny(missing_docs)]

use std::error::Error;
use std::fmt;

pub mod artifact;
mod parse;
mod render;

pub use artifact::{
    decode_artifact, encode_artifact, encode_artifact_versioned, list_artifacts,
    probe_file_version, probe_version, split_artifact, ArtifactEntry, ARTIFACT_MAGIC,
    ARTIFACT_VERSION, ARTIFACT_VERSION_COMPILED, ARTIFACT_VERSION_MAX,
};
pub use parse::parse_document;

/// Maximum nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 128;

/// An owned JSON document.
///
/// Numbers are split into three variants so that `u64` trace counters and
/// `Bits` words survive round trips exactly (an `f64` cannot represent every
/// `u64`). Object fields keep insertion order, which makes rendering
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer written without sign, decimal point or
    /// exponent.
    UInt(u64),
    /// A negative integer (non-negative integers parse as [`UInt`](Self::UInt)).
    Int(i64),
    /// Any number written with a decimal point or exponent, or an integer
    /// too large for the integer variants.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; fields keep insertion order and may not repeat.
    Obj(Vec<(String, JsonValue)>),
}

/// Failure while parsing or interpreting a JSON document.
#[derive(Debug)]
pub enum PersistError {
    /// The text is not well-formed JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The document is well-formed but does not match the expected shape.
    Schema(String),
    /// An artifact or registry file could not be read at all.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Parse { offset, message } => {
                write!(f, "JSON syntax error at byte {offset}: {message}")
            }
            PersistError::Schema(msg) => write!(f, "JSON schema error: {msg}"),
            PersistError::Io(e) => write!(f, "artifact i/o error: {e}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl PersistError {
    /// Convenience constructor for schema violations.
    pub fn schema(msg: impl Into<String>) -> Self {
        PersistError::Schema(msg.into())
    }
}

/// A type that can be converted to and from a [`JsonValue`].
///
/// Implementations are written by hand, one per persistable type, and live in
/// the crate that owns the type (so they can reach private fields and rebuild
/// derived state — e.g. `PropositionTable` reconstructs its lookup index on
/// load).
pub trait Persist: Sized {
    /// Converts `self` into a JSON document.
    fn to_json(&self) -> JsonValue;

    /// Rebuilds a value from a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Schema`] when the document does not describe a
    /// valid value of this type.
    fn from_json(v: &JsonValue) -> Result<Self, PersistError>;
}

impl JsonValue {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Parse`] on malformed input, including
    /// trailing non-whitespace and nesting deeper than [`MAX_DEPTH`].
    pub fn parse(text: &str) -> Result<JsonValue, PersistError> {
        parse::parse_document(text)
    }

    /// Renders the document as compact JSON.
    ///
    /// The output is deterministic: equal documents render to equal bytes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render::render_value(self, &mut out);
        out
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(fields: impl IntoIterator<Item = (K, JsonValue)>) -> JsonValue {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = JsonValue>) -> JsonValue {
        JsonValue::Arr(items.into_iter().collect())
    }

    /// Wraps an `f64`, representing non-finite values as the strings
    /// `"Infinity"`, `"-Infinity"` and `"NaN"` (plain JSON has no syntax for
    /// them). [`as_f64`](Self::as_f64) reverses the encoding.
    pub fn from_f64(v: f64) -> JsonValue {
        if v.is_finite() {
            JsonValue::Float(v)
        } else if v.is_nan() {
            JsonValue::Str("NaN".to_owned())
        } else if v > 0.0 {
            JsonValue::Str("Infinity".to_owned())
        } else {
            JsonValue::Str("-Infinity".to_owned())
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool, PersistError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }

    /// The value as a `u64` (rejects negative and fractional numbers).
    pub fn as_u64(&self) -> Result<u64, PersistError> {
        match self {
            JsonValue::UInt(n) => Ok(*n),
            other => Err(type_error("unsigned integer", other)),
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, PersistError> {
        usize::try_from(self.as_u64()?)
            .map_err(|_| PersistError::schema("integer out of usize range"))
    }

    /// The value as an `i64`.
    pub fn as_i64(&self) -> Result<i64, PersistError> {
        match self {
            JsonValue::UInt(n) => {
                i64::try_from(*n).map_err(|_| PersistError::schema("integer out of i64 range"))
            }
            JsonValue::Int(n) => Ok(*n),
            other => Err(type_error("integer", other)),
        }
    }

    /// The value as an `f64`. Accepts any numeric variant plus the
    /// non-finite encodings produced by [`from_f64`](Self::from_f64).
    pub fn as_f64(&self) -> Result<f64, PersistError> {
        match self {
            JsonValue::UInt(n) => Ok(*n as f64),
            JsonValue::Int(n) => Ok(*n as f64),
            JsonValue::Float(v) => Ok(*v),
            JsonValue::Str(s) => match s.as_str() {
                "Infinity" => Ok(f64::INFINITY),
                "-Infinity" => Ok(f64::NEG_INFINITY),
                "NaN" => Ok(f64::NAN),
                _ => Err(PersistError::schema(format!(
                    "expected number, found string {s:?}"
                ))),
            },
            other => Err(type_error("number", other)),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, PersistError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(type_error("string", other)),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[JsonValue], PersistError> {
        match self {
            JsonValue::Arr(items) => Ok(items),
            other => Err(type_error("array", other)),
        }
    }

    /// The value as object fields.
    pub fn as_obj(&self) -> Result<&[(String, JsonValue)], PersistError> {
        match self {
            JsonValue::Obj(fields) => Ok(fields),
            other => Err(type_error("object", other)),
        }
    }

    /// Looks a field up in an object, or `None` when absent.
    pub fn get(&self, name: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks a required field up in an object.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Schema`] when `self` is not an object or the
    /// field is missing.
    pub fn field(&self, name: &str) -> Result<&JsonValue, PersistError> {
        self.as_obj()?;
        self.get(name)
            .ok_or_else(|| PersistError::schema(format!("missing field {name:?}")))
    }

    /// Shorthand for `field(name)?.as_u64()`.
    pub fn u64_field(&self, name: &str) -> Result<u64, PersistError> {
        self.field(name)?.as_u64()
    }

    /// Shorthand for `field(name)?.as_usize()`.
    pub fn usize_field(&self, name: &str) -> Result<usize, PersistError> {
        self.field(name)?.as_usize()
    }

    /// Shorthand for `field(name)?.as_f64()`.
    pub fn f64_field(&self, name: &str) -> Result<f64, PersistError> {
        self.field(name)?.as_f64()
    }

    /// Shorthand for `field(name)?.as_str()`.
    pub fn str_field(&self, name: &str) -> Result<&str, PersistError> {
        self.field(name)?.as_str()
    }

    /// Shorthand for `field(name)?.as_arr()`.
    pub fn arr_field(&self, name: &str) -> Result<&[JsonValue], PersistError> {
        self.field(name)?.as_arr()
    }

    /// One-word description of the variant, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::UInt(_) | JsonValue::Int(_) => "integer",
            JsonValue::Float(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

fn type_error(expected: &str, found: &JsonValue) -> PersistError {
    PersistError::schema(format!("expected {expected}, found {}", found.kind()))
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl Persist for f64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::from_f64(*self)
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        v.as_f64()
    }
}

impl Persist for u64 {
    fn to_json(&self) -> JsonValue {
        JsonValue::UInt(*self)
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        v.as_u64()
    }
}

impl Persist for usize {
    fn to_json(&self) -> JsonValue {
        JsonValue::UInt(*self as u64)
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        v.as_usize()
    }
}

impl Persist for String {
    fn to_json(&self) -> JsonValue {
        JsonValue::Str(self.clone())
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        Ok(v.as_str()?.to_owned())
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn to_json(&self) -> JsonValue {
        JsonValue::Arr(self.iter().map(Persist::to_json).collect())
    }

    fn from_json(v: &JsonValue) -> Result<Self, PersistError> {
        v.as_arr()?.iter().map(T::from_json).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for text in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v = JsonValue::parse(text).unwrap();
            assert_eq!(v.render(), text, "round trip of {text}");
        }
    }

    #[test]
    fn u64_extremes_survive() {
        let v = JsonValue::from(u64::MAX);
        let back = JsonValue::parse(&v.render()).unwrap();
        assert_eq!(back.as_u64().unwrap(), u64::MAX);
        let v = JsonValue::Int(i64::MIN);
        let back = JsonValue::parse(&v.render()).unwrap();
        assert_eq!(back.as_i64().unwrap(), i64::MIN);
    }

    #[test]
    fn f64_shortest_round_trip() {
        for x in [0.1, 1.0 / 3.0, 6.62607015e-34, 2.0f64.powi(60), -0.0625] {
            let v = JsonValue::from_f64(x);
            let back = JsonValue::parse(&v.render()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn non_finite_floats_encode_as_strings() {
        for x in [f64::INFINITY, f64::NEG_INFINITY] {
            let v = JsonValue::from_f64(x);
            let back = JsonValue::parse(&v.render()).unwrap();
            assert_eq!(back.as_f64().unwrap(), x);
        }
        let v = JsonValue::from_f64(f64::NAN);
        let back = JsonValue::parse(&v.render()).unwrap();
        assert!(back.as_f64().unwrap().is_nan());
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "quote \" backslash \\ newline \n tab \t nul \u{0} unicode ü";
        let v = JsonValue::from(nasty);
        let back = JsonValue::parse(&v.render()).unwrap();
        assert_eq!(back.as_str().unwrap(), nasty);
    }

    #[test]
    fn object_field_order_is_preserved() {
        let v = JsonValue::obj([
            ("zeta", JsonValue::from(1u64)),
            ("alpha", JsonValue::from(2u64)),
        ]);
        assert_eq!(v.render(), r#"{"zeta":1,"alpha":2}"#);
        let back = JsonValue::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for text in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "+1",
            "\"\\x\"",
            "[1] extra",
            "{\"a\":1,\"a\":2}",
            "nan",
        ] {
            assert!(
                matches!(JsonValue::parse(text), Err(PersistError::Parse { .. })),
                "{text:?} should fail to parse"
            );
        }
    }

    #[test]
    fn parse_rejects_excessive_depth() {
        let mut text = String::new();
        for _ in 0..(MAX_DEPTH + 1) {
            text.push('[');
        }
        assert!(JsonValue::parse(&text).is_err());
    }

    #[test]
    fn schema_errors_name_the_problem() {
        let v = JsonValue::parse(r#"{"a":1}"#).unwrap();
        let err = v.field("b").unwrap_err();
        assert!(err.to_string().contains("\"b\""));
        let err = v.field("a").unwrap().as_str().unwrap_err();
        assert!(err.to_string().contains("string"));
    }

    #[test]
    fn vec_persist_round_trips() {
        let xs: Vec<u64> = vec![1, 2, 3];
        let back = Vec::<u64>::from_json(&xs.to_json()).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn errors_implement_error() {
        let err: Box<dyn std::error::Error> = Box::new(PersistError::schema("x"));
        assert!(err.to_string().contains("x"));
    }
}
