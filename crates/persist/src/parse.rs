//! Strict recursive-descent JSON parser.
//!
//! Accepts exactly the JSON grammar (RFC 8259): no trailing commas, no
//! comments, no leading zeros, no `NaN`/`Infinity` literals. Integers
//! without a decimal point or exponent become [`JsonValue::UInt`]/
//! [`JsonValue::Int`]; everything else numeric becomes [`JsonValue::Float`].

use crate::{JsonValue, PersistError, MAX_DEPTH};

/// Parses a complete document, rejecting trailing garbage.
pub fn parse_document(text: &str) -> Result<JsonValue, PersistError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn fail(&self, message: impl Into<String>) -> PersistError {
        PersistError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), PersistError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, PersistError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(format!("invalid literal, expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, PersistError> {
        if depth > MAX_DEPTH {
            return Err(self.fail("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.fail(format!("unexpected character {:?}", c as char))),
            None => Err(self.fail("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, PersistError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, PersistError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.fail(format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.fail("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, PersistError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: a low surrogate escape must
                                // follow to form one code point.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.fail("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.fail("invalid surrogate pair"))?
                                } else {
                                    return Err(self.fail("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.fail("unpaired low surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.fail("invalid escape"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.fail("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.fail("unescaped control character in string"));
                }
                Some(_) => {
                    // Copy the whole run up to the next quote, escape or
                    // control byte in one slice; validating per character
                    // would rescan the tail of the input for every byte.
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' || c < 0x20 {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.fail("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, PersistError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.fail("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.fail("invalid \\u escape"))?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| self.fail("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, PersistError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: one digit, or a non-zero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.fail("invalid number")),
        }
        if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.fail("leading zeros are not allowed"));
        }
        let mut is_integer = true;
        if self.peek() == Some(b'.') {
            is_integer = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.fail("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_integer = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.fail("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_integer {
            if negative {
                if let Ok(n) = text.parse::<i64>() {
                    // `-0` normalises to integer zero.
                    return Ok(if n == 0 {
                        JsonValue::UInt(0)
                    } else {
                        JsonValue::Int(n)
                    });
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
            // Integer literal too large for 64 bits: keep the value as a
            // float rather than failing.
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.fail("invalid number"))
    }
}
