//! Deterministic compact JSON writer.
//!
//! Equal [`JsonValue`]s render to equal bytes: object fields are written in
//! stored order, floats use Rust's shortest round-trip `Display`, and there
//! is no optional whitespace. The facade's parallel trainer relies on this
//! to keep serialized models byte-identical to the sequential path.

use crate::JsonValue;
use std::fmt::Write;

pub(crate) fn render_value(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(true) => out.push_str("true"),
        JsonValue::Bool(false) => out.push_str("false"),
        JsonValue::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        JsonValue::Int(n) => {
            let _ = write!(out, "{n}");
        }
        JsonValue::Float(v) => render_float(*v, out),
        JsonValue::Str(s) => render_string(s, out),
        JsonValue::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_value(item, out);
            }
            out.push(']');
        }
        JsonValue::Obj(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(key, out);
                out.push(':');
                render_value(item, out);
            }
            out.push('}');
        }
    }
}

fn render_float(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's Display prints the shortest decimal string that parses back
        // to the same f64, which is what makes float round trips exact.
        let _ = write!(out, "{v}");
    } else {
        // `from_f64` encodes non-finite floats as strings before rendering;
        // a raw non-finite Float falls back to null (JSON has no syntax for
        // it).
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
