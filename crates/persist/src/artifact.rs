//! Versioned artifact container and registry-directory listing.
//!
//! A *psmgen artifact* is a model file written by the facade's
//! `TrainedModel::save` / `HierarchicalModel::save`: a one-line magic +
//! format-version header followed by the canonical JSON body.
//!
//! ```text
//! psmgen-artifact/v2
//! {"table":…,"psm":…,"hmm":…,"stats":…}
//! ```
//!
//! Format history:
//!
//! * **v1** (PR 1): the bare canonical JSON document, no header. Still
//!   accepted on load — [`split_artifact`] treats any text whose first
//!   non-whitespace byte opens a JSON value as a v1 artifact.
//! * **v2**: the header line above. The header lets consumers (the `psmd`
//!   model registry in particular) probe a file's format version without
//!   parsing — and possibly downloading — the whole body, and lets future
//!   format changes fail with a *structured* "unsupported version" error
//!   instead of a JSON parse error deep inside the body.
//! * **v3** (PR 10): the v2 body plus a `"compiled"` field holding the
//!   flat-table serving form of the model (`psm-compile`'s
//!   `CompiledModel`). Written by `TrainedModel::save_compiled` /
//!   `psmctl compile` via [`encode_artifact_versioned`]; the registry
//!   prefers this section and skips recompiling at load. A v3 body minus
//!   `"compiled"` is exactly a v2 body, so v2 readers of the future could
//!   downgrade by stripping the field.
//!
//! Truncated, empty or wrong-magic files always surface as
//! [`PersistError`] values, never as panics; the facade wraps them in
//! `FlowError::Persistence`.
//!
//! The second half of this module is the **registry listing** used by the
//! `psmd` daemon: a registry is a flat directory of artifacts named
//! `<model>@<version>.json` (a bare `<model>.json` is version 1), and
//! [`list_artifacts`] enumerates them deterministically with their probed
//! format versions.

use crate::{JsonValue, PersistError};
use std::io::Read;
use std::path::{Path, PathBuf};

/// The artifact magic, first bytes of every headered model file.
pub const ARTIFACT_MAGIC: &str = "psmgen-artifact";

/// The artifact format version written for plain (training-side) models.
pub const ARTIFACT_VERSION: u32 = 2;

/// The artifact format version written when the body also carries the
/// compiled serving form (a `"compiled"` top-level field).
pub const ARTIFACT_VERSION_COMPILED: u32 = 3;

/// The newest artifact format version this build reads.
pub const ARTIFACT_VERSION_MAX: u32 = ARTIFACT_VERSION_COMPILED;

/// How many bytes of a file [`probe_file_version`] reads: enough for the
/// longest valid header line.
const PROBE_BYTES: usize = 64;

/// Wraps a rendered JSON body in the current plain artifact container:
/// `psmgen-artifact/v2\n` + body + trailing newline.
pub fn encode_artifact(body: &JsonValue) -> String {
    encode_artifact_versioned(body, ARTIFACT_VERSION)
}

/// Wraps a rendered JSON body in an explicit-version artifact container —
/// `psmgen-artifact/v<N>\n` + body + trailing newline. Use
/// [`ARTIFACT_VERSION`] for plain bodies and [`ARTIFACT_VERSION_COMPILED`]
/// for bodies carrying a `"compiled"` serving section.
///
/// # Panics
///
/// Panics on versions this build could not read back
/// (`0` or beyond [`ARTIFACT_VERSION_MAX`]).
pub fn encode_artifact_versioned(body: &JsonValue, version: u32) -> String {
    assert!(
        (1..=ARTIFACT_VERSION_MAX).contains(&version),
        "cannot write artifact format version {version} (this build reads v1..=v{ARTIFACT_VERSION_MAX})"
    );
    format!("{ARTIFACT_MAGIC}/v{version}\n{}\n", body.render())
}

/// Splits an artifact into its format version and JSON body text.
///
/// Headerless text whose first non-whitespace byte opens a JSON value is
/// accepted as format version 1 (a PR 1-era file).
///
/// # Errors
///
/// * empty / all-whitespace input — truncated artifact;
/// * a header with a version this build does not support;
/// * anything else — wrong magic (not a psmgen artifact at all).
pub fn split_artifact(text: &str) -> Result<(u32, &str), PersistError> {
    let trimmed = text.trim_start();
    if trimmed.is_empty() {
        return Err(PersistError::schema(
            "truncated artifact: the file is empty",
        ));
    }
    if let Some(rest) = trimmed.strip_prefix(ARTIFACT_MAGIC) {
        let rest = rest.strip_prefix("/v").ok_or_else(|| {
            PersistError::schema(format!(
                "malformed artifact header: expected `{ARTIFACT_MAGIC}/v<N>`"
            ))
        })?;
        let (digits, body) = match rest.find('\n') {
            Some(eol) => (&rest[..eol], &rest[eol + 1..]),
            None => {
                return Err(PersistError::schema(
                    "truncated artifact: header line has no body after it",
                ))
            }
        };
        let version: u32 = digits
            .trim()
            .parse()
            .map_err(|_| PersistError::schema(format!("malformed artifact version {digits:?}")))?;
        if version == 0 || version > ARTIFACT_VERSION_MAX {
            return Err(PersistError::schema(format!(
                "unsupported artifact format version {version} \
                 (this build reads v1..=v{ARTIFACT_VERSION_MAX})"
            )));
        }
        if body.trim().is_empty() {
            return Err(PersistError::schema(
                "truncated artifact: header line has no body after it",
            ));
        }
        return Ok((version, body));
    }
    // v1 legacy: a bare JSON document.
    if trimmed.starts_with('{') || trimmed.starts_with('[') {
        return Ok((1, text));
    }
    Err(PersistError::schema(format!(
        "wrong magic: not a psmgen artifact (expected `{ARTIFACT_MAGIC}/v<N>` or a JSON body)"
    )))
}

/// Splits and parses an artifact, returning its format version and body.
///
/// # Errors
///
/// The [`split_artifact`] failures, plus [`PersistError::Parse`] when the
/// body is not well-formed JSON (a truncated v1/v2 body lands here).
pub fn decode_artifact(text: &str) -> Result<(u32, JsonValue), PersistError> {
    let (version, body) = split_artifact(text)?;
    Ok((version, JsonValue::parse(body)?))
}

/// The format version an artifact's first bytes declare, without parsing
/// the body. `head` need only contain the first `PROBE_BYTES` (64) bytes.
///
/// # Errors
///
/// Same conditions as [`split_artifact`], except that a missing body is
/// tolerated (the probe may have cut the text mid-body).
pub fn probe_version(head: &str) -> Result<u32, PersistError> {
    let trimmed = head.trim_start();
    if trimmed.is_empty() {
        return Err(PersistError::schema(
            "truncated artifact: the file is empty",
        ));
    }
    if trimmed.starts_with('{') || trimmed.starts_with('[') {
        return Ok(1);
    }
    // Delegate header parsing; append a dummy body so a probe that only
    // captured the header line is not mistaken for a truncated file.
    let line = trimmed.lines().next().unwrap_or(trimmed);
    split_artifact(&format!("{line}\n0")).map(|(version, _)| version)
}

/// Probes the artifact format version of a file by reading its first
/// bytes only.
///
/// # Errors
///
/// [`PersistError::Io`] when the file cannot be read, otherwise the
/// [`probe_version`] conditions.
pub fn probe_file_version(path: &Path) -> Result<u32, PersistError> {
    let mut file = std::fs::File::open(path).map_err(PersistError::Io)?;
    let mut buf = [0u8; PROBE_BYTES];
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]).map_err(PersistError::Io)? {
            0 => break,
            n => filled += n,
        }
    }
    let head = String::from_utf8_lossy(&buf[..filled]);
    probe_version(&head)
}

/// One artifact found in a registry directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactEntry {
    /// The model name (file stem up to the `@`).
    pub name: String,
    /// The model version (`@<N>` suffix; bare stems are version 1).
    pub version: u64,
    /// The artifact file.
    pub path: PathBuf,
    /// The probed artifact *format* version (1 = headerless PR 1 file).
    pub format_version: u32,
}

/// Lists the artifacts of a registry directory, sorted by name then
/// version.
///
/// A registry is a flat directory of `*.json` files named
/// `<model>@<version>.json`; a stem without a parseable `@<version>`
/// suffix is taken whole as the model name at version 1. Subdirectories
/// and non-`.json` files are ignored. Each entry's artifact format
/// version is probed from its first bytes, so a wrong-magic file fails
/// the listing with a structured error naming the file.
///
/// # Errors
///
/// [`PersistError::Io`] when the directory or a file cannot be read;
/// [`PersistError::Schema`] when a file is not a psmgen artifact.
pub fn list_artifacts(dir: &Path) -> Result<Vec<ArtifactEntry>, PersistError> {
    let mut entries = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(PersistError::Io)? {
        let entry = entry.map_err(PersistError::Io)?;
        let path = entry.path();
        if !path.is_file() || path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        let (name, version) = match stem.rsplit_once('@') {
            Some((name, digits)) if !name.is_empty() => match digits.parse::<u64>() {
                Ok(version) => (name.to_owned(), version),
                Err(_) => (stem.to_owned(), 1),
            },
            _ => (stem.to_owned(), 1),
        };
        let format_version = probe_file_version(&path).map_err(|e| match e {
            PersistError::Schema(msg) => PersistError::schema(format!("{}: {msg}", path.display())),
            other => other,
        })?;
        entries.push(ArtifactEntry {
            name,
            version,
            path,
            format_version,
        });
    }
    entries.sort_by(|a, b| (a.name.as_str(), a.version).cmp(&(b.name.as_str(), b.version)));
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_the_container() {
        let body = JsonValue::obj([("x", JsonValue::from(1u64))]);
        let text = encode_artifact(&body);
        assert!(text.starts_with("psmgen-artifact/v2\n"));
        let (version, back) = decode_artifact(&text).unwrap();
        assert_eq!(version, ARTIFACT_VERSION);
        assert_eq!(back, body);
    }

    #[test]
    fn compiled_round_trip_through_the_container() {
        let body = JsonValue::obj([("x", JsonValue::from(1u64))]);
        let text = encode_artifact_versioned(&body, ARTIFACT_VERSION_COMPILED);
        assert!(text.starts_with("psmgen-artifact/v3\n"));
        let (version, back) = decode_artifact(&text).unwrap();
        assert_eq!(version, ARTIFACT_VERSION_COMPILED);
        assert_eq!(back, body);
        assert_eq!(probe_version(&text).unwrap(), ARTIFACT_VERSION_COMPILED);
    }

    #[test]
    #[should_panic(expected = "cannot write artifact format version")]
    fn unwritable_versions_panic_at_encode_time() {
        encode_artifact_versioned(&JsonValue::Null, ARTIFACT_VERSION_MAX + 1);
    }

    #[test]
    fn truncated_v3_body_is_a_parse_error() {
        let err = decode_artifact("psmgen-artifact/v3\n{\"compiled\":{\"at\":[0.").unwrap_err();
        assert!(matches!(err, PersistError::Parse { .. }), "{err}");
    }

    #[test]
    fn legacy_headerless_json_is_version_1() {
        let (version, body) = decode_artifact(r#"{"a":1}"#).unwrap();
        assert_eq!(version, 1);
        assert_eq!(body.u64_field("a").unwrap(), 1);
        assert_eq!(probe_version(r#"{"a":1}"#).unwrap(), 1);
    }

    #[test]
    fn truncated_and_wrong_magic_fail_structurally() {
        for text in ["", "   \n", "psmgen-artifact/v2\n", "psmgen-artifact/v2"] {
            let err = decode_artifact(text).unwrap_err();
            assert!(err.to_string().contains("truncated"), "{text:?} → {err}");
        }
        let err = decode_artifact("ELF\u{7f}garbage").unwrap_err();
        assert!(err.to_string().contains("wrong magic"), "{err}");
        let err = decode_artifact("psmgen-artifact-v2\n{}").unwrap_err();
        assert!(err.to_string().contains("malformed"), "{err}");
    }

    #[test]
    fn future_versions_are_rejected_with_a_named_version() {
        let err = decode_artifact("psmgen-artifact/v99\n{}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("99") && msg.contains("unsupported"), "{msg}");
        let err = decode_artifact("psmgen-artifact/v0\n{}").unwrap_err();
        assert!(err.to_string().contains("unsupported"), "{err}");
    }

    #[test]
    fn truncated_v2_body_is_a_parse_error() {
        let err = decode_artifact("psmgen-artifact/v2\n{\"a\":").unwrap_err();
        assert!(matches!(err, PersistError::Parse { .. }), "{err}");
    }

    #[test]
    fn probe_reads_header_only() {
        // A probe window that cuts the body mid-token still resolves.
        let text = encode_artifact(&JsonValue::obj([("k", JsonValue::from("v"))]));
        let head = &text[..text.len().min(24)];
        assert_eq!(probe_version(head).unwrap(), ARTIFACT_VERSION);
        assert!(probe_version("").is_err());
        assert!(probe_version("not an artifact").is_err());
    }

    #[test]
    fn file_probe_and_registry_listing() {
        let dir = std::env::temp_dir().join("psm-persist-registry-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let body = JsonValue::obj([("x", JsonValue::from(1u64))]);
        std::fs::write(dir.join("ram@1.json"), encode_artifact(&body)).unwrap();
        std::fs::write(dir.join("ram@2.json"), encode_artifact(&body)).unwrap();
        // A PR 1-era headerless file, bare stem → version 1.
        std::fs::write(dir.join("mac.json"), body.render()).unwrap();
        // Ignored: wrong extension, subdirectory.
        std::fs::write(dir.join("notes.txt"), "hi").unwrap();
        std::fs::create_dir_all(dir.join("sub")).unwrap();

        assert_eq!(
            probe_file_version(&dir.join("ram@2.json")).unwrap(),
            ARTIFACT_VERSION
        );
        assert_eq!(probe_file_version(&dir.join("mac.json")).unwrap(), 1);

        let entries = list_artifacts(&dir).unwrap();
        let summary: Vec<(String, u64, u32)> = entries
            .iter()
            .map(|e| (e.name.clone(), e.version, e.format_version))
            .collect();
        assert_eq!(
            summary,
            vec![
                ("mac".to_owned(), 1, 1),
                ("ram".to_owned(), 1, 2),
                ("ram".to_owned(), 2, 2),
            ]
        );

        // A wrong-magic file fails the listing, naming the file.
        std::fs::write(dir.join("bad@3.json"), "ELF\u{7f}").unwrap();
        let err = list_artifacts(&dir).unwrap_err();
        assert!(err.to_string().contains("bad@3.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_an_io_error() {
        let err = list_artifacts(Path::new("/nonexistent/psmgen/registry")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)), "{err}");
    }

    #[test]
    fn odd_stems_fold_into_the_name() {
        let dir = std::env::temp_dir().join("psm-persist-odd-stems-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("model@beta.json"), "{}").unwrap();
        let entries = list_artifacts(&dir).unwrap();
        assert_eq!(entries[0].name, "model@beta");
        assert_eq!(entries[0].version, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
