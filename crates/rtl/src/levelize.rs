//! Topological ordering of combinational cells.

use crate::netlist::Netlist;
use crate::RtlError;

/// Computes an evaluation order for the netlist's combinational cells such
/// that every cell is evaluated after all cells driving its inputs.
///
/// Flip-flop outputs, primary inputs and the constant nets are sources and
/// impose no ordering. Returns gate indices into [`Netlist::gates`].
///
/// # Errors
///
/// Returns [`RtlError::CombinationalLoop`] if the combinational logic
/// contains a cycle; the reported net is the output of one cell on the
/// cycle.
///
/// # Examples
///
/// ```
/// use psm_rtl::{levelize, NetlistBuilder};
///
/// let mut b = NetlistBuilder::new("chain");
/// let a = b.input("a", 1);
/// let x = b.not_word(&a);
/// let y = b.not_word(&x);
/// b.output("y", &y);
/// let n = b.finish()?;
/// let order = levelize(&n)?;
/// assert_eq!(order.len(), 2);
/// // The first inverter must come before the second.
/// assert!(order[0] < order[1]);
/// # Ok::<(), psm_rtl::RtlError>(())
/// ```
pub fn levelize(netlist: &Netlist) -> Result<Vec<usize>, RtlError> {
    let gates = netlist.gates();
    // driver_gate[net] = Some(gate index) if a combinational cell drives it.
    let mut driver_gate: Vec<Option<usize>> = vec![None; netlist.net_count()];
    for (gi, g) in gates.iter().enumerate() {
        driver_gate[g.output.index()] = Some(gi);
    }

    // In-degree of each gate = number of inputs driven by other gates.
    let mut indegree: Vec<u32> = vec![0; gates.len()];
    // fanout[gi] = gates that read gi's output.
    let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    for (gi, g) in gates.iter().enumerate() {
        for input in &g.inputs {
            if let Some(src) = driver_gate[input.index()] {
                indegree[gi] += 1;
                fanout[src].push(gi);
            }
        }
    }

    let mut ready: Vec<usize> = (0..gates.len()).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(gates.len());
    while let Some(gi) = ready.pop() {
        order.push(gi);
        for &next in &fanout[gi] {
            indegree[next] -= 1;
            if indegree[next] == 0 {
                ready.push(next);
            }
        }
    }

    if order.len() != gates.len() {
        // Any gate still carrying in-degree is on (or behind) a cycle;
        // report the first for diagnosis.
        let stuck = indegree
            .iter()
            .position(|&d| d > 0)
            .expect("some gate must be stuck when the order is incomplete");
        return Err(RtlError::CombinationalLoop {
            net: gates[stuck].output,
        });
    }
    Ok(order)
}

/// Logic depth of the netlist: the longest combinational path measured in
/// cells. Useful as a proxy for the critical path in reports.
///
/// # Errors
///
/// Returns [`RtlError::CombinationalLoop`] on cyclic logic.
pub fn logic_depth(netlist: &Netlist) -> Result<usize, RtlError> {
    let order = levelize(netlist)?;
    let gates = netlist.gates();
    let mut driver_gate: Vec<Option<usize>> = vec![None; netlist.net_count()];
    for (gi, g) in gates.iter().enumerate() {
        driver_gate[g.output.index()] = Some(gi);
    }
    let mut depth = vec![0usize; gates.len()];
    let mut max = 0;
    for gi in order {
        let d = gates[gi]
            .inputs
            .iter()
            .filter_map(|n| driver_gate[n.index()].map(|src| depth[src] + 1))
            .max()
            .unwrap_or(1);
        depth[gi] = d;
        max = max.max(d);
    }
    Ok(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    #[test]
    fn combinational_cycle_is_reported_with_a_cycle_net() {
        use crate::gate::{Gate, GateKind, NetId};
        // g0: n2 = and(n3, 1) and g1: n3 = not(n2) — a two-gate loop the
        // builder cannot express, assembled directly from parts.
        let n = crate::netlist::Netlist::from_parts(
            "looped".to_owned(),
            4,
            vec![
                Gate {
                    kind: GateKind::And2,
                    inputs: vec![NetId(3), NetId(1)],
                    output: NetId(2),
                },
                Gate {
                    kind: GateKind::Not,
                    inputs: vec![NetId(2)],
                    output: NetId(3),
                },
            ],
            Vec::new(),
            Vec::new(),
            Vec::new(),
            vec!["core".to_owned()],
            vec![0, 0],
            Vec::new(),
            Vec::new(),
        );
        match levelize(&n) {
            Err(RtlError::CombinationalLoop { net }) => {
                assert!(
                    net == NetId(2) || net == NetId(3),
                    "net {net} not on the loop"
                );
            }
            other => panic!("expected a combinational loop, got {other:?}"),
        }
        assert!(matches!(
            logic_depth(&n),
            Err(RtlError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn straight_chain_depth() {
        let mut b = NetlistBuilder::new("chain");
        let a = b.input("a", 1);
        let mut x = a;
        for _ in 0..5 {
            x = b.not_word(&x);
        }
        b.output("y", &x);
        let n = b.finish().unwrap();
        assert_eq!(logic_depth(&n).unwrap(), 5);
    }

    #[test]
    fn registers_break_cycles() {
        // q -> inverter -> d is a legal sequential loop.
        let mut b = NetlistBuilder::new("toggle");
        let r = b.register("r", 1);
        let q = r.q();
        let inv = b.not_word(&q);
        b.connect_register(&r, &inv);
        b.output("q", &r.q());
        let n = b.finish().unwrap();
        assert_eq!(levelize(&n).unwrap().len(), 1);
    }

    #[test]
    fn order_respects_dependencies() {
        let mut b = NetlistBuilder::new("adder");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let s = b.add(&x, &y);
        b.output("s", &s.sum);
        let n = b.finish().unwrap();
        let order = levelize(&n).unwrap();
        // position of each gate in the order
        let mut pos = vec![0usize; order.len()];
        for (p, &gi) in order.iter().enumerate() {
            pos[gi] = p;
        }
        let mut driver = std::collections::HashMap::new();
        for (gi, g) in n.gates().iter().enumerate() {
            driver.insert(g.output, gi);
        }
        for (gi, g) in n.gates().iter().enumerate() {
            for input in &g.inputs {
                if let Some(&src) = driver.get(input) {
                    assert!(pos[src] < pos[gi], "gate {src} must precede {gi}");
                }
            }
        }
    }

    #[test]
    fn depth_of_flat_logic_is_one() {
        let mut b = NetlistBuilder::new("flat");
        let a = b.input("a", 4);
        let x = b.not_word(&a);
        b.output("y", &x);
        let n = b.finish().unwrap();
        assert_eq!(logic_depth(&n).unwrap(), 1);
    }
}
