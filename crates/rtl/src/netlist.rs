//! The netlist container: nets, gates, flip-flops and ports.

use crate::crossing::IsolationKind;
use crate::gate::{Gate, NetId};
use crate::RtlError;
use psm_trace::{Direction, SignalSet};
use std::collections::HashMap;
use std::fmt;

/// A D flip-flop with synchronous data and a reset/initial value.
///
/// All flip-flops share one implicit clock; the simulator advances them
/// together at the end of every [`Simulator::step`](crate::Simulator::step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dff {
    /// Data input net, sampled at the clock edge.
    pub d: NetId,
    /// Output net, driven with the sampled value.
    pub q: NetId,
    /// Value of `q` after reset.
    pub init: bool,
}

/// A synchronous single-port SRAM macro.
///
/// Synthesis flows never lower RAMs to flip-flops — they instantiate
/// memory macros whose power is *access-dominated*: a read or write
/// precharges the bitlines of the addressed row (a cost per access, nearly
/// independent of data), while a write additionally flips the cells whose
/// stored value changes. This component models exactly that, which is what
/// makes the paper's RAM benchmark strongly Hamming-correlated and
/// regression-calibratable.
///
/// Timing matches a registered-output synchronous SRAM: inputs are sampled
/// at the clock edge; read data (and the energy of the access) appear in
/// the following cycle. `clear` synchronously zeroes the output register
/// only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryMacro {
    /// Word-address input nets (LSB first); depth = 2^addr.len().
    pub addr: Vec<NetId>,
    /// Write-data input nets; width = wdata.len() = rdata.len() ≤ 64.
    pub wdata: Vec<NetId>,
    /// Write enable (already gated by any chip enable).
    pub we: NetId,
    /// Read enable (already gated by any chip enable).
    pub re: NetId,
    /// Synchronous clear of the output register.
    pub clear: NetId,
    /// Registered read-data output nets, driven by the macro.
    pub rdata: Vec<NetId>,
}

impl MemoryMacro {
    /// Bitline precharge + sense capacitance per accessed bit (fF).
    /// Sized so a full-word access costs on the order of a picojoule, as
    /// real kilobyte-class SRAMs do.
    pub const ACCESS_CAP_PER_BIT_FF: f64 = 30.0;
    /// Cell capacitance switched per flipped stored bit on a write (fF).
    pub const WRITE_CELL_CAP_FF: f64 = 15.0;
    /// Word-line + decoder capacitance per access (fF).
    pub const WORDLINE_CAP_FF: f64 = 500.0;
    /// Capacitance of one write-data bus wire into the array (fF); charged
    /// whenever the bit toggles between consecutive cycles. The heavy data
    /// bus is what makes RAM power strongly correlated with the Hamming
    /// distance of consecutive inputs (the paper's §VI observation).
    pub const WDATA_BUS_CAP_FF: f64 = 40.0;
    /// Capacitance of one address bus wire into the decoder (fF).
    pub const ADDR_BUS_CAP_FF: f64 = 60.0;
    /// Output-register capacitance per toggling read-data bit (fF).
    pub const RDATA_CAP_FF: f64 = 3.0;
    /// Clocked-periphery capacitance per macro, every cycle (fF).
    pub const CLOCK_CAP_FF: f64 = 400.0;

    /// Number of words.
    pub fn words(&self) -> usize {
        1 << self.addr.len()
    }

    /// Word width in bits.
    pub fn width(&self) -> usize {
        self.wdata.len()
    }

    /// Storage bits (the paper's *memory elements* accounting).
    pub fn bits(&self) -> usize {
        self.words() * self.width()
    }
}

/// A named bundle of nets forming a primary input or output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    name: String,
    direction: Direction,
    nets: Vec<NetId>,
}

impl Port {
    /// Port name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input or output, as seen from the design.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.nets.len()
    }

    /// The nets carrying this port, least-significant bit first.
    pub fn nets(&self) -> &[NetId] {
        &self.nets
    }
}

/// Aggregate statistics of a netlist — the data behind the paper's Table I
/// (*characteristics of benchmarks*).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Combinational cell count per library-cell name.
    pub cells_by_kind: Vec<(String, usize)>,
    /// Total combinational cells.
    pub combinational: usize,
    /// Flip-flop count (paper Table I column *Memory elements*).
    pub memory_elements: usize,
    /// Total nets, including the two constant nets.
    pub nets: usize,
    /// Total input bits (paper Table I column *PIs*).
    pub input_bits: usize,
    /// Total output bits (paper Table I column *POs*).
    pub output_bits: usize,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cells, {} flops, {} nets, {} PI bits, {} PO bits",
            self.combinational, self.memory_elements, self.nets, self.input_bits, self.output_bits
        )?;
        for (kind, n) in &self.cells_by_kind {
            writeln!(f, "  {kind:>6}: {n}")?;
        }
        Ok(())
    }
}

/// A flattened gate-level netlist.
///
/// Nets `NetId(0)` and `NetId(1)` are the constant 0 and 1 drivers. Every
/// other net must be driven by exactly one gate output, flip-flop output or
/// input-port bit — [`Netlist::validate`] enforces this, and
/// [`NetlistBuilder::finish`](crate::NetlistBuilder::finish) runs it
/// automatically.
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    net_count: usize,
    gates: Vec<Gate>,
    dffs: Vec<Dff>,
    memories: Vec<MemoryMacro>,
    ports: Vec<Port>,
    domains: Vec<String>,
    gate_domains: Vec<usize>,
    dff_domains: Vec<usize>,
    mem_domains: Vec<usize>,
    gate_isolation: Vec<Option<IsolationKind>>,
}

impl Netlist {
    /// Index of the constant-zero net.
    pub const CONST0: NetId = NetId(0);
    /// Index of the constant-one net.
    pub const CONST1: NetId = NetId(1);

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        name: String,
        net_count: usize,
        gates: Vec<Gate>,
        dffs: Vec<Dff>,
        memories: Vec<MemoryMacro>,
        ports: Vec<Port>,
        domains: Vec<String>,
        gate_domains: Vec<usize>,
        dff_domains: Vec<usize>,
        mem_domains: Vec<usize>,
    ) -> Self {
        debug_assert_eq!(gates.len(), gate_domains.len());
        debug_assert_eq!(dffs.len(), dff_domains.len());
        debug_assert_eq!(memories.len(), mem_domains.len());
        let gate_isolation = vec![None; gates.len()];
        Netlist {
            name,
            net_count,
            gates,
            dffs,
            memories,
            ports,
            domains,
            gate_domains,
            dff_domains,
            mem_domains,
            gate_isolation,
        }
    }

    pub(crate) fn set_gate_isolation(&mut self, gate: usize, kind: IsolationKind) {
        self.gate_isolation[gate] = Some(kind);
    }

    pub(crate) fn add_port(
        &mut self,
        name: String,
        direction: Direction,
        nets: Vec<NetId>,
    ) -> Result<(), RtlError> {
        if self.ports.iter().any(|p| p.name == name) {
            return Err(RtlError::DuplicatePort(name));
        }
        self.ports.push(Port {
            name,
            direction,
            nets,
        });
        Ok(())
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets (including the two constants).
    pub fn net_count(&self) -> usize {
        self.net_count
    }

    /// Combinational cells.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Flip-flops.
    pub fn dffs(&self) -> &[Dff] {
        &self.dffs
    }

    /// SRAM macros.
    pub fn memories(&self) -> &[MemoryMacro] {
        &self.memories
    }

    /// Power-domain names (domain 0 is the default "core" domain).
    ///
    /// Domains partition the cells of a design into subcomponents whose
    /// switching activity the simulator reports separately — the substrate
    /// behind the hierarchical-PSM extension (the paper's future work).
    pub fn domains(&self) -> &[String] {
        &self.domains
    }

    /// Domain of each combinational cell (parallel to [`Netlist::gates`]).
    pub fn gate_domains(&self) -> &[usize] {
        &self.gate_domains
    }

    /// Domain of each flip-flop (parallel to [`Netlist::dffs`]).
    pub fn dff_domains(&self) -> &[usize] {
        &self.dff_domains
    }

    /// Domain of each SRAM macro (parallel to [`Netlist::memories`]).
    pub fn mem_domains(&self) -> &[usize] {
        &self.mem_domains
    }

    /// Declared isolation role of each combinational cell (parallel to
    /// [`Netlist::gates`]): `Some(kind)` when the cell was marked with an
    /// `(* isolation = "..." *)` attribute or built through an isolation
    /// helper, `None` for ordinary logic.
    pub fn gate_isolation(&self) -> &[Option<IsolationKind>] {
        &self.gate_isolation
    }

    /// True when the netlist declares any power intent, i.e. carries at
    /// least one isolation-marked cell. Analyses treat domains of a netlist
    /// without declared intent as always-on (there is nothing to prove).
    pub fn has_power_intent(&self) -> bool {
        self.gate_isolation.iter().any(Option::is_some)
    }

    /// All ports in declaration order.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Looks up a port by name.
    pub fn port(&self, name: &str) -> Result<&Port, RtlError> {
        self.ports
            .iter()
            .find(|p| p.name == name)
            .ok_or_else(|| RtlError::UnknownPort(name.to_owned()))
    }

    /// Converts the port list into a trace [`SignalSet`] with the same names,
    /// widths and directions — the bridge between structural simulation and
    /// the mining flow.
    pub fn signal_set(&self) -> SignalSet {
        let mut set = SignalSet::new();
        for p in &self.ports {
            set.push(p.name.clone(), p.width(), p.direction)
                .expect("netlist ports are unique and non-zero width by construction");
        }
        set
    }

    /// Checks structural sanity: every net has exactly one driver and every
    /// net that is read is driven.
    ///
    /// # Errors
    ///
    /// * [`RtlError::MultipleDrivers`] when two cells drive one net;
    /// * [`RtlError::UndrivenNet`] when a read net has no driver.
    pub fn validate(&self) -> Result<(), RtlError> {
        let mut drivers = vec![0u8; self.net_count];
        drivers[Self::CONST0.index()] = 1;
        drivers[Self::CONST1.index()] = 1;
        for p in self
            .ports
            .iter()
            .filter(|p| p.direction == Direction::Input)
        {
            for n in &p.nets {
                drivers[n.index()] = drivers[n.index()].saturating_add(1);
            }
        }
        for g in &self.gates {
            drivers[g.output.index()] = drivers[g.output.index()].saturating_add(1);
        }
        for d in &self.dffs {
            drivers[d.q.index()] = drivers[d.q.index()].saturating_add(1);
        }
        for m in &self.memories {
            for n in &m.rdata {
                drivers[n.index()] = drivers[n.index()].saturating_add(1);
            }
        }
        if let Some(i) = drivers.iter().position(|&d| d > 1) {
            return Err(RtlError::MultipleDrivers(NetId(i)));
        }
        let check_read = |n: NetId| -> Result<(), RtlError> {
            if drivers[n.index()] == 0 {
                Err(RtlError::UndrivenNet(n))
            } else {
                Ok(())
            }
        };
        for g in &self.gates {
            for n in &g.inputs {
                check_read(*n)?;
            }
        }
        for d in &self.dffs {
            check_read(d.d)?;
        }
        for m in &self.memories {
            for n in m.addr.iter().chain(&m.wdata) {
                check_read(*n)?;
            }
            check_read(m.we)?;
            check_read(m.re)?;
            check_read(m.clear)?;
        }
        for p in self
            .ports
            .iter()
            .filter(|p| p.direction == Direction::Output)
        {
            for n in &p.nets {
                check_read(*n)?;
            }
        }
        Ok(())
    }

    /// Cell and flop counts per power domain, in domain order —
    /// the per-subcomponent inventory behind the hierarchical extension.
    ///
    /// Returns `(domain name, combinational cells, flip-flops, macro bits)`
    /// tuples.
    pub fn domain_stats(&self) -> Vec<(String, usize, usize, usize)> {
        let mut out: Vec<(String, usize, usize, usize)> =
            self.domains.iter().map(|d| (d.clone(), 0, 0, 0)).collect();
        for &d in &self.gate_domains {
            out[d].1 += 1;
        }
        for &d in &self.dff_domains {
            out[d].2 += 1;
        }
        for (m, &d) in self.memories.iter().zip(&self.mem_domains) {
            out[d].3 += m.bits();
        }
        out
    }

    /// Aggregate cell statistics.
    pub fn stats(&self) -> NetlistStats {
        let mut by_kind: HashMap<&'static str, usize> = HashMap::new();
        for g in &self.gates {
            *by_kind.entry(g.kind.name()).or_insert(0) += 1;
        }
        let mut cells_by_kind: Vec<(String, usize)> = by_kind
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect();
        cells_by_kind.sort();
        let macro_bits: usize = self.memories.iter().map(MemoryMacro::bits).sum();
        NetlistStats {
            cells_by_kind,
            combinational: self.gates.len(),
            memory_elements: self.dffs.len() + macro_bits,
            nets: self.net_count,
            input_bits: self
                .ports
                .iter()
                .filter(|p| p.direction == Direction::Input)
                .map(Port::width)
                .sum(),
            output_bits: self
                .ports
                .iter()
                .filter(|p| p.direction == Direction::Output)
                .map(Port::width)
                .sum(),
        }
    }

    /// Total switched capacitance if every cell output toggled once (fF).
    ///
    /// An upper bound used by the power model to sanity-scale noise.
    pub fn total_capacitance_ff(&self) -> f64 {
        let gate_cap: f64 = self.gates.iter().map(|g| g.kind.capacitance_ff()).sum();
        // A flip-flop's clock + output load, roughly 3x a simple gate.
        gate_cap + self.dffs.len() as f64 * 3.0
    }

    /// Capacitance of a flip-flop output toggle (fF). Exposed so the
    /// simulator and power model agree on one number.
    pub fn dff_capacitance_ff() -> f64 {
        3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NetlistBuilder;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new("tiny");
        let a = b.input("a", 2);
        let x = b.not_word(&a);
        b.output("y", &x);
        b.finish().unwrap()
    }

    #[test]
    fn validate_rejects_multiple_drivers() {
        use crate::gate::{Gate, GateKind};
        // Two buffers driving n2 — inexpressible through NetlistBuilder,
        // so exercise validate() on a hand-assembled netlist.
        let n = Netlist::from_parts(
            "dualdrive".to_owned(),
            3,
            vec![
                Gate {
                    kind: GateKind::Buf,
                    inputs: vec![Netlist::CONST0],
                    output: NetId(2),
                },
                Gate {
                    kind: GateKind::Buf,
                    inputs: vec![Netlist::CONST1],
                    output: NetId(2),
                },
            ],
            Vec::new(),
            Vec::new(),
            Vec::new(),
            vec!["core".to_owned()],
            vec![0, 0],
            Vec::new(),
            Vec::new(),
        );
        assert!(matches!(
            n.validate(),
            Err(RtlError::MultipleDrivers(NetId(2)))
        ));
    }

    #[test]
    fn validate_rejects_undriven_reads() {
        use crate::gate::{Gate, GateKind};
        // A buffer reading n3, which nothing drives.
        let n = Netlist::from_parts(
            "floating".to_owned(),
            4,
            vec![Gate {
                kind: GateKind::Buf,
                inputs: vec![NetId(3)],
                output: NetId(2),
            }],
            Vec::new(),
            Vec::new(),
            Vec::new(),
            vec!["core".to_owned()],
            vec![0],
            Vec::new(),
            Vec::new(),
        );
        assert!(matches!(n.validate(), Err(RtlError::UndrivenNet(NetId(3)))));
    }

    #[test]
    fn ports_and_signal_set() {
        let n = tiny();
        assert_eq!(n.name(), "tiny");
        assert_eq!(n.port("a").unwrap().width(), 2);
        assert!(n.port("nope").is_err());
        let s = n.signal_set();
        assert_eq!(s.input_width(), 2);
        assert_eq!(s.output_width(), 2);
    }

    #[test]
    fn stats_count_cells() {
        let n = tiny();
        let s = n.stats();
        assert_eq!(s.combinational, 2); // two inverters
        assert_eq!(s.memory_elements, 0);
        assert_eq!(s.input_bits, 2);
        assert_eq!(s.output_bits, 2);
        assert_eq!(s.cells_by_kind, vec![("INV".to_owned(), 2)]);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn validate_passes_for_builder_output() {
        tiny().validate().unwrap();
    }

    #[test]
    fn total_capacitance_positive() {
        assert!(tiny().total_capacitance_ff() > 0.0);
    }
}
