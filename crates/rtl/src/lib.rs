//! Gate-level substrate for the `psmgen` workspace.
//!
//! The paper's reference power traces come from a commercial flow (Synopsys
//! DesignCompiler synthesis + PrimeTime PX gate-level power estimation).
//! Neither is available here, so this crate rebuilds the minimum credible
//! equivalent from scratch:
//!
//! * a **netlist IR** ([`Netlist`]) of single-bit nets, primitive gates,
//!   D flip-flops and LUT macro cells;
//! * a word-level **synthesis builder** ([`NetlistBuilder`]) that lowers
//!   registers, adders, multipliers, comparators, mux trees and ROM lookups
//!   to gates — the role DesignCompiler plays in the paper's Table I;
//! * a **levelized two-value simulator** ([`Simulator`]) that settles the
//!   combinational cone each clock cycle and counts capacitance-weighted
//!   toggles, plus a 64-lane **bit-parallel batch engine**
//!   ([`BatchSimulator`], [`capture_traces_batch`]) that packs independent
//!   stimuli into `u64` lane words for bulk trace capture;
//! * a **dynamic power model** ([`PowerModel`], [`PowerEstimator`])
//!   implementing the paper's Def. 2 formula
//!   `δ(t) = ½ · V²dd · f · C · α(t)` over the counted switching activity —
//!   the role of PrimeTime PX.
//!
//! Gate-level power simulation is intentionally the *slow, golden* path; the
//! speed gap between it and PSM simulation is exactly what the paper's
//! Table III measures.
//!
//! # Examples
//!
//! Build and simulate a 4-bit accumulator:
//!
//! ```
//! use psm_rtl::{NetlistBuilder, PowerModel, Simulator};
//! use psm_trace::Bits;
//!
//! let mut b = NetlistBuilder::new("acc4");
//! let d = b.input("d", 4);
//! let acc = b.register("acc", 4);
//! let sum = b.add(&acc.q(), &d);
//! b.connect_register(&acc, &sum.sum);
//! b.output("q", &acc.q());
//! let netlist = b.finish()?;
//!
//! let mut sim = Simulator::new(&netlist)?;
//! let model = PowerModel::default();
//! sim.set_input("d", &Bits::from_u64(3, 4))?;
//! let activity = sim.step();
//! assert_eq!(sim.output("q")?.to_u64()?, 0); // q updates at the clock edge
//! let power_mw = model.cycle_power(&activity);
//! assert!(power_mw >= 0.0);
//! sim.set_input("d", &Bits::from_u64(1, 4))?;
//! sim.step();
//! assert_eq!(sim.output("q")?.to_u64()?, 3); // first sum captured
//! # Ok::<(), psm_rtl::RtlError>(())
//! ```

#![deny(missing_docs)]

mod batch;
mod builder;
mod crossing;
mod gate;
mod harness;
mod levelize;
mod netlist;
mod opt;
mod power;
mod sim;
mod verilog;

pub use batch::{capture_traces_batch, capture_traces_by_domain_batch, BatchSimulator};
pub use builder::{AddResult, NetlistBuilder, Register, Word};
pub use crossing::{CellRef, CrossingEdge, IsolationKind};
pub use gate::{Gate, GateKind, NetId};
pub use harness::{
    capture_traces, capture_traces_by_domain, CaptureResult, HierarchicalCapture, Stimulus,
};
pub use levelize::{levelize, logic_depth};
pub use netlist::{Dff, MemoryMacro, Netlist, NetlistStats, Port};
pub use opt::{optimize, OptStats};
pub use power::{CycleActivity, PowerEstimator, PowerModel};
pub use sim::{PortHandle, Simulator};
pub use verilog::{parse_verilog, read_verilog, write_verilog};

use std::error::Error;
use std::fmt;

/// Errors produced while building or simulating a netlist.
#[derive(Debug)]
#[non_exhaustive]
pub enum RtlError {
    /// The combinational logic contains a cycle through the named net.
    CombinationalLoop {
        /// A net on the cycle (diagnostic aid).
        net: NetId,
    },
    /// A named port does not exist on the netlist.
    UnknownPort(String),
    /// Two ports were declared with the same name.
    DuplicatePort(String),
    /// A value's width did not match the port's width.
    PortWidthMismatch {
        /// Port name.
        port: String,
        /// Declared width.
        expected: usize,
        /// Provided width.
        actual: usize,
    },
    /// A net is driven by more than one gate, flip-flop or input.
    MultipleDrivers(NetId),
    /// A net has no driver but is read by a gate or output.
    UndrivenNet(NetId),
    /// A register was finalised without a connected next-value.
    UnconnectedRegister(String),
    /// Word-level operands of mismatched widths were combined.
    WidthMismatch {
        /// Width of the left operand.
        left: usize,
        /// Width of the right operand.
        right: usize,
    },
    /// Trace-level failure while capturing stimuli.
    Trace(psm_trace::TraceError),
    /// A structural-Verilog construct outside the emitted grammar.
    VerilogParse {
        /// 1-based line number of the offending construct.
        line: usize,
        /// What was unexpected about it.
        message: String,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net {net}")
            }
            RtlError::UnknownPort(name) => write!(f, "unknown port `{name}`"),
            RtlError::DuplicatePort(name) => write!(f, "port `{name}` declared twice"),
            RtlError::PortWidthMismatch {
                port,
                expected,
                actual,
            } => write!(
                f,
                "port `{port}` is {expected} bit(s) wide, got a {actual}-bit value"
            ),
            RtlError::MultipleDrivers(net) => write!(f, "net {net} has multiple drivers"),
            RtlError::UndrivenNet(net) => write!(f, "net {net} is read but never driven"),
            RtlError::UnconnectedRegister(name) => {
                write!(f, "register `{name}` has no connected next-value")
            }
            RtlError::WidthMismatch { left, right } => {
                write!(f, "word width mismatch ({left} vs {right})")
            }
            RtlError::Trace(e) => write!(f, "trace error: {e}"),
            RtlError::VerilogParse { line, message } => {
                write!(f, "verilog parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for RtlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RtlError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<psm_trace::TraceError> for RtlError {
    fn from(e: psm_trace::TraceError) -> Self {
        RtlError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_nonempty() {
        let errs = [
            RtlError::CombinationalLoop { net: NetId(3) },
            RtlError::UnknownPort("x".into()),
            RtlError::DuplicatePort("x".into()),
            RtlError::PortWidthMismatch {
                port: "d".into(),
                expected: 4,
                actual: 8,
            },
            RtlError::MultipleDrivers(NetId(1)),
            RtlError::UndrivenNet(NetId(2)),
            RtlError::UnconnectedRegister("acc".into()),
            RtlError::WidthMismatch { left: 4, right: 8 },
            RtlError::VerilogParse {
                line: 7,
                message: "unexpected token".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
